// Tests for the serving subsystem (src/serve): wire-protocol round
// trips and malformed-frame rejection, bit-identity of served query
// results against the offline kernels, the concurrent TCP server
// (64 connections across every request type), graceful drain, and the
// read-only store properties the daemon depends on (concurrent loads
// of one sealed export; refusal of corrupted datasets at startup).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/categorize.h"
#include "core/distance.h"
#include "core/patchdb.h"
#include "core/query.h"
#include "diff/render.h"
#include "feature/features.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/dataset.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "store/export.h"

namespace patchdb {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ protocol --

TEST(ServeProtocol, EveryRequestRoundTrips) {
  serve::Request ping;
  ping.op = serve::Op::kPing;

  serve::Request lookup;
  lookup.op = serve::Op::kLookup;
  lookup.lookup.id = "deadbeef";

  serve::Request features;
  features.op = serve::Op::kFeatures;
  features.features.id = "cafe";
  features.features.space = serve::WireFeatureSpace::kInterproc;

  serve::Request nearest_id;
  nearest_id.op = serve::Op::kNearest;
  nearest_id.nearest.by_id = true;
  nearest_id.nearest.id = "0123";
  nearest_id.nearest.k = 7;

  serve::Request nearest_vec;
  nearest_vec.op = serve::Op::kNearest;
  nearest_vec.nearest.by_id = false;
  nearest_vec.nearest.vector = {1.5, -2.25, 0.0, 1e300};
  nearest_vec.nearest.k = 1;

  serve::Request stats;
  stats.op = serve::Op::kStats;

  serve::Request analyze;
  analyze.op = serve::Op::kAnalyze;
  analyze.analyze.diff_text = "--- a\n+++ b\n\0binary\x7f ok";
  analyze.analyze.interproc = true;

  serve::Request list;
  list.op = serve::Op::kListIds;
  list.list_ids.component = serve::WireComponent::kSynthetic;
  list.list_ids.limit = 9;

  for (const serve::Request& request :
       {ping, lookup, features, nearest_id, nearest_vec, stats, analyze,
        list}) {
    const serve::Request decoded =
        serve::decode_request(serve::encode_request(request));
    EXPECT_EQ(decoded.op, request.op);
    EXPECT_EQ(decoded.lookup, request.lookup);
    EXPECT_EQ(decoded.features, request.features);
    EXPECT_EQ(decoded.nearest, request.nearest);
    EXPECT_EQ(decoded.analyze, request.analyze);
    EXPECT_EQ(decoded.list_ids, request.list_ids);
  }
}

TEST(ServeProtocol, EveryResponseRoundTrips) {
  {
    serve::Response r;
    r.ping.patches = 12345;
    const serve::Response d = serve::decode_response(
        serve::Op::kPing, serve::encode_response(serve::Op::kPing, r));
    EXPECT_EQ(d.status, serve::Status::kOk);
    EXPECT_EQ(d.ping, r.ping);
  }
  {
    serve::Response r;
    r.lookup.component = serve::WireComponent::kWild;
    r.lookup.is_security = true;
    r.lookup.type = -3;
    r.lookup.repo = "openssl";
    r.lookup.patch_text = std::string("raw\0bytes", 9);
    const serve::Response d = serve::decode_response(
        serve::Op::kLookup, serve::encode_response(serve::Op::kLookup, r));
    EXPECT_EQ(d.lookup, r.lookup);
  }
  {
    serve::Response r;
    r.features.vector = {0.0, -1.0, 3.14159, 1e-300};
    const serve::Response d = serve::decode_response(
        serve::Op::kFeatures, serve::encode_response(serve::Op::kFeatures, r));
    EXPECT_EQ(d.features, r.features);
  }
  {
    serve::Response r;
    r.nearest.hits = {{"aa", 0.0f}, {"bb", 1.25f}};
    const serve::Response d = serve::decode_response(
        serve::Op::kNearest, serve::encode_response(serve::Op::kNearest, r));
    EXPECT_EQ(d.nearest, r.nearest);
  }
  {
    serve::Response r;
    r.stats.nvd = 1;
    r.stats.wild = 2;
    r.stats.synthetic = 4;
    r.stats.categories = {{3, 10, 9}, {7, 0, 1}};
    const serve::Response d = serve::decode_response(
        serve::Op::kStats, serve::encode_response(serve::Op::kStats, r));
    EXPECT_EQ(d.stats, r.stats);
  }
  {
    serve::Response r;
    r.analyze.category = 5;
    r.analyze.resolved = 2;
    r.analyze.introduced = 1;
    r.analyze.report = "report text";
    const serve::Response d = serve::decode_response(
        serve::Op::kAnalyze, serve::encode_response(serve::Op::kAnalyze, r));
    EXPECT_EQ(d.analyze, r.analyze);
  }
  {
    serve::Response r;
    r.status = serve::Status::kNotFound;
    r.error = "no such id";
    const serve::Response d = serve::decode_response(
        serve::Op::kListIds, serve::encode_response(serve::Op::kListIds, r));
    EXPECT_EQ(d.status, serve::Status::kNotFound);
    EXPECT_EQ(d.error, "no such id");
  }
}

TEST(ServeProtocol, MalformedFramesAreRejected) {
  // Zero-length and oversized frame headers.
  const unsigned char zero[4] = {0, 0, 0, 0};
  EXPECT_THROW(serve::parse_frame_header(zero), serve::ProtocolError);
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW(serve::parse_frame_header(huge), serve::ProtocolError);

  // Empty body, unknown opcode, truncated payload, trailing bytes.
  EXPECT_THROW(serve::decode_request(""), serve::ProtocolError);
  EXPECT_THROW(serve::decode_request(std::string(1, '\x63')),
               serve::ProtocolError);
  serve::Request lookup;
  lookup.op = serve::Op::kLookup;
  lookup.lookup.id = "abcdef";
  const std::string good = serve::encode_request(lookup);
  EXPECT_NO_THROW(serve::decode_request(good));
  EXPECT_THROW(serve::decode_request(good.substr(0, good.size() - 2)),
               serve::ProtocolError);
  EXPECT_THROW(serve::decode_request(good + "x"), serve::ProtocolError);

  // A hostile element count: claims 2^31 doubles in a 16-byte payload.
  serve::WireWriter w;
  w.u8(static_cast<std::uint8_t>(serve::Op::kNearest));
  w.u8(0);           // by_vector
  w.str("");         // id
  w.u32(0x80000000); // element count
  w.u64(0);          // 8 bytes of "elements"
  w.u32(5);          // k
  EXPECT_THROW(serve::decode_request(w.take()), serve::ProtocolError);
}

// ----------------------------------------------------- shared dataset --

/// One small PatchDb shared by the dataset/server tests (building the
/// world dominates test time, so do it once).
const core::PatchDb& shared_db() {
  static const core::PatchDb db = [] {
    core::BuildOptions options;
    options.world.repos = 4;
    options.world.nvd_security = 25;
    options.world.wild_pool = 400;
    options.world.seed = 907;
    options.augment.max_rounds = 1;
    options.synthesis.max_per_patch = 2;
    return core::build_patchdb(options);
  }();
  return db;
}

serve::ServedDataset make_dataset() {
  const core::PatchDb& db = shared_db();
  return serve::ServedDataset::from_components(
      db.nvd_security, db.wild_security, db.nonsecurity, db.synthetic);
}

/// The natural patches in served order (the nearest-query corpus).
std::vector<diff::Patch> natural_patches() {
  const core::PatchDb& db = shared_db();
  std::vector<diff::Patch> out;
  for (const corpus::CommitRecord& r : db.nvd_security) out.push_back(r.patch);
  for (const corpus::CommitRecord& r : db.wild_security) out.push_back(r.patch);
  for (const corpus::CommitRecord& r : db.nonsecurity) out.push_back(r.patch);
  return out;
}

// -------------------------------------------------------- bit identity --

TEST(ServeDataset, NearestIsBitIdenticalToOfflineKernels) {
  const serve::ServedDataset dataset = make_dataset();
  const std::vector<diff::Patch> natural = natural_patches();

  // The offline path: Table I features, max-abs weights over the corpus
  // union with itself, scaled rows, and l2_cell per pair.
  const feature::FeatureMatrix m = feature::extract_all(natural);
  const std::vector<double> weights = core::maxabs_weights(m, m);
  const std::vector<float> scaled = core::scale_features(m, weights);
  const std::size_t dims = m.cols();
  ASSERT_EQ(dataset.weights(), weights);

  for (const std::size_t row : {std::size_t{0}, natural.size() / 2}) {
    serve::NearestRequest request;
    request.by_id = true;
    request.id = natural[row].commit;
    request.k = 5;
    const serve::Response response = dataset.nearest(request);
    ASSERT_EQ(response.status, serve::Status::kOk);
    ASSERT_EQ(response.nearest.hits.size(), std::size_t{5});

    // Brute-force reference: every distance through the same kernel,
    // ties broken toward the lower corpus index.
    std::vector<std::pair<float, std::size_t>> all;
    for (std::size_t r = 0; r < natural.size(); ++r) {
      all.emplace_back(core::l2_cell(scaled.data() + row * dims,
                                     scaled.data() + r * dims, dims),
                       r);
    }
    std::sort(all.begin(), all.end());
    for (std::size_t i = 0; i < response.nearest.hits.size(); ++i) {
      EXPECT_EQ(response.nearest.hits[i].id, natural[all[i].second].commit);
      // Bit-exact float equality, not near-equality: the served path
      // must run the same kernel over the same scaled rows.
      EXPECT_EQ(response.nearest.hits[i].distance, all[i].first);
    }
  }
}

TEST(ServeDataset, FeatureVectorsMatchOfflineExtractor) {
  const serve::ServedDataset dataset = make_dataset();
  const core::PatchDb& db = shared_db();

  const corpus::CommitRecord& record = db.wild_security.front();
  serve::FeaturesRequest request;
  request.id = record.patch.commit;
  serve::Response response = dataset.features(request);
  ASSERT_EQ(response.status, serve::Status::kOk);
  const feature::FeatureVector offline = feature::extract(record.patch);
  ASSERT_EQ(response.features.vector.size(), offline.size());
  for (std::size_t i = 0; i < offline.size(); ++i) {
    EXPECT_EQ(response.features.vector[i], offline[i]);
  }

  // Synthetic ids featurize on demand through the same extractor.
  const synth::SyntheticPatch& synthetic = db.synthetic.front();
  request.id = synthetic.patch.commit;
  response = dataset.features(request);
  ASSERT_EQ(response.status, serve::Status::kOk);
  const feature::FeatureVector synth_offline =
      feature::extract(synthetic.patch);
  ASSERT_EQ(response.features.vector.size(), synth_offline.size());
  for (std::size_t i = 0; i < synth_offline.size(); ++i) {
    EXPECT_EQ(response.features.vector[i], synth_offline[i]);
  }
}

TEST(ServeDataset, StatsMatchOfflineCategorizerScan) {
  const serve::ServedDataset dataset = make_dataset();
  const core::PatchDb& db = shared_db();
  const serve::Response response = dataset.stats(serve::StatsRequest{});
  ASSERT_EQ(response.status, serve::Status::kOk);
  const serve::StatsResponse& stats = response.stats;

  EXPECT_EQ(stats.nvd, db.nvd_security.size());
  EXPECT_EQ(stats.wild, db.wild_security.size());
  EXPECT_EQ(stats.nonsecurity, db.nonsecurity.size());
  EXPECT_EQ(stats.synthetic, db.synthetic.size());

  // Offline Table V scan over the same records.
  std::uint64_t security_total = 0;
  std::uint64_t agreement = 0;
  std::vector<std::uint64_t> labeled(corpus::kSecurityTypeCount, 0);
  std::vector<std::uint64_t> predicted(corpus::kSecurityTypeCount, 0);
  const std::vector<diff::Patch> natural = natural_patches();
  std::vector<const corpus::CommitRecord*> records;
  for (const corpus::CommitRecord& r : db.nvd_security) records.push_back(&r);
  for (const corpus::CommitRecord& r : db.wild_security) records.push_back(&r);
  for (const corpus::CommitRecord& r : db.nonsecurity) records.push_back(&r);
  for (const corpus::CommitRecord* r : records) {
    if (!corpus::is_security_type(r->truth.type)) continue;
    ++security_total;
    ++labeled[static_cast<std::size_t>(static_cast<int>(r->truth.type)) - 1];
    const corpus::PatchType p = core::categorize(r->patch);
    if (corpus::is_security_type(p)) {
      ++predicted[static_cast<std::size_t>(static_cast<int>(p)) - 1];
    }
    if (p == r->truth.type) ++agreement;
  }
  EXPECT_EQ(stats.security_total, security_total);
  EXPECT_EQ(stats.agreement, agreement);
  ASSERT_EQ(stats.categories.size(), corpus::kSecurityTypeCount);
  for (std::size_t i = 0; i < corpus::kSecurityTypeCount; ++i) {
    EXPECT_EQ(stats.categories[i].type, static_cast<std::int64_t>(i + 1));
    EXPECT_EQ(stats.categories[i].labeled, labeled[i]);
    EXPECT_EQ(stats.categories[i].predicted, predicted[i]);
  }
}

TEST(ServeDataset, LookupAndAnalyzeMatchOfflinePaths) {
  const serve::ServedDataset dataset = make_dataset();
  const core::PatchDb& db = shared_db();
  const corpus::CommitRecord& record = db.nvd_security.front();

  serve::LookupRequest lookup;
  lookup.id = record.patch.commit;
  const serve::Response looked = dataset.lookup(lookup);
  ASSERT_EQ(looked.status, serve::Status::kOk);
  EXPECT_EQ(looked.lookup.patch_text, diff::render_patch(record.patch));
  EXPECT_EQ(looked.lookup.component, serve::WireComponent::kNvd);
  EXPECT_EQ(looked.lookup.repo, record.repo);

  // Submitting that very text to analyze categorizes identically to the
  // offline categorizer on the parsed patch.
  serve::AnalyzeRequest analyze;
  analyze.diff_text = looked.lookup.patch_text;
  const serve::Response analyzed = dataset.analyze(analyze);
  ASSERT_EQ(analyzed.status, serve::Status::kOk);
  EXPECT_EQ(analyzed.analyze.category,
            static_cast<std::int64_t>(core::categorize(record.patch)));
}

TEST(ServeDataset, RejectsBadQueries) {
  const serve::ServedDataset dataset = make_dataset();

  serve::LookupRequest lookup;
  lookup.id = "0000000000000000000000000000000000000000";
  EXPECT_EQ(dataset.lookup(lookup).status, serve::Status::kNotFound);

  serve::NearestRequest nearest;
  nearest.by_id = false;
  nearest.vector = {1.0, 2.0};  // wrong dimensionality
  EXPECT_EQ(dataset.nearest(nearest).status, serve::Status::kBadRequest);
  nearest.by_id = true;
  nearest.id = natural_patches().front().commit;
  nearest.k = 0;
  EXPECT_EQ(dataset.nearest(nearest).status, serve::Status::kBadRequest);

  serve::AnalyzeRequest analyze;
  analyze.diff_text = "this is not a unified diff";
  EXPECT_EQ(dataset.analyze(analyze).status, serve::Status::kBadRequest);
}

// -------------------------------------------------------------- server --

TEST(ServeServer, Serves64ConcurrentConnectionsAcrossAllOps) {
  const serve::ServedDataset dataset = make_dataset();
  serve::ServerOptions options;
  options.threads = 64;
  serve::Server server(dataset, options);
  server.start();

  const std::vector<diff::Patch> natural = natural_patches();
  const std::string query_id = natural.front().commit;

  // Single-connection reference results; the concurrent storm must
  // reproduce them exactly (same immutable snapshot, same kernels).
  serve::Client reference;
  reference.connect("127.0.0.1", server.port());
  const serve::Response ref_nearest = reference.nearest_by_id(query_id, 5);
  const serve::Response ref_stats = reference.stats();
  const serve::Response ref_lookup = reference.lookup(query_id);
  ASSERT_EQ(ref_nearest.status, serve::Status::kOk);
  ASSERT_EQ(ref_stats.status, serve::Status::kOk);
  ASSERT_EQ(ref_lookup.status, serve::Status::kOk);
  reference.close();

  constexpr std::size_t kConns = 64;
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> ok_requests{0};
  std::vector<std::thread> threads;
  threads.reserve(kConns);
  for (std::size_t t = 0; t < kConns; ++t) {
    threads.emplace_back([&, t] {
      try {
        serve::Client client;
        client.connect("127.0.0.1", server.port());
        const std::string& id = natural[t % natural.size()].commit;

        const serve::Response lookup = client.lookup(query_id);
        const serve::Response features = client.features(id);
        const serve::Response nearest = client.nearest_by_id(query_id, 5);
        const serve::Response stats = client.stats();
        const serve::Response analyze =
            client.analyze(ref_lookup.lookup.patch_text);
        for (const serve::Response* r :
             {&lookup, &features, &nearest, &stats, &analyze}) {
          if (r->status != serve::Status::kOk) {
            failures.fetch_add(1);
          } else {
            ok_requests.fetch_add(1);
          }
        }
        // Bit-identical across connections and to the reference.
        if (!(nearest.nearest == ref_nearest.nearest)) failures.fetch_add(1);
        if (!(stats.stats == ref_stats.stats)) failures.fetch_add(1);
        if (lookup.lookup.patch_text != ref_lookup.lookup.patch_text) {
          failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(ok_requests.load(), kConns * 5);
  EXPECT_GE(server.connections_accepted(), kConns);
}

TEST(ServeServer, MalformedFrameGetsErrorResponseAndClose) {
  const serve::ServedDataset dataset = make_dataset();
  serve::ServerOptions options;
  options.threads = 2;
  serve::Server server(dataset, options);
  server.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // A frame header advertising a body far beyond the cap.
  const unsigned char evil[4] = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_EQ(::send(fd, evil, sizeof(evil), MSG_NOSIGNAL), 4);

  // The server answers with one kBadRequest frame, then closes.
  unsigned char header[4];
  std::size_t got = 0;
  while (got < sizeof(header)) {
    const ssize_t n = ::recv(fd, header + got, sizeof(header) - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  const std::size_t body_len = serve::parse_frame_header(header);
  std::string body(body_len, '\0');
  got = 0;
  while (got < body_len) {
    const ssize_t n = ::recv(fd, body.data() + got, body_len - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  const serve::Response response = serve::decode_response(serve::Op::kPing, body);
  EXPECT_EQ(response.status, serve::Status::kBadRequest);

  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // orderly close
  ::close(fd);
  server.stop();
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(ServeServer, MidFrameDisconnectIsNotAProtocolError) {
  // Regression: a peer that hangs up partway through a frame — after a
  // partial header, or after a header whose declared body never fully
  // arrives — is an ordinary slow-socket disconnect. It used to fall
  // into the generic error path; it must never be logged as frame
  // corruption.
  obs::MetricsRegistry registry;
  auto* previous = obs::install_registry(&registry);
  const serve::ServedDataset dataset = make_dataset();
  serve::ServerOptions options;
  options.threads = 2;
  serve::Server server(dataset, options);
  server.start();

  // Connection 1: a complete header promising 100 body bytes, then only
  // 10 of them, then EOF.
  int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  const unsigned char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 4);
  const char partial[10] = {};
  ASSERT_EQ(::send(fd, partial, sizeof(partial), MSG_NOSIGNAL), 10);
  ::close(fd);

  // Connection 2: EOF after half a header.
  fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::send(fd, header, 2, MSG_NOSIGNAL), 2);
  ::close(fd);

  // Wait until both handlers have observed the EOFs (stop() alone could
  // win the race against the acceptor picking up connection 2), then
  // drain.
  for (int i = 0; i < 500; ++i) {
    if (registry.snapshot().counter("serve.disconnects_midframe") >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  server.stop();
  obs::install_registry(previous);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("serve.disconnects_midframe"), 2u);
  EXPECT_EQ(snap.counter("serve.protocol_errors"), 0u);
  EXPECT_EQ(snap.counter("serve.socket_errors"), 0u);
}

TEST(ServeServer, ZeroLengthFrameIsStillMalformed) {
  // The flip side of the disconnect fix: an explicit zero body length
  // violates the framing (bodies are 1..kMaxFrameBytes) and must keep
  // counting as a protocol error, answered with kBadRequest.
  obs::MetricsRegistry registry;
  auto* previous = obs::install_registry(&registry);
  const serve::ServedDataset dataset = make_dataset();
  serve::ServerOptions options;
  options.threads = 2;
  serve::Server server(dataset, options);
  server.start();

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  const unsigned char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fd, zero, sizeof(zero), MSG_NOSIGNAL), 4);

  unsigned char header[4];
  std::size_t got = 0;
  while (got < sizeof(header)) {
    const ssize_t n = ::recv(fd, header + got, sizeof(header) - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  const std::size_t body_len = serve::parse_frame_header(header);
  std::string body(body_len, '\0');
  got = 0;
  while (got < body_len) {
    const ssize_t n = ::recv(fd, body.data() + got, body_len - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  const serve::Response response =
      serve::decode_response(serve::Op::kPing, body);
  EXPECT_EQ(response.status, serve::Status::kBadRequest);
  char byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // orderly close
  ::close(fd);

  server.stop();
  obs::install_registry(previous);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("serve.protocol_errors"), 1u);
  EXPECT_EQ(snap.counter("serve.disconnects_midframe"), 0u);
}

TEST(ServeServer, GracefulDrainAnswersInFlightThenRefusesNew) {
  const serve::ServedDataset dataset = make_dataset();
  serve::ServerOptions options;
  options.threads = 8;
  serve::Server server(dataset, options);
  server.start();
  const std::uint16_t port = server.port();

  // Clients hammer ping until the drain cuts them off; every response
  // that does arrive must decode as kOk (no torn frames on shutdown).
  constexpr std::size_t kClients = 4;
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> bad{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      try {
        serve::Client client;
        client.connect("127.0.0.1", port);
        for (;;) {
          const serve::Response r = client.ping();
          if (r.status == serve::Status::kOk) {
            ok.fetch_add(1);
          } else {
            bad.fetch_add(1);
          }
        }
      } catch (const std::exception&) {
        // Drain closed the connection at a frame boundary — expected.
      }
    });
  }
  // Let the clients get some requests through, then drain.
  while (ok.load() < kClients) {
    std::this_thread::yield();
  }
  server.stop();
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GE(ok.load(), kClients);
  EXPECT_FALSE(server.running());

  // The listen socket is gone: new connections are refused.
  serve::Client late;
  EXPECT_THROW(late.connect("127.0.0.1", port), std::runtime_error);
}

// ------------------------------------------------------ read-only store --

class ServeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("patchdb_serve_store_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    store::export_patchdb(shared_db(), root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(ServeStoreTest, ConcurrentLoadsOfOneSealedExportAgree) {
  constexpr std::size_t kLoaders = 8;
  const core::PatchDb& db = shared_db();
  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kLoaders; ++t) {
    threads.emplace_back([&] {
      try {
        const serve::ServedDataset loaded = serve::ServedDataset::load(root_);
        if (loaded.size() != db.nvd_security.size() +
                                 db.wild_security.size() +
                                 db.nonsecurity.size() + db.synthetic.size()) {
          failures.fetch_add(1);
        }
        if (loaded.find(db.nvd_security.front().patch.commit) ==
            serve::ServedDataset::npos) {
          failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ServeStoreTest, TruncatedManifestIsRefusedAtStartup) {
  const auto size = fs::file_size(root_ / "manifest.csv");
  fs::resize_file(root_ / "manifest.csv", size - 9);
  try {
    serve::ServedDataset::load(root_);
    FAIL() << "truncated manifest loaded";
  } catch (const std::runtime_error& e) {
    // The refusal must say what is wrong, not just crash.
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST_F(ServeStoreTest, CorruptedPatchContentIsRefusedAtStartup) {
  // Flip one byte inside an exported patch file.
  fs::path victim;
  for (const auto& entry : fs::directory_iterator(root_ / "nvd")) {
    victim = entry.path();
    break;
  }
  ASSERT_FALSE(victim.empty());
  std::fstream file(victim,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(10);
  file.put('\x7f');
  file.close();
  EXPECT_THROW(serve::ServedDataset::load(root_), std::runtime_error);
}

}  // namespace
}  // namespace patchdb
