// Tests for the semantic analysis subsystem: CFG construction, the
// dataflow passes, the checker registry (one planted-defect fixture per
// checker, fixed on the AFTER side), the BEFORE/AFTER diagnostic diff,
// and the extended feature-space layout.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/cfg.h"
#include "analysis/checkers.h"
#include "analysis/dataflow.h"
#include "analysis/report.h"
#include "diff/parse.h"
#include "feature/features.h"

namespace patchdb {
namespace {

using analysis::CheckerId;

// ------------------------------------------------------------- CFG --

TEST(Cfg, StraightLineFunctionHasUnitCyclomatic) {
  const auto cfgs = analysis::build_cfgs(
      "int add(int a, int b)\n"
      "{\n"
      "    int c = a + b;\n"
      "    return c;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const analysis::Cfg& cfg = cfgs[0];
  EXPECT_EQ(cfg.function, "add");
  EXPECT_EQ(cfg.cyclomatic(), 1u);
  // Entry reaches the body, and the exit block is reachable.
  EXPECT_FALSE(cfg.blocks[analysis::Cfg::kEntry].succs.empty());
  EXPECT_FALSE(cfg.blocks[analysis::Cfg::kExit].preds.empty());
}

TEST(Cfg, IfElseAddsOneDecisionPoint) {
  const auto cfgs = analysis::build_cfgs(
      "int sign(int x)\n"
      "{\n"
      "    if (x < 0) {\n"
      "        return -1;\n"
      "    } else {\n"
      "        return 1;\n"
      "    }\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const analysis::Cfg& cfg = cfgs[0];
  EXPECT_EQ(cfg.cyclomatic(), 2u);
  // Some block (the condition header) has two successors.
  const bool has_branch =
      std::any_of(cfg.blocks.begin(), cfg.blocks.end(),
                  [](const analysis::BasicBlock& b) { return b.succs.size() == 2; });
  EXPECT_TRUE(has_branch);
}

TEST(Cfg, WhileLoopHasBackEdge) {
  const auto cfgs = analysis::build_cfgs(
      "int count(int n)\n"
      "{\n"
      "    int i = 0;\n"
      "    while (i < n) {\n"
      "        i++;\n"
      "    }\n"
      "    return i;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const analysis::Cfg& cfg = cfgs[0];
  EXPECT_EQ(cfg.cyclomatic(), 2u);
  // A back edge: some block's successor list contains an earlier block.
  bool back_edge = false;
  for (const analysis::BasicBlock& b : cfg.blocks) {
    for (std::size_t s : b.succs) {
      if (s != analysis::Cfg::kExit && s < b.id) back_edge = true;
    }
  }
  EXPECT_TRUE(back_edge);
}

TEST(Cfg, ForLoopCountsLikeWhile) {
  const auto cfgs = analysis::build_cfgs(
      "int sum(int n)\n"
      "{\n"
      "    int total = 0;\n"
      "    for (int i = 0; i < n; i++) {\n"
      "        total += i;\n"
      "    }\n"
      "    return total;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_EQ(cfgs[0].cyclomatic(), 2u);
}

TEST(Cfg, NestedBranchesRaiseCyclomatic) {
  const auto cfgs = analysis::build_cfgs(
      "int classify(int x, int y)\n"
      "{\n"
      "    if (x > 0) {\n"
      "        if (y > 0) {\n"
      "            return 1;\n"
      "        }\n"
      "        return 2;\n"
      "    }\n"
      "    while (y < 0) {\n"
      "        y++;\n"
      "    }\n"
      "    return 0;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  EXPECT_EQ(cfgs[0].cyclomatic(), 4u);
}

TEST(Cfg, MultipleFunctionsYieldMultipleGraphs) {
  const auto cfgs = analysis::build_cfgs(
      "static int one(void)\n"
      "{\n"
      "    return 1;\n"
      "}\n"
      "\n"
      "int two(void)\n"
      "{\n"
      "    return 2;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 2u);
  EXPECT_EQ(cfgs[0].function, "one");
  EXPECT_EQ(cfgs[1].function, "two");
}

TEST(Cfg, PointerParamsAreRecorded) {
  const auto cfgs = analysis::build_cfgs(
      "int peek(struct buf *b, const char *name)\n"
      "{\n"
      "    return b->len;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const auto& params = cfgs[0].pointer_params;
  EXPECT_NE(std::find(params.begin(), params.end(), "b"), params.end());
  EXPECT_NE(std::find(params.begin(), params.end(), "name"), params.end());
}

// -------------------------------------------------------- dataflow --

TEST(Dataflow, AllocatorPredicates) {
  EXPECT_TRUE(analysis::is_allocator("malloc"));
  EXPECT_TRUE(analysis::is_allocator("kzalloc"));
  EXPECT_FALSE(analysis::is_allocator("free"));
  EXPECT_TRUE(analysis::is_deallocator("kfree"));
  EXPECT_FALSE(analysis::is_deallocator("malloc"));
}

TEST(Dataflow, BranchMergeKeepsMaybeUninit) {
  // `r` is only assigned on one arm, so it is maybe-uninit at the join.
  const auto cfgs = analysis::build_cfgs(
      "int pick(int x)\n"
      "{\n"
      "    int r;\n"
      "    if (x) {\n"
      "        r = 1;\n"
      "    }\n"
      "    return r;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  const auto diags = analysis::run_checkers(cfgs[0]);
  const bool flagged = std::any_of(
      diags.begin(), diags.end(), [](const analysis::Diagnostic& d) {
        return d.checker == CheckerId::kUninitUse && d.symbol == "r";
      });
  EXPECT_TRUE(flagged);
}

TEST(Dataflow, InitializedDeclarationIsNotFlagged) {
  const auto cfgs = analysis::build_cfgs(
      "int pick(int x)\n"
      "{\n"
      "    int r = 0;\n"
      "    if (x) {\n"
      "        r = 1;\n"
      "    }\n"
      "    return r;\n"
      "}\n");
  ASSERT_EQ(cfgs.size(), 1u);
  for (const analysis::Diagnostic& d : analysis::run_checkers(cfgs[0])) {
    EXPECT_NE(d.checker, CheckerId::kUninitUse) << d.message;
  }
}

// -------------------------------------------- checker fixtures --
// One fixture per checker: the BEFORE version plants the defect (the
// checker must report it), the AFTER version fixes it (the analysis
// must report the diagnostic as resolved and the AFTER side clean).

struct CheckerFixture {
  CheckerId checker;
  const char* before;
  const char* after;
};

std::size_t count_of(const std::vector<analysis::Diagnostic>& diags, CheckerId id) {
  return static_cast<std::size_t>(
      std::count_if(diags.begin(), diags.end(),
                    [id](const analysis::Diagnostic& d) { return d.checker == id; }));
}

void expect_planted_and_resolved(const CheckerFixture& fixture) {
  const std::size_t c = static_cast<std::size_t>(fixture.checker);
  const analysis::PatchAnalysis pa =
      analysis::analyze_versions(fixture.before, fixture.after);
  EXPECT_GE(count_of(pa.before.diagnostics, fixture.checker), 1u)
      << analysis::checker_name(fixture.checker) << ": defect not detected in BEFORE";
  EXPECT_EQ(count_of(pa.after.diagnostics, fixture.checker), 0u)
      << analysis::checker_name(fixture.checker) << ": AFTER still dirty";
  EXPECT_GE(pa.resolved_by_checker[c], 1u)
      << analysis::checker_name(fixture.checker) << ": fix not reported as resolved";
  EXPECT_EQ(pa.introduced_by_checker[c], 0u);
}

TEST(Checkers, UncheckedAllocFixture) {
  expect_planted_and_resolved(
      {CheckerId::kUncheckedAlloc,
       "int fill(struct buf *b, int n)\n"
       "{\n"
       "    char *p;\n"
       "    p = malloc(n);\n"
       "    p[0] = 0;\n"
       "    return 0;\n"
       "}\n",
       "int fill(struct buf *b, int n)\n"
       "{\n"
       "    char *p;\n"
       "    p = malloc(n);\n"
       "    if (!p)\n"
       "        return -1;\n"
       "    p[0] = 0;\n"
       "    return 0;\n"
       "}\n"});
}

TEST(Checkers, MissingBoundsCheckFixture) {
  expect_planted_and_resolved(
      {CheckerId::kMissingBoundsCheck,
       "void copy(char *dst, const char *src)\n"
       "{\n"
       "    strcpy(dst, src);\n"
       "}\n",
       "void copy(char *dst, const char *src)\n"
       "{\n"
       "    strncpy(dst, src, sizeof(dst) - 1);\n"
       "}\n"});
}

TEST(Checkers, IndexBoundsCheckFixture) {
  expect_planted_and_resolved(
      {CheckerId::kMissingBoundsCheck,
       "int get(int *table, int idx)\n"
       "{\n"
       "    return table[idx];\n"
       "}\n",
       "int get(int *table, int idx)\n"
       "{\n"
       "    if (idx < 0 || idx >= TABLE_SIZE)\n"
       "        return -1;\n"
       "    return table[idx];\n"
       "}\n"});
}

TEST(Checkers, UseAfterFreeFixture) {
  expect_planted_and_resolved(
      {CheckerId::kUseAfterFree,
       "void drop(struct node *n)\n"
       "{\n"
       "    free(n);\n"
       "    n->next = 0;\n"
       "}\n",
       "void drop(struct node *n)\n"
       "{\n"
       "    n->next = 0;\n"
       "    free(n);\n"
       "}\n"});
}

TEST(Checkers, DoubleFreeIsAlsoUseAfterFree) {
  const analysis::FileReport report = analysis::analyze_source(
      "void drop(char *p)\n"
      "{\n"
      "    free(p);\n"
      "    free(p);\n"
      "}\n");
  EXPECT_GE(count_of(report.diagnostics, CheckerId::kUseAfterFree), 1u);
}

TEST(Checkers, IntOverflowSizeFixture) {
  expect_planted_and_resolved(
      {CheckerId::kIntOverflowSize,
       "int *grow(int count, int width)\n"
       "{\n"
       "    return malloc(count * width);\n"
       "}\n",
       "int *grow(int count, int width)\n"
       "{\n"
       "    return calloc(count, width);\n"
       "}\n"});
}

TEST(Checkers, MissingNullGuardFixture) {
  expect_planted_and_resolved(
      {CheckerId::kMissingNullGuard,
       "int length(struct list *head)\n"
       "{\n"
       "    return head->len;\n"
       "}\n",
       "int length(struct list *head)\n"
       "{\n"
       "    if (!head)\n"
       "        return 0;\n"
       "    return head->len;\n"
       "}\n"});
}

TEST(Checkers, UninitUseFixture) {
  expect_planted_and_resolved(
      {CheckerId::kUninitUse,
       "int parse(int flag)\n"
       "{\n"
       "    int value;\n"
       "    if (flag) {\n"
       "        value = 1;\n"
       "    }\n"
       "    return value;\n"
       "}\n",
       "int parse(int flag)\n"
       "{\n"
       "    int value = 0;\n"
       "    if (flag) {\n"
       "        value = 1;\n"
       "    }\n"
       "    return value;\n"
       "}\n"});
}

TEST(Checkers, FormatStringFixture) {
  expect_planted_and_resolved(
      {CheckerId::kFormatString,
       "void warn(const char *msg)\n"
       "{\n"
       "    printf(msg);\n"
       "}\n",
       "void warn(const char *msg)\n"
       "{\n"
       "    printf(\"%s\", msg);\n"
       "}\n"});
}

TEST(Checkers, DiagnosticKeyIgnoresLineShifts) {
  // The same defect at a different line (e.g. after unrelated insertions
  // above) must map to the same key so the BEFORE/AFTER diff matches it.
  analysis::Diagnostic a;
  a.checker = CheckerId::kMissingNullGuard;
  a.function = "length";
  a.symbol = "head";
  a.line = 3;
  analysis::Diagnostic b = a;
  b.line = 17;
  EXPECT_EQ(a.key(), b.key());
}

TEST(Checkers, RegistryNamesAreStable) {
  ASSERT_EQ(analysis::checkers().size(), analysis::kCheckerCount);
  EXPECT_EQ(analysis::checker_name(CheckerId::kUncheckedAlloc),
            std::string_view("unchecked-alloc"));
  EXPECT_EQ(analysis::checker_name(CheckerId::kFormatString),
            std::string_view("format-string"));
}

// ------------------------------------------------- patch analysis --

const char* kGuardPatchText =
    "commit 1111111111111111111111111111111111111111\n"
    "\n"
    "    fix NULL dereference in fill()\n"
    "\n"
    "diff --git a/src/buf.c b/src/buf.c\n"
    "--- a/src/buf.c\n"
    "+++ b/src/buf.c\n"
    "@@ -10,6 +10,8 @@ static int fill(struct buf *b, size_t n)\n"
    " {\n"
    "     char *p;\n"
    "     p = malloc(n);\n"
    "+    if (!p)\n"
    "+        return -1;\n"
    "     p[0] = 0;\n"
    "     return 0;\n"
    " }\n";

TEST(PatchAnalysis, ReconstructsBothVersions) {
  const diff::Patch patch = diff::parse_patch(kGuardPatchText);
  ASSERT_EQ(patch.files.size(), 1u);
  const std::string before = analysis::reconstruct_fragment(patch.files[0], false);
  const std::string after = analysis::reconstruct_fragment(patch.files[0], true);
  EXPECT_EQ(before.find("if (!p)"), std::string::npos);
  EXPECT_NE(after.find("if (!p)"), std::string::npos);
  // Context lines appear in both; the hunk's section signature is
  // prepended so the fragment parses as a function.
  EXPECT_NE(before.find("p = malloc(n);"), std::string::npos);
  EXPECT_NE(after.find("p = malloc(n);"), std::string::npos);
  EXPECT_NE(before.find("static int fill"), std::string::npos);
}

TEST(PatchAnalysis, GuardPatchResolvesUncheckedAlloc) {
  const diff::Patch patch = diff::parse_patch(kGuardPatchText);
  const analysis::PatchAnalysis pa = analysis::analyze_patch(patch);
  const std::size_t c = static_cast<std::size_t>(CheckerId::kUncheckedAlloc);
  EXPECT_GE(pa.resolved_by_checker[c], 1u);
  EXPECT_EQ(pa.introduced_by_checker[c], 0u);
  EXPECT_GT(pa.net_blocks, 0);  // the guard adds control flow
}

TEST(PatchAnalysis, RendererMentionsResolvedDiagnostics) {
  const diff::Patch patch = diff::parse_patch(kGuardPatchText);
  const analysis::PatchAnalysis pa = analysis::analyze_patch(patch);
  const std::string report = analysis::render_report(pa, {});
  EXPECT_NE(report.find("unchecked-alloc"), std::string::npos);
  EXPECT_NE(report.find("resolved by this patch"), std::string::npos);
}

TEST(PatchAnalysis, NonCodeFilesAreIgnored) {
  const analysis::PatchAnalysis pa = analysis::analyze_patch(diff::parse_patch(
      "commit 2222222222222222222222222222222222222222\n"
      "\n"
      "    docs\n"
      "\n"
      "diff --git a/README.md b/README.md\n"
      "--- a/README.md\n"
      "+++ b/README.md\n"
      "@@ -1,2 +1,3 @@\n"
      " # title\n"
      "+new line\n"
      " text\n"));
  EXPECT_TRUE(pa.before.diagnostics.empty());
  EXPECT_TRUE(pa.after.diagnostics.empty());
  EXPECT_TRUE(pa.resolved.empty());
  EXPECT_TRUE(pa.introduced.empty());
}

// -------------------------------------------- feature-space layout --

TEST(FeatureSpace, DimsAndNames) {
  EXPECT_EQ(feature::feature_dims(feature::FeatureSpace::kSyntactic),
            feature::kFeatureCount);
  EXPECT_EQ(feature::feature_dims(feature::FeatureSpace::kSemantic),
            feature::kExtendedFeatureCount);
  EXPECT_EQ(feature::kExtendedFeatureCount, 72u);

  const auto base = feature::feature_names();
  const auto extended = feature::feature_names(feature::FeatureSpace::kSemantic);
  ASSERT_EQ(base.size(), feature::kFeatureCount);
  ASSERT_EQ(extended.size(), feature::kExtendedFeatureCount);
  // The first 60 names are the unchanged Table I names.
  for (std::size_t i = 0; i < feature::kFeatureCount; ++i) {
    EXPECT_EQ(base[i], extended[i]) << "name " << i << " diverged";
  }
  // Pin the 12 semantic names (layout regression guard: any reorder of
  // the semantic dims must show up here).
  const char* kSemantic[] = {
      "sem_resolved_diags",    "sem_introduced_diags",
      "sem_net_unchecked_alloc", "sem_net_missing_bounds",
      "sem_net_use_after_free",  "sem_net_int_overflow",
      "sem_net_null_guard",      "sem_net_uninit_use",
      "sem_net_format_string",   "sem_cfg_net_blocks",
      "sem_cfg_net_edges",       "sem_cfg_net_cyclomatic",
  };
  for (std::size_t i = 0; i < feature::kSemanticFeatureCount; ++i) {
    EXPECT_EQ(extended[feature::kFeatureCount + i], std::string_view(kSemantic[i]));
  }
}

TEST(FeatureSpace, ExtendedVectorPreservesSyntacticPrefix) {
  const diff::Patch patch = diff::parse_patch(kGuardPatchText);
  const feature::FeatureVector base = feature::extract(patch);
  const feature::ExtendedFeatureVector extended = feature::extract_extended(patch);
  for (std::size_t i = 0; i < feature::kFeatureCount; ++i) {
    EXPECT_EQ(base[i], extended[i]) << "dim " << i << " not bit-identical";
  }
  // The guard patch resolves one unchecked-alloc diagnostic.
  EXPECT_EQ(extended[60], 1.0);  // sem_resolved_diags
  EXPECT_EQ(extended[61], 0.0);  // sem_introduced_diags
  EXPECT_EQ(extended[62], 1.0);  // sem_net_unchecked_alloc
}

TEST(FeatureSpace, DefaultMatrixKeepsSeedLayout) {
  const std::vector<diff::Patch> patches = {diff::parse_patch(kGuardPatchText)};
  const feature::FeatureMatrix syntactic = feature::extract_all(patches);
  EXPECT_EQ(syntactic.cols(), feature::kFeatureCount);
  const feature::FeatureMatrix semantic =
      feature::extract_all(patches, feature::FeatureSpace::kSemantic);
  EXPECT_EQ(semantic.cols(), feature::kExtendedFeatureCount);
  // Shared prefix agrees between the two spaces.
  for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
    EXPECT_EQ(syntactic[0][j], semantic[0][j]);
  }
}

}  // namespace
}  // namespace patchdb
