// Tests for the 60-dimension Table I feature extractor.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "corpus/mutate.h"
#include "corpus/repo.h"
#include "diff/parse.h"
#include "feature/features.h"
#include "util/rng.h"

namespace patchdb {
namespace {

diff::Patch simple_patch() {
  const std::string text =
      "commit 1234567890123456789012345678901234567890\n"
      "\n"
      "    add a bound check\n"
      "\n"
      "diff --git a/a.c b/a.c\n"
      "--- a/a.c\n"
      "+++ b/a.c\n"
      "@@ -10,5 +10,7 @@ static int parse_header(struct req *r)\n"
      " int n = r->len;\n"
      "+if (n > 64)\n"
      "+    return -1;\n"
      " memcpy(buf, r->data, n);\n"
      "-old_call(r);\n"
      "+new_call(r, n);\n"
      " return n;\n"
      " done:\n";
  return diff::parse_patch(text);
}

TEST(Features, NamesCoverAllDimensions) {
  const auto names = feature::feature_names();
  EXPECT_EQ(names.size(), feature::kFeatureCount);
  EXPECT_EQ(names[0], "changed_lines");
  EXPECT_EQ(names[59], "affected_funcs_pct");
}

TEST(Features, BasicCountsOnKnownPatch) {
  const feature::FeatureVector v = feature::extract(simple_patch());
  EXPECT_DOUBLE_EQ(v[0], 4.0);   // changed lines: 3 added + 1 removed
  EXPECT_DOUBLE_EQ(v[1], 1.0);   // hunks
  EXPECT_DOUBLE_EQ(v[2], 3.0);   // added lines
  EXPECT_DOUBLE_EQ(v[3], 1.0);   // removed lines
  EXPECT_DOUBLE_EQ(v[4], 4.0);   // total
  EXPECT_DOUBLE_EQ(v[5], 2.0);   // net
}

TEST(Features, IfAndCallCounts) {
  const feature::FeatureVector v = feature::extract(simple_patch());
  EXPECT_DOUBLE_EQ(v[10], 1.0);  // added ifs
  EXPECT_DOUBLE_EQ(v[11], 0.0);  // removed ifs
  EXPECT_DOUBLE_EQ(v[12], 1.0);  // total ifs
  EXPECT_DOUBLE_EQ(v[13], 1.0);  // net ifs
  EXPECT_DOUBLE_EQ(v[18], 1.0);  // added calls: new_call
  EXPECT_DOUBLE_EQ(v[19], 1.0);  // removed calls: old_call
  EXPECT_DOUBLE_EQ(v[21], 0.0);  // net calls
}

TEST(Features, RelationalOperatorQuads) {
  const feature::FeatureVector v = feature::extract(simple_patch());
  EXPECT_DOUBLE_EQ(v[26], 1.0);  // added relational: >
  EXPECT_DOUBLE_EQ(v[27], 0.0);
  EXPECT_DOUBLE_EQ(v[28], 1.0);
  EXPECT_DOUBLE_EQ(v[29], 1.0);
}

TEST(Features, LevenshteinFeaturesNonZeroWhenHunkChanges) {
  const feature::FeatureVector v = feature::extract(simple_patch());
  EXPECT_GT(v[48], 0.0);             // mean raw distance
  EXPECT_EQ(v[49], v[50]);           // single hunk: min == max
  EXPECT_EQ(v[48], v[49]);           // single hunk: mean == min
  EXPECT_GT(v[51], 0.0);             // abstracted distance also > 0
  EXPECT_DOUBLE_EQ(v[54], 0.0);      // no identical hunks
}

TEST(Features, SameHunkDetectionAfterAbstraction) {
  // Removal and addition differ only by identifier names -> identical
  // after abstraction but different raw.
  const std::string text =
      "commit 1234567890123456789012345678901234567890\n"
      "\n"
      "diff --git a/a.c b/a.c\n"
      "--- a/a.c\n"
      "+++ b/a.c\n"
      "@@ -1,2 +1,2 @@\n"
      " ctx_t c;\n"
      "-foo(alpha, 1);\n"
      "+bar(beta, 2);\n";
  const feature::FeatureVector v = feature::extract(diff::parse_patch(text));
  EXPECT_DOUBLE_EQ(v[54], 0.0);  // raw differs
  EXPECT_DOUBLE_EQ(v[55], 1.0);  // abstracted identical
  EXPECT_GT(v[48], 0.0);
  EXPECT_DOUBLE_EQ(v[51], 0.0);  // abstracted distance is zero
}

TEST(Features, AffectedFilesAndFunctions) {
  const feature::FeatureVector v = feature::extract(simple_patch());
  EXPECT_DOUBLE_EQ(v[56], 1.0);  // one file
  EXPECT_DOUBLE_EQ(v[58], 1.0);  // one function (from the section header)
}

TEST(Features, RepoContextChangesPercentages) {
  const feature::RepoContext repo{.total_files = 10, .total_functions = 50};
  const feature::FeatureVector v = feature::extract(simple_patch(), repo);
  EXPECT_DOUBLE_EQ(v[57], 0.1);
  EXPECT_DOUBLE_EQ(v[59], 1.0 / 50.0);
}

TEST(Features, EmptyPatchIsAllZero) {
  diff::Patch p;
  p.commit = std::string(40, 'a');
  const feature::FeatureVector v = feature::extract(p);
  for (double x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

// Property over generated commits: the added/removed/total/net quads are
// internally consistent and basic counts match the diff model.
class FeatureQuadProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FeatureQuadProperty, QuadConsistencyOnGeneratedCommits) {
  util::Rng rng(GetParam() * 7919 + 13);
  const auto types = corpus::security_types();
  const corpus::PatchType type = types[rng.index(types.size())];
  const corpus::CommitRecord record =
      corpus::make_commit(rng, "repo", type);
  const feature::FeatureVector v = feature::extract(record.patch);

  // changed lines == added + removed; quads for every category.
  EXPECT_DOUBLE_EQ(v[0], v[2] + v[3]);
  for (std::size_t base : {2u, 6u, 10u, 14u, 18u, 22u, 26u, 30u, 34u, 38u, 42u}) {
    EXPECT_DOUBLE_EQ(v[base + 2], v[base] + v[base + 1]) << "base " << base;
    EXPECT_DOUBLE_EQ(v[base + 3], v[base] - v[base + 1]) << "base " << base;
    EXPECT_GE(v[base], 0.0);
    EXPECT_GE(v[base + 1], 0.0);
  }
  EXPECT_DOUBLE_EQ(v[2], static_cast<double>(record.patch.added_lines()));
  EXPECT_DOUBLE_EQ(v[3], static_cast<double>(record.patch.removed_lines()));
  EXPECT_DOUBLE_EQ(v[1], static_cast<double>(record.patch.hunk_count()));

  // Levenshtein stats ordered min <= mean <= max.
  EXPECT_LE(v[49], v[48]);
  EXPECT_LE(v[48], v[50]);
  EXPECT_LE(v[52], v[51]);
  EXPECT_LE(v[51], v[53]);

  // Percentages stay in [0, 1] without repo context.
  EXPECT_GE(v[57], 0.0);
  EXPECT_LE(v[57], 1.0);
  EXPECT_GE(v[59], 0.0);
}

INSTANTIATE_TEST_SUITE_P(GeneratedCommits, FeatureQuadProperty,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(Features, ExtractAllMatchesSingleExtraction) {
  util::Rng rng(5);
  std::vector<diff::Patch> patches;
  for (int i = 0; i < 8; ++i) {
    patches.push_back(
        corpus::make_commit(rng, "r", corpus::PatchType::kBoundCheck).patch);
  }
  const feature::FeatureMatrix matrix = feature::extract_all(patches);
  ASSERT_EQ(matrix.rows(), patches.size());
  ASSERT_EQ(matrix.cols(), feature::kFeatureCount);
  for (std::size_t i = 0; i < patches.size(); ++i) {
    const feature::FeatureVector v = feature::extract(patches[i]);
    EXPECT_TRUE(std::equal(matrix[i].begin(), matrix[i].end(), v.begin()));
  }
}

}  // namespace
}  // namespace patchdb
