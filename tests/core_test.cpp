// Tests for the core module: weighted distances, nearest link search
// (Algorithm 1) and its invariants against the exact assignment, the
// augmentation loop, the Table III baselines, and the categorizer.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/augment.h"
#include "core/baselines.h"
#include "core/categorize.h"
#include "core/distance.h"
#include "core/nearest_link.h"
#include "core/patchdb.h"
#include "corpus/world.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace patchdb {
namespace {

feature::FeatureMatrix random_features(std::size_t rows, std::uint64_t seed,
                                       double scale = 10.0) {
  util::Rng rng(seed);
  feature::FeatureMatrix m(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      m[i][j] = rng.uniform(-scale, scale);
    }
  }
  return m;
}

// ----------------------------------------------------------- distance --

TEST(Distance, WeightsNormalizeToUnitMaxAbs) {
  const feature::FeatureMatrix a = random_features(20, 1);
  const feature::FeatureMatrix b = random_features(30, 2);
  const std::vector<double> w = core::maxabs_weights(a, b);
  ASSERT_EQ(w.size(), feature::kFeatureCount);
  // After weighting, every |value| <= 1.
  for (const feature::FeatureMatrix* m : {&a, &b}) {
    for (std::size_t i = 0; i < m->rows(); ++i) {
      const std::span<const double> row = (*m)[i];
      for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
        EXPECT_LE(std::fabs(row[j] * w[j]), 1.0 + 1e-9);
      }
    }
  }
}

TEST(Distance, MatrixMatchesScalarFunction) {
  const feature::FeatureMatrix a = random_features(5, 3);
  const feature::FeatureMatrix b = random_features(7, 4);
  const std::vector<double> w = core::maxabs_weights(a, b);
  const core::DistanceMatrix d = core::distance_matrix(a, b, w);
  ASSERT_EQ(d.rows(), 5u);
  ASSERT_EQ(d.cols(), 7u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 7; ++j) {
      EXPECT_NEAR(d.at(i, j), core::weighted_distance(a[i], b[j], w), 1e-4);
    }
  }
}

TEST(Distance, IdenticalVectorsHaveZeroDistance) {
  feature::FeatureMatrix a(1);
  std::fill(a[0].begin(), a[0].end(), 3.0);
  feature::FeatureMatrix b(1);
  std::fill(b[0].begin(), b[0].end(), 3.0);
  const core::DistanceMatrix d = core::distance_matrix(a, b);
  EXPECT_NEAR(d.at(0, 0), 0.0, 1e-9);
}

TEST(Distance, KernelCountersAreRecorded) {
  // Pins the instrumentation contract: a distance_matrix fill followed
  // by a greedy search must land its work counters in the installed
  // registry (cells/flops are emitted BEFORE the kernel returns — this
  // test exists because a refactor could silently strand them after a
  // return and the macros would never fire).
  obs::MetricsRegistry registry;
  auto* previous = obs::install_registry(&registry);

  const feature::FeatureMatrix a = random_features(4, 31);
  const feature::FeatureMatrix b = random_features(9, 32);
  const core::DistanceMatrix d = core::distance_matrix(a, b);
  const core::LinkResult link = core::nearest_link_search(d);
  obs::install_registry(previous);

  ASSERT_EQ(link.candidate.size(), 4u);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("distance.calls"), 1u);
  EXPECT_EQ(snap.counter("distance.rows"), 4u);
  EXPECT_EQ(snap.counter("distance.cells"), 36u);
  EXPECT_GT(snap.counter("distance.flops"), 0u);
  EXPECT_EQ(snap.counter("nearest_link.links"), 4u);
}

// ------------------------------------------------------- nearest link --

core::DistanceMatrix random_matrix(std::size_t m, std::size_t n,
                                   std::uint64_t seed) {
  util::Rng rng(seed);
  core::DistanceMatrix d(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      d.at(i, j) = static_cast<float>(rng.uniform(0.0, 100.0));
    }
  }
  return d;
}

class NearestLinkProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(NearestLinkProperty, InvariantsAgainstExactAssignment) {
  const auto [m, n, seed] = GetParam();
  const core::DistanceMatrix d = random_matrix(m, n, seed);

  const core::LinkResult greedy = core::nearest_link_search(d);
  const core::LinkResult exact = core::exact_assignment(d);
  const core::LinkResult knn = core::row_argmin(d);

  // Every security patch gets exactly one DISTINCT candidate.
  ASSERT_EQ(greedy.candidate.size(), m);
  const std::set<std::size_t> unique(greedy.candidate.begin(),
                                     greedy.candidate.end());
  EXPECT_EQ(unique.size(), m);
  for (std::size_t c : greedy.candidate) EXPECT_LT(c, n);

  // Exact is a lower bound on greedy; per-row argmin is a lower bound on
  // exact (it relaxes distinctness).
  EXPECT_GE(greedy.total_distance + 1e-6, exact.total_distance);
  EXPECT_GE(exact.total_distance + 1e-6, knn.total_distance);

  // Exact result is also a valid distinct assignment.
  const std::set<std::size_t> exact_unique(exact.candidate.begin(),
                                           exact.candidate.end());
  EXPECT_EQ(exact_unique.size(), m);

  // Greedy approximation quality: with plenty of spare columns the last
  // rows still have good options, so the gap stays small. (On square
  // matrices the forced final assignments can be arbitrarily bad, which
  // is exactly why the paper searches a pool much larger than M.)
  if (exact.total_distance > 0.0 && n >= 2 * m) {
    EXPECT_LE(greedy.total_distance, exact.total_distance * 2.0 + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NearestLinkProperty,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 10, 25),
                       ::testing::Values<std::size_t>(25, 60),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(NearestLink, SquareMatrixUsesEveryColumn) {
  const core::DistanceMatrix d = random_matrix(8, 8, 5);
  const core::LinkResult r = core::nearest_link_search(d);
  std::set<std::size_t> cols(r.candidate.begin(), r.candidate.end());
  EXPECT_EQ(cols.size(), 8u);
}

TEST(NearestLink, RowsExceedColumnsRejected) {
  const core::DistanceMatrix d = random_matrix(5, 3, 1);
  EXPECT_THROW(core::nearest_link_search(d), std::invalid_argument);
  EXPECT_THROW(core::exact_assignment(d), std::invalid_argument);
}

TEST(NearestLink, PicksObviousNearestWhenFree) {
  // Distances engineered: row 0 close to col 2, row 1 close to col 0.
  core::DistanceMatrix d(2, 3);
  d.at(0, 0) = 5;  d.at(0, 1) = 9;  d.at(0, 2) = 1;
  d.at(1, 0) = 2;  d.at(1, 1) = 8;  d.at(1, 2) = 7;
  const core::LinkResult r = core::nearest_link_search(d);
  EXPECT_EQ(r.candidate[0], 2u);
  EXPECT_EQ(r.candidate[1], 0u);
  EXPECT_NEAR(r.total_distance, 3.0, 1e-6);
}

TEST(NearestLink, CollisionFallsBackToSecondBest) {
  // Both rows want column 0; the greedy picks the globally closer row
  // first, the other falls back.
  core::DistanceMatrix d(2, 2);
  d.at(0, 0) = 1;  d.at(0, 1) = 10;
  d.at(1, 0) = 2;  d.at(1, 1) = 3;
  const core::LinkResult r = core::nearest_link_search(d);
  EXPECT_EQ(r.candidate[0], 0u);
  EXPECT_EQ(r.candidate[1], 1u);
  EXPECT_NEAR(r.total_distance, 4.0, 1e-6);
}

TEST(NearestLink, KnnContrastReusesCandidates) {
  // The paper's distinction: row_argmin may reuse one column for many
  // rows, nearest link never does.
  core::DistanceMatrix d(3, 3);
  for (std::size_t i = 0; i < 3; ++i) {
    d.at(i, 0) = 1;
    d.at(i, 1) = 50;
    d.at(i, 2) = 60;
  }
  const core::LinkResult knn = core::row_argmin(d);
  const std::set<std::size_t> knn_cols(knn.candidate.begin(), knn.candidate.end());
  EXPECT_EQ(knn_cols.size(), 1u);

  const core::LinkResult link = core::nearest_link_search(d);
  const std::set<std::size_t> link_cols(link.candidate.begin(),
                                        link.candidate.end());
  EXPECT_EQ(link_cols.size(), 3u);
}

// ------------------------------------------------------------ augment --

TEST(Augment, RoundBeatsBaseRateOnSimulatedWorld) {
  corpus::WorldConfig config;
  config.repos = 6;
  config.nvd_security = 60;
  config.wild_pool = 1200;
  config.wild_security_rate = 0.08;
  config.seed = 11;
  corpus::World world = corpus::build_world(config);

  std::vector<const corpus::CommitRecord*> seed;
  for (const auto& r : world.nvd_security) seed.push_back(&r);
  std::vector<const corpus::CommitRecord*> pool;
  for (const auto& r : world.wild) pool.push_back(&r);

  core::AugmentationLoop loop(seed, world.oracle);
  loop.set_pool(pool);
  const core::RoundStats stats = loop.run_round();

  EXPECT_EQ(stats.candidates, seed.size());
  EXPECT_EQ(stats.pool_size, pool.size());
  // Nearest link should concentrate security patches well above the 8%
  // base rate.
  EXPECT_GT(stats.ratio, 0.16);
  EXPECT_EQ(loop.wild_security().size(), stats.verified_security);
  EXPECT_EQ(loop.nonsecurity().size(), stats.candidates - stats.verified_security);
  EXPECT_EQ(loop.pool_remaining(), pool.size() - stats.candidates);
  // Oracle effort equals the number of candidates verified.
  EXPECT_EQ(world.oracle.effort(), stats.candidates);
}

TEST(Augment, SecondRoundGrowsLabeledSet) {
  corpus::WorldConfig config;
  config.repos = 4;
  config.nvd_security = 30;
  config.wild_pool = 600;
  config.seed = 13;
  corpus::World world = corpus::build_world(config);

  std::vector<const corpus::CommitRecord*> seed;
  for (const auto& r : world.nvd_security) seed.push_back(&r);
  std::vector<const corpus::CommitRecord*> pool;
  for (const auto& r : world.wild) pool.push_back(&r);

  core::AugmentationLoop loop(seed, world.oracle);
  loop.set_pool(pool);
  const core::RoundStats r1 = loop.run_round();
  const core::RoundStats r2 = loop.run_round();
  EXPECT_EQ(r2.candidates, r1.candidates + r1.verified_security);
  EXPECT_EQ(r2.round, 2u);
}

TEST(Augment, RunStopsAtRatioThreshold) {
  corpus::WorldConfig config;
  config.repos = 3;
  config.nvd_security = 20;
  config.wild_pool = 200;
  config.wild_security_rate = 0.0;  // nothing to find
  config.seed = 17;
  corpus::World world = corpus::build_world(config);

  std::vector<const corpus::CommitRecord*> seed;
  for (const auto& r : world.nvd_security) seed.push_back(&r);
  std::vector<const corpus::CommitRecord*> pool;
  for (const auto& r : world.wild) pool.push_back(&r);

  core::AugmentationLoop loop(seed, world.oracle);
  loop.set_pool(pool);
  core::AugmentOptions opt;
  opt.max_rounds = 5;
  opt.stop_ratio = 0.05;
  const auto rounds = loop.run(opt);
  EXPECT_LT(rounds.size(), 5u);  // stops early: ratio 0 < threshold
}

TEST(Augment, TinyPoolTakesEverything) {
  corpus::WorldConfig config;
  config.repos = 3;
  config.nvd_security = 20;
  config.wild_pool = 10;
  config.seed = 19;
  corpus::World world = corpus::build_world(config);

  std::vector<const corpus::CommitRecord*> seed;
  for (const auto& r : world.nvd_security) seed.push_back(&r);
  std::vector<const corpus::CommitRecord*> pool;
  for (const auto& r : world.wild) pool.push_back(&r);

  core::AugmentationLoop loop(seed, world.oracle);
  loop.set_pool(pool);
  const core::RoundStats stats = loop.run_round();
  EXPECT_EQ(stats.candidates, 10u);
  EXPECT_EQ(loop.pool_remaining(), 0u);
}

// ---------------------------------------------------------- baselines --

TEST(Baselines, BruteForceSamplesWithoutReplacement) {
  const auto sel = core::brute_force_select(100, 30, 1);
  EXPECT_EQ(sel.size(), 30u);
  EXPECT_EQ(std::set<std::size_t>(sel.begin(), sel.end()).size(), 30u);
  EXPECT_EQ(core::brute_force_select(5, 30, 1).size(), 5u);
}

TEST(Baselines, PseudoLabelRanksPlantedPositivesFirst) {
  // Train on well-separated features, then plant obvious positives in a
  // pool of negatives; they must surface in the top-k.
  util::Rng rng(3);
  ml::Dataset train;
  feature::FeatureMatrix pool(40);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x(feature::kFeatureCount);
    const int label = i % 2;
    for (double& v : x) v = rng.normal(label == 1 ? 2.0 : -2.0, 0.5);
    train.push_back(std::move(x), label);
  }
  for (std::size_t i = 0; i < 40; ++i) {
    const bool planted = i < 5;
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      pool[i][j] = rng.normal(planted ? 2.0 : -2.0, 0.5);
    }
  }
  const auto top = core::pseudo_label_select(train, pool, 5, 7);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t idx : top) EXPECT_LT(idx, 5u);
}

TEST(Baselines, UncertaintySelectsOnlyUnanimous) {
  util::Rng rng(5);
  ml::Dataset train;
  for (int i = 0; i < 300; ++i) {
    std::vector<double> x(feature::kFeatureCount);
    const int label = i % 2;
    for (double& v : x) v = rng.normal(label == 1 ? 1.5 : -1.5, 0.4);
    train.push_back(std::move(x), label);
  }
  feature::FeatureMatrix pool(20);
  for (std::size_t i = 0; i < 20; ++i) {
    const bool positive = i < 6;
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      pool[i][j] = rng.normal(positive ? 1.5 : -1.5, 0.4);
    }
  }
  const auto sel = core::uncertainty_select(train, pool, 9);
  for (std::size_t idx : sel) EXPECT_LT(idx, 6u);
  EXPECT_GE(sel.size(), 3u);  // most planted positives survive consensus
}

// ---------------------------------------------------------- categorize --

TEST(Categorize, AgreesWithGroundTruthAboveChance) {
  util::Rng rng(23);
  std::size_t agree = 0;
  const std::size_t total = 240;
  for (std::size_t i = 0; i < total; ++i) {
    const auto types = corpus::security_types();
    const corpus::PatchType type = types[i % types.size()];
    corpus::CommitOptions opt;
    opt.noise_file_prob = 0.0;
    opt.multi_file_prob = 0.0;
    const corpus::CommitRecord record = corpus::make_commit(rng, "r", type, opt);
    agree += (core::categorize(record.patch) == type);
  }
  // Far above the 1/12 chance level; the rule set is approximate, not
  // perfect, so do not demand full agreement.
  EXPECT_GT(agree, total / 3);
}

TEST(Categorize, SpecificShapes) {
  // A pure-move patch.
  diff::Patch move;
  {
    diff::FileDiff fd;
    fd.old_path = fd.new_path = "a.c";
    diff::Hunk h;
    h.old_start = h.new_start = 1;
    h.lines = {{diff::LineKind::kRemoved, "free(p);"},
               {diff::LineKind::kContext, "use(p);"},
               {diff::LineKind::kAdded, "free(p);"}};
    h.old_count = 2;
    h.new_count = 2;
    fd.hunks.push_back(h);
    move.files.push_back(fd);
  }
  EXPECT_EQ(core::categorize(move), corpus::PatchType::kMoveStatement);

  // A NULL-check addition.
  diff::Patch null_check;
  {
    diff::FileDiff fd;
    fd.old_path = fd.new_path = "a.c";
    diff::Hunk h;
    h.old_start = h.new_start = 1;
    h.lines = {{diff::LineKind::kAdded, "if (ptr == NULL)"},
               {diff::LineKind::kAdded, "    return -1;"},
               {diff::LineKind::kContext, "use(ptr);"}};
    h.old_count = 1;
    h.new_count = 3;
    fd.hunks.push_back(h);
    null_check.files.push_back(fd);
  }
  EXPECT_EQ(core::categorize(null_check), corpus::PatchType::kNullCheck);

  // Empty patch.
  EXPECT_EQ(core::categorize(diff::Patch{}), corpus::PatchType::kOther);
}

// ------------------------------------------------------------- facade --

TEST(PatchDbFacade, EndToEndSmallBuild) {
  core::BuildOptions options;
  options.world.repos = 4;
  options.world.nvd_security = 40;
  options.world.wild_pool = 600;
  options.world.seed = 29;
  options.augment.max_rounds = 2;
  options.synthesis.max_per_patch = 2;

  const core::PatchDb db = core::build_patchdb(options);
  EXPECT_GT(db.nvd_security.size(), 20u);
  EXPECT_GT(db.wild_security.size(), 0u);
  EXPECT_GT(db.nonsecurity.size(), 0u);
  EXPECT_GT(db.synthetic.size(), 0u);
  EXPECT_EQ(db.rounds.size(), 2u);
  EXPECT_EQ(db.verification_effort,
            db.rounds[0].candidates + db.rounds[1].candidates);
  EXPECT_EQ(db.natural_security_count(),
            db.nvd_security.size() + db.wild_security.size());
}

}  // namespace
}  // namespace patchdb
