// Tests for the diff module: parsing real-world-shaped git patches
// (including the paper's Listing 1), render round-trips, application,
// inversion, Myers diff properties, and the C/C++ filter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "diff/apply.h"
#include "diff/filter.h"
#include "diff/myers.h"
#include "diff/parse.h"
#include "diff/patch.h"
#include "diff/render.h"
#include "util/rng.h"

namespace patchdb {
namespace {

using diff::ChangeKind;
using diff::LineKind;

// The paper's Listing 1 (CVE-2019-20912 security patch), verbatim shape.
constexpr const char* kListing1 =
    "commit b84c2cab55948a5ee70860779b2640913e3ee1ed\n"
    "Author: Dev <dev@example.org>\n"
    "Date:   Tue Mar 3 10:00:00 2020 +0000\n"
    "\n"
    "    fix stack underflow in bit_write_UMC\n"
    "\n"
    "diff --git a/src/bits.c b/src/bits.c\n"
    "index 014b04fe4..a3692bdc6 100644\n"
    "--- a/src/bits.c\n"
    "+++ b/src/bits.c\n"
    "@@ -953,7 +953,7 @@ bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)\n"
    "     if (byte[i] & 0x7f)\n"
    "       break;\n"
    " \n"
    "-  if (byte[i] & 0x40)\n"
    "+  if (byte[i] & 0x40 && i > 0)\n"
    "     i--;\n"
    "   byte[i] &= 0x7f;\n"
    "   for (j = 4; j >= i; j--)\n";

TEST(Parse, Listing1SecurityPatch) {
  const diff::Patch p = diff::parse_patch(kListing1);
  EXPECT_EQ(p.commit, "b84c2cab55948a5ee70860779b2640913e3ee1ed");
  EXPECT_EQ(p.author, "Dev <dev@example.org>");
  EXPECT_EQ(p.message, "fix stack underflow in bit_write_UMC");
  ASSERT_EQ(p.files.size(), 1u);
  EXPECT_EQ(p.files[0].old_path, "src/bits.c");
  ASSERT_EQ(p.files[0].hunks.size(), 1u);
  const diff::Hunk& h = p.files[0].hunks[0];
  EXPECT_EQ(h.old_start, 953u);
  EXPECT_EQ(h.old_count, 7u);
  EXPECT_EQ(h.new_count, 7u);
  EXPECT_EQ(h.section, "bit_write_UMC (Bit_Chain *dat, BITCODE_UMC val)");
  EXPECT_EQ(h.added_count(), 1u);
  EXPECT_EQ(h.removed_count(), 1u);
  EXPECT_EQ(h.removed_text(), "  if (byte[i] & 0x40)");
  EXPECT_EQ(h.added_text(), "  if (byte[i] & 0x40 && i > 0)");
}

TEST(Parse, MultiFileWithCreateAndDelete) {
  const std::string text =
      "commit 1111111111111111111111111111111111111111\n"
      "\n"
      "    add b, drop c\n"
      "\n"
      "diff --git a/b.c b/b.c\n"
      "new file mode 100644\n"
      "index 0000000..1234567\n"
      "--- /dev/null\n"
      "+++ b/b.c\n"
      "@@ -0,0 +1,2 @@\n"
      "+int x;\n"
      "+int y;\n"
      "diff --git a/c.c b/c.c\n"
      "deleted file mode 100644\n"
      "--- a/c.c\n"
      "+++ /dev/null\n"
      "@@ -1,1 +0,0 @@\n"
      "-int gone;\n";
  const diff::Patch p = diff::parse_patch(text);
  ASSERT_EQ(p.files.size(), 2u);
  EXPECT_EQ(p.files[0].change, ChangeKind::kCreate);
  EXPECT_EQ(p.files[1].change, ChangeKind::kDelete);
  EXPECT_EQ(p.added_lines(), 2u);
  EXPECT_EQ(p.removed_lines(), 1u);
  EXPECT_EQ(p.hunk_count(), 2u);
}

TEST(Parse, NoNewlineMarkerIsSwallowed) {
  const std::string text =
      "commit 2222222222222222222222222222222222222222\n"
      "\n"
      "diff --git a/a.c b/a.c\n"
      "--- a/a.c\n"
      "+++ b/a.c\n"
      "@@ -1,1 +1,1 @@\n"
      "-old\n"
      "\\ No newline at end of file\n"
      "+new\n"
      "\\ No newline at end of file\n";
  const diff::Patch p = diff::parse_patch(text);
  ASSERT_EQ(p.files.size(), 1u);
  ASSERT_EQ(p.files[0].hunks.size(), 1u);
  EXPECT_EQ(p.files[0].hunks[0].lines.size(), 2u);
}

TEST(Parse, BinaryFileProducesNoHunks) {
  const std::string text =
      "commit 3333333333333333333333333333333333333333\n"
      "\n"
      "diff --git a/img.png b/img.png\n"
      "index 1234..5678 100644\n"
      "Binary files a/img.png and b/img.png differ\n";
  const diff::Patch p = diff::parse_patch(text);
  ASSERT_EQ(p.files.size(), 1u);
  EXPECT_TRUE(p.files[0].hunks.empty());
}

TEST(Parse, TruncatedHunkThrows) {
  const std::string text =
      "commit 4444444444444444444444444444444444444444\n"
      "\n"
      "diff --git a/a.c b/a.c\n"
      "--- a/a.c\n"
      "+++ b/a.c\n"
      "@@ -1,3 +1,3 @@\n"
      " only one line\n";
  EXPECT_THROW(diff::parse_patch(text), diff::ParseError);
}

TEST(Parse, GarbageInsideHunkThrows) {
  const std::string text =
      "commit 5555555555555555555555555555555555555555\n"
      "\n"
      "diff --git a/a.c b/a.c\n"
      "--- a/a.c\n"
      "+++ b/a.c\n"
      "@@ -1,2 +1,2 @@\n"
      " fine\n"
      "*garbage marker\n";
  EXPECT_THROW(diff::parse_patch(text), diff::ParseError);
}

TEST(Parse, EmptyInputThrows) {
  EXPECT_THROW(diff::parse_patch("not a patch at all"), diff::ParseError);
}

TEST(Parse, StreamSplitsOnCommitHeaders) {
  std::string text;
  text += kListing1;
  text +=
      "commit aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\n"
      "\n"
      "    second\n"
      "\n"
      "diff --git a/x.c b/x.c\n"
      "--- a/x.c\n"
      "+++ b/x.c\n"
      "@@ -1,1 +1,1 @@\n"
      "-a\n"
      "+b\n";
  const std::vector<diff::Patch> patches = diff::parse_patch_stream(text);
  ASSERT_EQ(patches.size(), 2u);
  EXPECT_EQ(patches[0].commit, "b84c2cab55948a5ee70860779b2640913e3ee1ed");
  EXPECT_EQ(patches[1].message, "second");
}

TEST(Render, RoundTripsListing1) {
  const diff::Patch p = diff::parse_patch(kListing1);
  const diff::Patch again = diff::parse_patch(diff::render_patch(p));
  EXPECT_EQ(p, again);
}

// Property: parse(render(p)) == p for generated patches.
class RenderRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

diff::Patch random_patch(util::Rng& rng) {
  diff::Patch p;
  p.commit = std::string(40, 'a' + static_cast<char>(rng.index(6)));
  p.author = "A <a@b.c>";
  p.date = "Mon Jan 1 00:00:00 2020 +0000";
  p.message = "subject line\n\nbody text";
  const std::size_t n_files = 1 + rng.index(3);
  for (std::size_t f = 0; f < n_files; ++f) {
    diff::FileDiff fd;
    fd.old_path = "dir/file" + std::to_string(f) + ".c";
    fd.new_path = fd.old_path;
    std::size_t line = 1;
    const std::size_t n_hunks = 1 + rng.index(3);
    for (std::size_t h = 0; h < n_hunks; ++h) {
      diff::Hunk hunk;
      hunk.section = "fn_" + std::to_string(h) + "(void)";
      line += rng.index(20);
      hunk.old_start = line;
      hunk.new_start = line;
      const std::size_t n_lines = 1 + rng.index(6);
      for (std::size_t l = 0; l < n_lines; ++l) {
        const std::size_t kind = rng.index(3);
        diff::Line entry;
        entry.text = "x = " + std::to_string(rng.index(100)) + ";";
        entry.kind = kind == 0   ? LineKind::kContext
                     : kind == 1 ? LineKind::kRemoved
                                 : LineKind::kAdded;
        hunk.lines.push_back(entry);
      }
      hunk.old_count = 0;
      hunk.new_count = 0;
      for (const auto& entry : hunk.lines) {
        if (entry.kind != LineKind::kAdded) ++hunk.old_count;
        if (entry.kind != LineKind::kRemoved) ++hunk.new_count;
      }
      if (hunk.old_count == 0 && hunk.new_count == 0) continue;
      line += hunk.old_count + 1;
      fd.hunks.push_back(std::move(hunk));
    }
    if (!fd.hunks.empty()) p.files.push_back(std::move(fd));
  }
  return p;
}

TEST_P(RenderRoundTrip, ParseRenderIdentity) {
  util::Rng rng(GetParam() * 31 + 7);
  const diff::Patch p = random_patch(rng);
  const std::string text = diff::render_patch(p);
  const diff::Patch again = diff::parse_patch(text);
  EXPECT_EQ(p, again) << text;
}

INSTANTIATE_TEST_SUITE_P(RandomPatches, RenderRoundTrip,
                         ::testing::Range<std::uint64_t>(0, 60));

// ------------------------------------------------------------- apply --

TEST(Apply, AppliesSimpleHunk) {
  const std::vector<std::string> old_lines = {"a", "b", "c", "d"};
  diff::FileDiff fd;
  fd.old_path = fd.new_path = "f.c";
  diff::Hunk h;
  h.old_start = 2;
  h.old_count = 2;
  h.new_start = 2;
  h.new_count = 2;
  h.lines = {{LineKind::kContext, "b"},
             {LineKind::kRemoved, "c"},
             {LineKind::kAdded, "C"}};
  fd.hunks.push_back(h);
  const auto result = diff::apply_file_diff(old_lines, fd);
  EXPECT_EQ(result, (std::vector<std::string>{"a", "b", "C", "d"}));
}

TEST(Apply, ContextMismatchThrows) {
  const std::vector<std::string> old_lines = {"a", "DIFFERENT", "c"};
  diff::FileDiff fd;
  diff::Hunk h;
  h.old_start = 2;
  h.old_count = 1;
  h.new_start = 2;
  h.new_count = 1;
  h.lines = {{LineKind::kRemoved, "b"}};
  h.lines.push_back({LineKind::kAdded, "B"});
  h.old_count = 1;
  h.new_count = 1;
  fd.hunks.push_back(h);
  EXPECT_THROW(diff::apply_file_diff(old_lines, fd), diff::ApplyError);
}

TEST(Apply, HunkPastEndThrows) {
  diff::FileDiff fd;
  diff::Hunk h;
  h.old_start = 10;
  h.old_count = 1;
  h.new_start = 10;
  h.new_count = 1;
  h.lines = {{LineKind::kRemoved, "x"}, {LineKind::kAdded, "y"}};
  fd.hunks.push_back(h);
  EXPECT_THROW(diff::apply_file_diff({"a"}, fd), diff::ApplyError);
}

// Property: for random file pairs, apply(diff(a,b), a) == b and
// unapply(diff(a,b), b) == a, at several context widths.
class MyersRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(MyersRoundTrip, DiffApplyIdentity) {
  const auto [seed, context] = GetParam();
  util::Rng rng(seed * 101 + 3);
  auto random_file = [&rng](std::size_t max_lines) {
    std::vector<std::string> lines;
    const std::size_t n = rng.index(max_lines + 1);
    for (std::size_t i = 0; i < n; ++i) {
      lines.push_back("line" + std::to_string(rng.index(12)));
    }
    return lines;
  };
  const std::vector<std::string> a = random_file(30);
  // b = a with random edits, so the diff is realistic rather than total.
  std::vector<std::string> b = a;
  const std::size_t edits = rng.index(6);
  for (std::size_t e = 0; e < edits && !b.empty(); ++e) {
    const std::size_t pos = rng.index(b.size());
    switch (rng.index(3)) {
      case 0: b[pos] = "edited" + std::to_string(rng.index(9)); break;
      case 1: b.erase(b.begin() + static_cast<std::ptrdiff_t>(pos)); break;
      default:
        b.insert(b.begin() + static_cast<std::ptrdiff_t>(pos),
                 "inserted" + std::to_string(rng.index(9)));
        break;
    }
  }

  const diff::FileDiff fd = diff::diff_file("f.c", a, b, {context});
  EXPECT_EQ(diff::apply_file_diff(a, fd), b);
  EXPECT_EQ(diff::unapply_file_diff(b, fd), a);

  // Hunk headers must be internally consistent.
  for (const diff::Hunk& h : fd.hunks) {
    std::size_t old_n = 0;
    std::size_t new_n = 0;
    for (const diff::Line& l : h.lines) {
      if (l.kind != LineKind::kAdded) ++old_n;
      if (l.kind != LineKind::kRemoved) ++new_n;
    }
    EXPECT_EQ(old_n, h.old_count);
    EXPECT_EQ(new_n, h.new_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFiles, MyersRoundTrip,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 40),
                       ::testing::Values<std::size_t>(0, 1, 3)));

TEST(Myers, IdenticalFilesYieldNoHunks) {
  const std::vector<std::string> a = {"x", "y"};
  EXPECT_TRUE(diff::diff_lines(a, a).empty());
}

TEST(Myers, CreateAndDeleteKinds) {
  const std::vector<std::string> content = {"a", "b"};
  EXPECT_EQ(diff::diff_file("f.c", {}, content).change, ChangeKind::kCreate);
  EXPECT_EQ(diff::diff_file("f.c", content, {}).change, ChangeKind::kDelete);
}

TEST(Invert, DoubleInvertIsIdentity) {
  util::Rng rng(77);
  for (int i = 0; i < 20; ++i) {
    std::vector<std::string> a;
    std::vector<std::string> b;
    for (std::size_t j = 0; j < 10; ++j) {
      a.push_back("l" + std::to_string(rng.index(6)));
      b.push_back("l" + std::to_string(rng.index(6)));
    }
    const diff::FileDiff fd = diff::diff_file("f.c", a, b);
    const diff::FileDiff twice = diff::invert(diff::invert(fd));
    EXPECT_EQ(fd.hunks, twice.hunks);
  }
}

// ------------------------------------------------------------- filter --

TEST(Filter, IsCppPath) {
  EXPECT_TRUE(diff::is_cpp_path("a/b.c"));
  EXPECT_TRUE(diff::is_cpp_path("x.hpp"));
  EXPECT_TRUE(diff::is_cpp_path("Y.CC"));
  EXPECT_FALSE(diff::is_cpp_path("build.sh"));
  EXPECT_FALSE(diff::is_cpp_path("ChangeLog"));
  EXPECT_FALSE(diff::is_cpp_path("test.phpt"));
}

TEST(Filter, KeepsOnlyCppFiles) {
  diff::Patch p;
  diff::FileDiff code;
  code.old_path = code.new_path = "a.c";
  code.hunks.emplace_back();
  diff::FileDiff doc;
  doc.old_path = doc.new_path = "README.md";
  doc.hunks.emplace_back();
  p.files = {code, doc};

  const diff::FilterStats stats = diff::keep_cpp_only(p);
  EXPECT_EQ(stats.files_kept, 1u);
  EXPECT_EQ(stats.files_dropped, 1u);
  ASSERT_EQ(stats.dropped_paths.size(), 1u);
  EXPECT_EQ(stats.dropped_paths[0], "README.md");
  ASSERT_EQ(p.files.size(), 1u);
  EXPECT_EQ(p.files[0].new_path, "a.c");
}

// ---------------------------------------------------- fuzz robustness --

// The crawler feeds arbitrary web pages into parse_patch; it must either
// throw ParseError or return a Patch — never crash.
class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, RandomBytesNeverCrash) {
  util::Rng rng(GetParam() * 2654435761ULL + 17);
  std::string garbage;
  const std::size_t n = rng.index(600);
  for (std::size_t i = 0; i < n; ++i) {
    garbage += static_cast<char>(rng.index(256));
  }
  try {
    const diff::Patch p = diff::parse_patch(garbage);
    (void)diff::render_patch(p);  // whatever parsed must render
  } catch (const diff::ParseError&) {
    // acceptable outcome
  }
}

TEST_P(ParserFuzz, MutatedRealPatchNeverCrashes) {
  util::Rng rng(GetParam() * 97 + 3);
  std::string text = kListing1;
  // Flip, delete, and insert random bytes.
  for (int edits = 0; edits < 12 && !text.empty(); ++edits) {
    const std::size_t pos = rng.index(text.size());
    switch (rng.index(3)) {
      case 0: text[pos] = static_cast<char>(rng.index(128)); break;
      case 1: text.erase(pos, 1 + rng.index(4)); break;
      default:
        text.insert(pos, std::string(1 + rng.index(3),
                                     static_cast<char>('!' + rng.index(90))));
        break;
    }
  }
  try {
    const diff::Patch p = diff::parse_patch(text);
    for (const diff::FileDiff& fd : p.files) {
      for (const diff::Hunk& h : fd.hunks) {
        // Internal consistency must hold for whatever was accepted.
        std::size_t old_n = 0;
        std::size_t new_n = 0;
        for (const diff::Line& l : h.lines) {
          if (l.kind != LineKind::kAdded) ++old_n;
          if (l.kind != LineKind::kRemoved) ++new_n;
        }
        EXPECT_EQ(old_n, h.old_count);
        EXPECT_EQ(new_n, h.new_count);
      }
    }
  } catch (const diff::ParseError&) {
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range<std::uint64_t>(0, 60));

TEST(Filter, HasCppChangesRequiresHunks) {
  diff::Patch p;
  diff::FileDiff fd;
  fd.old_path = fd.new_path = "a.c";
  p.files = {fd};
  EXPECT_FALSE(diff::has_cpp_changes(p));  // no hunks
  p.files[0].hunks.emplace_back();
  EXPECT_TRUE(diff::has_cpp_changes(p));
}

}  // namespace
}  // namespace patchdb
