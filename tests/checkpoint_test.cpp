// Crash-safety tests for the checkpointed build: kill-point sweep with
// fault injection (a build interrupted at any round boundary and resumed
// exports bit-identically), torn-write detection, fingerprint guards,
// and fsck corruption coverage.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "core/patchdb.h"
#include "obs/metrics.h"
#include "store/checkpoint.h"
#include "store/export.h"
#include "store/fsck.h"
#include "store/io.h"

namespace patchdb {
namespace {

namespace fs = std::filesystem;

core::BuildOptions small_options() {
  core::BuildOptions options;
  options.world.repos = 4;
  options.world.nvd_security = 20;
  options.world.wild_pool = 300;
  options.world.seed = 77;
  options.augment.max_rounds = 3;
  options.synthesis.max_per_patch = 1;
  return options;
}

/// Every file under `root`, path -> bytes, for bit-identical comparison.
std::map<std::string, std::string> dir_contents(const fs::path& root) {
  std::map<std::string, std::string> out;
  for (const fs::directory_entry& entry :
       fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    out[fs::relative(entry.path(), root).generic_string()] =
        store::read_file(entry.path());
  }
  return out;
}

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("patchdb_ckpt_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    store::clear_fault_plan();
  }
  void TearDown() override {
    store::clear_fault_plan();
    fs::remove_all(root_);
  }

  fs::path dir(const std::string& name) const { return root_ / name; }

  fs::path root_;
};

TEST_F(CheckpointTest, FingerprintCoversWorldNotRoundKnobs) {
  const core::BuildOptions a = small_options();
  core::BuildOptions b = small_options();
  EXPECT_EQ(store::build_fingerprint(a), store::build_fingerprint(b));

  b.world.seed = 78;
  EXPECT_NE(store::build_fingerprint(a), store::build_fingerprint(b));

  b = small_options();
  b.use_streaming_link = true;
  EXPECT_NE(store::build_fingerprint(a), store::build_fingerprint(b));

  // Round-count and synthesis knobs extend a checkpointed run without
  // invalidating it, so they stay out of the fingerprint.
  b = small_options();
  b.augment.max_rounds = 9;
  b.synthesis.max_per_patch = 5;
  EXPECT_EQ(store::build_fingerprint(a), store::build_fingerprint(b));
}

TEST_F(CheckpointTest, CheckpointWriteReadRoundTrip) {
  core::LoopCheckpoint cp;
  cp.rounds_run = 2;
  cp.finished = false;
  cp.oracle_effort = 17;
  for (std::size_t r = 1; r <= 2; ++r) {
    core::RoundStats stats;
    stats.round = r;
    stats.pool_size = 100 - r;
    stats.candidates = 10 + r;
    stats.verified_security = 4 + r;
    stats.ratio = static_cast<double>(stats.verified_security) /
                  static_cast<double>(stats.candidates);
    cp.history.push_back(stats);
  }
  cp.wild_security = {"aabb01", "aabb02"};
  cp.nonsecurity = {"ccdd01"};
  cp.pool = {"eeff03", "eeff01", "eeff02"};  // order must survive verbatim

  store::write_checkpoint(dir("cp"), cp, 0x1234u);
  const core::LoopCheckpoint back = store::read_checkpoint(dir("cp"), 0x1234u);
  EXPECT_EQ(back.rounds_run, cp.rounds_run);
  EXPECT_EQ(back.finished, cp.finished);
  EXPECT_EQ(back.oracle_effort, cp.oracle_effort);
  ASSERT_EQ(back.history.size(), cp.history.size());
  for (std::size_t i = 0; i < cp.history.size(); ++i) {
    EXPECT_EQ(back.history[i].round, cp.history[i].round);
    EXPECT_EQ(back.history[i].pool_size, cp.history[i].pool_size);
    EXPECT_EQ(back.history[i].candidates, cp.history[i].candidates);
    EXPECT_EQ(back.history[i].verified_security, cp.history[i].verified_security);
    EXPECT_DOUBLE_EQ(back.history[i].ratio, cp.history[i].ratio);
  }
  EXPECT_EQ(back.wild_security, cp.wild_security);
  EXPECT_EQ(back.nonsecurity, cp.nonsecurity);
  EXPECT_EQ(back.pool, cp.pool);

  // Wrong fingerprint refuses; kAnyFingerprint (fsck) skips the check.
  EXPECT_THROW(store::read_checkpoint(dir("cp"), 0x9999u), std::runtime_error);
  EXPECT_NO_THROW(store::read_checkpoint(dir("cp"), store::kAnyFingerprint));
}

TEST_F(CheckpointTest, CheckpointedBuildMatchesPlainBuild) {
  core::BuildOptions options = small_options();
  const core::PatchDb plain = core::build_patchdb(options);
  store::export_patchdb(plain, dir("plain"));

  options.checkpoint_dir = dir("ckpt");
  const core::PatchDb checkpointed = store::build_with_checkpoints(options);
  store::export_patchdb(checkpointed, dir("checkpointed"));

  EXPECT_TRUE(fs::exists(store::checkpoint_path(dir("ckpt"))));
  EXPECT_EQ(dir_contents(dir("plain")), dir_contents(dir("checkpointed")));
}

// The acceptance test: interrupt the build at EVERY round boundary (the
// Nth checkpoint write fails as if the process died there), resume with
// --resume semantics, and require the resumed export to be bit-identical
// to an uninterrupted run's.
TEST_F(CheckpointTest, KillPointSweepResumesBitIdentical) {
  core::BuildOptions options = small_options();
  options.checkpoint_dir = dir("baseline_ckpt");
  store::clear_fault_plan();  // reset the write counter
  const core::PatchDb baseline = store::build_with_checkpoints(options);
  const std::size_t round_writes = store::fault_write_count();
  ASSERT_GE(round_writes, 2u) << "world too small to exercise kill points";
  store::export_patchdb(baseline, dir("baseline_out"));
  const std::map<std::string, std::string> want = dir_contents(dir("baseline_out"));

  for (std::size_t k = 0; k < round_writes; ++k) {
    const std::string tag = "kill" + std::to_string(k);
    options.checkpoint_dir = dir(tag + "_ckpt");
    options.resume = false;

    store::FaultPlan plan;
    plan.fail_write = k;
    store::set_fault_plan(plan);
    EXPECT_THROW(store::build_with_checkpoints(options), store::FaultInjected)
        << "kill point " << k;
    store::clear_fault_plan();

    options.resume = true;
    const core::PatchDb resumed = store::build_with_checkpoints(options);
    store::export_patchdb(resumed, dir(tag + "_out"));
    EXPECT_EQ(dir_contents(dir(tag + "_out")), want)
        << "resume after kill point " << k << " diverged";
  }
}

// A crash mid-export must never publish a manifest describing files that
// are not there: the manifest is written last, so re-running the export
// heals the directory.
TEST_F(CheckpointTest, KilledExportLeavesNoManifestAndRetrySucceeds) {
  const core::PatchDb db = core::build_patchdb(small_options());
  store::clear_fault_plan();
  store::export_patchdb(db, dir("good"));
  const std::size_t export_writes = store::fault_write_count();
  ASSERT_GT(export_writes, 2u);

  store::FaultPlan plan;
  plan.fail_write = export_writes / 2;  // die among the patch files
  store::set_fault_plan(plan);
  EXPECT_THROW(store::export_patchdb(db, dir("killed")), store::FaultInjected);
  store::clear_fault_plan();
  EXPECT_FALSE(fs::exists(dir("killed") / "manifest.csv"));

  store::export_patchdb(db, dir("killed"));
  EXPECT_EQ(dir_contents(dir("killed")), dir_contents(dir("good")));
}

TEST_F(CheckpointTest, TornCheckpointRefusesResumeAndFsckFlagsIt) {
  core::BuildOptions options = small_options();
  options.checkpoint_dir = dir("ckpt");

  // The second checkpoint write tears: half the new content lands at the
  // final path, as a non-atomic writer would leave it after a crash.
  store::FaultPlan plan;
  plan.fail_write = 1;
  plan.truncate = true;
  store::set_fault_plan(plan);
  EXPECT_THROW(store::build_with_checkpoints(options), store::FaultInjected);
  store::clear_fault_plan();
  ASSERT_TRUE(fs::exists(store::checkpoint_path(dir("ckpt"))));

  options.resume = true;
  EXPECT_THROW(store::build_with_checkpoints(options), std::runtime_error);

  const store::FsckReport report = store::fsck(dir("ckpt"));
  EXPECT_FALSE(report.ok());
}

TEST_F(CheckpointTest, ResumeWithoutCheckpointStartsFresh) {
  core::BuildOptions options = small_options();
  const core::PatchDb plain = core::build_patchdb(options);
  store::export_patchdb(plain, dir("plain"));

  options.checkpoint_dir = dir("empty_ckpt");
  options.resume = true;  // nothing to resume from
  const core::PatchDb fresh = store::build_with_checkpoints(options);
  store::export_patchdb(fresh, dir("fresh"));
  EXPECT_EQ(dir_contents(dir("plain")), dir_contents(dir("fresh")));
}

TEST_F(CheckpointTest, ResumeRefusesCheckpointFromDifferentBuild) {
  core::BuildOptions options = small_options();
  options.checkpoint_dir = dir("ckpt");
  store::build_with_checkpoints(options);
  ASSERT_TRUE(fs::exists(store::checkpoint_path(dir("ckpt"))));

  options.resume = true;
  options.world.seed = 78;  // different world: its commits don't exist here
  EXPECT_THROW(store::build_with_checkpoints(options), std::runtime_error);
}

TEST_F(CheckpointTest, FsckAcceptsCleanDatasetAndCheckpoint) {
  core::BuildOptions options = small_options();
  options.checkpoint_dir = dir("ckpt");
  const core::PatchDb db = store::build_with_checkpoints(options);
  store::export_patchdb(db, dir("out"));

  const store::FsckReport dataset = store::fsck(dir("out"));
  EXPECT_TRUE(dataset.ok()) << (dataset.errors.empty() ? "" : dataset.errors[0]);
  EXPECT_EQ(dataset.manifest_rows, db.nvd_security.size() +
                                       db.wild_security.size() +
                                       db.nonsecurity.size() + db.synthetic.size());
  // manifest + features + one file per patch.
  EXPECT_EQ(dataset.files_checked, dataset.manifest_rows + 2);
  EXPECT_GT(dataset.bytes_checked, 0u);

  const store::FsckReport checkpoint = store::fsck(dir("ckpt"));
  EXPECT_TRUE(checkpoint.ok())
      << (checkpoint.errors.empty() ? "" : checkpoint.errors[0]);

  fs::create_directories(dir("neither"));
  const store::FsckReport neither = store::fsck(dir("neither"));
  ASSERT_EQ(neither.errors.size(), 1u);
}

TEST_F(CheckpointTest, FsckFlagsFlippedBytesTruncationAndOrphans) {
  const core::PatchDb db = core::build_patchdb(small_options());
  store::export_patchdb(db, dir("out"));
  ASSERT_TRUE(store::fsck(dir("out")).ok());

  // Flip one bit inside a patch file: content checksum catches it.
  const fs::path victim =
      dir("out") / "nvd" / (db.nvd_security[0].patch.commit + ".patch");
  const std::string original = store::read_file(victim);
  std::string corrupt = original;
  corrupt[corrupt.size() / 2] ^= 0x01;
  std::ofstream(victim, std::ios::binary) << corrupt;
  store::FsckReport report = store::fsck(dir("out"));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].find("checksum mismatch"), std::string::npos);
  std::ofstream(victim, std::ios::binary) << original;

  // Truncate the patch file instead.
  std::ofstream(victim, std::ios::binary)
      << original.substr(0, original.size() / 2);
  report = store::fsck(dir("out"));
  EXPECT_FALSE(report.ok());
  std::ofstream(victim, std::ios::binary) << original;

  // Flip a byte in the sealed manifest: the trailer catches it.
  const fs::path manifest = dir("out") / "manifest.csv";
  const std::string good_manifest = store::read_file(manifest);
  std::string bad_manifest = good_manifest;
  bad_manifest[bad_manifest.size() / 3] ^= 0x01;
  std::ofstream(manifest, std::ios::binary) << bad_manifest;
  report = store::fsck(dir("out"));
  EXPECT_FALSE(report.ok());
  std::ofstream(manifest, std::ios::binary) << good_manifest;

  // A patch file the manifest does not describe is an orphan.
  std::ofstream(dir("out") / "wild" / "0123456789abcdef.patch",
                std::ios::binary)
      << "stray\n";
  report = store::fsck(dir("out"));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.errors[0].find("orphaned"), std::string::npos);
}

TEST_F(CheckpointTest, StoreCountersTrackWritesAndResumes) {
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* previous = obs::install_registry(&registry);

  core::BuildOptions options = small_options();
  options.checkpoint_dir = dir("ckpt");
  store::FaultPlan plan;
  plan.fail_write = 1;
  store::set_fault_plan(plan);
  EXPECT_THROW(store::build_with_checkpoints(options), store::FaultInjected);
  store::clear_fault_plan();

  options.resume = true;
  const core::PatchDb db = store::build_with_checkpoints(options);
  store::export_patchdb(db, dir("out"));
  obs::install_registry(previous);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("store.resumes"), 1u);
  EXPECT_GT(snap.counter("store.writes"), 0u);
  EXPECT_GT(snap.counter("store.bytes"), snap.counter("store.writes"));
  EXPECT_EQ(snap.counter("store.checksum_failures"), 0u);
}

}  // namespace
}  // namespace patchdb
