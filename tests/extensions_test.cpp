// Tests for the dataset-tooling extensions: one-vs-rest multi-class
// classification, near-duplicate detection, and fuzzy patch application.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/dedupe.h"
#include "core/presence.h"
#include "corpus/gitlog.h"
#include "corpus/repo.h"
#include "diff/parse.h"
#include "diff/apply.h"
#include "diff/fuzz_apply.h"
#include "diff/myers.h"
#include "feature/features.h"
#include "ml/forest.h"
#include "ml/multiclass.h"
#include "util/rng.h"

namespace patchdb {
namespace {

// --------------------------------------------------------- multiclass --

ml::MultiDataset three_blobs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::MultiDataset data;
  data.classes = 3;
  const double centers[3][2] = {{-4, 0}, {4, 0}, {0, 5}};
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 3);
    data.rows.push_back({rng.normal(centers[label][0], 1.0),
                         rng.normal(centers[label][1], 1.0)});
    data.labels.push_back(label);
  }
  return data;
}

TEST(OneVsRest, SeparatesThreeBlobs) {
  const ml::MultiDataset train = three_blobs(300, 1);
  const ml::MultiDataset test = three_blobs(120, 2);
  ml::OneVsRest ovr([] { return std::make_unique<ml::RandomForest>(); });
  ovr.fit(train, 7);
  EXPECT_EQ(ovr.classes(), 3);

  std::vector<int> predicted;
  for (const auto& row : test.rows) predicted.push_back(ovr.predict(row));
  const ml::MultiMetrics m = ml::multi_metrics(test.labels, predicted, 3);
  EXPECT_GT(m.accuracy, 0.92);
  for (double recall : m.per_class_recall) EXPECT_GT(recall, 0.85);
}

TEST(OneVsRest, ScoresHaveOnePerClass) {
  const ml::MultiDataset train = three_blobs(90, 3);
  ml::OneVsRest ovr([] { return std::make_unique<ml::RandomForest>(); });
  ovr.fit(train, 1);
  const auto scores = ovr.predict_scores(train.rows[0]);
  EXPECT_EQ(scores.size(), 3u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(OneVsRest, RejectsBadLabels) {
  ml::MultiDataset bad;
  bad.classes = 2;
  bad.rows = {{1.0}};
  bad.labels = {5};
  ml::OneVsRest ovr([] { return std::make_unique<ml::RandomForest>(); });
  EXPECT_THROW(ovr.fit(bad, 1), std::invalid_argument);
  bad.classes = 0;
  bad.labels = {0};
  EXPECT_THROW(ovr.fit(bad, 1), std::invalid_argument);
}

TEST(MultiMetrics, HandComputedValues) {
  const std::vector<int> truth = {0, 0, 1, 1, 2, 2};
  const std::vector<int> predicted = {0, 1, 1, 1, 2, 0};
  const ml::MultiMetrics m = ml::multi_metrics(truth, predicted, 3);
  EXPECT_NEAR(m.accuracy, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(m.per_class_recall[0], 0.5, 1e-12);
  EXPECT_NEAR(m.per_class_recall[1], 1.0, 1e-12);
  EXPECT_NEAR(m.per_class_recall[2], 0.5, 1e-12);
  EXPECT_EQ(m.support[0], 2u);
}

// A realistic use: classify generated patches into their Table V types
// from Table I features. Types with distinct syntactic signatures must
// be recoverable well above the 1/12 chance level.
TEST(OneVsRest, PatchTypeClassificationBeatsChance) {
  util::Rng rng(11);
  ml::MultiDataset data;
  data.classes = static_cast<int>(corpus::kSecurityTypeCount);
  for (int rep = 0; rep < 40; ++rep) {
    for (std::size_t t = 0; t < corpus::kSecurityTypeCount; ++t) {
      const auto record =
          corpus::make_commit(rng, "r", corpus::security_types()[t]);
      const feature::FeatureVector v = feature::extract(record.patch);
      data.rows.emplace_back(v.begin(), v.end());
      data.labels.push_back(static_cast<int>(t));
    }
  }
  // 80/20 split by stride.
  ml::MultiDataset train;
  ml::MultiDataset test;
  train.classes = test.classes = data.classes;
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto& dst = (i % 5 == 0) ? test : train;
    dst.rows.push_back(data.rows[i]);
    dst.labels.push_back(data.labels[i]);
  }
  ml::OneVsRest ovr([] { return std::make_unique<ml::RandomForest>(); });
  ovr.fit(train, 3);
  std::vector<int> predicted;
  for (const auto& row : test.rows) predicted.push_back(ovr.predict(row));
  const ml::MultiMetrics m =
      ml::multi_metrics(test.labels, predicted, data.classes);
  EXPECT_GT(m.accuracy, 0.4);  // chance = 1/12 ~ 0.083
}

// ------------------------------------------------------------- dedupe --

diff::Patch patch_from_lines(const std::vector<std::string>& before,
                             const std::vector<std::string>& after,
                             const std::string& path) {
  diff::Patch p;
  p.commit = std::string(40, 'e');
  p.files.push_back(diff::diff_file(path, before, after));
  return p;
}

TEST(Dedupe, RenamedCloneHasSameFingerprint) {
  const diff::Patch original = patch_from_lines(
      {"int n = x;", "use(n);"}, {"int n = x;", "if (n > 0)", "    use(n);"},
      "a/first.c");
  const diff::Patch backport = patch_from_lines(
      {"int count = value;", "use(count);"},
      {"int count = value;", "if (count > 0)", "    use(count);"},
      "other/dir/second.c");
  EXPECT_EQ(core::change_fingerprint(original),
            core::change_fingerprint(backport));
}

TEST(Dedupe, StructuralChangeChangesFingerprint) {
  const diff::Patch a = patch_from_lines({"x = 1;"}, {"x = 2;"}, "f.c");
  const diff::Patch b = patch_from_lines({"x = 1;"}, {"x = 2;", "y = 3;"}, "f.c");
  EXPECT_NE(core::change_fingerprint(a), core::change_fingerprint(b));
}

TEST(Dedupe, KeepsFirstOccurrence) {
  std::vector<diff::Patch> patches;
  patches.push_back(patch_from_lines({"a;"}, {"b;"}, "1.c"));
  patches.push_back(patch_from_lines({"q;"}, {"r;", "s;"}, "2.c"));
  patches.push_back(patch_from_lines({"a;"}, {"b;"}, "3.c"));  // dup of [0]
  const core::DedupeResult result = core::dedupe(patches);
  EXPECT_EQ(result.kept, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(result.duplicate_of[2], 0u);
  EXPECT_EQ(result.duplicates(), 1u);
}

TEST(Dedupe, CollapsesTemplateClonesButNotAcrossTypes) {
  // Same-template commits differ only in identifier names — structurally
  // they ARE backport-style clones, and the fingerprint must group them
  // into few classes...
  util::Rng rng(21);
  std::vector<diff::Patch> redesigns;
  for (int i = 0; i < 60; ++i) {
    redesigns.push_back(
        corpus::make_commit(rng, "r", corpus::PatchType::kRedesign).patch);
  }
  const core::DedupeResult same_type = core::dedupe(redesigns);
  EXPECT_LT(same_type.kept.size(), 30u);
  EXPECT_GE(same_type.kept.size(), 2u);

  // ...while commits of different change shapes must not collapse
  // together: a mixed set keeps at least one representative per type.
  std::vector<diff::Patch> mixed;
  for (corpus::PatchType type : corpus::security_types()) {
    mixed.push_back(corpus::make_commit(rng, "r", type).patch);
  }
  const core::DedupeResult across = core::dedupe(mixed);
  EXPECT_GE(across.kept.size(), corpus::kSecurityTypeCount - 3);
}

TEST(Dedupe, AlphaRenamingDistinguishesIdentifierStructure) {
  // f(a, a) vs f(a, b): plain abstraction sees FUNC ( ID , ID ) for
  // both; the alpha fingerprint must keep them apart.
  const diff::Patch aa = patch_from_lines({"x;"}, {"f(a, a);"}, "1.c");
  const diff::Patch ab = patch_from_lines({"x;"}, {"f(a, b);"}, "2.c");
  EXPECT_NE(core::change_fingerprint(aa), core::change_fingerprint(ab));
}

// --------------------------------------------------------- fuzz apply --

std::vector<std::string> numbered(std::size_t n, const std::string& prefix) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

TEST(FuzzApply, CleanPatchAppliesCleanly) {
  const std::vector<std::string> before = numbered(20, "line");
  std::vector<std::string> after = before;
  after[10] = "edited";
  const diff::FileDiff fd = diff::diff_file("f.c", before, after);

  diff::FuzzReport report;
  const auto result = diff::apply_with_fuzz(before, fd, report);
  EXPECT_EQ(result, after);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.hunks_applied, fd.hunks.size());
}

TEST(FuzzApply, OffsetHunkIsRelocated) {
  const std::vector<std::string> before = numbered(30, "line");
  std::vector<std::string> after = before;
  after[20] = "edited";
  const diff::FileDiff fd = diff::diff_file("f.c", before, after);

  // Target file gained 5 lines at the top: stated positions are stale.
  std::vector<std::string> shifted = numbered(5, "new_top");
  shifted.insert(shifted.end(), before.begin(), before.end());

  diff::FuzzReport report;
  const auto result = diff::apply_with_fuzz(shifted, fd, report);
  EXPECT_EQ(report.hunks_failed, 0u);
  EXPECT_GT(report.hunks_offset, 0u);
  EXPECT_EQ(result[25], "edited");  // 20 + 5 shift
}

TEST(FuzzApply, ChangedEdgeContextNeedsFuzz) {
  const std::vector<std::string> before = numbered(20, "line");
  std::vector<std::string> after = before;
  after[10] = "edited";
  const diff::FileDiff fd = diff::diff_file("f.c", before, after);

  // The outermost context line of the hunk differs in the target.
  std::vector<std::string> target = before;
  target[7] = "locally modified";  // hunk context spans 7..13 (3 lines around 10)

  diff::FuzzReport report;
  const auto result = diff::apply_with_fuzz(target, fd, report);
  EXPECT_EQ(report.hunks_failed, 0u);
  EXPECT_GT(report.hunks_fuzzed, 0u);
  EXPECT_EQ(result[10], "edited");
  EXPECT_EQ(result[7], "locally modified");  // local change preserved
}

TEST(FuzzApply, HopelessHunkIsSkippedNotFatal) {
  const std::vector<std::string> before = numbered(10, "line");
  std::vector<std::string> after = before;
  after[5] = "edited";
  const diff::FileDiff fd = diff::diff_file("f.c", before, after);

  const std::vector<std::string> unrelated = numbered(10, "other");
  diff::FuzzReport report;
  const auto result = diff::apply_with_fuzz(unrelated, fd, report);
  EXPECT_EQ(report.hunks_failed, fd.hunks.size());
  EXPECT_EQ(result, unrelated);  // untouched
}

TEST(FuzzApply, MultiHunkDriftAccumulates) {
  const std::vector<std::string> before = numbered(60, "line");
  std::vector<std::string> after = before;
  after.insert(after.begin() + 10, {"added_a", "added_b", "added_c"});
  after[45] = "edited_tail";  // index in the grown file
  const diff::FileDiff fd = diff::diff_file("f.c", before, after);
  ASSERT_GE(fd.hunks.size(), 2u);

  diff::FuzzReport report;
  const auto result = diff::apply_with_fuzz(before, fd, report);
  EXPECT_EQ(result, after);
  EXPECT_TRUE(report.clean());
}

// ----------------------------------------------------------- presence --

corpus::CommitRecord security_record_with_snapshot(std::uint64_t seed) {
  util::Rng rng(seed);
  corpus::CommitOptions opt;
  opt.keep_snapshots = true;
  opt.noise_file_prob = 0.0;
  opt.multi_file_prob = 0.0;
  return corpus::make_commit(rng, "down", corpus::PatchType::kBoundCheck, opt);
}

TEST(Presence, DetectsPatchedAndVulnerable) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const corpus::CommitRecord record = security_record_with_snapshot(seed);
    const diff::FileDiff& fd = record.patch.files.front();
    const corpus::FileSnapshot& snap = record.snapshots.front();

    const core::PresenceReport on_before = core::test_presence(snap.before, fd);
    EXPECT_EQ(on_before.verdict, core::Presence::kVulnerable) << "seed " << seed;

    const core::PresenceReport on_after = core::test_presence(snap.after, fd);
    EXPECT_EQ(on_after.verdict, core::Presence::kPatched) << "seed " << seed;
  }
}

TEST(Presence, SurvivesDownstreamDrift) {
  const corpus::CommitRecord record = security_record_with_snapshot(3);
  const diff::FileDiff& fd = record.patch.files.front();
  // Downstream added 6 unrelated lines at the top of the file.
  std::vector<std::string> drifted = {"// vendor header", "// v", "// v",
                                      "// v", "// v", "// v"};
  drifted.insert(drifted.end(), record.snapshots.front().after.begin(),
                 record.snapshots.front().after.end());
  const core::PresenceReport report = core::test_presence(drifted, fd);
  EXPECT_EQ(report.verdict, core::Presence::kPatched);
}

TEST(Presence, UnrelatedFileIsUnknown) {
  const corpus::CommitRecord record = security_record_with_snapshot(5);
  const std::vector<std::string> unrelated = {"completely", "different", "file"};
  const core::PresenceReport report =
      core::test_presence(unrelated, record.patch.files.front());
  EXPECT_EQ(report.verdict, core::Presence::kUnknown);
}

TEST(Presence, NamesAreStable) {
  EXPECT_STREQ(core::presence_name(core::Presence::kPatched), "patched");
  EXPECT_STREQ(core::presence_name(core::Presence::kVulnerable), "vulnerable");
}

// -------------------------------------------------------------- gitlog --

TEST(GitLog, RoundTripsThroughStreamParser) {
  util::Rng rng(31);
  std::vector<corpus::CommitRecord> records;
  for (int i = 0; i < 12; ++i) {
    records.push_back(corpus::make_commit(
        rng, "histrepo",
        i % 3 == 0 ? corpus::PatchType::kNullCheck : corpus::PatchType::kRefactor));
  }
  const std::string log = corpus::render_git_log(records);
  const std::vector<diff::Patch> parsed = diff::parse_patch_stream(log);
  ASSERT_EQ(parsed.size(), records.size());
  // Newest first: parsed[0] is the last record.
  EXPECT_EQ(parsed.front().commit, records.back().patch.commit);
  EXPECT_EQ(parsed.back().commit, records.front().patch.commit);
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i], records[records.size() - 1 - i].patch);
  }
}

}  // namespace
}  // namespace patchdb
