// Tests for the text-mining baseline (message tokenization, keyword
// rule, multinomial naive Bayes) and the vulnerable-clone scanner.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/clone.h"
#include "corpus/repo.h"
#include "diff/myers.h"
#include "text/textmine.h"
#include "util/rng.h"

namespace patchdb {
namespace {

// ---------------------------------------------------------------- text --

TEST(TextWords, TokenizesLowercaseAlnum) {
  const auto w = text::words("Fix CVE-2019-20912: stack underflow!");
  const std::vector<std::string> expected = {"fix", "cve", "2019", "20912",
                                             "stack", "underflow"};
  EXPECT_EQ(w, expected);
}

TEST(TextWords, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(text::words("").empty());
  EXPECT_TRUE(text::words("!!! --- ...").empty());
}

TEST(Keywords, MatchesSecurityVocabulary) {
  EXPECT_TRUE(text::mentions_security("Fix buffer OVERFLOW in parser"));
  EXPECT_TRUE(text::mentions_security("fixes CVE-2020-1234"));
  EXPECT_TRUE(text::mentions_security("prevent use-after-free"));
  EXPECT_FALSE(text::mentions_security("rename variable for clarity"));
  EXPECT_FALSE(text::mentions_security("add tracing hooks"));
}

TEST(TextNaiveBayes, LearnsSimpleSeparation) {
  std::vector<std::string> messages;
  std::vector<int> labels;
  for (int i = 0; i < 30; ++i) {
    messages.push_back("fix overflow in parser module " + std::to_string(i));
    labels.push_back(1);
    messages.push_back("add new feature to renderer " + std::to_string(i));
    labels.push_back(0);
  }
  text::TextNaiveBayes nb;
  nb.fit(messages, labels);
  EXPECT_GT(nb.vocabulary_size(), 4u);
  EXPECT_EQ(nb.predict("overflow fix in the parser"), 1);
  EXPECT_EQ(nb.predict("new renderer feature"), 0);
}

TEST(TextNaiveBayes, UnknownWordsAreNeutral) {
  std::vector<std::string> messages = {"alpha alpha", "beta beta"};
  std::vector<int> labels = {1, 0};
  text::TextNaiveBayes nb(1);
  nb.fit(messages, labels);
  // A message of entirely novel words must fall back to the prior (0.5
  // here), not be swung by <unk> asymmetry.
  EXPECT_NEAR(nb.predict_score("zeta theta omega"), 0.5, 0.05);
}

TEST(TextNaiveBayes, UnfittedReturnsNeutral) {
  const text::TextNaiveBayes nb;
  EXPECT_DOUBLE_EQ(nb.predict_score("anything"), 0.5);
}

TEST(TextNaiveBayes, SizeMismatchThrows) {
  text::TextNaiveBayes nb;
  const std::vector<std::string> messages = {"a"};
  const std::vector<int> labels = {1, 0};
  EXPECT_THROW(nb.fit(messages, labels), std::invalid_argument);
}

TEST(Corpus, EuphemizedSecurityCommitsLookNeutral) {
  util::Rng rng(9);
  corpus::CommitOptions opt;
  opt.euphemize_prob = 1.0;
  std::size_t flagged = 0;
  for (int i = 0; i < 40; ++i) {
    const auto record =
        corpus::make_commit(rng, "r", corpus::PatchType::kBoundCheck, opt);
    flagged += text::mentions_security(record.patch.message);
  }
  EXPECT_EQ(flagged, 0u);  // euphemisms never trip the keyword rule
}

// --------------------------------------------------------------- clone --

const std::vector<std::string> kVulnerable = {
    "int idx = hdr->len;",
    "char buf[32];",
    "memcpy(buf, hdr->data, idx);",
    "return buf[0];",
};

TEST(CloneScanner, FindsExactClone) {
  core::CloneScanner scanner;
  ASSERT_TRUE(scanner.add_signature("CVE-1", kVulnerable));
  std::vector<std::string> target = {"void f(void)", "{"};
  target.insert(target.end(), kVulnerable.begin(), kVulnerable.end());
  target.push_back("}");
  const auto matches = scanner.scan(target);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].origin, "CVE-1");
  EXPECT_EQ(matches[0].line, 3u);
}

TEST(CloneScanner, FindsRenamedClone) {
  core::CloneScanner scanner;
  ASSERT_TRUE(scanner.add_signature("CVE-1", kVulnerable));
  const std::vector<std::string> renamed = {
      "prelude();",
      "int cursor = pkt->size;",
      "char scratch[32];",
      "memcpy(scratch, pkt->payload, cursor);",
      "return scratch[0];",
  };
  const auto matches = scanner.scan(renamed);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].line, 2u);
}

TEST(CloneScanner, StructuralChangeDoesNotMatch) {
  core::CloneScanner scanner;
  ASSERT_TRUE(scanner.add_signature("CVE-1", kVulnerable));
  // The patched form (a guard inserted) must NOT match the vulnerable
  // signature.
  std::vector<std::string> patched = kVulnerable;
  patched.insert(patched.begin() + 2, "if (idx > 32) return -1;");
  EXPECT_TRUE(scanner.scan(patched).empty());
}

TEST(CloneScanner, TinySignaturesRejected) {
  core::CloneScanner scanner(/*min_lines=*/3);
  EXPECT_FALSE(scanner.add_signature("x", {"return 0;"}));
  EXPECT_EQ(scanner.signature_count(), 0u);
}

TEST(CloneScanner, BlankAndBraceLinesIgnored) {
  core::CloneScanner scanner;
  ASSERT_TRUE(scanner.add_signature("CVE-1", kVulnerable));
  // Same code, different blank-line/brace layout.
  const std::vector<std::string> spaced = {
      "int idx = hdr->len;", "",      "char buf[32];",
      "{",                   "memcpy(buf, hdr->data, idx);",
      "}",                   "return buf[0];",
  };
  EXPECT_EQ(scanner.scan(spaced).size(), 1u);
}

TEST(CloneScanner, AddPatchBuildsSignaturesFromPreImages) {
  // A patch removing vulnerable lines yields a scannable signature.
  std::vector<std::string> before = {"void g(void) {"};
  before.insert(before.end(), kVulnerable.begin(), kVulnerable.end());
  before.push_back("}");
  std::vector<std::string> after = before;
  after[3] = "memcpy(buf, hdr->data, idx > 32 ? 32 : idx);";

  diff::Patch patch;
  patch.commit = std::string(40, 'c');
  patch.files.push_back(diff::diff_file("f.c", before, after));

  core::CloneScanner scanner;
  EXPECT_GE(scanner.add_patch(patch), 1u);
  const auto matches = scanner.scan(before);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].origin, patch.commit);
  // The fixed file must not match.
  EXPECT_TRUE(scanner.scan(after).empty());
}

TEST(CloneScanner, PureAdditionPatchYieldsNoSignature) {
  diff::Patch patch;
  patch.commit = std::string(40, 'd');
  diff::FileDiff fd;
  fd.old_path = fd.new_path = "f.c";
  diff::Hunk h;
  h.old_start = 1;
  h.old_count = 1;
  h.new_start = 1;
  h.new_count = 2;
  h.lines = {{diff::LineKind::kAdded, "if (p == NULL) return;"},
             {diff::LineKind::kContext, "use(p);"}};
  fd.hunks.push_back(h);
  patch.files.push_back(fd);

  core::CloneScanner scanner;
  EXPECT_EQ(scanner.add_patch(patch), 0u);
}

}  // namespace
}  // namespace patchdb
