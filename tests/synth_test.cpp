// Tests for the oversampling module: the eight Fig. 5 variants and the
// end-to-end patch synthesizer.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "corpus/repo.h"
#include "diff/apply.h"
#include "diff/parse.h"
#include "diff/render.h"
#include "lang/parser.h"
#include "synth/synthesize.h"
#include "synth/variants.h"
#include "util/rng.h"

namespace patchdb {
namespace {

using synth::IfVariant;

// ----------------------------------------------------------- variants --

class VariantRewriteTest : public ::testing::TestWithParam<IfVariant> {};

TEST_P(VariantRewriteTest, RewritesSingleLineIf) {
  std::vector<std::string> lines = {
      "void f(void) {",
      "    if (x > 0) {",
      "        y();",
      "    }",
      "}",
  };
  ASSERT_TRUE(synth::apply_variant(lines, 2, "x > 0", GetParam()));

  // The original condition must still appear somewhere (all variants
  // preserve the predicate), the file must still parse, and the
  // controlled statement must still be guarded by an if.
  std::string joined;
  for (const std::string& l : lines) joined += l + "\n";
  EXPECT_NE(joined.find("x > 0"), std::string::npos);
  EXPECT_NE(joined.find("_SYS_"), std::string::npos);

  const lang::ParsedFile parsed = lang::parse_file(lines);
  EXPECT_GE(parsed.ifs.size(), 1u);
  EXPECT_EQ(parsed.functions.size(), 1u);

  // Indentation of the new if head matches the original.
  bool found_guarded = false;
  for (const std::string& l : lines) {
    if (l.rfind("    if", 0) == 0 && l.find("{") != std::string::npos) {
      found_guarded = true;
    }
  }
  EXPECT_TRUE(found_guarded);
}

INSTANTIATE_TEST_SUITE_P(AllEight, VariantRewriteTest,
                         ::testing::ValuesIn(synth::all_variants()),
                         [](const ::testing::TestParamInfo<IfVariant>& info) {
                           return "v" + std::to_string(static_cast<int>(info.param));
                         });

TEST(Variants, SetupLinesMatchFig5Shapes) {
  const synth::VariantRewrite r1 =
      synth::rewrite_if(IfVariant::kOrZero, "a == b", "  ");
  ASSERT_EQ(r1.setup.size(), 1u);
  EXPECT_EQ(r1.setup[0], "  const int _SYS_ZERO = 0;");
  EXPECT_EQ(r1.new_if_head, "  if (_SYS_ZERO || (a == b))");

  const synth::VariantRewrite r6 =
      synth::rewrite_if(IfVariant::kFlagClear, "p != NULL", "");
  ASSERT_EQ(r6.setup.size(), 2u);
  EXPECT_EQ(r6.setup[0], "int _SYS_VAL = 1;");
  EXPECT_EQ(r6.setup[1], "if (p != NULL) { _SYS_VAL = 0; }");
  EXPECT_EQ(r6.new_if_head, "if (!_SYS_VAL)");
}

TEST(Variants, RejectsNonIfLines) {
  std::vector<std::string> lines = {"int x = 1;"};
  EXPECT_FALSE(synth::apply_variant(lines, 1, "x", IfVariant::kOrZero));
  EXPECT_EQ(lines.size(), 1u);  // untouched
  EXPECT_FALSE(synth::apply_variant(lines, 0, "x", IfVariant::kOrZero));
  EXPECT_FALSE(synth::apply_variant(lines, 9, "x", IfVariant::kOrZero));
}

TEST(Variants, KeepsTrailingBrace) {
  std::vector<std::string> lines = {"if (a) {", "  b();", "}"};
  ASSERT_TRUE(synth::apply_variant(lines, 1, "a", IfVariant::kAndOne));
  // New head keeps the opening brace on the same line.
  bool brace_head = false;
  for (const std::string& l : lines) {
    if (l.find("_SYS_ONE") != std::string::npos &&
        l.find("{") != std::string::npos) {
      brace_head = true;
    }
  }
  EXPECT_TRUE(brace_head);
}

TEST(Variants, AllNamesDistinct) {
  std::set<std::string> names;
  for (IfVariant v : synth::all_variants()) names.insert(synth::variant_name(v));
  EXPECT_EQ(names.size(), synth::kVariantCount);
}

// --------------------------------------------------------- synthesize --

corpus::CommitRecord record_with_snapshots(std::uint64_t seed,
                                           corpus::PatchType type) {
  util::Rng rng(seed);
  corpus::CommitOptions opt;
  opt.keep_snapshots = true;
  opt.noise_file_prob = 0.0;
  opt.multi_file_prob = 0.0;
  return corpus::make_commit(rng, "repo", type, opt);
}

TEST(Synthesize, ProducesVariantsForCheckPatches) {
  // Not every bound-check patch touches an `if` (some strengthen a loop
  // condition — the paper reports ~70% of security patches involve ifs),
  // so scan seeds until variants appear and then validate them.
  synth::SynthesisOptions opt;
  opt.max_per_patch = 0;  // unlimited
  std::vector<synth::SyntheticPatch> synthetic;
  corpus::CommitRecord record;
  for (std::uint64_t seed = 0; seed < 16 && synthetic.empty(); ++seed) {
    record = record_with_snapshots(seed, corpus::PatchType::kBoundCheck);
    synthetic = synth::synthesize(record, opt, 1);
  }
  ASSERT_FALSE(synthetic.empty());

  for (const synth::SyntheticPatch& s : synthetic) {
    EXPECT_EQ(s.origin_commit, record.patch.commit);
    EXPECT_NE(s.patch.commit, record.patch.commit);
    EXPECT_TRUE(s.truth.is_security);
    EXPECT_FALSE(s.patch.files.empty());
    // The synthetic patch must differ from the natural one.
    EXPECT_NE(diff::render_file_diffs(s.patch.files),
              diff::render_file_diffs(record.patch.files));
    // And it must contain the injected guard.
    EXPECT_NE(diff::render_file_diffs(s.patch.files).find("_SYS_"),
              std::string::npos);
  }
}

TEST(Synthesize, ModifiedBeforeAndAfterBothOccur) {
  synth::SynthesisOptions opt;
  opt.max_per_patch = 0;
  bool any_before = false;
  bool any_after = false;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const corpus::CommitRecord record =
        record_with_snapshots(seed, corpus::PatchType::kSanityCheck);
    for (const auto& s : synth::synthesize(record, opt, seed)) {
      (s.modified_after ? any_after : any_before) = true;
    }
  }
  EXPECT_TRUE(any_before);
  EXPECT_TRUE(any_after);
}

TEST(Synthesize, AfterModificationAppliesOntoOriginalBefore) {
  // When AFTER was modified, the synthetic diff must apply cleanly to the
  // ORIGINAL before-version (paper: original patch + extra modification).
  const corpus::CommitRecord record =
      record_with_snapshots(7, corpus::PatchType::kNullCheck);
  synth::SynthesisOptions opt;
  opt.max_per_patch = 0;
  for (const auto& s : synth::synthesize(record, opt, 2)) {
    for (const diff::FileDiff& fd : s.patch.files) {
      const corpus::FileSnapshot* snap = nullptr;
      for (const auto& candidate : record.snapshots) {
        if (candidate.path == fd.new_path) snap = &candidate;
      }
      ASSERT_NE(snap, nullptr);
      if (s.modified_after) {
        // Applies onto the original BEFORE.
        EXPECT_NO_THROW(diff::apply_file_diff(snap->before, fd));
      } else {
        // Un-applies onto the original AFTER.
        EXPECT_NO_THROW(diff::unapply_file_diff(snap->after, fd));
      }
    }
  }
}

TEST(Synthesize, RespectsPerPatchCap) {
  const corpus::CommitRecord record =
      record_with_snapshots(11, corpus::PatchType::kBoundCheck);
  synth::SynthesisOptions opt;
  opt.max_per_patch = 2;
  EXPECT_LE(synth::synthesize(record, opt, 1).size(), 2u);
}

TEST(Synthesize, NoSnapshotsYieldsNothing) {
  util::Rng rng(13);
  const corpus::CommitRecord record =
      corpus::make_commit(rng, "r", corpus::PatchType::kBoundCheck);  // no snaps
  EXPECT_TRUE(synth::synthesize(record, {}, 1).empty());
}

TEST(Synthesize, NonSecurityOriginStaysNonSecurity) {
  const corpus::CommitRecord record =
      record_with_snapshots(17, corpus::PatchType::kLogicBugFix);
  synth::SynthesisOptions opt;
  opt.max_per_patch = 0;
  for (const auto& s : synth::synthesize(record, opt, 3)) {
    EXPECT_FALSE(s.truth.is_security);
  }
}

TEST(Synthesize, BatchMatchesPerRecordCounts) {
  std::vector<corpus::CommitRecord> records;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    records.push_back(record_with_snapshots(seed + 40, corpus::PatchType::kSanityCheck));
  }
  synth::SynthesisOptions opt;
  opt.max_per_patch = 3;
  const auto all = synth::synthesize_all(records, opt, 5);
  EXPECT_LE(all.size(), records.size() * 3);
  // Deterministic for the same seed.
  const auto again = synth::synthesize_all(records, opt, 5);
  ASSERT_EQ(all.size(), again.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].patch.commit, again[i].patch.commit);
  }
}

TEST(Synthesize, SyntheticPatchesAreDistinct) {
  const corpus::CommitRecord record =
      record_with_snapshots(21, corpus::PatchType::kBoundCheck);
  synth::SynthesisOptions opt;
  opt.max_per_patch = 0;
  std::set<std::string> ids;
  const auto synthetic = synth::synthesize(record, opt, 9);
  for (const auto& s : synthetic) ids.insert(s.patch.commit);
  EXPECT_EQ(ids.size(), synthetic.size());
}

}  // namespace
}  // namespace patchdb
