// Tests for the observability layer (src/obs): JSON value model,
// metrics registry under thread contention, scoped-span tracing,
// RunReport serialization, ObsSession nesting, and the zero-allocation
// guarantee of the disabled (no sink installed) fast path.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

// ------------------------------------------------- allocation counter --
// Counting global operator new lets the disabled-path test assert that
// instrumentation with no sink installed performs zero heap allocations.
// All variants route through malloc/free so mixed pairings stay valid.
// Sanitizer builds keep the stock allocator (replacing operator new
// fights ASan's own interceptors); there the test still exercises the
// disabled path, just without the allocation count.

#if defined(__SANITIZE_ADDRESS__)
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PATCHDB_TEST_ASAN 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define PATCHDB_TEST_ASAN 1
#endif

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

#if !defined(PATCHDB_TEST_ASAN)
#define PATCHDB_TEST_COUNTS_ALLOCS 1

namespace {
void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // !PATCHDB_TEST_ASAN

namespace patchdb {
namespace {

// --------------------------------------------------------------- json --

TEST(Json, ParsesScalarsAndStructures) {
  const obs::Json v = obs::Json::parse(
      R"({"a": 1, "b": [true, null, "x\n\"y\""], "c": {"d": -2.5}})");
  EXPECT_TRUE(v.is_object());
  EXPECT_EQ(v.at("a").as_number(), 1.0);
  EXPECT_TRUE(v.at("b").is_array());
  EXPECT_EQ(v.at("b").as_array().size(), 3u);
  EXPECT_TRUE(v.at("b").as_array()[0].as_bool());
  EXPECT_TRUE(v.at("b").as_array()[1].is_null());
  EXPECT_EQ(v.at("b").as_array()[2].as_string(), "x\n\"y\"");
  EXPECT_EQ(v.at("c").at("d").as_number(), -2.5);
}

TEST(Json, RoundTripsThroughDump) {
  const std::string text =
      R"({"arr":[1,2,3],"big":9007199254740992,"neg":-7,"obj":{"k":"v"},"ratio":0.25})";
  const obs::Json v = obs::Json::parse(text);
  EXPECT_EQ(obs::Json::parse(v.dump()), v);
  EXPECT_EQ(obs::Json::parse(v.dump(2)), v);  // pretty form parses equal
}

TEST(Json, IntegersSurviveExactly) {
  obs::Json v = obs::Json::object();
  v.set("count", obs::Json(static_cast<unsigned long long>(1234567890123ULL)));
  const obs::Json back = obs::Json::parse(v.dump());
  EXPECT_EQ(back.at("count").as_number(), 1234567890123.0);
  EXPECT_NE(v.dump().find("1234567890123"), std::string::npos);
  EXPECT_EQ(v.dump().find("1234567890123."), std::string::npos);
}

TEST(Json, ThrowsOnMalformedInput) {
  EXPECT_THROW(obs::Json::parse("{"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("[1,]"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("{\"a\":1} trailing"), obs::JsonError);
  EXPECT_THROW(obs::Json::parse("nul"), obs::JsonError);
  EXPECT_THROW(obs::Json(1.0).at("k"), obs::JsonError);
}

TEST(Json, CopyOnWriteDoesNotAliasMutations) {
  obs::Json a = obs::Json::object();
  a.set("k", obs::Json(1));
  obs::Json b = a;  // shares the payload
  b.set("k", obs::Json(2));
  EXPECT_EQ(a.at("k").as_number(), 1.0);
  EXPECT_EQ(b.at("k").as_number(), 2.0);
}

// ------------------------------------------------------------ metrics --

TEST(Metrics, CounterIsExactUnderContention) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.counter("contended");
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.snapshot().counter("contended"), kThreads * kPerThread);
}

TEST(Metrics, HistogramIsExactUnderContention) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      obs::Histogram& h =
          registry.histogram("latency", obs::BucketLayout::time_ms());
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>(t) + 0.5);  // 0.5 .. 7.5
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const obs::MetricsSnapshot snap = registry.snapshot();
  const obs::HistogramSnapshot* h = snap.histogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, static_cast<std::uint64_t>(kThreads * kPerThread));
  // Sum of t+0.5 over t in [0,8) times kPerThread.
  EXPECT_NEAR(h->sum, 32.0 * kPerThread, 1e-6);
  EXPECT_DOUBLE_EQ(h->min, 0.5);
  EXPECT_DOUBLE_EQ(h->max, 7.5);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count);
  // Quantiles are monotone and bracketed by min/max.
  const double p50 = h->quantile(0.5);
  const double p95 = h->quantile(0.95);
  EXPECT_LE(h->min, p50);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, h->max + 1e-9);
}

TEST(Metrics, GaugeSetAndAdd) {
  obs::MetricsRegistry registry;
  registry.gauge("g").set(2.5);
  registry.gauge("g").add(-1.0);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("g"), 1.5);
  EXPECT_DOUBLE_EQ(registry.snapshot().gauge("missing"), 0.0);
}

TEST(Metrics, HelpersAreNoopsWithoutRegistry) {
  ASSERT_EQ(obs::registry(), nullptr);
  // Must not crash or install anything.
  obs::counter_add("nobody.home", 3);
  obs::gauge_set("nobody.home", 1.0);
  obs::histogram_observe("nobody.home", 1.0);
  EXPECT_EQ(obs::registry(), nullptr);
}

TEST(Metrics, HelpersRouteToInstalledRegistry) {
  obs::MetricsRegistry registry;
  obs::MetricsRegistry* previous = obs::install_registry(&registry);
  obs::counter_add("routed.counter", 2);
  obs::counter_add("routed.counter", 3);
  obs::gauge_set("routed.gauge", 0.75);
  obs::histogram_observe("routed.hist", 1.25);
  obs::install_registry(previous);

  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("routed.counter"), 5u);
  EXPECT_DOUBLE_EQ(snap.gauge("routed.gauge"), 0.75);
  ASSERT_NE(snap.histogram("routed.hist"), nullptr);
  EXPECT_EQ(snap.histogram("routed.hist")->count, 1u);
}

// -------------------------------------------------------------- trace --

TEST(Trace, SpansNestAndRecordParents) {
  obs::Tracer tracer;
  obs::Tracer* previous = obs::install_tracer(&tracer);
  {
    obs::ScopedSpan outer("outer");
    { obs::ScopedSpan inner("inner"); }
    { obs::ScopedSpan inner2("inner2"); }
  }
  obs::install_tracer(previous);

  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Single thread: snapshot is ordered by start time.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "inner2");
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_EQ(spans[1].parent_id, spans[0].span_id);
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[2].parent_id, spans[0].span_id);
  EXPECT_LE(spans[0].start_us, spans[1].start_us);
  EXPECT_LE(spans[1].start_us, spans[2].start_us);
  EXPECT_GE(spans[0].wall_us, spans[1].wall_us + spans[2].wall_us - 1);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, ThreadsGetDistinctIndices) {
  obs::Tracer tracer;
  obs::Tracer* previous = obs::install_tracer(&tracer);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      obs::ScopedSpan root("per_thread.root");
      obs::ScopedSpan child("per_thread.child");
    });
  }
  for (std::thread& t : threads) t.join();
  obs::install_tracer(previous);

  const std::vector<obs::SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 2u * kThreads);
  std::vector<bool> seen(kThreads, false);
  for (const obs::SpanRecord& s : spans) {
    ASSERT_LT(s.thread_index, static_cast<std::uint32_t>(kThreads));
    seen[s.thread_index] = true;
    if (s.name == "per_thread.root") {
      EXPECT_EQ(s.parent_id, 0u);
    } else {
      EXPECT_NE(s.parent_id, 0u);
      EXPECT_EQ(s.depth, 1u);
    }
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_TRUE(seen[t]);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  obs::Tracer tracer;
  obs::Tracer* previous = obs::install_tracer(&tracer);
  const std::size_t total = obs::kSpanRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    obs::ScopedSpan span("overflow");
  }
  obs::install_tracer(previous);
  EXPECT_EQ(tracer.snapshot().size(), obs::kSpanRingCapacity);
  EXPECT_EQ(tracer.dropped(), 100u);
}

TEST(Trace, SpanOpenedWithoutTracerStaysInert) {
  ASSERT_EQ(obs::tracer(), nullptr);
  obs::Tracer tracer;
  {
    obs::ScopedSpan orphan("orphan");  // opened with no tracer installed
    obs::install_tracer(&tracer);
  }  // closes after a tracer appeared; must not record
  obs::install_tracer(nullptr);
  EXPECT_TRUE(tracer.snapshot().empty());
}

// ------------------------------------------------------------- report --

TEST(Report, JsonRoundTripPreservesEverything) {
  obs::ObsSession session("roundtrip_test");
  PATCHDB_COUNTER_ADD("rt.counter", 41);
  PATCHDB_COUNTER_ADD("rt.counter", 1);
  PATCHDB_GAUGE_SET("rt.gauge", 0.125);
  PATCHDB_HISTOGRAM_OBSERVE("rt.hist", 3.0);
  {
    PATCHDB_TRACE_SPAN("rt.outer");
    PATCHDB_TRACE_SPAN("rt.inner");
  }
  const obs::RunReport report = session.report();
  EXPECT_EQ(report.name, "roundtrip_test");
  EXPECT_GE(report.wall_ms, 0.0);
  EXPECT_EQ(report.metrics.counter("rt.counter"), 42u);

  const obs::Json json = report.to_json();
  const obs::RunReport back = obs::RunReport::from_json(obs::Json::parse(json.dump(2)));
  EXPECT_EQ(back.name, report.name);
  EXPECT_EQ(back.spans_dropped, report.spans_dropped);
  EXPECT_EQ(back.metrics.counters, report.metrics.counters);
  EXPECT_EQ(back.metrics.gauges, report.metrics.gauges);
  ASSERT_EQ(back.spans.size(), report.spans.size());
  for (std::size_t i = 0; i < back.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].name, report.spans[i].name);
    EXPECT_EQ(back.spans[i].span_id, report.spans[i].span_id);
    EXPECT_EQ(back.spans[i].parent_id, report.spans[i].parent_id);
    EXPECT_EQ(back.spans[i].wall_us, report.spans[i].wall_us);
  }
  // Serializing the reconstruction reproduces the same JSON value.
  EXPECT_EQ(back.to_json(), json);
}

TEST(Report, RenderMentionsRecordedMetrics) {
  obs::ObsSession session("render_test");
  PATCHDB_COUNTER_ADD("render.counter", 7);
  PATCHDB_HISTOGRAM_OBSERVE("render.hist", 1.0);
  { PATCHDB_TRACE_SPAN("render.span"); }
  const std::string text = session.report().render();
  EXPECT_NE(text.find("render.counter"), std::string::npos);
  EXPECT_NE(text.find("render.hist"), std::string::npos);
  EXPECT_NE(text.find("render.span"), std::string::npos);
}

TEST(Report, SessionsNestAndRestore) {
  obs::ObsSession outer("outer_session");
  PATCHDB_COUNTER_ADD("nest.counter", 1);
  {
    obs::ObsSession inner("inner_session");
    PATCHDB_COUNTER_ADD("nest.counter", 10);
    EXPECT_EQ(inner.report().metrics.counter("nest.counter"), 10u);
  }
  PATCHDB_COUNTER_ADD("nest.counter", 1);
  // The inner session's 10 never leaked into the outer registry.
  EXPECT_EQ(outer.report().metrics.counter("nest.counter"), 2u);
}

TEST(Report, PoolMetricsFlowThroughSession) {
  util::ThreadPool pool(2);
  obs::ObsSession::Options options;
  options.attach_default_pool = false;
  obs::ObsSession session("pool_test", options);
  obs::attach_pool(pool);
  pool.parallel_for(64, [](std::size_t, std::size_t) {});
  pool.wait_idle();
  obs::detach_pool(pool);

  const obs::RunReport report = session.report();
  EXPECT_GT(report.metrics.counter("pool.tasks"), 0u);
  const obs::HistogramSnapshot* h = report.metrics.histogram("pool.task_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_GT(h->count, 0u);
  EXPECT_DOUBLE_EQ(report.metrics.gauge("pool.threads"), 2.0);
}

// ------------------------------------------------- disabled fast path --

TEST(DisabledPath, InstrumentationAllocatesNothing) {
  ASSERT_EQ(obs::registry(), nullptr);
  ASSERT_EQ(obs::tracer(), nullptr);
  // Warm the thread-local state outside the measured window.
  PATCHDB_COUNTER_ADD("warmup", 1);
  { PATCHDB_TRACE_SPAN("warmup"); }

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    PATCHDB_COUNTER_ADD("disabled.counter", 1);
    PATCHDB_GAUGE_SET("disabled.gauge", 1.0);
    PATCHDB_HISTOGRAM_OBSERVE("disabled.hist", 1.0);
    PATCHDB_TRACE_SPAN("disabled.span");
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
#if defined(PATCHDB_TEST_COUNTS_ALLOCS)
  EXPECT_EQ(after, before);
#else
  (void)before;
  (void)after;
#endif
}

}  // namespace
}  // namespace patchdb
