// Phase-0 Index backends (core/index.h): the contract under test is
// NOT recall — it is (a) the pending bound: every column a shortlist
// leaves out must sit at least pending_lb away from the query under the
// exact float kernel, and (b) end-to-end bit-identity: the streaming
// engine with any index backend must return the exact LinkResult of the
// dense path, with the unprovable picks absorbed by counted fallback
// rescans. kExact must additionally shortlist everything (recall 1.0).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "core/index.h"
#include "core/nearest_link.h"
#include "core/streaming_link.h"
#include "feature/features.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

/// Raw scaled-feature-style columns: row-major, column c at c*dims.
std::vector<float> random_cols(std::size_t n, std::size_t dims,
                               std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> out(n * dims);
  for (float& v : out) v = static_cast<float>(rng.uniform(-10, 10));
  return out;
}

/// Gaussian-mixture-style columns — the regime an index helps in
/// (uniform data keeps every geometric bound vacuous in high dims).
std::vector<float> clustered_cols(std::size_t n, std::size_t dims,
                                  std::size_t centers, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> c(centers * dims);
  for (double& v : c) v = rng.uniform(-10, 10);
  std::vector<float> out(n * dims);
  for (std::size_t i = 0; i < n; ++i) {
    const double* center = c.data() + rng.index(centers) * dims;
    for (std::size_t j = 0; j < dims; ++j) {
      out[i * dims + j] =
          static_cast<float>(center[j] + rng.uniform(-0.5, 0.5));
    }
  }
  return out;
}

/// Clustered FeatureMatrix pair for the end-to-end engine tests.
feature::FeatureMatrix clustered_features(std::size_t rows,
                                          std::size_t centers,
                                          std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> c(centers * feature::kFeatureCount);
  for (double& v : c) v = rng.uniform(-10, 10);
  feature::FeatureMatrix m(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* center =
        c.data() + rng.index(centers) * feature::kFeatureCount;
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      m[i][j] = center[j] + rng.uniform(-0.5, 0.5);
    }
  }
  return m;
}

core::LinkResult dense_link(const feature::FeatureMatrix& sec,
                            const feature::FeatureMatrix& wild,
                            std::span<const double> weights) {
  const core::DistanceMatrix d = core::distance_matrix(sec, wild, weights);
  return core::nearest_link_search(d);
}

void expect_valid_permutation(std::span<const std::uint32_t> ord,
                              std::size_t n) {
  ASSERT_EQ(ord.size(), n);
  std::vector<char> seen(n, 0);
  for (const std::uint32_t c : ord) {
    ASSERT_LT(c, n);
    EXPECT_FALSE(seen[c]) << "duplicate column " << c << " in ordering";
    seen[c] = 1;
  }
}

TEST(IndexExact, ShortlistsEverythingWithNothingPending) {
  const std::size_t n = 137;
  const std::size_t dims = 16;
  const std::vector<float> cols = random_cols(n, dims, 1);
  const auto index = core::make_index(core::IndexConfig{});
  ASSERT_EQ(index->kind(), core::IndexKind::kExact);
  index->build(cols.data(), n, dims);
  expect_valid_permutation(index->ordering(), n);
  for (std::size_t c = 0; c < n; ++c) {
    EXPECT_EQ(index->ordering()[c], c);  // identity: byte-identical stream
  }

  const std::vector<float> q = random_cols(1, dims, 2);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  const core::IndexShortlist sl = index->shortlist(q.data(), 8, ranges);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0u);
  EXPECT_EQ(ranges[0].second, n);
  EXPECT_EQ(sl.cols, n);  // recall 1.0 by construction
  EXPECT_EQ(sl.probes, 1u);
  EXPECT_TRUE(std::isinf(sl.pending_lb));
}

/// The property every approximate backend must satisfy: any column the
/// shortlist leaves out is provably at least pending_lb away from the
/// query under the exact float kernel the engine scores with.
void check_pending_bound(core::IndexKind kind, std::size_t n,
                         std::size_t dims, std::uint64_t seed,
                         std::size_t nprobe) {
  const std::vector<float> cols = clustered_cols(n, dims, 6, seed);
  core::IndexConfig config;
  config.kind = kind;
  config.nprobe = nprobe;
  const auto index = core::make_index(config);
  index->build(cols.data(), n, dims);
  const auto ord = index->ordering();
  expect_valid_permutation(ord, n);

  const std::size_t k = 8;
  const std::vector<float> queries = clustered_cols(24, dims, 6, seed + 99);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  for (std::size_t qi = 0; qi < 24; ++qi) {
    const float* q = queries.data() + qi * dims;
    ranges.clear();
    const core::IndexShortlist sl = index->shortlist(q, k, ranges);
    std::vector<char> covered(n, 0);
    std::size_t covered_count = 0;
    for (const auto& [lo, hi] : ranges) {
      ASSERT_LE(lo, hi);
      ASSERT_LE(hi, n);
      for (std::uint32_t p = lo; p < hi; ++p) {
        covered[ord[p]] = 1;
        ++covered_count;
      }
    }
    EXPECT_EQ(covered_count, sl.cols);
    EXPECT_GE(sl.cols, std::min(k, n));  // enough candidates to fill a heap
    EXPECT_GE(sl.probes, 1u);
    for (std::size_t c = 0; c < n; ++c) {
      if (covered[c]) continue;
      EXPECT_GE(core::l2_cell(q, cols.data() + c * dims, dims), sl.pending_lb)
          << "backend " << core::index_kind_name(kind) << " query " << qi
          << " column " << c << " beats the pending bound";
    }
  }
}

TEST(IndexCoarse, PendingBoundIsConservative) {
  check_pending_bound(core::IndexKind::kCoarse, 300, 16, 7, 2);
  check_pending_bound(core::IndexKind::kCoarse, 300, feature::kFeatureCount,
                      8, 2);
}

TEST(IndexRproj, PendingBoundIsConservative) {
  check_pending_bound(core::IndexKind::kRproj, 300, 16, 9, 2);
  check_pending_bound(core::IndexKind::kRproj, 300, feature::kFeatureCount,
                      10, 2);
}

TEST(IndexBackends, EmptyAndSingleColumnDatasets) {
  for (const core::IndexKind kind :
       {core::IndexKind::kExact, core::IndexKind::kCoarse,
        core::IndexKind::kRproj}) {
    core::IndexConfig config;
    config.kind = kind;
    const auto index = core::make_index(config);

    index->build(nullptr, 0, 16);
    EXPECT_TRUE(index->ordering().empty());
    const std::vector<float> q = random_cols(1, 16, 3);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    core::IndexShortlist sl = index->shortlist(q.data(), 4, ranges);
    EXPECT_TRUE(ranges.empty());
    EXPECT_EQ(sl.cols, 0u);
    EXPECT_TRUE(std::isinf(sl.pending_lb));

    const std::vector<float> one = random_cols(1, 16, 4);
    index->build(one.data(), 1, 16);
    expect_valid_permutation(index->ordering(), 1);
    ranges.clear();
    sl = index->shortlist(q.data(), 4, ranges);
    EXPECT_EQ(sl.cols, 1u);  // the only column must be shortlisted
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(index->ordering()[ranges[0].first], 0u);
  }
}

TEST(IndexConfigParsing, RejectsNprobeZeroAndUnknownKinds) {
  core::IndexConfig config;
  config.nprobe = 0;
  config.kind = core::IndexKind::kCoarse;
  EXPECT_THROW(core::make_index(config), std::invalid_argument);
  config.kind = core::IndexKind::kRproj;
  EXPECT_THROW(core::make_index(config), std::invalid_argument);
  config.kind = core::IndexKind::kExact;  // passthrough ignores nprobe
  EXPECT_NO_THROW(core::make_index(config));

  EXPECT_EQ(core::parse_index_kind("exact"), core::IndexKind::kExact);
  EXPECT_EQ(core::parse_index_kind("coarse"), core::IndexKind::kCoarse);
  EXPECT_EQ(core::parse_index_kind("rproj"), core::IndexKind::kRproj);
  EXPECT_THROW(core::parse_index_kind("ivf"), std::invalid_argument);
  EXPECT_THROW(core::parse_index_kind(""), std::invalid_argument);
  for (const core::IndexKind kind :
       {core::IndexKind::kExact, core::IndexKind::kCoarse,
        core::IndexKind::kRproj}) {
    EXPECT_EQ(core::parse_index_kind(core::index_kind_name(kind)), kind);
  }
}

TEST(IndexStreamingLink, ExactBackendMatchesPlainStreaming) {
  const auto sec = clustered_features(20, 5, 21);
  const auto wild = clustered_features(300, 5, 22);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  core::StreamingLinkConfig config;
  config.index.kind = core::IndexKind::kExact;
  core::StreamingLinkStats stats;
  const core::LinkResult stream =
      core::streaming_nearest_link(sec, wild, w, config, &stats);
  EXPECT_EQ(dense.candidate, stream.candidate);
  EXPECT_EQ(dense.total_distance, stream.total_distance);
  // Passthrough: no probes, no screening, no index rescans recorded.
  EXPECT_EQ(stats.index_probes, 0u);
  EXPECT_EQ(stats.index_screened_cells, 0u);
  EXPECT_EQ(stats.index_fallback_rescans, 0u);
}

TEST(IndexStreamingLink, CoarseAndRprojBitIdenticalAcrossSweep) {
  // The tentpole contract: every backend x nprobe x threads x tile
  // produces the dense LinkResult bitwise. Approximation quality only
  // moves the probe/screen/fallback counters.
  const std::size_t m = 25;
  const std::size_t n = 400;
  const auto sec = clustered_features(m, 8, 51);
  const auto wild = clustered_features(n, 8, 52);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  for (const core::IndexKind kind :
       {core::IndexKind::kCoarse, core::IndexKind::kRproj}) {
    for (const std::size_t nprobe : {1UL, 4UL}) {
      for (const std::size_t threads : {1UL, 4UL}) {
        for (const std::size_t tile : {64UL, 257UL}) {
          core::StreamingLinkConfig config;
          config.top_k = 8;
          config.tile_cols = tile;
          config.threads = threads;
          config.index.kind = kind;
          config.index.nprobe = nprobe;
          core::StreamingLinkStats stats;
          const core::LinkResult stream =
              core::streaming_nearest_link(sec, wild, w, config, &stats);
          const auto label = [&] {
            return std::string(core::index_kind_name(kind)) + " nprobe=" +
                   std::to_string(nprobe) + " threads=" +
                   std::to_string(threads) + " tile=" + std::to_string(tile);
          };
          EXPECT_EQ(dense.candidate, stream.candidate) << label();
          EXPECT_EQ(dense.total_distance, stream.total_distance) << label();
          EXPECT_EQ(stats.topk_hits + stats.fallback_rescans, m) << label();
          EXPECT_GE(stats.index_probes, m) << label();  // >= 1 probe per row
          EXPECT_GE(stats.index_shortlist_cols, m) << label();
        }
      }
    }
  }
}

TEST(IndexStreamingLink, FallbackStormStaysBitIdenticalAndCounted) {
  // Identical security rows drain each other's shortlisted candidates,
  // so most picks are unprovable and must take the counted exact
  // rescans — the escape hatch that keeps approximation honest.
  const auto one = clustered_features(1, 3, 71);
  feature::FeatureMatrix sec(12);
  for (std::size_t i = 0; i < sec.rows(); ++i) sec.set_row(i, one[0]);
  const auto wild = clustered_features(120, 3, 72);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  obs::MetricsRegistry registry;
  auto* previous = obs::install_registry(&registry);
  core::StreamingLinkConfig config;
  config.top_k = 2;
  config.index.kind = core::IndexKind::kCoarse;
  config.index.nprobe = 1;
  core::StreamingLinkStats stats;
  const core::LinkResult stream =
      core::streaming_nearest_link(sec, wild, w, config, &stats);
  obs::install_registry(previous);

  EXPECT_EQ(dense.candidate, stream.candidate);
  EXPECT_EQ(dense.total_distance, stream.total_distance);
  EXPECT_EQ(stats.topk_hits + stats.fallback_rescans, sec.rows());
  EXPECT_GT(stats.fallback_rescans, 0u);
  EXPECT_GT(stats.index_fallback_rescans, 0u);

  // The obs artifact view the acceptance criteria name.
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("index.fallback_rescans"),
            stats.index_fallback_rescans);
  EXPECT_EQ(snap.counter("index.probes"), stats.index_probes);
  EXPECT_EQ(snap.counter("index.shortlist_cols"), stats.index_shortlist_cols);
  EXPECT_EQ(snap.counter("index.screened_cells"), stats.index_screened_cells);
}

TEST(IndexStreamingLink, DeterministicAcrossThreadsTilesAndCaps) {
  // Same sweep shape as StreamingLinkParallel, with the index on: the
  // TSan job runs this under PATCHDB_THREADS=4 to prove the phase-0
  // shortlist pass and the permuted stream stay race-free.
  const std::size_t m = 20;
  const std::size_t n = 500;
  const auto sec = clustered_features(m, 6, 81);
  const auto wild = clustered_features(n, 6, 82);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  for (const core::IndexKind kind :
       {core::IndexKind::kCoarse, core::IndexKind::kRproj}) {
    for (const std::size_t threads : {1UL, 2UL, 8UL}) {
      for (const std::size_t cap : {0UL, 96UL * 1024UL}) {
        core::StreamingLinkConfig config;
        config.top_k = 8;
        config.tile_cols = 257;
        config.threads = threads;
        config.memory_cap_bytes = cap;
        config.index.kind = kind;
        core::StreamingLinkStats stats;
        const core::LinkResult stream =
            core::streaming_nearest_link(sec, wild, w, config, &stats);
        EXPECT_EQ(dense.candidate, stream.candidate)
            << core::index_kind_name(kind) << " threads=" << threads
            << " cap=" << cap;
        EXPECT_EQ(dense.total_distance, stream.total_distance)
            << core::index_kind_name(kind) << " threads=" << threads
            << " cap=" << cap;
        if (cap > 0) {
          EXPECT_LE(stats.working_set_bytes, cap);
        }
      }
    }
  }
}

}  // namespace
