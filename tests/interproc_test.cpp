// Tests for the interprocedural layer: call-graph construction and SCC
// condensation, the bottom-up summary fixpoint (including recursion and
// degenerate inputs — construction must stay total), the golden
// cross-function defect shapes each upgraded checker catches that the
// intraprocedural pass misses, and the bit-identical-defaults contract
// of the kInterproc feature tier.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/checkers.h"
#include "analysis/report.h"
#include "analysis/summary.h"
#include "core/categorize.h"
#include "diff/parse.h"
#include "feature/features.h"

namespace patchdb {
namespace {

using analysis::CheckerId;

std::vector<analysis::Diagnostic> diagnostics_of(const std::string& source,
                                                 bool interproc) {
  analysis::AnalyzeOptions options;
  options.interproc = interproc;
  return analysis::analyze_source(source, options).diagnostics;
}

bool has_diagnostic(const std::vector<analysis::Diagnostic>& diagnostics,
                    CheckerId checker, std::string_view symbol) {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const analysis::Diagnostic& d) {
                       return d.checker == checker && d.symbol == symbol;
                     });
}

// ------------------------------------------------------ call graph --

TEST(CallGraph, ResolvesDirectCallsAndCountsUnresolved) {
  const auto cfgs = analysis::build_cfgs(
      "static int helper(int x)\n"
      "{\n"
      "    return x + 1;\n"
      "}\n"
      "static int top(int x)\n"
      "{\n"
      "    int y = helper(x);\n"
      "    return external_thing(y);\n"
      "}\n");
  const analysis::CallGraph graph = analysis::build_call_graph(cfgs);
  ASSERT_EQ(graph.nodes.size(), cfgs.size());
  const std::size_t helper = graph.index_of("helper");
  const std::size_t top = graph.index_of("top");
  ASSERT_NE(helper, analysis::CallGraph::npos);
  ASSERT_NE(top, analysis::CallGraph::npos);
  EXPECT_EQ(graph.nodes[top].fan_out, 1u);
  EXPECT_EQ(graph.nodes[helper].fan_in, 1u);
  EXPECT_GE(graph.unresolved_calls, 1u);  // external_thing
  EXPECT_EQ(graph.index_of("external_thing"), analysis::CallGraph::npos);
}

TEST(CallGraph, SccOrderIsBottomUp) {
  // a -> b -> c: the summary pass needs callees emitted before callers.
  const auto cfgs = analysis::build_cfgs(
      "static int c(int x) { return x; }\n"
      "static int b(int x) { return c(x); }\n"
      "static int a(int x) { return b(x); }\n");
  const analysis::CallGraph graph = analysis::build_call_graph(cfgs);
  const std::size_t ia = graph.index_of("a");
  const std::size_t ib = graph.index_of("b");
  const std::size_t ic = graph.index_of("c");
  auto position = [&](std::size_t v) {
    for (std::size_t s = 0; s < graph.sccs.size(); ++s) {
      if (std::find(graph.sccs[s].begin(), graph.sccs[s].end(), v) !=
          graph.sccs[s].end()) {
        return s;
      }
    }
    return graph.sccs.size();
  };
  EXPECT_LT(position(ic), position(ib));
  EXPECT_LT(position(ib), position(ia));
  EXPECT_EQ(graph.recursive_scc_count(), 0u);
}

TEST(CallGraph, MutualRecursionCondensesToOneScc) {
  const auto cfgs = analysis::build_cfgs(
      "static int even(int n) { if (n == 0) return 1; return odd(n - 1); }\n"
      "static int odd(int n) { if (n == 0) return 0; return even(n - 1); }\n");
  const analysis::CallGraph graph = analysis::build_call_graph(cfgs);
  EXPECT_EQ(graph.recursive_scc_count(), 1u);
  const std::size_t ieven = graph.index_of("even");
  ASSERT_NE(ieven, analysis::CallGraph::npos);
  const std::size_t scc = graph.nodes[ieven].scc;
  EXPECT_EQ(graph.nodes[graph.index_of("odd")].scc, scc);
  EXPECT_EQ(graph.sccs[scc].size(), 2u);
}

TEST(CallGraph, EmptySourceYieldsEmptyGraph) {
  const analysis::CallGraph graph =
      analysis::build_call_graph(analysis::build_cfgs(""));
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_TRUE(graph.sccs.empty());
}

// ------------------------------------------------- summary fixpoint --

TEST(Summaries, DirectEffectsAreRecorded) {
  const auto cfgs = analysis::build_cfgs(
      "static void sink(char *p)\n"
      "{\n"
      "    *p = 0;\n"
      "}\n"
      "static void drop(char *p)\n"
      "{\n"
      "    free(p);\n"
      "}\n"
      "static char *mk(int n)\n"
      "{\n"
      "    return malloc(n);\n"
      "}\n");
  const analysis::SummaryTable table = analysis::compute_summaries(cfgs);
  const analysis::FunctionSummary* sink = table.find("sink");
  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(sink->param_flags.size(), 1u);
  EXPECT_TRUE(sink->param_flags[0].deref_unguarded);
  const analysis::FunctionSummary* drop = table.find("drop");
  ASSERT_NE(drop, nullptr);
  EXPECT_TRUE(drop->param_flags[0].freed);
  const analysis::FunctionSummary* mk = table.find("mk");
  ASSERT_NE(mk, nullptr);
  EXPECT_TRUE(mk->returns_fresh_alloc);
  EXPECT_TRUE(mk->param_flags[0].alloc_size_unguarded);
  EXPECT_EQ(table.flagged_count(), 3u);
}

TEST(Summaries, GuardedDerefIsNotFlagged) {
  const auto cfgs = analysis::build_cfgs(
      "static void careful(char *p)\n"
      "{\n"
      "    if (!p)\n"
      "        return;\n"
      "    *p = 0;\n"
      "}\n");
  const analysis::SummaryTable table = analysis::compute_summaries(cfgs);
  const analysis::FunctionSummary* careful = table.find("careful");
  ASSERT_NE(careful, nullptr);
  EXPECT_FALSE(careful->param_flags[0].deref_unguarded);
  EXPECT_TRUE(careful->signature().empty());
}

TEST(Summaries, EffectsPropagateThroughWrapperChains) {
  // sink derefs; mid forwards to sink; top forwards to mid. One bottom-up
  // pass over the condensation must mark all three.
  const auto cfgs = analysis::build_cfgs(
      "static void sink(char *p) { *p = 0; }\n"
      "static void mid(char *q) { sink(q); }\n"
      "static void top(char *r) { mid(r); }\n");
  const analysis::SummaryTable table = analysis::compute_summaries(cfgs);
  for (const char* name : {"sink", "mid", "top"}) {
    const analysis::FunctionSummary* s = table.find(name);
    ASSERT_NE(s, nullptr) << name;
    EXPECT_TRUE(s->param_flags[0].deref_unguarded) << name;
  }
}

TEST(Summaries, SelfRecursionReachesFixpoint) {
  const auto cfgs = analysis::build_cfgs(
      "static int down(char *p, int n)\n"
      "{\n"
      "    if (n > 0)\n"
      "        return down(p, n - 1);\n"
      "    return *p;\n"
      "}\n");
  const analysis::CallGraph graph = analysis::build_call_graph(cfgs);
  EXPECT_EQ(graph.recursive_scc_count(), 1u);
  const analysis::SummaryTable table = analysis::compute_summaries(cfgs, graph);
  const analysis::FunctionSummary* down = table.find("down");
  ASSERT_NE(down, nullptr);
  EXPECT_TRUE(down->param_flags[0].deref_unguarded);
  EXPECT_GE(table.iterations, 2u);  // the recursive SCC re-sweeps once
}

TEST(Summaries, MutualRecursionPropagatesAcrossTheCycle) {
  // Only walk_b dereferences; walk_a must inherit the flag through the
  // two-function cycle, which needs iteration inside the SCC.
  const auto cfgs = analysis::build_cfgs(
      "static int walk_a(char *p, int n)\n"
      "{\n"
      "    if (n == 0)\n"
      "        return 0;\n"
      "    return walk_b(p, n - 1);\n"
      "}\n"
      "static int walk_b(char *p, int n)\n"
      "{\n"
      "    if (n == 0)\n"
      "        return *p;\n"
      "    return walk_a(p, n - 1);\n"
      "}\n");
  const analysis::SummaryTable table = analysis::compute_summaries(cfgs);
  const analysis::FunctionSummary* a = table.find("walk_a");
  const analysis::FunctionSummary* b = table.find("walk_b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->param_flags[0].deref_unguarded);
  EXPECT_TRUE(a->param_flags[0].deref_unguarded);
}

TEST(Summaries, DegenerateInputsStayTotal) {
  // Truncated fragment, unknown callees, stray tokens, duplicate
  // definitions: construction never errors, matching the CFG contract.
  for (const char* source : {
           "",
           "static int trunc(char *p) { if (p",
           "}} ;; @@ not code at all\n",
           "static void a(char *p) { external_helper(p); }\n",
           "static int twice(int x) { return x; }\n"
           "static int twice(int x) { return x + 1; }\n",
       }) {
    const auto cfgs = analysis::build_cfgs(source);
    const analysis::CallGraph graph = analysis::build_call_graph(cfgs);
    const analysis::SummaryTable table = analysis::compute_summaries(cfgs, graph);
    EXPECT_LE(table.by_function.size(), cfgs.size() + 1);
    analysis::AnalyzeOptions options;
    options.interproc = true;
    (void)analysis::analyze_source(source, options);  // must not throw
  }
}

// -------------------------------- golden cross-function defect shapes --

// Shape 1 (missing-null-guard): the caller hands its never-tested
// pointer parameter to a callee that dereferences unguarded.
TEST(InterprocCheckers, CalleeDerefFlagsCallerParameter) {
  const std::string source =
      "static void deref_it(char *p)\n"
      "{\n"
      "    *p = 0;\n"
      "}\n"
      "static void outer(char *q)\n"
      "{\n"
      "    deref_it(q);\n"
      "}\n";
  const auto intra = diagnostics_of(source, false);
  const auto inter = diagnostics_of(source, true);
  EXPECT_FALSE(has_diagnostic(intra, CheckerId::kMissingNullGuard, "q"));
  EXPECT_TRUE(has_diagnostic(inter, CheckerId::kMissingNullGuard, "q"));
}

TEST(InterprocCheckers, GuardBeforeCallSuppressesTheFinding) {
  const std::string source =
      "static void deref_it(char *p)\n"
      "{\n"
      "    *p = 0;\n"
      "}\n"
      "static void outer(char *q)\n"
      "{\n"
      "    if (!q)\n"
      "        return;\n"
      "    deref_it(q);\n"
      "}\n";
  EXPECT_FALSE(has_diagnostic(diagnostics_of(source, true),
                              CheckerId::kMissingNullGuard, "q"));
}

// Shape 2 (use-after-free): a wrapper performs the free; the caller
// keeps using the pointer afterwards.
TEST(InterprocCheckers, WrapperFreeFeedsUseAfterFree) {
  const std::string source =
      "static void release(char *c)\n"
      "{\n"
      "    free(c);\n"
      "}\n"
      "static int handle(char *c)\n"
      "{\n"
      "    release(c);\n"
      "    return *c;\n"
      "}\n";
  const auto intra = diagnostics_of(source, false);
  const auto inter = diagnostics_of(source, true);
  EXPECT_FALSE(has_diagnostic(intra, CheckerId::kUseAfterFree, "c"));
  EXPECT_TRUE(has_diagnostic(inter, CheckerId::kUseAfterFree, "c"));
}

TEST(InterprocCheckers, WrapperDoubleFreeIsReported) {
  const std::string source =
      "static void release(char *c)\n"
      "{\n"
      "    free(c);\n"
      "}\n"
      "static void handle(char *c)\n"
      "{\n"
      "    release(c);\n"
      "    free(c);\n"
      "}\n";
  EXPECT_TRUE(has_diagnostic(diagnostics_of(source, true),
                             CheckerId::kUseAfterFree, "c"));
}

// Shape 3 (int-overflow-size): unguarded arithmetic flowing into an
// allocation *wrapper*'s size parameter.
TEST(InterprocCheckers, AllocationWrapperSeesOverflowArithmetic) {
  const std::string source =
      "static char *wrap_alloc(int n)\n"
      "{\n"
      "    return malloc(n);\n"
      "}\n"
      "static char *mk(int a, int b)\n"
      "{\n"
      "    return wrap_alloc(a * b);\n"
      "}\n";
  const auto intra = diagnostics_of(source, false);
  const auto inter = diagnostics_of(source, true);
  EXPECT_FALSE(has_diagnostic(intra, CheckerId::kIntOverflowSize, "a"));
  EXPECT_TRUE(has_diagnostic(inter, CheckerId::kIntOverflowSize, "a"));
}

// Bonus shape (unchecked-alloc): the allocation came from a wrapper, so
// the intraprocedural pass never marks the result possibly-null.
TEST(InterprocCheckers, FreshAllocWrapperFeedsUncheckedAlloc) {
  const std::string source =
      "static char *wrap_alloc(int n)\n"
      "{\n"
      "    return malloc(n);\n"
      "}\n"
      "static void user(int n)\n"
      "{\n"
      "    char *p = wrap_alloc(n);\n"
      "    *p = 0;\n"
      "}\n";
  const auto intra = diagnostics_of(source, false);
  const auto inter = diagnostics_of(source, true);
  EXPECT_FALSE(has_diagnostic(intra, CheckerId::kUncheckedAlloc, "p"));
  EXPECT_TRUE(has_diagnostic(inter, CheckerId::kUncheckedAlloc, "p"));
}

// ----------------------------------------- patch-level wiring + report --

const char* kWrapperFreePatch =
    "commit 3333333333333333333333333333333333333333\n"
    "\n"
    "    fix use after free via release wrapper\n"
    "\n"
    "diff --git a/driver.c b/driver.c\n"
    "--- a/driver.c\n"
    "+++ b/driver.c\n"
    "@@ -1,4 +1,4 @@ static void release_ctx(char *c)\n"
    " static void release_ctx(char *c)\n"
    " {\n"
    "     free(c);\n"
    " }\n"
    "@@ -10,6 +10,5 @@ static int handle(char *c, int n)\n"
    " static int handle(char *c, int n)\n"
    " {\n"
    "     release_ctx(c);\n"
    "-    use(*c);\n"
    "     return 0;\n"
    " }\n";

TEST(InterprocPatch, WrapperFreeFixResolvesOnlyUnderInterproc) {
  const diff::Patch patch = diff::parse_patch(kWrapperFreePatch);
  const std::size_t uaf = static_cast<std::size_t>(CheckerId::kUseAfterFree);
  const analysis::PatchAnalysis intra = analysis::analyze_patch(patch);
  EXPECT_EQ(intra.resolved_by_checker[uaf], 0u);
  analysis::AnalyzeOptions options;
  options.interproc = true;
  const analysis::PatchAnalysis inter = analysis::analyze_patch(patch, options);
  EXPECT_GE(inter.resolved_by_checker[uaf], 1u);
  EXPECT_TRUE(inter.interproc);
  EXPECT_GE(inter.summary_changes, 1u);
  EXPECT_GE(inter.changed_fan_in + inter.changed_fan_out, 1u);
  EXPECT_GE(inter.before.interproc.call_edges, 1u);
}

TEST(InterprocPatch, ReportRendersCallGraphSection) {
  analysis::AnalyzeOptions options;
  options.interproc = true;
  const analysis::PatchAnalysis pa =
      analysis::analyze_patch(diff::parse_patch(kWrapperFreePatch), options);
  const std::string report = analysis::render_report(pa, {});
  EXPECT_NE(report.find("call graph:"), std::string::npos);
  EXPECT_NE(report.find("summaries:"), std::string::npos);
  EXPECT_NE(report.find("used after free"), std::string::npos);
}

TEST(InterprocPatch, DefaultAnalysisIsUnchangedByTheNewLayer) {
  const diff::Patch patch = diff::parse_patch(kWrapperFreePatch);
  const analysis::PatchAnalysis plain = analysis::analyze_patch(patch);
  EXPECT_FALSE(plain.interproc);
  EXPECT_EQ(plain.net_call_edges, 0);
  EXPECT_EQ(plain.before.interproc.call_edges, 0u);
  // The default overload and explicit default options agree exactly.
  const analysis::PatchAnalysis defaulted =
      analysis::analyze_patch(patch, analysis::AnalyzeOptions{});
  EXPECT_EQ(plain.resolved_by_checker, defaulted.resolved_by_checker);
  EXPECT_EQ(plain.introduced_by_checker, defaulted.introduced_by_checker);
  EXPECT_EQ(plain.before.diagnostics.size(), defaulted.before.diagnostics.size());
}

// ------------------------------------------------ feature-tier layout --

TEST(InterprocFeatures, DimsAndNamesLineUp) {
  EXPECT_EQ(feature::feature_dims(feature::FeatureSpace::kInterproc), 80u);
  const auto names = feature::feature_names(feature::FeatureSpace::kInterproc);
  ASSERT_EQ(names.size(), feature::kInterprocExtendedFeatureCount);
  EXPECT_EQ(names[72], "ip_resolved_diags");
  EXPECT_EQ(names[79], "ip_summary_changes");
  // The narrower spaces are exact prefixes.
  const auto semantic = feature::feature_names(feature::FeatureSpace::kSemantic);
  ASSERT_EQ(semantic.size(), feature::kExtendedFeatureCount);
  for (std::size_t i = 0; i < semantic.size(); ++i) {
    EXPECT_EQ(semantic[i], names[i]);
  }
}

TEST(InterprocFeatures, DefaultSpacesStayBitIdentical) {
  const diff::Patch patch = diff::parse_patch(kWrapperFreePatch);
  const feature::FeatureVector syntactic = feature::extract(patch);
  const feature::ExtendedFeatureVector semantic = feature::extract_extended(patch);
  const feature::InterprocFeatureVector interproc =
      feature::extract_interproc(patch);
  for (std::size_t i = 0; i < feature::kFeatureCount; ++i) {
    EXPECT_EQ(syntactic[i], semantic[i]) << i;
  }
  for (std::size_t i = 0; i < feature::kExtendedFeatureCount; ++i) {
    EXPECT_EQ(semantic[i], interproc[i]) << i;
  }
}

TEST(InterprocFeatures, InterprocDimsSeeTheCrossFunctionFix) {
  const feature::InterprocFeatureVector v =
      feature::extract_interproc(diff::parse_patch(kWrapperFreePatch));
  // The wrapper-free fix resolves strictly more under interproc than
  // under the intraprocedural pass (dim 74 is the resolved delta).
  EXPECT_GT(v[74], 0.0);
  EXPECT_GT(v[79], 0.0);  // the wrapper's caller changed summary
}

TEST(InterprocFeatures, MatrixWidthMatchesSpace) {
  const std::vector<diff::Patch> patches = {diff::parse_patch(kWrapperFreePatch)};
  const feature::FeatureMatrix m =
      feature::extract_all(patches, feature::FeatureSpace::kInterproc);
  ASSERT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), feature::kInterprocExtendedFeatureCount);
}

TEST(InterprocCategorize, DefaultOptionsMatchTheOldBehaviour) {
  const diff::Patch patch = diff::parse_patch(kWrapperFreePatch);
  EXPECT_EQ(core::categorize(patch), core::categorize(patch, {}));
}

}  // namespace
}  // namespace patchdb
