// Streaming tiled nearest-link engine: the contract under test is
// bit-identity — streaming_nearest_link must return the exact
// LinkResult (candidates AND total_distance) that the dense
// nearest_link_search(distance_matrix(...)) path returns, across
// problem shapes, top-k budgets, tile widths, memory caps, tie-heavy
// inputs, and heap-exhausted fallback storms.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/augment.h"
#include "core/distance.h"
#include "core/link_kernel.h"
#include "core/nearest_link.h"
#include "core/streaming_link.h"
#include "corpus/world.h"
#include "feature/features.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

feature::FeatureMatrix random_features(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  feature::FeatureMatrix m(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      m[i][j] = rng.uniform(-10, 10);
    }
  }
  return m;
}

core::LinkResult dense_link(const feature::FeatureMatrix& sec,
                            const feature::FeatureMatrix& wild,
                            std::span<const double> weights) {
  const core::DistanceMatrix d = core::distance_matrix(sec, wild, weights);
  return core::nearest_link_search(d);
}

TEST(StreamingLink, PropertySweepMatchesDenseBitwise) {
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {1, 5}, {3, 8}, {10, 40}, {25, 200}, {40, 400}};
  const std::size_t ks[] = {1, 2, 4, 24};
  const std::size_t tiles[] = {1, 7, 64, 4096};

  for (const auto& [m, n] : shapes) {
    for (std::uint64_t seed : {11ULL, 29ULL}) {
      const auto sec = random_features(m, seed);
      const auto wild = random_features(n, seed + 1000);
      const std::vector<double> w = core::maxabs_weights(sec, wild);
      const core::LinkResult dense = dense_link(sec, wild, w);
      ASSERT_EQ(dense.candidate.size(), m);

      for (std::size_t k : ks) {
        for (std::size_t tile : tiles) {
          core::StreamingLinkConfig config;
          config.top_k = k;
          config.tile_cols = tile;
          core::StreamingLinkStats stats;
          const core::LinkResult stream =
              core::streaming_nearest_link(sec, wild, w, config, &stats);
          EXPECT_EQ(dense.candidate, stream.candidate)
              << "m=" << m << " n=" << n << " seed=" << seed << " k=" << k
              << " tile=" << tile;
          // Bitwise, not approximate: both paths must accumulate the
          // identical float cells in the identical order.
          EXPECT_EQ(dense.total_distance, stream.total_distance)
              << "m=" << m << " n=" << n << " seed=" << seed << " k=" << k
              << " tile=" << tile;
          EXPECT_EQ(stats.topk_hits + stats.fallback_rescans, m);
        }
      }
    }
  }
}

TEST(StreamingLink, TiesBreakTowardLowestColumn) {
  // Every security row identical and every wild commit identical: all
  // M x N distances tie, so the dense greedy's strict `<` scans keep
  // the lowest row first and the lowest column per row. The streaming
  // path must order rows by (u, row) and candidates by
  // (distance, column) lexicographically to reproduce that.
  const auto sec_one = random_features(1, 5);
  feature::FeatureMatrix sec(3);
  for (std::size_t i = 0; i < sec.rows(); ++i) sec.set_row(i, sec_one[0]);
  feature::FeatureMatrix wild(5);
  const auto one = random_features(1, 6);
  for (std::size_t i = 0; i < wild.rows(); ++i) wild.set_row(i, one[0]);

  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);
  const core::LinkResult stream = core::streaming_nearest_link(sec, wild, w);

  EXPECT_EQ(dense.candidate, stream.candidate);
  EXPECT_EQ(dense.total_distance, stream.total_distance);
  // With all columns equidistant, rows claim columns in index order.
  EXPECT_EQ(stream.candidate, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(StreamingLink, HeapExhaustedFallbackStillBitIdentical) {
  // Identical security rows share one top-k list; with k=2 and 12 rows,
  // ten rows find their whole heap consumed by earlier links and must
  // take the tracked full-row re-scan — the dense collision path.
  const auto one = random_features(1, 77);
  feature::FeatureMatrix sec(12);
  for (std::size_t i = 0; i < sec.rows(); ++i) sec.set_row(i, one[0]);
  const auto wild = random_features(40, 78);

  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  core::StreamingLinkConfig config;
  config.top_k = 2;
  core::StreamingLinkStats stats;
  const core::LinkResult stream =
      core::streaming_nearest_link(sec, wild, w, config, &stats);

  EXPECT_GT(stats.fallback_rescans, 0u);
  EXPECT_EQ(stats.topk_hits + stats.fallback_rescans, sec.rows());
  EXPECT_EQ(dense.candidate, stream.candidate);
  EXPECT_EQ(dense.total_distance, stream.total_distance);
}

TEST(StreamingLink, RecordsObsCounters) {
  obs::MetricsRegistry registry;
  auto* previous = obs::install_registry(&registry);

  const auto sec = random_features(8, 3);
  const auto wild = random_features(300, 4);
  core::StreamingLinkConfig config;
  config.tile_cols = 64;  // force several tiles
  const core::LinkResult link =
      core::streaming_nearest_link(sec, wild, config);
  obs::install_registry(previous);

  ASSERT_EQ(link.candidate.size(), 8u);
  const obs::MetricsSnapshot snap = registry.snapshot();
  EXPECT_GE(snap.counter("distance.tiles"), 5u);  // ceil(300/64)
  EXPECT_GT(snap.counter("distance.cells"), 0u);
  EXPECT_EQ(snap.counter("nearest_link.topk_hits") +
                snap.counter("nearest_link.fallback_rescans"),
            8u);
  EXPECT_EQ(snap.counter("nearest_link.links"), 8u);
}

TEST(StreamingLink, MemoryCapShrinksKnobsButNotResults) {
  const std::size_t m = 20;
  const std::size_t n = 500;
  core::StreamingLinkConfig config;
  config.top_k = 24;
  config.tile_cols = 4096;

  // The floor working set includes one dim-major pack buffer per shard
  // (64 cols x 60 dims x 4 bytes), so the cap must leave room for that.
  const auto uncapped = config.resolve(m, n, feature::kFeatureCount);
  config.memory_cap_bytes = 32 * 1024;
  const auto capped = config.resolve(m, n, feature::kFeatureCount);

  EXPECT_LE(capped.working_set_bytes, config.memory_cap_bytes);
  EXPECT_LT(capped.working_set_bytes, uncapped.working_set_bytes);
  EXPECT_LE(capped.tile_cols, uncapped.tile_cols);
  EXPECT_GE(capped.top_k, 1u);
  EXPECT_GE(capped.tile_cols, 64u);

  const auto sec = random_features(m, 91);
  const auto wild = random_features(n, 92);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);
  core::StreamingLinkStats stats;
  const core::LinkResult stream =
      core::streaming_nearest_link(sec, wild, w, config, &stats);

  EXPECT_EQ(stats.working_set_bytes, capped.working_set_bytes);
  EXPECT_EQ(dense.candidate, stream.candidate);
  EXPECT_EQ(dense.total_distance, stream.total_distance);
}

TEST(StreamingLink, ResolveThrowsWhenCapBelowFloorWorkingSet) {
  // Regression: a cap so small the shrink cascade bottoms out at the
  // floors (tile=64, k=1, threads=1) used to be silently exceeded.
  // Probe the exact floor footprint, then check the boundary: cap ==
  // floor resolves, cap == floor - 1 throws.
  const std::size_t m = 20;
  const std::size_t n = 500;
  core::StreamingLinkConfig floor_config;
  floor_config.top_k = 1;
  floor_config.tile_cols = 64;
  floor_config.threads = 1;
  const std::size_t floor_bytes =
      floor_config.resolve(m, n, feature::kFeatureCount).working_set_bytes;

  core::StreamingLinkConfig config;  // defaults, only the cap binds
  config.memory_cap_bytes = floor_bytes;
  const auto at_floor = config.resolve(m, n, feature::kFeatureCount);
  EXPECT_LE(at_floor.working_set_bytes, floor_bytes);

  config.memory_cap_bytes = floor_bytes - 1;
  EXPECT_THROW(config.resolve(m, n, feature::kFeatureCount),
               std::invalid_argument);
  EXPECT_THROW(core::streaming_nearest_link(random_features(m, 1),
                                            random_features(n, 2), config),
               std::invalid_argument);
}

TEST(StreamingLink, LearnedWeightsOverloadMatchesDense) {
  const auto sec = random_features(6, 41);
  const auto wild = random_features(60, 42);
  const core::LinkResult dense =
      dense_link(sec, wild, core::maxabs_weights(sec, wild));
  const core::LinkResult stream = core::streaming_nearest_link(sec, wild);
  EXPECT_EQ(dense.candidate, stream.candidate);
  EXPECT_EQ(dense.total_distance, stream.total_distance);
}

TEST(StreamingLink, RejectsBadShapes) {
  const auto sec = random_features(10, 1);
  const auto wild = random_features(5, 2);
  EXPECT_THROW(core::streaming_nearest_link(sec, wild),
               std::invalid_argument);
  const std::vector<double> short_weights(3, 1.0);
  const auto pool = random_features(20, 3);
  EXPECT_THROW(core::streaming_nearest_link(sec, pool, short_weights),
               std::invalid_argument);
}

TEST(StreamingLinkKernel, BlockKernelMatchesScalarCellBitwise) {
  // The vectorizable block kernel must reproduce the scalar l2_cell
  // bit-for-bit in every lane, across full and partial group widths
  // and strides wider than the width (padded-tile layout).
  util::Rng rng(515);
  const std::size_t dims = feature::kFeatureCount;
  for (std::size_t width : {1UL, 7UL, core::kLinkGroupCols}) {
    const std::size_t stride = core::kLinkGroupCols;
    std::vector<float> a(dims);
    std::vector<float> cols(width * dims);
    for (float& v : a) v = static_cast<float>(rng.uniform(-3, 3));
    for (float& v : cols) v = static_cast<float>(rng.uniform(-3, 3));

    std::vector<float> packed(stride * dims);
    core::pack_cols_dim_major(cols.data(), width, dims, stride, packed.data());
    std::vector<float> lane(stride);
    core::l2_cell_block(a.data(), packed.data(), dims, width, stride,
                        lane.data());
    for (std::size_t c = 0; c < width; ++c) {
      EXPECT_EQ(lane[c], core::l2_cell(a.data(), cols.data() + c * dims, dims))
          << "width=" << width << " lane=" << c;
    }
  }
}

TEST(StreamingLinkParallel, DeterministicAcrossThreadsTilesAndCaps) {
  // The tentpole contract: the worker-sharded pass 1 must produce the
  // same LinkResult as the dense path for every shard count x tile
  // width x memory cap, bitwise. Only counters may vary.
  const std::size_t m = 30;
  const std::size_t n = 700;
  const auto sec = random_features(m, 101);
  const auto wild = random_features(n, 102);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  for (std::size_t threads : {1UL, 2UL, 8UL}) {
    for (std::size_t tile : {64UL, 257UL, 4096UL}) {
      for (std::size_t cap : {0UL, 96UL * 1024UL}) {
        core::StreamingLinkConfig config;
        config.top_k = 8;
        config.tile_cols = tile;
        config.threads = threads;
        config.memory_cap_bytes = cap;
        core::StreamingLinkStats stats;
        const core::LinkResult stream =
            core::streaming_nearest_link(sec, wild, w, config, &stats);
        EXPECT_EQ(dense.candidate, stream.candidate)
            << "threads=" << threads << " tile=" << tile << " cap=" << cap;
        EXPECT_EQ(dense.total_distance, stream.total_distance)
            << "threads=" << threads << " tile=" << tile << " cap=" << cap;
        EXPECT_GE(stats.threads, 1u);
        EXPECT_LE(stats.threads, threads);
        if (cap > 0) {
          EXPECT_LE(stats.working_set_bytes, cap);
        }
      }
    }
  }
}

TEST(StreamingLinkParallel, FallbackRescanDeterministicAcrossThreads) {
  // Identical security rows share one top-k list, so with a tiny k most
  // rows exhaust their heap and take the parallel fallback re-scan;
  // its range-merged minimum must match the dense collision handling
  // for every shard count.
  const auto one = random_features(1, 313);
  feature::FeatureMatrix sec(12);
  for (std::size_t i = 0; i < sec.rows(); ++i) sec.set_row(i, one[0]);
  const auto wild = random_features(300, 314);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const core::LinkResult dense = dense_link(sec, wild, w);

  for (std::size_t threads : {1UL, 2UL, 8UL}) {
    core::StreamingLinkConfig config;
    config.top_k = 2;
    config.tile_cols = 64;
    config.threads = threads;
    core::StreamingLinkStats stats;
    const core::LinkResult stream =
        core::streaming_nearest_link(sec, wild, w, config, &stats);
    EXPECT_GT(stats.fallback_rescans, 0u) << "threads=" << threads;
    EXPECT_EQ(dense.candidate, stream.candidate) << "threads=" << threads;
    EXPECT_EQ(dense.total_distance, stream.total_distance)
        << "threads=" << threads;
  }
}

TEST(StreamingLink, AugmentationLoopStreamingMatchesDense) {
  corpus::WorldConfig config;
  config.repos = 6;
  config.nvd_security = 25;
  config.wild_pool = 250;
  config.wild_security_rate = 0.12;
  config.seed = 4242;
  corpus::World world = corpus::build_world(config);

  auto run = [&world](bool streaming) {
    std::vector<const corpus::CommitRecord*> seed;
    for (const corpus::CommitRecord& r : world.nvd_security) seed.push_back(&r);
    std::vector<const corpus::CommitRecord*> pool;
    for (const corpus::CommitRecord& r : world.wild) pool.push_back(&r);
    core::AugmentationLoop loop(std::move(seed), world.oracle);
    if (streaming) loop.use_streaming();
    loop.set_pool(std::move(pool));
    core::AugmentOptions options;
    options.max_rounds = 2;
    options.stop_ratio = 0.0;
    loop.run(options);
    return loop.wild_security();
  };

  const auto dense_found = run(false);
  const auto stream_found = run(true);
  ASSERT_FALSE(dense_found.empty());
  EXPECT_EQ(dense_found, stream_found);
}

}  // namespace
