// Tests for the lang module: lexer, token abstraction, syntactic
// taxonomy counters, and the lightweight statement parser.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lang/abstract.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "lang/taxonomy.h"
#include "lang/token.h"
#include "util/rng.h"

namespace patchdb {
namespace {

using lang::Token;
using lang::TokenKind;

std::vector<std::string> texts(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  for (const Token& t : tokens) out.push_back(t.text);
  return out;
}

// -------------------------------------------------------------- lexer --

TEST(Lexer, BasicStatement) {
  const auto tokens = lang::lex("int x = a + 42;");
  const std::vector<std::string> expected = {"int", "x", "=", "a", "+", "42", ";"};
  EXPECT_EQ(texts(tokens), expected);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[2].kind, TokenKind::kOperator);
  EXPECT_EQ(tokens[5].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[6].kind, TokenKind::kPunctuator);
}

TEST(Lexer, MultiCharOperatorsLongestMatch) {
  const auto tokens = lang::lex("a <<= b >> c != d->e");
  const std::vector<std::string> expected = {"a", "<<=", "b", ">>", "c",
                                             "!=", "d", "->", "e"};
  EXPECT_EQ(texts(tokens), expected);
}

TEST(Lexer, CommentsDroppedByDefault) {
  const auto tokens = lang::lex("x = 1; // trailing\n/* block\ncomment */ y = 2;");
  const std::vector<std::string> expected = {"x", "=", "1", ";", "y", "=", "2", ";"};
  EXPECT_EQ(texts(tokens), expected);
}

TEST(Lexer, CommentsKeptOnRequest) {
  lang::LexOptions opt;
  opt.keep_comments = true;
  const auto tokens = lang::lex("// hi\nx;", opt);
  ASSERT_GE(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[0].text, "// hi");
}

TEST(Lexer, StringAndCharLiteralsWithEscapes) {
  const auto tokens = lang::lex(R"(s = "a \"quoted\" str"; c = '\n';)");
  ASSERT_EQ(tokens.size(), 8u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, R"("a \"quoted\" str")");
  EXPECT_EQ(tokens[6].kind, TokenKind::kCharLiteral);
}

TEST(Lexer, UnterminatedStringStopsAtEol) {
  const auto tokens = lang::lex("s = \"unterminated\nnext;");
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  // the lexer resumes on the next line
  EXPECT_EQ(tokens[3].text, "next");
}

TEST(Lexer, PreprocessorDirectiveIsSingleToken) {
  const auto tokens = lang::lex("#include <stdio.h>\nint x;");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_EQ(tokens[1].text, "int");
}

TEST(Lexer, PreprocessorContinuationLine) {
  const auto tokens = lang::lex("#define M(a) \\\n  (a + 1)\nx;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPreprocessor);
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(Lexer, NumbersIncludingHexFloatExp) {
  const auto tokens = lang::lex("a = 0x7f + 1.5e-3 + 42u;");
  EXPECT_EQ(tokens[2].text, "0x7f");
  EXPECT_EQ(tokens[4].text, "1.5e-3");
  EXPECT_EQ(tokens[6].text, "42u");
}

TEST(Lexer, LineAndColumnTracking) {
  const auto tokens = lang::lex("a\n  b;");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].line, 1u);
  EXPECT_EQ(tokens[1].line, 2u);
  EXPECT_EQ(tokens[1].column, 3u);
}

TEST(Lexer, UnknownBytesDoNotBreakLexing) {
  const auto tokens = lang::lex("a \x01 b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kUnknown);
}

TEST(Lexer, KeywordsRecognized) {
  EXPECT_TRUE(lang::is_keyword("if"));
  EXPECT_TRUE(lang::is_keyword("sizeof"));
  EXPECT_TRUE(lang::is_keyword("nullptr"));
  EXPECT_FALSE(lang::is_keyword("foobar"));
}

// ---------------------------------------------------------- abstract --

TEST(Abstract, MapsIdentifiersAndLiterals) {
  const std::string out = lang::abstract_code("len = strlen(buf) + 10;");
  EXPECT_EQ(out, "ID = FUNC ( ID ) + NUM ;");
}

TEST(Abstract, KeepsKeywordsAndOperators) {
  const std::string out = lang::abstract_code("if (p == NULL) return -1;");
  EXPECT_EQ(out, "if ( ID == NULL ) return - NUM ;");
}

TEST(Abstract, StringsAndChars) {
  const std::string out = lang::abstract_code("printf(\"%d\", 'x');");
  EXPECT_EQ(out, "FUNC ( STR , CHR ) ;");
}

TEST(Abstract, RenamingInvariance) {
  // The core property: renaming identifiers must not change the result.
  const std::string a = lang::abstract_code("if (count > limit) reset(count);");
  const std::string b = lang::abstract_code("if (n > max) clear(n);");
  EXPECT_EQ(a, b);
}

TEST(Abstract, CallDistinctionToggle) {
  lang::AbstractOptions no_calls;
  no_calls.distinguish_calls = false;
  const auto tokens = lang::lex("foo(bar);");
  const auto plain = lang::abstract_tokens(tokens, no_calls);
  EXPECT_EQ(plain[0], "ID");
}

// ---------------------------------------------------------- taxonomy --

TEST(Taxonomy, OperatorClasses) {
  using lang::OperatorClass;
  EXPECT_EQ(lang::classify_operator("=="), OperatorClass::kRelational);
  EXPECT_EQ(lang::classify_operator("&&"), OperatorClass::kLogical);
  EXPECT_EQ(lang::classify_operator("<<"), OperatorClass::kBitwise);
  EXPECT_EQ(lang::classify_operator("+"), OperatorClass::kArithmetic);
  EXPECT_EQ(lang::classify_operator("+="), OperatorClass::kAssignment);
  EXPECT_EQ(lang::classify_operator("?"), OperatorClass::kOther);
}

TEST(Taxonomy, MemoryOperators) {
  EXPECT_TRUE(lang::is_memory_operator("malloc"));
  EXPECT_TRUE(lang::is_memory_operator("kfree"));
  EXPECT_TRUE(lang::is_memory_operator("strcpy"));
  EXPECT_FALSE(lang::is_memory_operator("printf"));
}

TEST(Taxonomy, CountSyntaxOnSnippet) {
  const lang::SyntaxCounts counts = lang::count_syntax(
      "if (a < b && p != NULL) {\n"
      "  for (i = 0; i < n; i++)\n"
      "    memcpy(dst, src, n);\n"
      "}\n");
  EXPECT_EQ(counts.if_statements, 1u);
  EXPECT_EQ(counts.loops, 1u);
  EXPECT_EQ(counts.memory_ops, 1u);
  EXPECT_EQ(counts.function_calls, 1u);
  EXPECT_GE(counts.relational_ops, 3u);  // <, !=, <
  EXPECT_EQ(counts.logical_ops, 1u);
  EXPECT_GE(counts.variables, 5u);  // a b p i n dst src (distinct, non-call)
}

TEST(Taxonomy, FunctionDefDetection) {
  const lang::SyntaxCounts counts =
      lang::count_syntax("static int foo(int a) {\n return a; \n}\n");
  EXPECT_EQ(counts.function_defs, 1u);
  const lang::SyntaxCounts call_only = lang::count_syntax("foo(1);");
  EXPECT_EQ(call_only.function_defs, 0u);
}

TEST(Taxonomy, AccumulateOperator) {
  lang::SyntaxCounts a = lang::count_syntax("if (x) y();");
  const lang::SyntaxCounts b = lang::count_syntax("while (x) z();");
  a += b;
  EXPECT_EQ(a.if_statements, 1u);
  EXPECT_EQ(a.loops, 1u);
  EXPECT_EQ(a.function_calls, 2u);
}

// ------------------------------------------------------------ parser --

constexpr const char* kSampleFile = R"(#include <stdio.h>

static int helper(struct ctx_state *ctx, size_t len)
{
    int val = 0;
    if (len == 0)
        return -1;
    if (ctx->mode > 2) {
        val = 1;
    } else {
        val = 2;
    }
    for (size_t i = 0; i < len; i++)
        val += i;
    return val;
}

int main(void)
{
    if (helper(0, 3) < 0) {
        return 1;
    }
    return 0;
}
)";

TEST(Parser, FindsFunctions) {
  const lang::ParsedFile parsed = lang::parse_source(kSampleFile);
  ASSERT_EQ(parsed.functions.size(), 2u);
  EXPECT_EQ(parsed.functions[0].name, "helper");
  EXPECT_EQ(parsed.functions[0].signature_line, 3u);
  EXPECT_EQ(parsed.functions[0].body_begin_line, 4u);
  EXPECT_EQ(parsed.functions[0].body_end_line, 16u);
  EXPECT_EQ(parsed.functions[1].name, "main");
}

TEST(Parser, FindsIfStatementsWithExtents) {
  const lang::ParsedFile parsed = lang::parse_source(kSampleFile);
  ASSERT_EQ(parsed.ifs.size(), 3u);

  const lang::IfStatementInfo& first = parsed.ifs[0];
  EXPECT_EQ(first.if_line, 6u);
  EXPECT_EQ(first.condition, "len == 0");
  EXPECT_FALSE(first.braced);
  EXPECT_EQ(first.stmt_end_line, 7u);

  const lang::IfStatementInfo& second = parsed.ifs[1];
  EXPECT_EQ(second.if_line, 8u);
  EXPECT_TRUE(second.braced);
  EXPECT_TRUE(second.has_else);
  EXPECT_EQ(second.stmt_end_line, 12u);
}

TEST(Parser, FindsLoops) {
  const lang::ParsedFile parsed = lang::parse_source(kSampleFile);
  ASSERT_EQ(parsed.loop_lines.size(), 1u);
  EXPECT_EQ(parsed.loop_lines[0], 13u);
}

TEST(Parser, EnclosingFunction) {
  const lang::ParsedFile parsed = lang::parse_source(kSampleFile);
  const lang::FunctionInfo* fn = lang::enclosing_function(parsed, 6);
  ASSERT_NE(fn, nullptr);
  EXPECT_EQ(fn->name, "helper");
  EXPECT_EQ(lang::enclosing_function(parsed, 1), nullptr);
}

TEST(Parser, IfsTouchingRange) {
  const lang::ParsedFile parsed = lang::parse_source(kSampleFile);
  const auto touching = lang::ifs_touching(parsed, 8, 9);
  ASSERT_EQ(touching.size(), 1u);
  EXPECT_EQ(touching[0]->if_line, 8u);
  EXPECT_TRUE(lang::ifs_touching(parsed, 2, 2).empty());
}

TEST(Parser, ElseIfChainYieldsTwoIfInfos) {
  const lang::ParsedFile parsed = lang::parse_source(
      "void f(void) {\n"
      "  if (a) {\n"
      "    x();\n"
      "  } else if (b) {\n"
      "    y();\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(parsed.ifs.size(), 2u);
  EXPECT_TRUE(parsed.ifs[0].has_else);
}

TEST(Parser, ToleratesIncompleteFragments) {
  // Patches are fragments; the parser must not crash on them.
  const lang::ParsedFile parsed =
      lang::parse_source("  if (x > 0)\n    do_thing(x);\n");
  ASSERT_EQ(parsed.ifs.size(), 1u);
  EXPECT_EQ(parsed.ifs[0].condition, "x > 0");
}

// Fuzz robustness: the lexer and statement parser process wild patch
// content; arbitrary bytes must never crash them, and lexing must
// consume every non-space byte into some token.
class LangFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LangFuzz, LexerAndParserSurviveRandomBytes) {
  util::Rng rng(GetParam() * 31337 + 11);
  std::string garbage;
  const std::size_t n = rng.index(400);
  for (std::size_t i = 0; i < n; ++i) {
    garbage += static_cast<char>(rng.index(256));
  }
  const auto tokens = lang::lex(garbage);
  std::size_t token_bytes = 0;
  for (const auto& t : tokens) token_bytes += t.text.size();
  EXPECT_LE(token_bytes, garbage.size());

  const lang::ParsedFile parsed = lang::parse_source(garbage);
  for (const auto& fn : parsed.functions) {
    EXPECT_LE(fn.signature_line, fn.body_end_line);
  }
  for (const auto& info : parsed.ifs) {
    EXPECT_LE(info.if_line, info.stmt_end_line);
  }
  (void)lang::count_syntax(garbage);
  (void)lang::abstract_code(garbage);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangFuzz, ::testing::Range<std::uint64_t>(0, 60));

TEST(Parser, MultiLineConditionExtents) {
  const lang::ParsedFile parsed = lang::parse_source(
      "void f(void) {\n"
      "  if (a > 0 &&\n"
      "      b < 2) {\n"
      "    x();\n"
      "  }\n"
      "}\n");
  ASSERT_EQ(parsed.ifs.size(), 1u);
  EXPECT_EQ(parsed.ifs[0].cond_begin_line, 2u);
  EXPECT_EQ(parsed.ifs[0].cond_end_line, 3u);
  EXPECT_EQ(parsed.ifs[0].stmt_end_line, 5u);
}

}  // namespace
}  // namespace patchdb
