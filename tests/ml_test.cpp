// Tests for the ML substrate: datasets, metrics, scalers, the ten-member
// classifier panel, SMOTE, and the consensus ensemble.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <set>
#include <string>

#include "ml/bayes.h"
#include "ml/classifier.h"
#include "ml/data.h"
#include "ml/ensemble.h"
#include "ml/forest.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/metrics.h"
#include "ml/normalize.h"
#include "ml/smo.h"
#include "ml/smote.h"
#include "ml/tree.h"
#include "util/rng.h"

namespace patchdb {
namespace {

using ml::Dataset;

/// Two Gaussian blobs, linearly separable with a small margin.
Dataset blobs(std::size_t n, std::uint64_t seed, double separation = 2.5,
              std::size_t dims = 6) {
  util::Rng rng(seed);
  Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    std::vector<double> x(dims);
    const double center = label == 1 ? separation : -separation;
    for (double& v : x) v = rng.normal(center, 1.0);
    data.push_back(std::move(x), label);
  }
  return data;
}

double accuracy_on(const ml::Classifier& clf, const Dataset& test) {
  const std::vector<int> pred = clf.predict_all(test);
  return ml::confusion(test.labels(), pred).accuracy();
}

// -------------------------------------------------------------- data --

TEST(Dataset, PushBackAndCounts) {
  Dataset d;
  d.push_back({1.0, 2.0}, 1);
  d.push_back({3.0, 4.0}, 0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.dims(), 2u);
  EXPECT_EQ(d.positives(), 1u);
  EXPECT_EQ(d.negatives(), 1u);
}

TEST(Dataset, RaggedRowsRejected) {
  Dataset d;
  d.push_back({1.0, 2.0}, 1);
  EXPECT_THROW(d.push_back({1.0}, 0), std::invalid_argument);
  EXPECT_THROW(Dataset({{1.0}, {1.0, 2.0}}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(Dataset({{1.0}}, {0, 1}), std::invalid_argument);
}

TEST(Dataset, SelectSubset) {
  const Dataset d = blobs(10, 1);
  const std::vector<std::size_t> idx = {0, 2, 4};
  const Dataset sub = d.select(idx);
  EXPECT_EQ(sub.size(), 3u);
  EXPECT_EQ(sub.label(1), d.label(2));
}

TEST(Split, SizesAndDisjointness) {
  const Dataset d = blobs(100, 2);
  const ml::TrainTestSplit split = ml::split(d, 0.8, 3);
  EXPECT_EQ(split.train.size(), 80u);
  EXPECT_EQ(split.test.size(), 20u);
}

TEST(Split, StratifiedPreservesClassBalance) {
  util::Rng rng(9);
  Dataset d;
  for (int i = 0; i < 200; ++i) {
    d.push_back({rng.normal(), rng.normal()}, i < 40 ? 1 : 0);  // 20% positive
  }
  const ml::TrainTestSplit split = ml::stratified_split(d, 0.75, 4);
  const double train_pos = static_cast<double>(split.train.positives()) /
                           static_cast<double>(split.train.size());
  const double test_pos = static_cast<double>(split.test.positives()) /
                          static_cast<double>(split.test.size());
  EXPECT_NEAR(train_pos, 0.2, 0.02);
  EXPECT_NEAR(test_pos, 0.2, 0.02);
}

// ------------------------------------------------------------ metrics --

TEST(Metrics, ConfusionAndDerived) {
  const std::vector<int> truth = {1, 1, 1, 0, 0, 0, 0, 1};
  const std::vector<int> pred = {1, 1, 0, 0, 0, 1, 0, 0};
  const ml::Confusion c = ml::confusion(truth, pred);
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 2u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 3u);
  EXPECT_NEAR(c.precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c.recall(), 0.5, 1e-12);
  EXPECT_NEAR(c.accuracy(), 5.0 / 8.0, 1e-12);
  EXPECT_NEAR(c.f1(), 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(Metrics, EmptyDenominatorsAreZero) {
  const ml::Confusion c = ml::confusion(std::vector<int>{0}, std::vector<int>{0});
  EXPECT_EQ(c.precision(), 0.0);
  EXPECT_EQ(c.recall(), 0.0);
  EXPECT_EQ(c.f1(), 0.0);
}

TEST(Metrics, SizeMismatchThrows) {
  EXPECT_THROW(ml::confusion(std::vector<int>{1}, std::vector<int>{1, 0}),
               std::invalid_argument);
}

// ---------------------------------------------------------- normalize --

TEST(MaxAbsScaler, BoundsAndSignPreservation) {
  ml::MaxAbsScaler scaler;
  scaler.fit({{-10.0, 2.0, 0.0}, {5.0, -4.0, 0.0}});
  const std::vector<double> t = scaler.transform(std::vector<double>{-10.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(t[0], -1.0);
  EXPECT_DOUBLE_EQ(t[1], 0.5);
  EXPECT_DOUBLE_EQ(t[2], 0.0);  // constant-zero dim: weight 1
}

TEST(MaxAbsScaler, PropertyAllTransformedWithinUnitBall) {
  util::Rng rng(11);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 50; ++i) {
    rows.push_back({rng.uniform(-100, 100), rng.uniform(0, 5), rng.normal()});
  }
  ml::MaxAbsScaler scaler;
  scaler.fit(rows);
  for (const auto& row : rows) {
    for (double v : scaler.transform(row)) {
      EXPECT_GE(v, -1.0 - 1e-12);
      EXPECT_LE(v, 1.0 + 1e-12);
    }
  }
}

TEST(MaxAbsScaler, DimMismatchThrows) {
  ml::MaxAbsScaler scaler;
  scaler.fit({{1.0, 2.0}});
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::invalid_argument);
  ml::MaxAbsScaler unfit;
  const std::vector<std::vector<double>> empty;
  EXPECT_THROW(unfit.fit(empty), std::invalid_argument);
}

TEST(ZScoreScaler, CentersAndScales) {
  ml::ZScoreScaler scaler;
  scaler.fit({{0.0}, {10.0}});
  const std::vector<double> t = scaler.transform(std::vector<double>{10.0});
  EXPECT_NEAR(t[0], 1.0, 1e-12);  // (10-5)/5
}

// -------------------------------------------------- classifier panel --

struct PanelCase {
  std::string name;
  std::function<std::unique_ptr<ml::Classifier>()> make;
  double min_accuracy;
};

class PanelSeparable : public ::testing::TestWithParam<PanelCase> {};

TEST_P(PanelSeparable, LearnsSeparableBlobs) {
  const PanelCase& c = GetParam();
  const Dataset train = blobs(400, 21);
  const Dataset test = blobs(200, 22);
  auto clf = c.make();
  clf->fit(train, 7);
  EXPECT_GE(accuracy_on(*clf, test), c.min_accuracy) << c.name;
}

TEST_P(PanelSeparable, ScoresAreProbabilities) {
  const PanelCase& c = GetParam();
  const Dataset train = blobs(200, 31);
  auto clf = c.make();
  clf->fit(train, 9);
  for (std::size_t i = 0; i < train.size(); i += 13) {
    const double s = clf->predict_score(train.row(i));
    EXPECT_GE(s, 0.0) << c.name;
    EXPECT_LE(s, 1.0) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMembers, PanelSeparable,
    ::testing::Values(
        PanelCase{"forest", [] { return std::make_unique<ml::RandomForest>(); }, 0.93},
        PanelCase{"tree", [] { return std::make_unique<ml::DecisionTree>(); }, 0.90},
        PanelCase{"reptree", [] { return std::make_unique<ml::REPTree>(); }, 0.88},
        PanelCase{"logreg", [] { return std::make_unique<ml::LogisticRegression>(); }, 0.93},
        PanelCase{"svm", [] { return std::make_unique<ml::LinearSVM>(); }, 0.93},
        PanelCase{"sgd", [] { return std::make_unique<ml::SGDClassifier>(); }, 0.90},
        PanelCase{"smo", [] { return std::make_unique<ml::SmoSVM>(); }, 0.90},
        PanelCase{"gnb", [] { return std::make_unique<ml::GaussianNB>(); }, 0.93},
        PanelCase{"bayesnet", [] { return std::make_unique<ml::DiscretizedBayes>(); }, 0.90},
        PanelCase{"perceptron", [] { return std::make_unique<ml::VotedPerceptron>(); }, 0.90},
        PanelCase{"knn", [] { return std::make_unique<ml::KnnClassifier>(); }, 0.93}),
    [](const ::testing::TestParamInfo<PanelCase>& info) {
      return info.param.name;
    });

TEST(DecisionTree, RespectsMaxDepth) {
  ml::TreeOptions opt;
  opt.max_depth = 2;
  ml::DecisionTree tree(opt);
  tree.fit(blobs(300, 41, 1.0), 1);
  EXPECT_LE(tree.depth(), 3u);  // root + 2 levels
}

TEST(DecisionTree, PureLeafShortCircuit) {
  Dataset d;
  for (int i = 0; i < 20; ++i) d.push_back({static_cast<double>(i)}, 1);
  ml::DecisionTree tree;
  tree.fit(d, 1);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict_score(std::vector<double>{3.0}), 1.0);
}

TEST(DecisionTree, EmptyFitYieldsNeutralScore) {
  ml::DecisionTree tree;
  tree.fit(Dataset{}, 1);
  EXPECT_DOUBLE_EQ(tree.predict_score(std::vector<double>{}), 0.5);
}

TEST(REPTree, PrunesNoisyTree) {
  // Noisy labels force an overgrown tree; REP should cut nodes vs CART.
  util::Rng rng(55);
  Dataset d;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1, 1);
    int label = x > 0.0 ? 1 : 0;
    if (rng.chance(0.25)) label = 1 - label;  // 25% label noise
    d.push_back({x, rng.uniform(-1, 1), rng.uniform(-1, 1)}, label);
  }
  ml::DecisionTree cart;
  cart.fit(d, 3);
  ml::REPTree rep;
  rep.fit(d, 3);
  // Count effective (reachable, unpruned) structure via depth proxy.
  EXPECT_LE(rep.depth(), cart.depth());
}

TEST(RandomForest, AveragesTrees) {
  ml::ForestOptions opt;
  opt.trees = 10;
  ml::RandomForest forest(opt);
  forest.fit(blobs(200, 61), 5);
  EXPECT_EQ(forest.tree_count(), 10u);
}

TEST(VotedPerceptron, ScoreReflectsVoteMargin) {
  ml::VotedPerceptron vp(5);
  const Dataset train = blobs(300, 71);
  vp.fit(train, 3);
  // Far-away points should have extreme scores.
  std::vector<double> far_pos(6, 8.0);
  std::vector<double> far_neg(6, -8.0);
  EXPECT_GT(vp.predict_score(far_pos), 0.9);
  EXPECT_LT(vp.predict_score(far_neg), 0.1);
}

TEST(Knn, NeighborsAreDistinctAndSorted) {
  ml::KnnClassifier knn(3);
  const Dataset train = blobs(50, 81);
  knn.fit(train, 1);
  const auto neighbors = knn.neighbors(train.row(0), 5);
  EXPECT_EQ(neighbors.size(), 5u);
  const std::set<std::size_t> unique(neighbors.begin(), neighbors.end());
  EXPECT_EQ(unique.size(), 5u);
  EXPECT_EQ(neighbors[0], 0u);  // the row itself is its nearest neighbor
}

// -------------------------------------------------------------- SMOTE --

TEST(Smote, BalancesMinorityClass) {
  util::Rng rng(91);
  Dataset d;
  for (int i = 0; i < 100; ++i) d.push_back({rng.normal(), rng.normal()}, 0);
  for (int i = 0; i < 20; ++i) d.push_back({rng.normal(5, 1), rng.normal(5, 1)}, 1);

  const Dataset out = ml::smote(d, {.k = 5, .multiplier = 3.0}, 7);
  EXPECT_EQ(out.negatives(), 100u);
  EXPECT_NEAR(static_cast<double>(out.positives()), 20.0 + 60.0, 12.0);
  // Synthetic rows stay inside the minority blob's convex hull region.
  for (std::size_t i = d.size(); i < out.size(); ++i) {
    EXPECT_EQ(out.label(i), 1);
    EXPECT_GT(out.row(i)[0], 1.0);
  }
}

TEST(Smote, DegenerateInputsPassThrough) {
  Dataset d;
  d.push_back({1.0}, 1);
  const Dataset out = ml::smote(d, {}, 1);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Smote, ZeroNeighborsReturnsInputUnchanged) {
  // options.k = 0 used to reach rng.index(0), which throws (or worse):
  // with no neighbors to interpolate toward there is nothing to
  // synthesize, so the input passes through.
  Dataset d;
  d.push_back({0.0, 0.0}, 0);
  d.push_back({1.0, 1.0}, 0);
  d.push_back({0.9, 0.9}, 0);
  d.push_back({5.0, 5.0}, 1);
  d.push_back({5.1, 5.1}, 1);
  const Dataset out = ml::smote(d, {.k = 0, .multiplier = 3.0}, 7);
  EXPECT_EQ(out.size(), d.size());
  EXPECT_EQ(out.positives(), d.positives());
}

TEST(Smote, NonPositiveMultiplierReturnsInputUnchanged) {
  // multiplier = 0 made keep_prob 0/0 = NaN; nothing to synthesize.
  util::Rng rng(13);
  Dataset d;
  for (int i = 0; i < 30; ++i) d.push_back({rng.normal(), rng.normal()}, 0);
  for (int i = 0; i < 10; ++i) d.push_back({rng.normal(3, 1), rng.normal(3, 1)}, 1);
  EXPECT_EQ(ml::smote(d, {.k = 5, .multiplier = 0.0}, 7).size(), d.size());
  EXPECT_EQ(ml::smote(d, {.k = 5, .multiplier = -1.0}, 7).size(), d.size());
}

// ----------------------------------------------------------- ensemble --

TEST(Ensemble, PanelHasTenMembers) {
  ml::ConsensusEnsemble ensemble(ml::make_weka_panel());
  EXPECT_EQ(ensemble.size(), 10u);
}

TEST(Ensemble, UnanimousOnCleanData) {
  ml::ConsensusEnsemble ensemble(ml::make_weka_panel());
  ensemble.fit(blobs(400, 101, 4.0), 11);
  std::vector<double> clearly_pos(6, 4.0);
  std::vector<double> clearly_neg(6, -4.0);
  EXPECT_TRUE(ensemble.unanimous(clearly_pos));
  EXPECT_EQ(ensemble.agreement(clearly_neg), 0u);
}

}  // namespace
}  // namespace patchdb
