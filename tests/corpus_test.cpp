// Tests for the corpus simulator: taxonomy, code generation, mutation
// templates, commit fabrication, the NVD/remote/crawler pipeline, the
// oracle, and world assembly.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "corpus/codegen.h"
#include "corpus/mutate.h"
#include "corpus/nvd.h"
#include "corpus/oracle.h"
#include "corpus/repo.h"
#include "corpus/taxonomy.h"
#include "corpus/world.h"
#include "diff/apply.h"
#include "diff/parse.h"
#include "diff/render.h"
#include "lang/parser.h"
#include "util/rng.h"

namespace patchdb {
namespace {

using corpus::PatchType;

// ----------------------------------------------------------- taxonomy --

TEST(Taxonomy, SecurityTypePredicate) {
  EXPECT_TRUE(corpus::is_security_type(PatchType::kBoundCheck));
  EXPECT_TRUE(corpus::is_security_type(PatchType::kOther));
  EXPECT_FALSE(corpus::is_security_type(PatchType::kRefactor));
  EXPECT_FALSE(corpus::is_security_type(PatchType::kDocs));
}

TEST(Taxonomy, DistributionsSumToOne) {
  for (const corpus::TypeDistribution& dist :
       {corpus::nvd_type_distribution(), corpus::wild_type_distribution(),
        corpus::patchdb_type_distribution()}) {
    double total = 0.0;
    for (double w : dist) total += w;
    // Table V's own column sums to 100.1% due to rounding; the sampler
    // normalizes, so only near-1 is required.
    EXPECT_NEAR(total, 1.0, 2e-3);
  }
}

TEST(Taxonomy, Fig6ShapesEncoded) {
  const auto nvd = corpus::nvd_type_distribution();
  const auto wild = corpus::wild_type_distribution();
  // NVD: Type 11 (index 10) is the head; wild: Type 8 (index 7) is.
  EXPECT_GT(nvd[10], nvd[7]);
  EXPECT_GT(wild[7], wild[10]);
  EXPECT_LE(wild[10], 0.06);  // Type 11 drops to ~5% in the wild
}

TEST(Taxonomy, NamesNonEmpty) {
  for (PatchType t : corpus::security_types()) {
    EXPECT_FALSE(corpus::patch_type_name(t).empty());
  }
  for (PatchType t : corpus::nonsecurity_types()) {
    EXPECT_FALSE(corpus::patch_type_name(t).empty());
  }
}

// ------------------------------------------------------------ codegen --

TEST(Codegen, ContextNamesAreConsistent) {
  util::Rng rng(1);
  const corpus::FunctionContext ctx = corpus::draw_context(rng);
  EXPECT_FALSE(ctx.func_name.empty());
  EXPECT_NE(ctx.val, ctx.tmp);
  EXPECT_GE(ctx.buf_size, 16);
  EXPECT_LE(ctx.buf_size, 128);
}

TEST(Codegen, GeneratedFunctionParses) {
  util::Rng rng(2);
  const corpus::FunctionContext ctx = corpus::draw_context(rng);
  const auto body = corpus::filler_statements(rng, ctx, 6);
  const auto fn = corpus::make_function(ctx, body);
  const lang::ParsedFile parsed = lang::parse_file(fn);
  ASSERT_EQ(parsed.functions.size(), 1u);
  EXPECT_EQ(parsed.functions[0].name, ctx.func_name);
}

TEST(Codegen, FileHasIncludesAndFunctions) {
  util::Rng rng(3);
  const corpus::FunctionContext ctx = corpus::draw_context(rng);
  const auto fn = corpus::make_function(ctx, corpus::filler_statements(rng, ctx, 3));
  const auto file = corpus::make_file(rng, {fn, fn});
  EXPECT_EQ(file[0], "#include <stdio.h>");
  const lang::ParsedFile parsed = lang::parse_file(file);
  EXPECT_EQ(parsed.functions.size(), 2u);
}

// ------------------------------------------------------------- mutate --

class MutationPerType : public ::testing::TestWithParam<PatchType> {};

TEST_P(MutationPerType, BeforeAfterDifferAndParse) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed * 17 + 1);
    const corpus::FunctionContext ctx = corpus::draw_context(rng);
    const corpus::MutationResult m = corpus::make_mutation(rng, ctx, GetParam());
    EXPECT_NE(m.before, m.after) << "seed " << seed;
    EXPECT_FALSE(m.message.empty());
    EXPECT_EQ(m.type, GetParam());
    // Both versions must still be parseable as a single function.
    EXPECT_EQ(lang::parse_file(m.before).functions.size(), 1u);
    // (AFTER may change the signature; it still must contain exactly one
    //  function body.)
    EXPECT_GE(lang::parse_file(m.after).functions.size(),
              GetParam() == PatchType::kFuncDeclaration ? 0u : 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, MutationPerType,
    ::testing::Values(PatchType::kBoundCheck, PatchType::kNullCheck,
                      PatchType::kSanityCheck, PatchType::kVarDefinition,
                      PatchType::kVarValue, PatchType::kFuncDeclaration,
                      PatchType::kFuncParameter, PatchType::kFuncCall,
                      PatchType::kJumpStatement, PatchType::kMoveStatement,
                      PatchType::kRedesign, PatchType::kOther,
                      PatchType::kNewFeature, PatchType::kRefactor,
                      PatchType::kPerfFix, PatchType::kLogicBugFix,
                      PatchType::kStyle, PatchType::kDocs),
    [](const ::testing::TestParamInfo<PatchType>& info) {
      return "type_" + std::to_string(static_cast<int>(info.param));
    });

TEST(Mutation, MoveStatementIsAPureMove) {
  util::Rng rng(9);
  const corpus::FunctionContext ctx = corpus::draw_context(rng);
  const corpus::MutationResult m =
      corpus::make_mutation(rng, ctx, PatchType::kMoveStatement);
  // Same multiset of lines, different order.
  std::vector<std::string> b = m.before;
  std::vector<std::string> a = m.after;
  std::sort(b.begin(), b.end());
  std::sort(a.begin(), a.end());
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------------- repo --

class CommitPerType : public ::testing::TestWithParam<PatchType> {};

TEST_P(CommitPerType, CommitIsWellFormed) {
  util::Rng rng(static_cast<std::uint64_t>(static_cast<int>(GetParam())) * 31 + 7);
  corpus::CommitOptions opt;
  opt.keep_snapshots = true;
  const corpus::CommitRecord record =
      corpus::make_commit(rng, "librepo", GetParam(), opt);

  EXPECT_EQ(record.patch.commit.size(), 40u);
  EXPECT_EQ(record.truth.type, GetParam());
  EXPECT_EQ(record.truth.is_security, corpus::is_security_type(GetParam()));
  EXPECT_FALSE(record.patch.files.empty());
  EXPECT_GT(record.patch.hunk_count(), 0u);

  // The rendered patch must survive a parse round-trip.
  const diff::Patch reparsed = diff::parse_patch(diff::render_patch(record.patch));
  EXPECT_EQ(reparsed.files.size(), record.patch.files.size());
  EXPECT_EQ(reparsed.commit, record.patch.commit);

  // Snapshots: the diff applied to BEFORE must produce AFTER.
  ASSERT_FALSE(record.snapshots.empty());
  for (const corpus::FileSnapshot& snap : record.snapshots) {
    const diff::FileDiff* fd = nullptr;
    for (const diff::FileDiff& f : record.patch.files) {
      if (f.new_path == snap.path) fd = &f;
    }
    ASSERT_NE(fd, nullptr);
    EXPECT_EQ(diff::apply_file_diff(snap.before, *fd), snap.after);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, CommitPerType,
    ::testing::Values(PatchType::kBoundCheck, PatchType::kNullCheck,
                      PatchType::kSanityCheck, PatchType::kVarDefinition,
                      PatchType::kVarValue, PatchType::kFuncDeclaration,
                      PatchType::kFuncParameter, PatchType::kFuncCall,
                      PatchType::kJumpStatement, PatchType::kMoveStatement,
                      PatchType::kRedesign, PatchType::kOther,
                      PatchType::kNewFeature, PatchType::kRefactor,
                      PatchType::kPerfFix, PatchType::kLogicBugFix,
                      PatchType::kStyle, PatchType::kDocs),
    [](const ::testing::TestParamInfo<PatchType>& info) {
      return "type_" + std::to_string(static_cast<int>(info.param));
    });

TEST(Repo, NoiseFilesInjectedAtConfiguredRate) {
  util::Rng rng(13);
  corpus::CommitOptions opt;
  opt.noise_file_prob = 1.0;
  const corpus::CommitRecord record =
      corpus::make_commit(rng, "r", PatchType::kNullCheck, opt);
  bool has_changelog = false;
  for (const diff::FileDiff& fd : record.patch.files) {
    if (fd.new_path == "ChangeLog") has_changelog = true;
  }
  EXPECT_TRUE(has_changelog);
}

TEST(Repo, VersionBumpIsLargeAndNonSecurity) {
  util::Rng rng(17);
  const corpus::CommitRecord bump = corpus::make_version_bump_commit(rng, "r");
  EXPECT_FALSE(bump.truth.is_security);
  EXPECT_GE(bump.patch.files.size(), 6u);
}

TEST(Repo, DrawPatchTypeHonorsSecurityProb) {
  util::Rng rng(19);
  std::size_t security = 0;
  for (int i = 0; i < 2000; ++i) {
    security += corpus::is_security_type(
        corpus::draw_patch_type(rng, corpus::nvd_type_distribution(), 0.08));
  }
  EXPECT_NEAR(static_cast<double>(security) / 2000.0, 0.08, 0.02);
}

TEST(Repo, CommitIdsAreUnique) {
  util::Rng rng(23);
  std::set<std::string> ids;
  for (int i = 0; i < 200; ++i) {
    ids.insert(
        corpus::make_commit(rng, "r", PatchType::kBoundCheck).patch.commit);
  }
  EXPECT_EQ(ids.size(), 200u);
}

// ----------------------------------------------------- remote + crawl --

TEST(Remote, FetchMissesAre404) {
  corpus::RemoteStore store;
  store.put("http://x/1", "body");
  EXPECT_TRUE(store.fetch("http://x/1").has_value());
  EXPECT_FALSE(store.fetch("http://x/2").has_value());
}

TEST(Crawler, CollectsAndFiltersPatches) {
  util::Rng rng(31);
  corpus::RemoteStore store;
  std::vector<corpus::NvdEntry> entries;

  // Entry 0: good patch with a ChangeLog companion (must be stripped).
  corpus::CommitOptions opt;
  opt.noise_file_prob = 1.0;
  const corpus::CommitRecord good =
      corpus::make_commit(rng, "repo", PatchType::kBoundCheck, opt);
  const std::string good_url = corpus::github_commit_url("repo", good.patch.commit);
  store.put(good_url + ".patch", diff::render_patch(good.patch));
  entries.push_back({"CVE-2020-0001", {good_url}, {good_url}, 7.5, "CWE-119", 2020});

  // Entry 1: no patch-tagged link at all.
  entries.push_back({"CVE-2020-0002", {"https://advisory.example"}, {}, 5.0, "CWE-20", 2020});

  // Entry 2: dead link.
  const std::string dead_url = corpus::github_commit_url("repo", "feedfeed");
  entries.push_back({"CVE-2020-0003", {dead_url}, {dead_url}, 6.1, "CWE-476", 2020});

  // Entry 3: unparseable page.
  const std::string junk_url = corpus::github_commit_url("repo", "junkjunk");
  store.put(junk_url + ".patch", "this is not a patch");
  entries.push_back({"CVE-2020-0004", {junk_url}, {junk_url}, 4.3, "CWE-710", 2020});

  corpus::NvdCrawler crawler(store);
  const auto collected = crawler.crawl(entries);
  const corpus::CrawlStats& stats = crawler.stats();

  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0].cve_id, "CVE-2020-0001");
  EXPECT_EQ(stats.entries_total, 4u);
  EXPECT_EQ(stats.entries_without_patch_link, 1u);
  EXPECT_EQ(stats.links_dead, 1u);
  EXPECT_EQ(stats.parse_failures, 1u);
  EXPECT_GE(stats.dropped_non_cpp_files, 1u);  // the ChangeLog
  EXPECT_EQ(stats.patches_collected, 1u);
  for (const diff::FileDiff& fd : collected[0].patch.files) {
    EXPECT_TRUE(diff::is_cpp_path(fd.new_path));
  }
}

// -------------------------------------------------------------- oracle --

TEST(Oracle, CountsEffortAndAnswersTruthfully) {
  corpus::Oracle oracle;
  oracle.add("c1", {true, PatchType::kBoundCheck});
  oracle.add("c2", {false, PatchType::kRefactor});
  EXPECT_TRUE(oracle.verify_security("c1"));
  EXPECT_FALSE(oracle.verify_security("c2"));
  EXPECT_EQ(oracle.effort(), 2u);
  oracle.reset_effort();
  EXPECT_EQ(oracle.effort(), 0u);
}

TEST(Oracle, UnknownCommitThrows) {
  corpus::Oracle oracle;
  EXPECT_THROW(oracle.verify_security("nope"), std::out_of_range);
}

TEST(Oracle, LabelNoiseFlipsSomeAnswers) {
  corpus::Oracle noisy(0.3, 5);
  for (int i = 0; i < 200; ++i) {
    noisy.add("c" + std::to_string(i), {true, PatchType::kBoundCheck});
  }
  int flipped = 0;
  for (int i = 0; i < 200; ++i) {
    flipped += !noisy.verify_security("c" + std::to_string(i));
  }
  EXPECT_GT(flipped, 30);
  EXPECT_LT(flipped, 90);
}

// -------------------------------------------------------------- world --

TEST(World, SmallWorldEndToEnd) {
  corpus::WorldConfig config;
  config.repos = 5;
  config.nvd_security = 40;
  config.wild_pool = 300;
  config.wild_security_rate = 0.10;
  config.seed = 7;
  const corpus::World world = corpus::build_world(config);

  // Crawl losses: missing links and dead links shrink the collected set.
  EXPECT_LE(world.nvd_security.size(), config.nvd_security);
  EXPECT_GT(world.nvd_security.size(), config.nvd_security / 2);
  EXPECT_EQ(world.wild.size(), config.wild_pool);
  EXPECT_EQ(world.nvd_entries.size(), config.nvd_security);
  EXPECT_GT(world.crawl_stats.entries_without_patch_link, 0u);

  // Every collected NVD patch is security ground truth (minus the rare
  // wrong-link bumps) and carries snapshots.
  std::size_t security = 0;
  std::size_t with_snapshots = 0;
  for (const corpus::CommitRecord& r : world.nvd_security) {
    security += r.truth.is_security;
    with_snapshots += !r.snapshots.empty();
  }
  EXPECT_GE(security, world.nvd_security.size() * 9 / 10);
  EXPECT_GE(with_snapshots, security);

  // The wild pool's security rate matches the configuration.
  std::size_t wild_security = 0;
  for (const corpus::CommitRecord& r : world.wild) {
    wild_security += r.truth.is_security;
    EXPECT_TRUE(world.oracle.known(r.patch.commit));
  }
  const double rate =
      static_cast<double>(wild_security) / static_cast<double>(world.wild.size());
  EXPECT_NEAR(rate, 0.10, 0.04);
}

TEST(World, NvdEntriesCarryEnhancedMetadata) {
  corpus::WorldConfig config;
  config.repos = 3;
  config.nvd_security = 30;
  config.wild_pool = 10;
  config.seed = 4242;
  const corpus::World world = corpus::build_world(config);
  for (const corpus::NvdEntry& e : world.nvd_entries) {
    EXPECT_EQ(e.cve_id.rfind("CVE-", 0), 0u);
    EXPECT_GE(e.year, 1999);
    EXPECT_LE(e.year, 2019);
    EXPECT_GE(e.cvss, 1.0);
    EXPECT_LE(e.cvss, 10.0);
    EXPECT_EQ(e.cwe.rfind("CWE-", 0), 0u);
  }
}

TEST(World, CweMappingCoversAllTypes) {
  std::set<std::string> seen;
  for (int t = 1; t <= 12; ++t) {
    const std::string cwe = corpus::cwe_for_type(t);
    EXPECT_EQ(cwe.rfind("CWE-", 0), 0u);
    seen.insert(cwe);
  }
  EXPECT_GE(seen.size(), 8u);  // distinct CWEs for distinct fix patterns
}

TEST(World, DeterministicForSameSeed) {
  corpus::WorldConfig config;
  config.repos = 3;
  config.nvd_security = 10;
  config.wild_pool = 50;
  config.seed = 99;
  const corpus::World a = corpus::build_world(config);
  const corpus::World b = corpus::build_world(config);
  ASSERT_EQ(a.wild.size(), b.wild.size());
  for (std::size_t i = 0; i < a.wild.size(); ++i) {
    EXPECT_EQ(a.wild[i].patch.commit, b.wild[i].patch.commit);
  }
}

TEST(World, ZeroReposRejected) {
  corpus::WorldConfig config;
  config.repos = 0;
  EXPECT_THROW(corpus::build_world(config), std::invalid_argument);
}

}  // namespace
}  // namespace patchdb
