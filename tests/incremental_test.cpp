// Tests for the round-to-round optimizations: the IncrementalLinker
// (cached-neighborhood nearest link) and k-fold cross validation.
#include <gtest/gtest.h>

#include <set>

#include "core/distance.h"
#include "core/incremental.h"
#include "core/nearest_link.h"
#include "ml/crossval.h"
#include "ml/forest.h"
#include "util/rng.h"

namespace patchdb {
namespace {

feature::FeatureMatrix random_features(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  feature::FeatureMatrix m(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      m[i][j] = rng.uniform(-10, 10);
    }
  }
  return m;
}

// ------------------------------------------------- incremental linker --

class IncrementalVsExhaustive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalVsExhaustive, MatchesBatchGreedyOnFreshPool) {
  const std::uint64_t seed = GetParam();
  const feature::FeatureMatrix seeds = random_features(12, seed * 3 + 1);
  const feature::FeatureMatrix pool = random_features(300, seed * 3 + 2);
  const std::vector<double> weights = core::maxabs_weights(seeds, pool);

  core::IncrementalLinker linker(/*k=*/24);
  linker.set_pool(pool, weights);
  linker.add_seeds(seeds);
  const core::LinkResult incremental = linker.link();

  const core::DistanceMatrix d = core::distance_matrix(seeds, pool, weights);
  const core::LinkResult batch = core::nearest_link_search(d);

  // With k >= number of links consumed from any neighborhood, the cached
  // greedy makes the same choices as the exhaustive greedy.
  ASSERT_EQ(incremental.candidate.size(), batch.candidate.size());
  EXPECT_EQ(incremental.candidate, batch.candidate);
  EXPECT_NEAR(incremental.total_distance, batch.total_distance, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalVsExhaustive,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(IncrementalLinker, DistinctCandidatesAlways) {
  const feature::FeatureMatrix seeds = random_features(40, 7);
  const feature::FeatureMatrix pool = random_features(60, 8);
  core::IncrementalLinker linker(/*k=*/4);  // tiny cache forces fallbacks
  linker.set_pool(pool, core::maxabs_weights(seeds, pool));
  linker.add_seeds(seeds);
  const core::LinkResult r = linker.link();
  const std::set<std::size_t> unique(r.candidate.begin(), r.candidate.end());
  EXPECT_EQ(unique.size(), seeds.rows());
  EXPECT_GT(linker.row_scans(), seeds.rows());  // cache misses happened
}

TEST(IncrementalLinker, RemovalShrinksLivePoolAndAvoidsDead) {
  const feature::FeatureMatrix seeds = random_features(10, 11);
  const feature::FeatureMatrix pool = random_features(100, 12);
  core::IncrementalLinker linker;
  linker.set_pool(pool, core::maxabs_weights(seeds, pool));
  linker.add_seeds(seeds);

  const core::LinkResult first = linker.link();
  linker.remove_from_pool(first.candidate);
  EXPECT_EQ(linker.pool_live(), 90u);

  const core::LinkResult second = linker.link();
  for (std::size_t c : second.candidate) {
    EXPECT_EQ(std::count(first.candidate.begin(), first.candidate.end(), c), 0)
        << "linked to a removed pool entry";
  }
}

TEST(IncrementalLinker, AddSeedsOnlyScansNewRows) {
  const feature::FeatureMatrix seeds_a = random_features(10, 21);
  const feature::FeatureMatrix seeds_b = random_features(5, 22);
  const feature::FeatureMatrix pool = random_features(200, 23);
  core::IncrementalLinker linker;
  linker.set_pool(pool, core::maxabs_weights(seeds_a, pool));
  linker.add_seeds(seeds_a);
  (void)linker.link();
  const std::size_t scans_after_first = linker.row_scans();
  EXPECT_EQ(scans_after_first, 10u);

  linker.add_seeds(seeds_b);
  (void)linker.link();
  // Only the 5 new seeds needed fresh row scans (plus possible fallbacks,
  // which should be zero here: nothing was removed).
  EXPECT_EQ(linker.row_scans(), scans_after_first + 5u);
}

TEST(IncrementalLinker, ErrorsOnMisuse) {
  core::IncrementalLinker linker;
  const feature::FeatureMatrix seeds = random_features(3, 31);
  EXPECT_THROW(linker.add_seeds(seeds), std::logic_error);  // no pool yet

  const feature::FeatureMatrix pool = random_features(2, 32);
  linker.set_pool(pool, std::vector<double>(feature::kFeatureCount, 1.0));
  linker.add_seeds(seeds);
  EXPECT_THROW(linker.link(), std::invalid_argument);  // pool < seeds

  EXPECT_THROW(linker.remove_from_pool(std::vector<std::size_t>{99}),
               std::out_of_range);
}

TEST(IncrementalLinker, EmptySeedSetYieldsEmptyResult) {
  core::IncrementalLinker linker;
  const feature::FeatureMatrix pool = random_features(5, 41);
  linker.set_pool(pool, std::vector<double>(feature::kFeatureCount, 1.0));
  const core::LinkResult r = linker.link();
  EXPECT_TRUE(r.candidate.empty());
  EXPECT_EQ(r.total_distance, 0.0);
}

// ---------------------------------------------------------- crossval --

ml::Dataset blobs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  ml::Dataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    std::vector<double> x(4);
    for (double& v : x) v = rng.normal(label == 1 ? 2.0 : -2.0, 1.0);
    data.push_back(std::move(x), label);
  }
  return data;
}

TEST(CrossVal, FiveFoldOnSeparableData) {
  const ml::Dataset data = blobs(300, 3);
  const ml::CrossValResult result = ml::cross_validate(
      data, 5, [] { return std::make_unique<ml::RandomForest>(); }, 7);
  ASSERT_EQ(result.folds.size(), 5u);
  EXPECT_GT(result.mean_accuracy(), 0.9);
  EXPECT_GT(result.mean_precision(), 0.9);
  EXPECT_GT(result.mean_recall(), 0.9);
  EXPECT_GT(result.mean_f1(), 0.9);
}

TEST(CrossVal, FoldsCoverEveryRowOnce) {
  const ml::Dataset data = blobs(100, 5);
  const ml::CrossValResult result = ml::cross_validate(
      data, 4, [] { return std::make_unique<ml::RandomForest>(); }, 9);
  std::size_t tested = 0;
  for (const ml::Confusion& c : result.folds) {
    tested += c.tp + c.fp + c.tn + c.fn;
  }
  EXPECT_EQ(tested, data.size());
}

TEST(CrossVal, RejectsBadK) {
  const ml::Dataset data = blobs(10, 7);
  const auto factory = [] { return std::make_unique<ml::RandomForest>(); };
  EXPECT_THROW(ml::cross_validate(data, 1, factory, 1), std::invalid_argument);
  EXPECT_THROW(ml::cross_validate(data, 11, factory, 1), std::invalid_argument);
}

}  // namespace
}  // namespace patchdb
