// Tests for the on-disk dataset layout: export/load round trips, layout
// contents, strict manifest parsing, and failure handling for corrupted
// exports (flipped bytes, truncated files, tampered manifests).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/patchdb.h"
#include "diff/render.h"
#include "store/csv.h"
#include "store/export.h"
#include "store/io.h"

namespace patchdb {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("patchdb_store_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static core::PatchDb small_db() {
    core::BuildOptions options;
    options.world.repos = 4;
    options.world.nvd_security = 25;
    options.world.wild_pool = 400;
    options.world.seed = 404;
    options.augment.max_rounds = 1;
    options.synthesis.max_per_patch = 2;
    return core::build_patchdb(options);
  }

  /// A properly sealed v2 manifest holding `rows` (so tests exercise row
  /// validation, not just the checksum trailer).
  void write_sealed_manifest(const std::string& rows) {
    fs::create_directories(root_);
    std::string body(store::store_version_line());
    body += '\n';
    body += store::manifest_header();
    body += rows;
    std::ofstream out(root_ / "manifest.csv", std::ios::binary);
    out << store::with_checksum_trailer(std::move(body));
  }

  fs::path root_;
};

TEST_F(StoreTest, ExportWritesLayout) {
  const core::PatchDb db = small_db();
  const store::ExportStats stats = store::export_patchdb(db, root_);

  EXPECT_TRUE(fs::exists(root_ / "manifest.csv"));
  EXPECT_TRUE(fs::exists(root_ / "features.csv"));
  EXPECT_TRUE(fs::exists(root_ / "nvd"));
  EXPECT_TRUE(fs::exists(root_ / "wild"));
  EXPECT_TRUE(fs::exists(root_ / "nonsecurity"));
  EXPECT_TRUE(fs::exists(root_ / "synthetic"));

  const std::size_t expected = db.nvd_security.size() + db.wild_security.size() +
                               db.nonsecurity.size() + db.synthetic.size();
  EXPECT_EQ(stats.patches_written, expected);
  EXPECT_EQ(stats.feature_rows,
            expected - db.synthetic.size());  // features for natural only

  // Every NVD patch file exists and is non-empty.
  for (const corpus::CommitRecord& r : db.nvd_security) {
    const fs::path p = root_ / "nvd" / (r.patch.commit + ".patch");
    ASSERT_TRUE(fs::exists(p)) << p;
    EXPECT_GT(fs::file_size(p), 0u);
  }
}

TEST_F(StoreTest, RoundTripPreservesEverything) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  const store::LoadedPatchDb loaded = store::load_patchdb(root_);

  ASSERT_EQ(loaded.nvd_security.size(), db.nvd_security.size());
  ASSERT_EQ(loaded.wild_security.size(), db.wild_security.size());
  ASSERT_EQ(loaded.nonsecurity.size(), db.nonsecurity.size());
  ASSERT_EQ(loaded.synthetic.size(), db.synthetic.size());

  // Patches round-trip byte-for-byte through render/parse/render; the
  // manifest restores labels, types, repos.
  for (std::size_t i = 0; i < db.nvd_security.size(); ++i) {
    // Order within a component is preserved by the manifest.
    EXPECT_EQ(diff::render_patch(loaded.nvd_security[i].patch),
              diff::render_patch(db.nvd_security[i].patch));
    EXPECT_EQ(loaded.nvd_security[i].truth.type, db.nvd_security[i].truth.type);
    EXPECT_EQ(loaded.nvd_security[i].repo, db.nvd_security[i].repo);
    EXPECT_TRUE(loaded.nvd_security[i].truth.is_security);
  }
  for (std::size_t i = 0; i < db.synthetic.size(); ++i) {
    EXPECT_EQ(loaded.synthetic[i].origin_commit, db.synthetic[i].origin_commit);
    EXPECT_EQ(loaded.synthetic[i].variant, db.synthetic[i].variant);
    EXPECT_EQ(loaded.synthetic[i].modified_after, db.synthetic[i].modified_after);
    EXPECT_EQ(loaded.synthetic[i].truth.is_security,
              db.synthetic[i].truth.is_security);
  }
}

// The seed exporter wrote manifest fields verbatim, so a repo named
// "lib,foo" produced an extra column and the row loaded as garbage.
// Fields holding separators, quotes, and CRLF must now round-trip.
TEST_F(StoreTest, NastyManifestFieldsRoundTrip) {
  core::PatchDb db = small_db();
  ASSERT_FALSE(db.nvd_security.empty());
  ASSERT_FALSE(db.synthetic.empty());
  db.nvd_security[0].repo = "evil,\"repo\"\r\nwith everything,";
  db.nvd_security[1].repo = "trailing-newline\n";
  db.synthetic[0].origin_commit = "comma,quote\"crlf\r\n";

  store::export_patchdb(db, root_);
  const store::LoadedPatchDb loaded = store::load_patchdb(root_);
  ASSERT_EQ(loaded.nvd_security.size(), db.nvd_security.size());
  EXPECT_EQ(loaded.nvd_security[0].repo, db.nvd_security[0].repo);
  EXPECT_EQ(loaded.nvd_security[1].repo, db.nvd_security[1].repo);
  EXPECT_EQ(loaded.synthetic[0].origin_commit, db.synthetic[0].origin_commit);
}

TEST_F(StoreTest, CsvEscapeAndParseRoundTrip) {
  const std::string fields[] = {"plain", "with,comma", "with\"quote",
                                "multi\r\nline", "", "  spaced  "};
  std::string doc;
  for (std::size_t i = 0; i < std::size(fields); ++i) {
    if (i != 0) doc += ',';
    doc += store::csv_escape(fields[i]);
  }
  doc += '\n';
  const auto rows = store::csv_parse(doc);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), std::size(fields));
  for (std::size_t i = 0; i < std::size(fields); ++i) {
    EXPECT_EQ(rows[0][i], fields[i]) << i;
  }

  EXPECT_THROW(store::csv_parse("\"unterminated\n"), std::runtime_error);
  EXPECT_THROW(store::csv_parse("a,\"b\"junk\n"), std::runtime_error);
  EXPECT_THROW(store::csv_parse("stray\"quote\n"), std::runtime_error);
}

// Satellite: the loader used std::atoi, which silently parsed "7x" as 7
// and "junk" as 0. parse_int_field must reject anything non-numeric.
TEST_F(StoreTest, ParseIntFieldIsStrict) {
  EXPECT_EQ(store::parse_int_field("0", 100, "t"), 0);
  EXPECT_EQ(store::parse_int_field("42", 100, "t"), 42);
  EXPECT_THROW(store::parse_int_field("", 100, "t"), std::runtime_error);
  EXPECT_THROW(store::parse_int_field("7x", 100, "t"), std::runtime_error);
  EXPECT_THROW(store::parse_int_field("-1", 100, "t"), std::runtime_error);
  EXPECT_THROW(store::parse_int_field(" 7", 100, "t"), std::runtime_error);
  EXPECT_THROW(store::parse_int_field("101", 100, "t"), std::runtime_error);
}

TEST_F(StoreTest, FeaturesCsvHasHeaderAndRows) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  std::ifstream in(root_ / "features.csv");
  std::string version;
  std::getline(in, version);
  EXPECT_EQ(version, store::store_version_line());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("commit,changed_lines,", 0), 0u);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;  // checksum trailer
    ++rows;
  }
  EXPECT_EQ(rows, db.nvd_security.size() + db.wild_security.size() +
                      db.nonsecurity.size());
}

TEST_F(StoreTest, LoadMissingManifestThrows) {
  fs::create_directories(root_);
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadUnsealedManifestThrows) {
  // A v1-style manifest without the checksum trailer must be rejected.
  fs::create_directories(root_);
  std::ofstream out(root_ / "manifest.csv", std::ios::binary);
  out << store::store_version_line() << "\n" << store::manifest_header();
  out.close();
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadMalformedManifestRowThrows) {
  write_sealed_manifest("too,few,fields\n");
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadRejectsGarbageFields) {
  const struct {
    const char* name;
    const char* row;
  } cases[] = {
      // std::atoi would have read "7x" as 7 and loaded the row.
      {"trailing garbage in type",
       "deadbeef,nvd,security,7x,repo,,0,0,0123456789abcdef\n"},
      {"case-sensitive label",
       "deadbeef,nvd,Security,1,repo,,0,0,0123456789abcdef\n"},
      {"non-numeric variant",
       "deadbeef,synthetic,security,1,,beef,x,0,0123456789abcdef\n"},
      {"out-of-range synthesis variant",
       "deadbeef,synthetic,security,1,,beef,99,0,0123456789abcdef\n"},
      {"natural patch with nonzero variant",
       "deadbeef,nvd,security,1,repo,,3,0,0123456789abcdef\n"},
      {"modified_after out of range",
       "deadbeef,nvd,security,1,repo,,0,2,0123456789abcdef\n"},
      {"unknown patch type",
       "deadbeef,nvd,security,55,repo,,0,0,0123456789abcdef\n"},
      // Commits double as file names; a traversal must not leave root.
      {"commit with path traversal",
       "../../etc/passwd,nvd,security,1,repo,,0,0,0123456789abcdef\n"},
      {"uppercase commit",
       "DEADBEEF,nvd,security,1,repo,,0,0,0123456789abcdef\n"},
      {"short checksum", "deadbeef,nvd,security,1,repo,,0,0,0123\n"},
  };
  for (const auto& c : cases) {
    fs::remove_all(root_);
    write_sealed_manifest(c.row);
    EXPECT_THROW(store::load_patchdb(root_), std::runtime_error) << c.name;
  }
}

TEST_F(StoreTest, LoadMissingPatchFileThrows) {
  fs::create_directories(root_ / "nvd");
  write_sealed_manifest("deadbeef,nvd,security,1,repo,,0,0,0123456789abcdef\n");
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadDetectsFlippedByteInManifest) {
  store::export_patchdb(small_db(), root_);
  const fs::path manifest = root_ / "manifest.csv";
  std::string content = store::read_file(manifest);
  content[content.size() / 2] ^= 0x01;
  std::ofstream(manifest, std::ios::binary) << content;
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadDetectsCorruptedPatchFile) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  const fs::path victim =
      root_ / "nvd" / (db.nvd_security[0].patch.commit + ".patch");
  std::string content = store::read_file(victim);
  content[content.size() / 2] ^= 0x01;  // same length, one flipped bit
  std::ofstream(victim, std::ios::binary) << content;
  try {
    store::load_patchdb(root_);
    FAIL() << "corrupted patch file loaded without error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"),
              std::string::npos);
  }
}

TEST_F(StoreTest, LoadDetectsTruncatedPatchFile) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  const fs::path victim =
      root_ / "wild" / (db.wild_security[0].patch.commit + ".patch");
  const std::string content = store::read_file(victim);
  std::ofstream(victim, std::ios::binary)
      << content.substr(0, content.size() / 2);
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, ChecksumTrailerRejectsAnyTampering) {
  const std::string sealed = store::with_checksum_trailer("line one\nline two\n");
  EXPECT_EQ(store::strip_checksum_trailer(sealed, "doc"),
            "line one\nline two\n");
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string bad = sealed;
    bad[i] ^= 0x02;
    EXPECT_THROW(store::strip_checksum_trailer(bad, "doc"), std::runtime_error)
        << "flipped byte " << i << " went undetected";
  }
  EXPECT_THROW(store::strip_checksum_trailer("no trailer at all\n", "doc"),
               std::runtime_error);
  EXPECT_THROW(
      store::strip_checksum_trailer(sealed.substr(0, sealed.size() - 3), "doc"),
      std::runtime_error);
}

TEST_F(StoreTest, ExportIsIdempotent) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  const store::ExportStats again = store::export_patchdb(db, root_);
  EXPECT_GT(again.patches_written, 0u);
  const store::LoadedPatchDb loaded = store::load_patchdb(root_);
  EXPECT_EQ(loaded.nvd_security.size(), db.nvd_security.size());
}

}  // namespace
}  // namespace patchdb
