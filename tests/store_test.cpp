// Tests for the on-disk dataset layout: export/load round trips, layout
// contents, and failure handling for corrupted exports.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/patchdb.h"
#include "diff/render.h"
#include "store/export.h"

namespace patchdb {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("patchdb_store_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static core::PatchDb small_db() {
    core::BuildOptions options;
    options.world.repos = 4;
    options.world.nvd_security = 25;
    options.world.wild_pool = 400;
    options.world.seed = 404;
    options.augment.max_rounds = 1;
    options.synthesis.max_per_patch = 2;
    return core::build_patchdb(options);
  }

  fs::path root_;
};

TEST_F(StoreTest, ExportWritesLayout) {
  const core::PatchDb db = small_db();
  const store::ExportStats stats = store::export_patchdb(db, root_);

  EXPECT_TRUE(fs::exists(root_ / "manifest.csv"));
  EXPECT_TRUE(fs::exists(root_ / "features.csv"));
  EXPECT_TRUE(fs::exists(root_ / "nvd"));
  EXPECT_TRUE(fs::exists(root_ / "wild"));
  EXPECT_TRUE(fs::exists(root_ / "nonsecurity"));
  EXPECT_TRUE(fs::exists(root_ / "synthetic"));

  const std::size_t expected = db.nvd_security.size() + db.wild_security.size() +
                               db.nonsecurity.size() + db.synthetic.size();
  EXPECT_EQ(stats.patches_written, expected);
  EXPECT_EQ(stats.feature_rows,
            expected - db.synthetic.size());  // features for natural only

  // Every NVD patch file exists and is non-empty.
  for (const corpus::CommitRecord& r : db.nvd_security) {
    const fs::path p = root_ / "nvd" / (r.patch.commit + ".patch");
    ASSERT_TRUE(fs::exists(p)) << p;
    EXPECT_GT(fs::file_size(p), 0u);
  }
}

TEST_F(StoreTest, RoundTripPreservesEverything) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  const store::LoadedPatchDb loaded = store::load_patchdb(root_);

  ASSERT_EQ(loaded.nvd_security.size(), db.nvd_security.size());
  ASSERT_EQ(loaded.wild_security.size(), db.wild_security.size());
  ASSERT_EQ(loaded.nonsecurity.size(), db.nonsecurity.size());
  ASSERT_EQ(loaded.synthetic.size(), db.synthetic.size());

  // Patches round-trip byte-for-byte through render/parse/render; the
  // manifest restores labels, types, repos.
  for (std::size_t i = 0; i < db.nvd_security.size(); ++i) {
    // Order within a component is preserved by the manifest.
    EXPECT_EQ(diff::render_patch(loaded.nvd_security[i].patch),
              diff::render_patch(db.nvd_security[i].patch));
    EXPECT_EQ(loaded.nvd_security[i].truth.type, db.nvd_security[i].truth.type);
    EXPECT_EQ(loaded.nvd_security[i].repo, db.nvd_security[i].repo);
    EXPECT_TRUE(loaded.nvd_security[i].truth.is_security);
  }
  for (std::size_t i = 0; i < db.synthetic.size(); ++i) {
    EXPECT_EQ(loaded.synthetic[i].origin_commit, db.synthetic[i].origin_commit);
    EXPECT_EQ(loaded.synthetic[i].variant, db.synthetic[i].variant);
    EXPECT_EQ(loaded.synthetic[i].modified_after, db.synthetic[i].modified_after);
    EXPECT_EQ(loaded.synthetic[i].truth.is_security,
              db.synthetic[i].truth.is_security);
  }
}

TEST_F(StoreTest, FeaturesCsvHasHeaderAndRows) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  std::ifstream in(root_ / "features.csv");
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("commit,changed_lines,", 0), 0u);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, db.nvd_security.size() + db.wild_security.size() +
                      db.nonsecurity.size());
}

TEST_F(StoreTest, LoadMissingManifestThrows) {
  fs::create_directories(root_);
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadMalformedManifestRowThrows) {
  fs::create_directories(root_);
  std::ofstream out(root_ / "manifest.csv");
  out << store::manifest_header();
  out << "too,few,fields\n";
  out.close();
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, LoadMissingPatchFileThrows) {
  fs::create_directories(root_ / "nvd");
  std::ofstream out(root_ / "manifest.csv");
  out << store::manifest_header();
  out << "deadbeef,nvd,security,1,repo,,0,0\n";
  out.close();
  EXPECT_THROW(store::load_patchdb(root_), std::runtime_error);
}

TEST_F(StoreTest, ExportIsIdempotent) {
  const core::PatchDb db = small_db();
  store::export_patchdb(db, root_);
  const store::ExportStats again = store::export_patchdb(db, root_);
  EXPECT_GT(again.patches_written, 0u);
  const store::LoadedPatchDb loaded = store::load_patchdb(root_);
  EXPECT_EQ(loaded.nvd_security.size(), db.nvd_security.size());
}

}  // namespace
}  // namespace patchdb
