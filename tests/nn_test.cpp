// Tests for the GRU classifier: vocabulary, patch encoding, learning on
// synthetic token patterns, and a finite-difference gradient check of
// the hand-derived backpropagation.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "corpus/repo.h"
#include "nn/encode.h"
#include "nn/gru.h"
#include "nn/vocab.h"
#include "util/rng.h"

namespace patchdb {
namespace {

// -------------------------------------------------------------- vocab --

TEST(Vocabulary, BuildRespectsMinCount) {
  const std::vector<std::vector<std::string>> docs = {
      {"if", "x", "if"}, {"if", "y"},
  };
  const nn::Vocabulary vocab = nn::Vocabulary::build(docs, 2);
  EXPECT_NE(vocab.id_of("if"), nn::Vocabulary::kUnk);
  EXPECT_EQ(vocab.id_of("x"), nn::Vocabulary::kUnk);   // count 1 < 2
  EXPECT_EQ(vocab.id_of("zzz"), nn::Vocabulary::kUnk);
  EXPECT_EQ(vocab.size(), 3u);  // pad, unk, "if"
}

TEST(Vocabulary, MaxSizeKeepsMostFrequent) {
  const std::vector<std::vector<std::string>> docs = {
      {"a", "a", "a", "b", "b", "c"},
  };
  const nn::Vocabulary vocab = nn::Vocabulary::build(docs, 1, 2);
  EXPECT_NE(vocab.id_of("a"), nn::Vocabulary::kUnk);
  EXPECT_NE(vocab.id_of("b"), nn::Vocabulary::kUnk);
  EXPECT_EQ(vocab.id_of("c"), nn::Vocabulary::kUnk);
}

TEST(Vocabulary, EncodeIsStable) {
  const std::vector<std::vector<std::string>> docs = {{"x", "y", "x"}};
  const nn::Vocabulary vocab = nn::Vocabulary::build(docs, 1);
  const std::vector<std::string> seq = {"x", "y", "unknown"};
  const auto ids = vocab.encode(seq);
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[0], vocab.id_of("x"));
  EXPECT_EQ(ids[2], nn::Vocabulary::kUnk);
  for (auto id : ids) EXPECT_LT(static_cast<std::size_t>(id), vocab.size());
}

TEST(Vocabulary, DeterministicIdAssignment) {
  const std::vector<std::vector<std::string>> docs = {{"b", "a", "b", "a"}};
  const nn::Vocabulary v1 = nn::Vocabulary::build(docs, 1);
  const nn::Vocabulary v2 = nn::Vocabulary::build(docs, 1);
  EXPECT_EQ(v1.id_of("a"), v2.id_of("a"));
  EXPECT_EQ(v1.id_of("b"), v2.id_of("b"));
}

// ------------------------------------------------------------- encode --

TEST(Encode, MarksAddedAndRemovedLines) {
  util::Rng rng(3);
  const corpus::CommitRecord record =
      corpus::make_commit(rng, "r", corpus::PatchType::kNullCheck);
  const std::vector<std::string> tokens = nn::patch_tokens(record.patch);
  EXPECT_FALSE(tokens.empty());
  bool has_marker = false;
  for (const std::string& t : tokens) {
    if (t == nn::kAddMarker || t == nn::kDelMarker) has_marker = true;
    EXPECT_NE(t, nn::kCtxMarker);  // context excluded by default
  }
  EXPECT_TRUE(has_marker);
}

TEST(Encode, RespectsTokenCap) {
  util::Rng rng(5);
  const corpus::CommitRecord record =
      corpus::make_commit(rng, "r", corpus::PatchType::kRedesign);
  nn::EncodeOptions opt;
  opt.max_tokens = 16;
  EXPECT_LE(nn::patch_tokens(record.patch, opt).size(), 16u);
}

// ---------------------------------------------------------------- GRU --

nn::SequenceDataset toy_dataset(std::size_t n, std::uint64_t seed,
                                std::int32_t magic_token = 5,
                                std::size_t vocab = 12) {
  // Positive sequences contain the magic token at least once.
  util::Rng rng(seed);
  nn::SequenceDataset data;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    std::vector<std::int32_t> seq;
    const std::size_t len = 6 + rng.index(10);
    for (std::size_t t = 0; t < len; ++t) {
      std::int32_t id = static_cast<std::int32_t>(2 + rng.index(vocab - 2));
      if (id == magic_token) id += 1;  // keep magic out of negatives
      seq.push_back(id);
    }
    if (label == 1) {
      seq[rng.index(seq.size())] = magic_token;
    }
    data.sequences.push_back(std::move(seq));
    data.labels.push_back(label);
  }
  return data;
}

TEST(Gru, LearnsTokenPresencePattern) {
  const nn::SequenceDataset train = toy_dataset(400, 1);
  const nn::SequenceDataset test = toy_dataset(100, 2);

  nn::GruOptions opt;
  opt.embed_dim = 8;
  opt.hidden_dim = 12;
  opt.epochs = 8;
  nn::GruClassifier gru(opt);
  gru.fit(train, 12, 7);

  const std::vector<int> pred = gru.predict_all(test);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    correct += (pred[i] == test.labels[i]);
  }
  EXPECT_GE(correct, 90u) << "accuracy " << correct << "/100";
}

TEST(Gru, LossDecreasesDuringTraining) {
  const nn::SequenceDataset train = toy_dataset(200, 11);
  nn::GruOptions opt;
  opt.embed_dim = 6;
  opt.hidden_dim = 8;
  opt.epochs = 1;
  nn::GruClassifier one_epoch(opt);
  one_epoch.fit(train, 12, 3);
  const double loss1 = one_epoch.loss(train);

  opt.epochs = 6;
  nn::GruClassifier six_epochs(opt);
  six_epochs.fit(train, 12, 3);
  const double loss6 = six_epochs.loss(train);
  EXPECT_LT(loss6, loss1);
}

TEST(Gru, UnfittedModelReturnsNeutral) {
  nn::GruClassifier gru;
  const std::vector<std::int32_t> seq = {1, 2, 3};
  EXPECT_DOUBLE_EQ(gru.predict_score(seq), 0.5);
}

TEST(Gru, RejectsOutOfRangeTokenIds) {
  nn::SequenceDataset bad;
  bad.sequences.push_back({0, 99});
  bad.labels.push_back(1);
  nn::GruClassifier gru;
  EXPECT_THROW(gru.fit(bad, 10, 1), std::invalid_argument);
}

TEST(Gru, DeterministicForSameSeed) {
  const nn::SequenceDataset train = toy_dataset(100, 21);
  nn::GruOptions opt;
  opt.epochs = 2;
  nn::GruClassifier a(opt);
  nn::GruClassifier b(opt);
  a.fit(train, 12, 99);
  b.fit(train, 12, 99);
  const std::vector<std::int32_t> probe = {3, 5, 7};
  EXPECT_DOUBLE_EQ(a.predict_score(probe), b.predict_score(probe));
}

TEST(Gru, EmptySequencePredictable) {
  const nn::SequenceDataset train = toy_dataset(60, 31);
  nn::GruOptions opt;
  opt.epochs = 1;
  nn::GruClassifier gru(opt);
  gru.fit(train, 12, 1);
  const std::vector<std::int32_t> empty;
  const double s = gru.predict_score(empty);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
}

// Finite-difference gradient check of the hand-derived BPTT: analytic
// gradients must match central differences on randomly sampled
// coordinates across every parameter matrix.
class GruGradientCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GruGradientCheck, AnalyticMatchesNumeric) {
  nn::GruOptions opt;
  opt.embed_dim = 5;
  opt.hidden_dim = 6;
  nn::GruClassifier gru(opt);
  util::Rng rng(GetParam() * 613 + 29);
  std::vector<std::int32_t> seq;
  const std::size_t len = 3 + rng.index(8);
  for (std::size_t t = 0; t < len; ++t) {
    seq.push_back(static_cast<std::int32_t>(rng.index(9)));
  }
  const int label = static_cast<int>(GetParam() % 2);
  const double err = gru.gradient_check(seq, label, 9, 120, GetParam() * 7 + 1);
  // float precision + 1e-3 step: a correct gradient lands well below 5%.
  EXPECT_LT(err, 0.05) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GruGradientCheck,
                         ::testing::Range<std::uint64_t>(0, 10));

// Learning-direction sanity: a single gradient step on one example must
// reduce that example's loss.
TEST(Gru, SingleStepReducesExampleLoss) {
  nn::SequenceDataset one;
  one.sequences.push_back({2, 3, 4, 5, 6});
  one.labels.push_back(1);

  nn::GruOptions opt;
  opt.embed_dim = 4;
  opt.hidden_dim = 5;
  opt.epochs = 1;
  opt.batch_size = 1;
  opt.learning_rate = 0.05f;
  nn::GruClassifier gru(opt);
  gru.fit(one, 8, 5);
  const double after_one_epoch = gru.loss(one);

  opt.epochs = 12;
  nn::GruClassifier trained(opt);
  trained.fit(one, 8, 5);
  EXPECT_LT(trained.loss(one), after_one_epoch);
  EXPECT_GT(trained.predict_score(one.sequences[0]), 0.9);
}

}  // namespace
}  // namespace patchdb
