// Unit and property tests for the util module: RNG, Levenshtein, stats,
// strings, tables, thread pool, hashing.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/levenshtein.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace patchdb {
namespace {

// ---------------------------------------------------------------- RNG --

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a(1);
  util::Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntRespectsBounds) {
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntCoversRange) {
  util::Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntThrowsOnInvertedBounds) {
  util::Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, IndexZeroThrows) {
  util::Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, UniformRealInHalfOpenUnit) {
  util::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyZeroMeanUnitVariance) {
  util::Rng rng(9);
  std::vector<double> values(20000);
  for (double& v : values) v = rng.normal();
  const util::Summary s = util::summarize(values);
  EXPECT_NEAR(s.mean, 0.0, 0.05);
  EXPECT_NEAR(s.stddev, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  util::Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  util::Rng rng(17);
  const auto sample = rng.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  util::Rng rng(1);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, WeightedFollowsWeights) {
  util::Rng rng(23);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 8000; ++i) {
    counts[rng.weighted(weights)]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(Rng, WeightedRejectsZeroTotal) {
  util::Rng rng(1);
  const std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted(weights), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  util::Rng a(1);
  util::Rng child = a.fork();
  EXPECT_NE(a(), child());
}

// -------------------------------------------------------- Levenshtein --

TEST(Levenshtein, KnownValues) {
  EXPECT_EQ(util::levenshtein("", ""), 0u);
  EXPECT_EQ(util::levenshtein("abc", ""), 3u);
  EXPECT_EQ(util::levenshtein("", "abc"), 3u);
  EXPECT_EQ(util::levenshtein("kitten", "sitting"), 3u);
  EXPECT_EQ(util::levenshtein("flaw", "lawn"), 2u);
  EXPECT_EQ(util::levenshtein("abc", "abc"), 0u);
}

struct LevCase {
  std::string a;
  std::string b;
};

class LevenshteinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevenshteinProperty, MetricAxiomsOnRandomStrings) {
  util::Rng rng(GetParam());
  auto random_string = [&rng] {
    std::string s;
    const std::size_t n = rng.index(24);
    for (std::size_t i = 0; i < n; ++i) {
      s += static_cast<char>('a' + rng.index(4));
    }
    return s;
  };
  const std::string a = random_string();
  const std::string b = random_string();
  const std::string c = random_string();
  const std::size_t dab = util::levenshtein(a, b);
  const std::size_t dba = util::levenshtein(b, a);
  const std::size_t dac = util::levenshtein(a, c);
  const std::size_t dcb = util::levenshtein(c, b);
  EXPECT_EQ(dab, dba);                            // symmetry
  EXPECT_EQ(util::levenshtein(a, a), 0u);         // identity
  EXPECT_LE(dab, dac + dcb);                      // triangle inequality
  EXPECT_GE(dab, a.size() > b.size() ? a.size() - b.size()
                                     : b.size() - a.size());  // lower bound
  EXPECT_LE(dab, std::max(a.size(), b.size()));   // upper bound
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LevenshteinProperty,
                         ::testing::Range<std::uint64_t>(0, 50));

class LevenshteinBounded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LevenshteinBounded, AgreesWithExactWithinBound) {
  util::Rng rng(GetParam() * 977 + 5);
  auto random_string = [&rng] {
    std::string s;
    const std::size_t n = rng.index(30);
    for (std::size_t i = 0; i < n; ++i) {
      s += static_cast<char>('a' + rng.index(5));
    }
    return s;
  };
  const std::string a = random_string();
  const std::string b = random_string();
  const std::size_t exact = util::levenshtein(a, b);
  for (std::size_t bound : {0u, 1u, 3u, 8u, 40u}) {
    const std::size_t got = util::levenshtein_bounded(a, b, bound);
    if (exact <= bound) {
      EXPECT_EQ(got, exact) << "a=" << a << " b=" << b << " bound=" << bound;
    } else {
      EXPECT_GT(got, bound);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LevenshteinBounded,
                         ::testing::Range<std::uint64_t>(0, 40));

TEST(Levenshtein, NormalizedRange) {
  EXPECT_DOUBLE_EQ(util::levenshtein_normalized("", ""), 0.0);
  EXPECT_DOUBLE_EQ(util::levenshtein_normalized("ab", ""), 1.0);
  EXPECT_NEAR(util::levenshtein_normalized("kitten", "sitting"), 3.0 / 7.0, 1e-12);
}

// -------------------------------------------------------------- stats --

TEST(Stats, SummaryBasics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const util::Summary s = util::summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const util::Summary s = util::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, WaldIntervalMatchesHandComputation) {
  // 290/1000 at 95%: p=0.29, half-width = 1.96*sqrt(.29*.71/1000) ~ 0.0281.
  const util::Interval ci = util::wald_interval(290, 1000);
  EXPECT_NEAR(ci.center, 0.29, 1e-12);
  EXPECT_NEAR(ci.half_width, 0.0281, 0.0005);
  EXPECT_NEAR(ci.lo, 0.29 - ci.half_width, 1e-12);
}

TEST(Stats, WilsonIntervalStaysInUnit) {
  const util::Interval lo = util::wilson_interval(0, 10);
  const util::Interval hi = util::wilson_interval(10, 10);
  EXPECT_GE(lo.lo, 0.0);
  EXPECT_LE(hi.hi, 1.0);
  EXPECT_GT(lo.hi, 0.0);  // Wilson never collapses to a point at 0/n
  EXPECT_LT(hi.lo, 1.0);
}

TEST(Stats, ZeroTrialsYieldEmptyInterval) {
  const util::Interval ci = util::wald_interval(0, 0);
  EXPECT_EQ(ci.center, 0.0);
  EXPECT_EQ(ci.half_width, 0.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(util::pearson(a, b), 1.0, 1e-12);
  EXPECT_NEAR(util::pearson(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonDegenerateInputs) {
  const std::vector<double> a = {1, 1, 1};
  const std::vector<double> b = {2, 4, 6};
  EXPECT_EQ(util::pearson(a, b), 0.0);
  EXPECT_EQ(util::pearson({}, {}), 0.0);
}

TEST(Stats, FormatPercentCi) {
  const util::Interval ci = util::wald_interval(29, 100);
  EXPECT_EQ(util::format_percent_ci(ci), "29(+/-8.9)%");
}

// ------------------------------------------------------------ strings --

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = util::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitLinesHandlesTrailingNewlineAndCr) {
  const auto lines = util::split_lines("a\r\nb\nc\n");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  EXPECT_EQ(lines[2], "c");
}

TEST(Strings, SplitLinesStripsCrOnFinalUnterminatedLine) {
  // The npos branch used to keep the '\r': "a\r\nb\r" parsed as
  // {"a", "b\r"}, so CRLF text behaved differently with and without a
  // trailing newline.
  const auto lines = util::split_lines("a\r\nb\r");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "b");
  // A lone '\r' line is stripped to empty, not dropped.
  const auto lone = util::split_lines("x\n\r");
  ASSERT_EQ(lone.size(), 2u);
  EXPECT_EQ(lone[1], "");
}

TEST(Strings, SplitWsSkipsRuns) {
  const auto parts = util::split_ws("  a\t b  c ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, TrimVariants) {
  EXPECT_EQ(util::trim("  x  "), "x");
  EXPECT_EQ(util::trim_left("  x  "), "x  ");
  EXPECT_EQ(util::trim_right("  x  "), "  x");
  EXPECT_EQ(util::trim("   "), "");
}

TEST(Strings, ExtensionLowercasesAndHandlesPaths) {
  EXPECT_EQ(util::extension("src/a.CPP"), ".cpp");
  EXPECT_EQ(util::extension("Makefile"), "");
  EXPECT_EQ(util::extension("a/b.c"), ".c");
  EXPECT_EQ(util::extension(".hidden"), "");
  EXPECT_EQ(util::extension("dir.d/file"), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(util::replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(util::replace_all("abc", "x", "y"), "abc");
  EXPECT_EQ(util::replace_all("abc", "", "y"), "abc");
}

TEST(Strings, ParseSize) {
  std::size_t v = 0;
  EXPECT_TRUE(util::parse_size("123", v));
  EXPECT_EQ(v, 123u);
  EXPECT_FALSE(util::parse_size("", v));
  EXPECT_FALSE(util::parse_size("12a", v));
  EXPECT_FALSE(util::parse_size("-1", v));
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(util::human_count(950), "950");
  EXPECT_EQ(util::human_count(100000), "100K");
  EXPECT_EQ(util::human_count(6200000), "6.2M");
}

// -------------------------------------------------------------- table --

TEST(Table, RendersHeaderRowsAndNotes) {
  util::Table t("Demo");
  t.set_header({"A", "Bee"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  t.add_note("a note");
  const std::string out = t.render();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("Bee"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("a note"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  util::Table t("x");
  t.set_header({"A", "B"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  util::Table t("x");
  t.set_header({"A", "B"});
  t.add_row({"a,b", "q\"q"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"q\""), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(util::format_double(3.14159, 2), "3.14");
  EXPECT_EQ(util::format_percent(0.291, 1), "29.1%");
}

// -------------------------------------------------------- thread pool --

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  util::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo == 0) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // Pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t lo, std::size_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  util::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      // A nested call on the same (default) pool must not deadlock.
      pool.parallel_for(10, [&](std::size_t a, std::size_t b) {
        inner_total += static_cast<int>(b - a);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, SubmittedTaskThrowingDoesNotKillPool) {
  // A throwing submit() task used to escape worker_loop: the exception
  // left the thread body, which is std::terminate. Now it is caught,
  // counted, and the first one is stashed; wait_idle still returns.
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.task_errors(), 0u);
  EXPECT_EQ(pool.take_task_error(), nullptr);

  for (int i = 0; i < 3; ++i) {
    pool.submit([] { throw std::runtime_error("task failed"); });
  }
  pool.wait_idle();
  EXPECT_EQ(pool.task_errors(), 3u);

  std::exception_ptr error = pool.take_task_error();
  ASSERT_NE(error, nullptr);
  EXPECT_THROW(std::rethrow_exception(error), std::runtime_error);
  // The slot holds only the first error and clears on take.
  EXPECT_EQ(pool.take_task_error(), nullptr);

  // The workers survived and still run tasks.
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
  EXPECT_EQ(pool.task_errors(), 3u);  // unchanged by successful tasks
}

TEST(ThreadPool, SizeAndPendingAccessors) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);

  // Park both workers so further submissions stay queued.
  std::atomic<int> parked{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() < 2) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    pool.submit([] {});
  }
  EXPECT_EQ(pool.pending(), 5u);
  EXPECT_EQ(pool.in_flight(), 7u);
  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(pool.pending(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPool, BoundedRejectShedsTasksPastTheCap) {
  util::ThreadPool::Options options;
  options.threads = 1;
  options.max_pending = 2;
  options.overflow = util::ThreadPool::Overflow::kReject;
  util::ThreadPool pool(options);
  EXPECT_EQ(pool.max_pending(), 2u);

  // Park the single worker so submissions stay queued.
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }));
  EXPECT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }));
  // Queue is at the cap: try_submit sheds, submit throws.
  EXPECT_FALSE(pool.try_submit([&] { ran.fetch_add(1); }));
  EXPECT_THROW(pool.submit([&] { ran.fetch_add(1); }),
               util::ThreadPool::QueueFull);

  release.store(true);
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);

  // Slots freed: the pool accepts work again.
  EXPECT_TRUE(pool.try_submit([&] { ran.fetch_add(1); }));
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, BoundedBlockWaitsForAQueueSlot) {
  util::ThreadPool::Options options;
  options.threads = 1;
  options.max_pending = 1;
  options.overflow = util::ThreadPool::Overflow::kBlock;
  util::ThreadPool pool(options);

  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  pool.submit([&] {
    parked.store(true);
    while (!release.load()) std::this_thread::yield();
  });
  while (!parked.load()) std::this_thread::yield();

  std::atomic<int> ran{0};
  pool.submit([&] { ran.fetch_add(1); });  // fills the single slot

  // The next submit must block until the parked task finishes and the
  // queued one is picked up. Run it on a side thread and assert it has
  // not completed while the queue is still full.
  std::atomic<bool> submitted{false};
  std::thread submitter([&] {
    pool.submit([&] { ran.fetch_add(1); });
    submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(submitted.load());

  release.store(true);
  submitter.join();
  EXPECT_TRUE(submitted.load());
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPool, BoundedPoolStillRunsParallelFor) {
  // parallel_for submits its chunks through the same bounded queue; a
  // cap smaller than the chunk count must throttle, not deadlock (the
  // caller blocks, the workers drain).
  util::ThreadPool::Options options;
  options.threads = 2;
  options.max_pending = 1;
  util::ThreadPool pool(options);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 100u);
}

TEST(ThreadPool, BoundedSubmitFromWorkerBypassesCap) {
  // A worker enqueueing onto its own full pool must not block: workers
  // are the consumers that free slots, so waiting would deadlock.
  util::ThreadPool::Options options;
  options.threads = 1;
  options.max_pending = 1;
  util::ThreadPool pool(options);
  std::atomic<int> ran{0};
  pool.submit([&] {
    // Queue slot bookkeeping: this task is running (not queued); fill
    // the one queued slot, then exceed it from inside the worker.
    pool.submit([&] { ran.fetch_add(1); });
    pool.submit([&] { ran.fetch_add(1); });
    ran.fetch_add(1);
  });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, DefaultPoolStaysUnbounded) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.max_pending(), 0u);
  // No cap: a burst far past any reasonable bound enqueues without
  // blocking or throwing.
  std::atomic<int> ran{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  // Regression: destroying a pool while tasks are still queued must run
  // every one of them (drain semantics), not drop the backlog.
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        count.fetch_add(1);
      });
    }
  }  // destructor joins while most of the 64 tasks are still pending
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, WorkerBusyTimeAccumulatesPerWorker) {
  util::ThreadPool pool(2);
  ASSERT_EQ(pool.worker_busy_ms().size(), 2u);
  for (double ms : pool.worker_busy_ms()) EXPECT_EQ(ms, 0.0);

  for (int i = 0; i < 32; ++i) {
    pool.submit([] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
  }
  pool.wait_idle();
  const std::vector<double> busy = pool.worker_busy_ms();
  ASSERT_EQ(busy.size(), 2u);
  // 32 x 1ms split across 2 workers: total busy time must reflect the
  // sleeps (this is what the bench per-worker histogram records, so a
  // single-threaded pathology shows as one hot lane and zeros).
  EXPECT_GE(busy[0] + busy[1], 16.0);
  for (double ms : busy) EXPECT_GE(ms, 0.0);
}

TEST(ThreadPool, ConfigureDefaultPoolValidatesAndLocksAfterCreation) {
  EXPECT_THROW(util::configure_default_pool(0), std::invalid_argument);
  EXPECT_THROW(util::configure_default_pool(100000), std::invalid_argument);

  // Force creation, then verify the introspection agrees and late
  // reconfiguration is rejected loudly instead of silently ignored.
  const std::size_t current = util::default_pool().size();
  EXPECT_GE(current, 1u);
  EXPECT_EQ(util::default_pool_threads(), current);
  EXPECT_NO_THROW(util::configure_default_pool(current));  // idempotent
  EXPECT_THROW(util::configure_default_pool(current + 1), std::logic_error);
}

// --------------------------------------------------------------- hash --

TEST(Hash, Fnv1aStableAndSensitive) {
  EXPECT_EQ(util::fnv1a64("abc"), util::fnv1a64("abc"));
  EXPECT_NE(util::fnv1a64("abc"), util::fnv1a64("abd"));
  EXPECT_NE(util::fnv1a64("abc"), util::fnv1a64("abc", 123));
}

TEST(Hash, CommitIdShapeAndDeterminism) {
  const std::string id = util::commit_id("content");
  EXPECT_EQ(id.size(), 40u);
  EXPECT_EQ(id, util::commit_id("content"));
  EXPECT_NE(id, util::commit_id("content2"));
  for (char c : id) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(Hash, ToHexPadsTo16) {
  EXPECT_EQ(util::to_hex(0), "0000000000000000");
  EXPECT_EQ(util::to_hex(255), "00000000000000ff");
}

}  // namespace
}  // namespace patchdb
