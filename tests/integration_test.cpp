// Cross-module integration tests: the full pipeline at tiny scale
// (world -> crawl -> features -> augmentation -> synthesis ->
// classification), plus failure-injection scenarios.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/augment.h"
#include "core/categorize.h"
#include "core/distance.h"
#include "core/nearest_link.h"
#include "core/patchdb.h"
#include "corpus/world.h"
#include "diff/parse.h"
#include "diff/render.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "ml/normalize.h"
#include "nn/encode.h"
#include "nn/gru.h"
#include "nn/vocab.h"
#include "synth/synthesize.h"
#include "util/rng.h"

namespace patchdb {
namespace {

/// Build an ml::Dataset of Table I features from commit records.
ml::Dataset feature_dataset(const std::vector<const corpus::CommitRecord*>& records) {
  ml::Dataset data;
  for (const corpus::CommitRecord* r : records) {
    const feature::FeatureVector v = feature::extract(r->patch);
    data.push_back(std::vector<double>(v.begin(), v.end()),
                   r->truth.is_security ? 1 : 0);
  }
  return data;
}

TEST(Integration, FullPipelineSmallScale) {
  // 1. Simulate the universe and collect through the NVD pipeline.
  corpus::WorldConfig config;
  config.repos = 5;
  config.nvd_security = 60;
  config.wild_pool = 900;
  config.wild_security_rate = 0.09;
  config.seed = 1234;
  corpus::World world = corpus::build_world(config);
  ASSERT_GT(world.nvd_security.size(), 30u);

  // 2. One augmentation round enriches the dataset above the base rate.
  std::vector<const corpus::CommitRecord*> seed;
  for (const auto& r : world.nvd_security) seed.push_back(&r);
  std::vector<const corpus::CommitRecord*> pool;
  for (const auto& r : world.wild) pool.push_back(&r);
  core::AugmentationLoop loop(seed, world.oracle);
  loop.set_pool(pool);
  const core::RoundStats round = loop.run_round();
  EXPECT_GT(round.ratio, config.wild_security_rate);

  // 3. Synthesis from the NVD records multiplies the security set.
  synth::SynthesisOptions synth_opt;
  synth_opt.max_per_patch = 3;
  const auto synthetic =
      synth::synthesize_all(world.nvd_security, synth_opt, 99);
  EXPECT_GT(synthetic.size(), world.nvd_security.size() / 2);

  // 4. A Random Forest on Table I features separates security from
  // non-security commits well above chance. Train negatives are a
  // cleaned mixed non-security set (training on nearest-link-rejected
  // candidates alone would be all security-mimics — unlearnable by
  // construction, mirroring why the paper's experts are needed).
  std::vector<corpus::CommitRecord> clean_nonsec;
  {
    util::Rng rng(4321);
    const auto kinds = corpus::nonsecurity_types();
    for (int i = 0; i < 200; ++i) {
      clean_nonsec.push_back(corpus::make_commit(
          rng, "train", kinds[rng.index(kinds.size())]));
    }
  }
  std::vector<const corpus::CommitRecord*> train_records = seed;
  for (const corpus::CommitRecord& r : clean_nonsec) {
    train_records.push_back(&r);
  }
  const ml::Dataset train = feature_dataset(train_records);
  ASSERT_GT(train.positives(), 0u);
  ASSERT_GT(train.negatives(), 0u);

  // Score on held-out wild commits (not used in training).
  std::vector<const corpus::CommitRecord*> holdout;
  for (const auto& r : world.wild) {
    holdout.push_back(&r);
    if (holdout.size() >= 300) break;
  }
  const ml::Dataset test = feature_dataset(holdout);

  ml::RandomForest forest;
  forest.fit(train, 42);
  const ml::Confusion c = ml::confusion(test.labels(), forest.predict_all(test));
  // The paper's own RF numbers are weak (Table VI: ~58% precision, ~20%
  // recall); require a clear lift over the ~9% base rate, not perfection.
  const double base_rate = static_cast<double>(test.positives()) /
                           static_cast<double>(test.size());
  EXPECT_GT(c.precision(), 1.5 * base_rate);
  EXPECT_GT(c.recall(), 0.2);
}

TEST(Integration, GruLearnsOnGeneratedPatches) {
  corpus::WorldConfig config;
  config.repos = 4;
  config.nvd_security = 80;
  config.wild_pool = 300;
  config.wild_security_rate = 0.0;  // wild = pure non-security here
  config.seed = 777;
  const corpus::World world = corpus::build_world(config);

  // Token streams: security (NVD) vs cleaned non-security. The negatives
  // deliberately exclude kDefensive: hardening mimics are token-identical
  // to fixes by construction, so they bound any classifier's accuracy —
  // this test checks learning, not that bound.
  std::vector<std::vector<std::string>> docs;
  std::vector<int> labels;
  for (const auto& r : world.nvd_security) {
    docs.push_back(nn::patch_tokens(r.patch));
    labels.push_back(1);
  }
  std::size_t negs = 0;
  for (const auto& r : world.wild) {
    if (r.truth.type == corpus::PatchType::kDefensive) continue;
    docs.push_back(nn::patch_tokens(r.patch));
    labels.push_back(0);
    if (++negs >= 120) break;
  }

  const nn::Vocabulary vocab = nn::Vocabulary::build(docs, 2, 600);
  nn::SequenceDataset all;
  for (const auto& doc : docs) all.sequences.push_back(vocab.encode(doc));
  all.labels = labels;

  // 80/20 split by stride.
  nn::SequenceDataset train;
  nn::SequenceDataset test;
  for (std::size_t i = 0; i < all.size(); ++i) {
    auto& dst = (i % 5 == 0) ? test : train;
    dst.sequences.push_back(all.sequences[i]);
    dst.labels.push_back(all.labels[i]);
  }

  nn::GruOptions opt;
  opt.epochs = 5;
  opt.hidden_dim = 16;
  opt.embed_dim = 12;
  nn::GruClassifier gru(opt);
  gru.fit(train, vocab.size(), 31);

  const std::vector<int> pred = gru.predict_all(test);
  const ml::Confusion c = ml::confusion(test.labels, pred);
  EXPECT_GT(c.accuracy(), 0.7);
}

TEST(Integration, CrawlerRobustToCorruptedRemote) {
  // Failure injection: corrupt a fraction of the remote pages and check
  // the crawler degrades gracefully instead of crashing.
  corpus::WorldConfig config;
  config.repos = 3;
  config.nvd_security = 30;
  config.wild_pool = 10;
  config.seed = 555;
  corpus::World world = corpus::build_world(config);

  corpus::RemoteStore corrupted;
  std::size_t page = 0;
  for (const auto& entry : world.nvd_entries) {
    for (const std::string& url : entry.patch_tagged) {
      const auto body = world.remote.fetch(url + ".patch");
      if (!body.has_value()) continue;
      if (page++ % 3 == 0) {
        corrupted.put(url + ".patch", "@@ corrupted garbage @@\n+++\n---");
      } else {
        corrupted.put(url + ".patch", *body);
      }
    }
  }
  corpus::NvdCrawler crawler(corrupted);
  const auto collected = crawler.crawl(world.nvd_entries);
  EXPECT_GT(crawler.stats().parse_failures, 0u);
  EXPECT_GT(collected.size(), 0u);
  EXPECT_LT(collected.size(), world.nvd_entries.size());
}

TEST(Integration, SyntheticPatchesRemainParseable) {
  corpus::WorldConfig config;
  config.repos = 3;
  config.nvd_security = 25;
  config.wild_pool = 10;
  config.seed = 321;
  const corpus::World world = corpus::build_world(config);

  synth::SynthesisOptions opt;
  opt.max_per_patch = 2;
  const auto synthetic = synth::synthesize_all(world.nvd_security, opt, 3);
  for (const auto& s : synthetic) {
    const std::string text = diff::render_patch(s.patch);
    EXPECT_NO_THROW({
      const diff::Patch p = diff::parse_patch(text);
      EXPECT_FALSE(p.files.empty());
    });
  }
}

TEST(Integration, SyntheticPatchesShiftFeaturesButKeepLabelSignal) {
  // Synthetic security patches must stay closer to natural security
  // patches than to non-security commits, on average — otherwise
  // oversampling would hurt instead of help (Table IV's premise).
  corpus::WorldConfig config;
  config.repos = 4;
  config.nvd_security = 50;
  config.wild_pool = 400;
  config.wild_security_rate = 0.0;
  config.seed = 888;
  const corpus::World world = corpus::build_world(config);

  synth::SynthesisOptions opt;
  opt.max_per_patch = 2;
  const auto synthetic = synth::synthesize_all(world.nvd_security, opt, 5);
  ASSERT_GT(synthetic.size(), 10u);

  std::vector<diff::Patch> sec_patches;
  for (const auto& r : world.nvd_security) sec_patches.push_back(r.patch);
  // Exclude security-mimicking hardening commits: they sit in the fix
  // clusters by construction, so "distance to non-security" would be
  // measuring distance to disguised fixes.
  std::vector<diff::Patch> nonsec_patches;
  for (const auto& r : world.wild) {
    if (r.truth.type == corpus::PatchType::kDefensive) continue;
    nonsec_patches.push_back(r.patch);
    if (nonsec_patches.size() >= 100) break;
  }
  std::vector<diff::Patch> synth_patches;
  for (const auto& s : synthetic) synth_patches.push_back(s.patch);

  const feature::FeatureMatrix sec = feature::extract_all(sec_patches);
  const feature::FeatureMatrix nonsec = feature::extract_all(nonsec_patches);
  const feature::FeatureMatrix syn = feature::extract_all(synth_patches);

  const std::vector<double> w = core::maxabs_weights(sec, nonsec);
  auto mean_min_dist = [&](const feature::FeatureMatrix& from,
                           const feature::FeatureMatrix& to) {
    double total = 0.0;
    for (std::size_t i = 0; i < from.rows(); ++i) {
      double best = 1e300;
      for (std::size_t j = 0; j < to.rows(); ++j) {
        best = std::min(best, core::weighted_distance(from[i], to[j], w));
      }
      total += best;
    }
    return total / static_cast<double>(from.rows());
  };
  EXPECT_LT(mean_min_dist(syn, sec), mean_min_dist(syn, nonsec));
}

TEST(Integration, CategorizerTracksFig6DistributionShift) {
  // Generate NVD-like and wild-like security patches, categorize both,
  // and check the measured head classes differ the way Fig. 6 reports.
  util::Rng rng(99);
  auto head_share = [&rng](const corpus::TypeDistribution& dist,
                           corpus::PatchType head) {
    std::size_t hits = 0;
    const std::size_t n = 300;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t idx =
          rng.weighted(std::span(dist.data(), dist.size()));
      const corpus::PatchType type = corpus::security_types()[idx];
      hits += (type == head);
    }
    return static_cast<double>(hits) / static_cast<double>(n);
  };
  EXPECT_GT(head_share(corpus::nvd_type_distribution(), corpus::PatchType::kRedesign),
            head_share(corpus::wild_type_distribution(), corpus::PatchType::kRedesign));
  EXPECT_LT(head_share(corpus::nvd_type_distribution(), corpus::PatchType::kFuncCall),
            head_share(corpus::wild_type_distribution(), corpus::PatchType::kFuncCall));
}

}  // namespace
}  // namespace patchdb
