// Tests for the second observability layer: Chrome trace export (golden
// round-trip through the repo's own JSON parser), the background
// resource sampler (including concurrent access — this file runs under
// the TSan CI job), progress heartbeats, the bench_diff rule engine,
// the PATCHDB_SPAN_RING override with its live drop counter, and
// v1-artifact backward compatibility.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/diff.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace patchdb {
namespace {

// Builds a deterministic two-thread report: main opens "root" with a
// nested "child", worker thread 1 runs "side", and three resource
// samples ride along. All times are hand-picked so nesting and counter
// assertions are exact.
obs::RunReport golden_report() {
  obs::RunReport report;
  report.name = "golden";
  report.wall_ms = 5.0;

  obs::SpanRecord root;
  root.name = "root";
  root.thread_index = 0;
  root.span_id = 1;
  root.parent_id = 0;
  root.depth = 0;
  root.start_us = 100;
  root.wall_us = 4000;
  root.cpu_us = 3000;

  obs::SpanRecord child;
  child.name = "child";
  child.thread_index = 0;
  child.span_id = 2;
  child.parent_id = 1;
  child.depth = 1;
  child.start_us = 600;
  child.wall_us = 1500;

  obs::SpanRecord side;
  side.name = "side";
  side.thread_index = 1;
  side.span_id = 3;
  side.parent_id = 0;
  side.depth = 0;
  side.start_us = 700;
  side.wall_us = 2000;

  report.spans = {root, child, side};

  obs::ResourceSample s0;
  s0.t_us = 0;
  s0.rss_bytes = 64ull << 20;
  s0.peak_rss_bytes = 64ull << 20;
  s0.cpu_us = 0;
  obs::ResourceSample s1 = s0;
  s1.t_us = 2000;
  s1.rss_bytes = 96ull << 20;
  s1.peak_rss_bytes = 96ull << 20;
  s1.cpu_us = 1000;  // 1000 µs CPU over 2000 µs wall = 0.5 cores busy
  s1.pool_pending = 3;
  obs::ResourceSample s2 = s1;
  s2.t_us = 4000;
  s2.cpu_us = 5000;  // 4000 µs over 2000 µs = 2.0 cores busy
  s2.pool_pending = 0;
  report.resource_timeline = {s0, s1, s2};
  return report;
}

std::vector<obs::Json> events_where(const obs::Json& trace,
                                    const std::string& ph) {
  std::vector<obs::Json> out;
  for (const obs::Json& e : trace.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == ph) out.push_back(e);
  }
  return out;
}

// -------------------------------------------------------- trace export --

TEST(ObsExport, GoldenTraceRoundTripsThroughOwnParser) {
  const obs::RunReport report = golden_report();
  // Serialize with the writer, then parse back with the repo's own
  // parser — the exported document must survive its own toolchain.
  const obs::Json trace =
      obs::Json::parse(obs::trace_events_json(report).dump(2));

  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");
  EXPECT_EQ(trace.at("otherData").at("report").as_string(), "golden");
  EXPECT_EQ(trace.at("otherData").at("schema").as_string(), "patchdb.obs.v2");

  // Thread-track metadata: a process name plus one thread_name per
  // thread that recorded spans (two here).
  std::vector<std::string> thread_names;
  for (const obs::Json& meta : events_where(trace, "M")) {
    if (meta.at("name").as_string() == "thread_name") {
      thread_names.push_back(meta.at("args").at("name").as_string());
    } else {
      EXPECT_EQ(meta.at("name").as_string(), "process_name");
      EXPECT_EQ(meta.at("args").at("name").as_string(), "patchdb: golden");
    }
  }
  ASSERT_EQ(thread_names.size(), 2u);
  EXPECT_EQ(thread_names[0], "main");
  EXPECT_EQ(thread_names[1], "worker 1");

  const std::vector<obs::Json> spans = events_where(trace, "X");
  ASSERT_EQ(spans.size(), 3u);
  const obs::Json& root = spans[0];
  const obs::Json& child = spans[1];
  const obs::Json& side = spans[2];
  EXPECT_EQ(root.at("name").as_string(), "root");
  EXPECT_EQ(root.at("ts").as_number(), 100.0);
  EXPECT_EQ(root.at("dur").as_number(), 4000.0);
  EXPECT_EQ(root.at("args").at("cpu_us").as_number(), 3000.0);
  // Nesting: the child's [ts, ts+dur) interval sits inside the root's
  // on the same tid — that containment is what chrome://tracing uses to
  // stack the flame graph.
  EXPECT_EQ(child.at("tid").as_number(), root.at("tid").as_number());
  EXPECT_EQ(child.at("args").at("parent_id").as_number(),
            root.at("args").at("span_id").as_number());
  EXPECT_GE(child.at("ts").as_number(), root.at("ts").as_number());
  EXPECT_LE(child.at("ts").as_number() + child.at("dur").as_number(),
            root.at("ts").as_number() + root.at("dur").as_number());
  EXPECT_EQ(side.at("tid").as_number(), 1.0);
  EXPECT_EQ(side.at("args").at("depth").as_number(), 0.0);
}

TEST(ObsExport, CounterTracksIncludeCpuRate) {
  const obs::Json trace = obs::trace_events_json(golden_report());
  double last_rss = -1.0;
  std::vector<double> cpu_rates;
  for (const obs::Json& counter : events_where(trace, "C")) {
    const std::string& track = counter.at("name").as_string();
    if (track == "rss_mb") last_rss = counter.at("args").at("rss").as_number();
    if (track == "cpu_cores") {
      cpu_rates.push_back(counter.at("args").at("busy").as_number());
    }
  }
  EXPECT_EQ(last_rss, 96.0);
  // The cumulative CPU sample becomes a rate between consecutive
  // samples, so 3 samples yield 2 points: 0.5 then 2.0 cores.
  ASSERT_EQ(cpu_rates.size(), 2u);
  EXPECT_DOUBLE_EQ(cpu_rates[0], 0.5);
  EXPECT_DOUBLE_EQ(cpu_rates[1], 2.0);
}

TEST(ObsExport, WriteTraceFileRoundTripsAndFailsLoudly) {
  const obs::RunReport report = golden_report();
  const std::string path =
      testing::TempDir() + "/obs_v2_trace_roundtrip.json";
  obs::write_trace_file(report, path);

  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
  }
  const obs::Json trace = obs::Json::parse(text);
  EXPECT_EQ(trace.at("traceEvents").as_array().size(),
            obs::trace_events_json(report).at("traceEvents").as_array().size());
  std::remove(path.c_str());

  EXPECT_THROW(
      obs::write_trace_file(report, "/nonexistent-dir/trace.json"),
      std::runtime_error);
}

// ------------------------------------------------------------ sampler --

TEST(ObsSampler, RecordsMonotonicTimelineWhileRunning) {
  obs::ResourceSampler::Options options;
  options.interval = std::chrono::milliseconds(1);
  options.publish_gauges = false;
  obs::ResourceSampler sampler(options);
  sampler.start();
  EXPECT_TRUE(sampler.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  const std::vector<obs::ResourceSample> samples = sampler.samples();
  // start() records t=0 immediately and stop() records a final sample,
  // so even a scheduler-starved run yields at least two points.
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples.front().t_us, 0);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_us, samples[i - 1].t_us);
    EXPECT_GE(samples[i].cpu_us, samples[i - 1].cpu_us);
    EXPECT_GE(samples[i].peak_rss_bytes, samples[i - 1].peak_rss_bytes);
  }
#if defined(__linux__)
  EXPECT_GT(samples.front().rss_bytes, 0u);  // procfs present
#endif
}

TEST(ObsSampler, ConcurrentReadersSeeConsistentState) {
  obs::ResourceSampler::Options options;
  options.interval = std::chrono::milliseconds(1);
  options.publish_gauges = false;
  obs::ResourceSampler sampler(options);
  sampler.start();
  sampler.start();  // second start is a no-op, not a second thread

  // Hammer the read API from several threads while the sampler thread
  // writes; TSan verifies every access is properly synchronized.
  std::atomic<bool> go{true};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (go.load(std::memory_order_relaxed)) {
        const std::vector<obs::ResourceSample> snap = sampler.samples();
        for (std::size_t i = 1; i < snap.size(); ++i) {
          ASSERT_GE(snap[i].t_us, snap[i - 1].t_us);
        }
        (void)sampler.overflow();
        (void)sampler.running();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  go.store(false, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  sampler.stop();
  sampler.stop();  // idempotent
  EXPECT_GE(sampler.samples().size(), 2u);
}

TEST(ObsSampler, OverflowCountsInsteadOfGrowing) {
  obs::ResourceSampler::Options options;
  options.interval = std::chrono::milliseconds(1);
  options.max_samples = 3;
  options.publish_gauges = false;
  obs::ResourceSampler sampler(options);
  sampler.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.stop();
  EXPECT_LE(sampler.samples().size(), 3u);
  EXPECT_GT(sampler.overflow(), 0u);
}

TEST(ObsSampler, SampleNowWorksWithoutThread) {
  util::ThreadPool pool(2);
  const obs::ResourceSample s = obs::ResourceSampler::sample_now(&pool);
  EXPECT_EQ(s.t_us, 0);
  EXPECT_EQ(s.pool_threads, 2u);
  EXPECT_GE(s.cpu_us, 0);
}

TEST(ObsSampler, TimelineRidesAlongInSessionReport) {
  obs::ObsSession session("sampler_report_test");
  if (!session.installed()) GTEST_SKIP() << "PATCHDB_OBS_DISABLED set";
  obs::ResourceSampler::Options options;
  options.interval = std::chrono::milliseconds(2);
  obs::ResourceSampler sampler(options);
  session.attach_sampler(&sampler);
  sampler.start();
  { PATCHDB_TRACE_SPAN("sampler.work"); }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  sampler.stop();

  const obs::RunReport report = session.report();
  EXPECT_EQ(report.schema, obs::kReportSchemaV2);
  ASSERT_GE(report.resource_timeline.size(), 2u);
  // Re-anchored onto the tracer epoch: a sampler started after the
  // session opened cannot produce negative timestamps.
  EXPECT_GE(report.resource_timeline.front().t_us, 0);

  // And the timeline survives the report round trip.
  const obs::RunReport back = obs::RunReport::from_json(report.to_json());
  ASSERT_EQ(back.resource_timeline.size(), report.resource_timeline.size());
  EXPECT_EQ(back.resource_timeline.back().rss_bytes,
            report.resource_timeline.back().rss_bytes);
  EXPECT_EQ(back.resource_timeline.back().t_us,
            report.resource_timeline.back().t_us);
}

// ----------------------------------------------------------- progress --

TEST(ObsProgress, DisabledByDefaultAndCountsTicks) {
  ASSERT_EQ(obs::progress_interval_ms(), 0u);
  obs::Progress progress("test.loop", 100);
  for (int i = 0; i < 7; ++i) progress.tick();
  progress.tick(3);
  EXPECT_EQ(progress.done(), 10u);
  progress.finish();
  progress.finish();  // idempotent; destructor will be the third call
}

TEST(ObsProgress, TicksAreThreadSafeWhenEnabled) {
  obs::set_progress_interval_ms(1);
  {
    obs::Progress progress("test.concurrent", 4000);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) progress.tick();
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(progress.done(), 4000u);
  }
  obs::set_progress_interval_ms(0);
}

TEST(ObsProgress, UnknownTotalStillTicks) {
  obs::Progress progress("test.unbounded");  // total 0 = unknown
  progress.tick(42);
  EXPECT_EQ(progress.done(), 42u);
}

// -------------------------------------------------- span ring override --

TEST(ObsSpanRing, ParseRejectsMalformedValuesLoudly) {
  EXPECT_EQ(obs::parse_span_ring_capacity(nullptr), obs::kSpanRingCapacity);
  EXPECT_EQ(obs::parse_span_ring_capacity(""), obs::kSpanRingCapacity);
  EXPECT_EQ(obs::parse_span_ring_capacity("8"), 8u);
  EXPECT_EQ(obs::parse_span_ring_capacity("65536"), 65536u);
  EXPECT_THROW(obs::parse_span_ring_capacity("abc"), std::runtime_error);
  EXPECT_THROW(obs::parse_span_ring_capacity("12abc"), std::runtime_error);
  EXPECT_THROW(obs::parse_span_ring_capacity("0"), std::runtime_error);
  EXPECT_THROW(obs::parse_span_ring_capacity("-5"), std::runtime_error);
  try {
    obs::parse_span_ring_capacity("5x");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("PATCHDB_SPAN_RING"),
              std::string::npos);
  }
}

TEST(ObsSpanRing, EnvOverrideShrinksRingAndCountsDropsLive) {
  ASSERT_EQ(setenv("PATCHDB_SPAN_RING", "4", 1), 0);
  {
    // The override is read at Tracer construction, so sessions started
    // under the env var get the small ring.
    obs::ObsSession session("ring_override_test");
    obs::Tracer* tracer = obs::tracer();
    if (tracer != nullptr) {  // null when PATCHDB_OBS_DISABLED is set
      EXPECT_EQ(tracer->span_ring_capacity(), 4u);
      for (int i = 0; i < 10; ++i) {
        PATCHDB_TRACE_SPAN("ring.overflow");
      }
      const obs::RunReport report = session.report();
      EXPECT_EQ(report.spans.size(), 4u);
      EXPECT_EQ(report.spans_dropped, 6u);
      // The live counter lets a sampler/metrics reader observe drops
      // mid-run instead of only in the final report.
      EXPECT_EQ(report.metrics.counter("obs.spans_dropped"), 6u);
    }
  }
  ASSERT_EQ(setenv("PATCHDB_SPAN_RING", "banana", 1), 0);
  EXPECT_THROW(
      {
        obs::Tracer bad_tracer;
        (void)bad_tracer;
      },
      std::runtime_error);
  ASSERT_EQ(unsetenv("PATCHDB_SPAN_RING"), 0);
  obs::Tracer restored;
  EXPECT_EQ(restored.span_ring_capacity(), obs::kSpanRingCapacity);
}

// ---------------------------------------------------- obs env disable --

TEST(ObsSpanRing, ObsDisabledEnvMakesSessionsInert) {
  ASSERT_EQ(setenv("PATCHDB_OBS_DISABLED", "1", 1), 0);
  EXPECT_TRUE(obs::obs_env_disabled());
  {
    obs::ObsSession session("disabled_test");
    EXPECT_FALSE(session.installed());
    EXPECT_EQ(obs::tracer(), nullptr);
    PATCHDB_COUNTER_ADD("disabled.counter", 5);
    { PATCHDB_TRACE_SPAN("disabled.span"); }
    const obs::RunReport report = session.report();
    EXPECT_EQ(report.metrics.counter("disabled.counter"), 0u);
    EXPECT_TRUE(report.spans.empty());
  }
  ASSERT_EQ(setenv("PATCHDB_OBS_DISABLED", "0", 1), 0);
  EXPECT_FALSE(obs::obs_env_disabled());  // explicit "0" means enabled
  ASSERT_EQ(unsetenv("PATCHDB_OBS_DISABLED"), 0);
  EXPECT_FALSE(obs::obs_env_disabled());
}

// -------------------------------------------------- histogram quantile --

TEST(ObsHistogramEdge, EmptyHistogramQuantileIsPinnedToZero) {
  obs::HistogramSnapshot empty;
  empty.name = "empty.hist";
  // No observations: every statistic reads 0, never inf/NaN from the
  // min/max sentinels.
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(0.95), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);
  EXPECT_EQ(empty.mean(), 0.0);

  // And an empty histogram renders without poisoning the report.
  obs::RunReport report;
  report.name = "empty_hist_render";
  report.metrics.histograms.push_back(empty);
  const std::string text = report.render();
  EXPECT_NE(text.find("empty.hist"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

// ------------------------------------------------------- v1 back-compat --

TEST(ObsReportCompat, V1ArtifactRoundTripsByteIdentically) {
  // A pre-sampler artifact exactly as the v1 writer emitted it: no
  // resource_timeline key anywhere.
  const std::string v1_text = R"({
  "counters": {"old.counter": 7},
  "gauges": {"old.gauge": 1.5},
  "histograms": {},
  "report": "legacy_run",
  "schema": "patchdb.obs.v1",
  "spans": [],
  "spans_dropped": 0,
  "wall_ms": 12.5
})";
  const obs::Json parsed = obs::Json::parse(v1_text);
  const obs::RunReport report = obs::RunReport::from_json(parsed);
  EXPECT_EQ(report.schema, obs::kReportSchemaV1);
  EXPECT_EQ(report.metrics.counter("old.counter"), 7u);
  EXPECT_TRUE(report.resource_timeline.empty());
  // Re-serializing reproduces the exact same JSON value — the schema
  // tag is preserved and no v2 keys sneak in. This is the property
  // `patchdb metrics --validate` checks on checked-in v1 baselines.
  EXPECT_EQ(report.to_json(), parsed);
  EXPECT_FALSE(report.to_json().contains("resource_timeline"));
}

TEST(ObsReportCompat, V2OmitsEmptyTimelineAndKeepsNonEmptyOne) {
  obs::RunReport no_samples;
  no_samples.name = "v2_no_timeline";
  EXPECT_FALSE(no_samples.to_json().contains("resource_timeline"));

  obs::RunReport with_samples = golden_report();
  const obs::Json json = with_samples.to_json();
  ASSERT_TRUE(json.contains("resource_timeline"));
  EXPECT_EQ(json.at("resource_timeline").as_array().size(), 3u);
  EXPECT_EQ(obs::RunReport::from_json(json).resource_timeline.size(), 3u);
}

TEST(ObsReportCompat, UnsupportedSchemaIsRejected) {
  obs::Json json = golden_report().to_json();
  json.set("schema", obs::Json("patchdb.obs.v99"));
  EXPECT_THROW(obs::RunReport::from_json(json), obs::JsonError);
}

// ---------------------------------------------------------- diff rules --

obs::RunReport diff_fixture(double wall_ms, double reduction,
                            std::uint64_t identical) {
  obs::RunReport report;
  report.name = "diff_fixture";
  report.wall_ms = wall_ms;
  report.metrics.counters["bench.identical"] = identical;
  report.metrics.gauges["bench.memory_reduction"] = reduction;
  obs::HistogramSnapshot hist;
  hist.name = "tile_ms";
  hist.count = 4;
  hist.sum = 40.0;
  hist.min = 5.0;
  hist.max = 15.0;
  hist.bounds = {10.0};
  hist.buckets = {2, 2};
  report.metrics.histograms.push_back(hist);
  return report;
}

TEST(ObsDiff, LookupResolvesEveryMetricKind) {
  const obs::RunReport report = diff_fixture(100.0, 50.0, 1);
  EXPECT_EQ(lookup_metric(report, "wall_ms"), 100.0);
  EXPECT_EQ(lookup_metric(report, "bench.identical"), 1.0);
  EXPECT_EQ(lookup_metric(report, "bench.memory_reduction"), 50.0);
  EXPECT_EQ(lookup_metric(report, "tile_ms@count"), 4.0);
  EXPECT_EQ(lookup_metric(report, "tile_ms@mean"), 10.0);
  EXPECT_EQ(lookup_metric(report, "tile_ms@max"), 15.0);
  ASSERT_TRUE(lookup_metric(report, "tile_ms@p95").has_value());
  EXPECT_GE(*lookup_metric(report, "tile_ms@p95"), 10.0);
  EXPECT_FALSE(lookup_metric(report, "no.such.metric").has_value());
  EXPECT_FALSE(lookup_metric(report, "tile_ms@p0.0.1").has_value());
}

TEST(ObsDiff, ThresholdRulesPassAndFail) {
  const obs::RunReport baseline = diff_fixture(100.0, 50.0, 1);
  const obs::RunReport candidate = diff_fixture(130.0, 20.0, 1);

  obs::DiffRule wall;
  wall.kind = obs::DiffRule::Kind::kMaxIncrease;
  wall.metric = "wall_ms";
  wall.threshold_pct = 50.0;
  obs::DiffRule wall_tight = wall;
  wall_tight.threshold_pct = 10.0;
  obs::DiffRule reduction;
  reduction.kind = obs::DiffRule::Kind::kMaxDecrease;
  reduction.metric = "bench.memory_reduction";
  reduction.threshold_pct = 50.0;

  const std::vector<obs::DiffResult> results = obs::diff_reports(
      baseline, candidate, {wall, wall_tight, reduction});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);   // +30% within the 50% budget
  EXPECT_FALSE(results[1].ok);  // +30% breaks the 10% budget
  EXPECT_FALSE(results[2].ok);  // -60% breaks the 50% floor
  EXPECT_NE(results[1].message.find("wall_ms"), std::string::npos);
}

TEST(ObsDiff, RequireAndMissingMetricSemantics) {
  const obs::RunReport baseline = diff_fixture(100.0, 50.0, 1);
  const obs::RunReport candidate = diff_fixture(100.0, 50.0, 0);

  obs::DiffRule exists;
  exists.kind = obs::DiffRule::Kind::kRequire;
  exists.metric = "bench.memory_reduction";
  obs::DiffRule identical;
  identical.kind = obs::DiffRule::Kind::kRequire;
  identical.metric = "bench.identical";
  identical.required_value = 1.0;
  identical.has_required_value = true;
  obs::DiffRule missing;
  missing.kind = obs::DiffRule::Kind::kMaxIncrease;
  missing.metric = "ghost.metric";
  missing.threshold_pct = 1000.0;

  const std::vector<obs::DiffResult> results =
      obs::diff_reports(baseline, candidate, {exists, identical, missing});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);
  EXPECT_FALSE(results[1].ok);  // candidate's identical=0 != required 1
  EXPECT_FALSE(results[2].ok);  // absent on both sides still fails loudly
}

TEST(ObsDiff, MinRuleIsAnAbsoluteCandidateFloor) {
  // --min never consults the baseline: the floor is machine-independent
  // (e.g. pool.threads >= 2, speedup >= 2 in CI), so a stale or absent
  // baseline metric cannot mask it.
  obs::RunReport baseline = diff_fixture(100.0, 50.0, 1);
  obs::RunReport candidate = diff_fixture(100.0, 50.0, 1);
  candidate.metrics.gauges["pool.threads"] = 4.0;

  obs::DiffRule floor_ok;
  floor_ok.kind = obs::DiffRule::Kind::kMin;
  floor_ok.metric = "pool.threads";
  floor_ok.required_value = 2.0;
  obs::DiffRule floor_bad = floor_ok;
  floor_bad.required_value = 8.0;
  obs::DiffRule floor_missing = floor_ok;
  floor_missing.metric = "ghost.metric";

  const std::vector<obs::DiffResult> results = obs::diff_reports(
      baseline, candidate, {floor_ok, floor_bad, floor_missing});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok);   // 4 >= 2
  EXPECT_FALSE(results[1].ok);  // 4 < 8
  EXPECT_FALSE(results[2].ok);  // missing from candidate fails loudly
  EXPECT_NE(results[1].message.find("floor"), std::string::npos);
}

TEST(ObsDiff, ZeroBaselineOnlyPassesWhenCandidateIsZeroToo) {
  obs::RunReport baseline = diff_fixture(100.0, 50.0, 1);
  baseline.metrics.gauges["zero.gauge"] = 0.0;
  obs::RunReport clean = baseline;
  obs::RunReport dirty = baseline;
  dirty.metrics.gauges["zero.gauge"] = 3.0;

  obs::DiffRule rule;
  rule.kind = obs::DiffRule::Kind::kMaxIncrease;
  rule.metric = "zero.gauge";
  rule.threshold_pct = 50.0;
  EXPECT_TRUE(obs::diff_reports(baseline, clean, {rule})[0].ok);
  EXPECT_FALSE(obs::diff_reports(baseline, dirty, {rule})[0].ok);
}

TEST(ObsDiff, SpecParsing) {
  obs::DiffRule rule;
  std::string error;
  ASSERT_TRUE(obs::parse_threshold_spec(
      "wall_ms:25", obs::DiffRule::Kind::kMaxIncrease, rule, error));
  EXPECT_EQ(rule.metric, "wall_ms");
  EXPECT_EQ(rule.threshold_pct, 25.0);
  ASSERT_TRUE(obs::parse_threshold_spec(
      "link.tile_ms@p95:12.5", obs::DiffRule::Kind::kMaxDecrease, rule, error));
  EXPECT_EQ(rule.metric, "link.tile_ms@p95");
  EXPECT_EQ(rule.threshold_pct, 12.5);

  EXPECT_FALSE(obs::parse_threshold_spec(
      "wall_ms", obs::DiffRule::Kind::kMaxIncrease, rule, error));
  EXPECT_FALSE(obs::parse_threshold_spec(
      "wall_ms:", obs::DiffRule::Kind::kMaxIncrease, rule, error));
  EXPECT_FALSE(obs::parse_threshold_spec(
      "wall_ms:5x", obs::DiffRule::Kind::kMaxIncrease, rule, error));
  EXPECT_FALSE(obs::parse_threshold_spec(
      ":25", obs::DiffRule::Kind::kMaxIncrease, rule, error));

  ASSERT_TRUE(obs::parse_require_spec("bench.identical=1", rule, error));
  EXPECT_EQ(rule.metric, "bench.identical");
  EXPECT_TRUE(rule.has_required_value);
  EXPECT_EQ(rule.required_value, 1.0);
  ASSERT_TRUE(obs::parse_require_spec("bench.speedup", rule, error));
  EXPECT_FALSE(rule.has_required_value);
  EXPECT_FALSE(obs::parse_require_spec("", rule, error));
  EXPECT_FALSE(obs::parse_require_spec("metric=abc", rule, error));

  ASSERT_TRUE(obs::parse_min_spec("pool.threads:2", rule, error));
  EXPECT_EQ(rule.kind, obs::DiffRule::Kind::kMin);
  EXPECT_EQ(rule.metric, "pool.threads");
  EXPECT_EQ(rule.required_value, 2.0);
  ASSERT_TRUE(obs::parse_min_spec("bench.speedup:2.5", rule, error));
  EXPECT_EQ(rule.required_value, 2.5);
  EXPECT_FALSE(obs::parse_min_spec("pool.threads", rule, error));
  EXPECT_FALSE(obs::parse_min_spec("pool.threads:", rule, error));
  EXPECT_FALSE(obs::parse_min_spec(":2", rule, error));
  EXPECT_FALSE(obs::parse_min_spec("pool.threads:2x", rule, error));
}

}  // namespace
}  // namespace patchdb
