#!/usr/bin/env bash
# Serve smoke check: end-to-end exercise of the daemon path.
#
#   tools/serve_smoke.sh [BUILD_DIR] [ARTIFACT_DIR]
#
# Builds a small example dataset with `patchdb build`, starts patchdbd
# on an ephemeral port, pings it with patchdb_client, drives a
# sustained load through bench/micro_serve, gates the client metrics
# with tools/bench_diff on machine-independent rules (exact request
# counts and zero errors — latency varies with hardware and is
# recorded, not gated), then SIGTERMs the daemon and requires a
# graceful exit 0. The daemon's own obs artifacts (metrics JSON +
# Chrome trace) are validated and, when ARTIFACT_DIR is given, copied
# there for upload.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
artifact_dir="${2:-}"

cli_bin="${build_dir}/tools/patchdb"
daemon_bin="${build_dir}/tools/patchdbd"
client_bin="${build_dir}/tools/patchdb_client"
load_bin="${build_dir}/bench/micro_serve"
diff_bin="${build_dir}/tools/bench_diff"
for bin in "${cli_bin}" "${daemon_bin}" "${client_bin}" "${load_bin}" \
           "${diff_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "serve_smoke.sh: ${bin} missing; build the repo first" >&2
    exit 2
  fi
done

workdir="$(mktemp -d --suffix=.patchdb-serve-smoke)"
daemon_pid=""
cleanup() {
  if [[ -n "${daemon_pid}" ]] && kill -0 "${daemon_pid}" 2>/dev/null; then
    kill -KILL "${daemon_pid}" 2>/dev/null || true
  fi
  rm -rf "${workdir}"
}
trap cleanup EXIT

echo "serve_smoke.sh: building example dataset"
"${cli_bin}" build --out "${workdir}/dataset" \
  --nvd 30 --wild 300 --rounds 1 --seed 907 > /dev/null

echo "serve_smoke.sh: starting patchdbd"
"${daemon_bin}" --data "${workdir}/dataset" \
  --port-file "${workdir}/port" \
  --metrics-out "${workdir}/daemon_metrics.json" \
  --trace-out "${workdir}/daemon_trace.json" &
daemon_pid=$!

for _ in $(seq 1 100); do
  [[ -s "${workdir}/port" ]] && break
  if ! kill -0 "${daemon_pid}" 2>/dev/null; then
    echo "serve_smoke.sh: patchdbd died during startup" >&2
    exit 1
  fi
  sleep 0.1
done
port="$(cat "${workdir}/port")"
if [[ -z "${port}" ]]; then
  echo "serve_smoke.sh: no port published by patchdbd" >&2
  exit 1
fi

"${client_bin}" ping --port "${port}"
first_id="$("${client_bin}" ids --limit 1 --port "${port}")"
"${client_bin}" nearest "${first_id}" --k 3 --port "${port}" > /dev/null
"${client_bin}" stats --port "${port}" > /dev/null

# Same shape as the committed baseline: 8 conns x 20 cycles x 5 ops.
conns=8
reps=20
echo "serve_smoke.sh: driving load (${conns} conns x ${reps} cycles)"
"${load_bin}" --host 127.0.0.1 --port "${port}" \
  --conns "${conns}" --reps "${reps}" \
  --metrics-out "${workdir}/client_metrics.json"

expected=$((conns * reps * 5))
"${diff_bin}" "${repo_root}/bench/BENCH_serve.json" \
  "${workdir}/client_metrics.json" \
  --require serve.client.requests="${expected}" \
  --require serve.client.errors=0 \
  --require serve.client.protocol_errors=0 \
  --require serve.client.request_ms@count="${expected}" \
  --require serve.client.request_ms@p50 \
  --require serve.bench.qps \
  --require serve.bench.p99_ms

echo "serve_smoke.sh: draining patchdbd with SIGTERM"
kill -TERM "${daemon_pid}"
daemon_exit=0
wait "${daemon_pid}" || daemon_exit=$?
daemon_pid=""
if [[ "${daemon_exit}" -ne 0 ]]; then
  echo "serve_smoke.sh: patchdbd exited ${daemon_exit}, want 0" >&2
  exit 1
fi

"${cli_bin}" metrics --validate "${workdir}/daemon_metrics.json"
for signal in '"serve.requests"' '"serve.request_ms"' \
              '"serve.active_connections"' '"serve.dataset.patches"'; do
  if ! grep -q -- "${signal}" "${workdir}/daemon_metrics.json"; then
    echo "serve_smoke.sh: daemon report is missing ${signal}" >&2
    exit 1
  fi
done

if [[ -n "${artifact_dir}" ]]; then
  mkdir -p "${artifact_dir}"
  cp "${workdir}/daemon_metrics.json" "${workdir}/daemon_trace.json" \
     "${workdir}/client_metrics.json" "${artifact_dir}/"
fi

echo "serve_smoke.sh: OK (daemon served, gated, and drained cleanly)"
