// patchdb — command-line front end for the PatchDB library.
//
//   patchdb build --out DIR [--nvd N] [--wild N] [--rounds R] [--seed S]
//           [--threads N] [--checkpoint-dir D] [--resume] [--trace-out FILE]
//           [--progress]
//       Build a simulated PatchDB (NVD crawl -> nearest-link augmentation
//       -> synthesis) and export it to DIR in the release layout. With
//       --checkpoint-dir the augmentation state is persisted after every
//       round; --resume continues an interrupted build from the last
//       checkpoint and produces a bit-identical export. --threads N
//       sizes the worker pool the streaming nearest-link engine shards
//       across (wins over PATCHDB_THREADS; default: hardware
//       concurrency). The export is bit-identical for every worker
//       count. --index {exact,coarse,rproj} [--index-nprobe N] enables
//       the phase-0 shortlist index in front of the streaming engine
//       (implies --streaming; results stay bit-identical — the index
//       only trades probes/rescans for wall-clock). --trace-out
//       writes a Chrome trace of the run (load in Perfetto); --progress
//       prints heartbeat lines from the long loops.
//   patchdb stats DIR
//       Summarize an exported dataset: component sizes, Table V type
//       distribution, categorizer agreement.
//   patchdb fsck DIR
//       Verify an exported dataset and/or checkpoint directory: manifest
//       and features checksums, strict row parsing, per-patch content
//       checksums, orphaned files. Exit 1 when anything is corrupted.
//   patchdb features FILE.patch [--all] [--semantic] [--interproc]
//       Print the Table I feature vector of a patch file (--semantic
//       appends the 12 CFG/checker dimensions, --interproc a further 8
//       call-graph/summary dimensions).
//   patchdb analyze FILE.patch [--unchanged] [--interproc]
//       Run the CFG security checkers on the BEFORE and AFTER versions
//       of each patched file and report resolved/introduced diagnostics.
//       --interproc layers the call graph and function summaries on top,
//       so checkers see through calls between patched functions.
//   patchdb categorize FILE.patch
//       Print the Table V code-change category of a patch file.
//   patchdb tokens FILE.patch
//       Print the RNN token stream of a patch file.
//   patchdb variants "CONDITION"
//       Print the eight Fig. 5 control-flow rewrites of `if (CONDITION)`.
//   patchdb presence FILE.patch TARGET_SOURCE_FILE
//       Patch presence test (Sec. V-A.1): is the fix already applied in
//       the target file? Prints patched/vulnerable/partial/unknown.
//   patchdb metrics [--nvd N] [--wild N] [--rounds R] [--seed S]
//           [--metrics-out FILE] [--trace-out FILE] [--sample-ms N]
//           [--progress]
//       Run the build pipeline under an observability session and print
//       the metrics/span report; --metrics-out also writes the JSON
//       artifact (schema patchdb.obs.v2, with a resource timeline when
//       the sampler ran); --trace-out writes a Chrome trace.
//   patchdb metrics --validate FILE.json
//       Parse a --metrics-out artifact, check the schema (v1 and v2
//       both accepted) and JSON round-trip, and print a summary. Exit 1
//       when malformed.
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/report.h"
#include "core/categorize.h"
#include "core/patchdb.h"
#include "core/presence.h"
#include "diff/parse.h"
#include "feature/features.h"
#include "nn/encode.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "store/checkpoint.h"
#include "store/export.h"
#include "store/fsck.h"
#include "synth/variants.h"
#include "util/strings.h"
#include "util/table.h"
#include "util/thread_pool.h"

#include "cli_common.h"

namespace {

using namespace patchdb;
using cli::CliObs;
using cli::Flags;

int usage() {
  std::fprintf(stderr,
               "usage: patchdb <command> [args]\n"
               "  build --out DIR [--nvd N] [--wild N] [--rounds R] [--seed S]\n"
               "        [--threads N]\n"
               "        [--streaming] [--link-topk K] [--link-tile N] [--link-mem-mb MB]\n"
               "        [--index exact|coarse|rproj] [--index-nprobe N]\n"
               "        [--checkpoint-dir D] [--resume]\n"
               "        [--trace-out FILE] [--sample-ms N] [--progress] [--progress-ms N]\n"
               "  stats DIR\n"
               "  fsck DIR\n"
               "  features FILE.patch [--all] [--semantic] [--interproc]\n"
               "  analyze FILE.patch [--unchanged] [--interproc] [--trace-out FILE]\n"
               "  categorize FILE.patch\n"
               "  tokens FILE.patch\n"
               "  variants \"CONDITION\"\n"
               "  presence FILE.patch TARGET_SOURCE_FILE\n"
               "  metrics [--nvd N] [--wild N] [--rounds R] [--seed S]\n"
               "          [--threads N]\n"
               "          [--streaming] [--link-topk K] [--link-tile N]"
               " [--link-mem-mb MB]\n"
               "          [--index exact|coarse|rproj] [--index-nprobe N]\n"
               "          [--metrics-out FILE] [--trace-out FILE] [--sample-ms N]\n"
               "          [--progress] [--progress-ms N]\n"
               "  metrics --validate FILE.json\n");
  return 2;
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "patchdb: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// `--threads N`: size the default thread pool before anything touches
/// it (the obs session attaches the pool, so this must run first in the
/// command). Strict like every numeric flag — 0, junk, or a value after
/// the pool already exists at a different size is a usage error. Wins
/// over the PATCHDB_THREADS environment variable.
bool apply_threads_flag(const Flags& flags) {
  if (!flags.has("--threads")) return true;
  const std::size_t threads = flags.value("--threads", std::size_t{0});
  if (threads == 0) {
    std::fprintf(stderr, "%s: --threads expects a positive integer\n",
                 flags.tool().c_str());
    return false;
  }
  try {
    util::configure_default_pool(threads);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: --threads %zu: %s\n", flags.tool().c_str(),
                 threads, e.what());
    return false;
  }
  return true;
}

/// `--streaming [--link-topk K] [--link-tile N] [--link-mem-mb MB]`
/// routes the augmentation rounds through the streaming tiled
/// nearest-link engine (bit-identical results, bounded memory).
/// `--index {exact,coarse,rproj} [--index-nprobe N]` adds the phase-0
/// shortlist index on top (still bit-identical; implies --streaming).
/// Returns false on a usage error (the caller exits 2).
bool apply_link_flags(const Flags& flags, core::BuildOptions& options) {
  const std::string index_kind = flags.value("--index", std::string());
  if (!flags.has("--streaming") && index_kind.empty()) return true;
  options.use_streaming_link = true;
  options.streaming_link.top_k =
      flags.value("--link-topk", options.streaming_link.top_k);
  options.streaming_link.tile_cols =
      flags.value("--link-tile", options.streaming_link.tile_cols);
  const std::size_t cap_mb = flags.value("--link-mem-mb", std::size_t{0});
  if (cap_mb > (std::numeric_limits<std::size_t>::max() >> 20)) {
    std::fprintf(stderr, "%s: --link-mem-mb %zu overflows a byte count\n",
                 flags.tool().c_str(), cap_mb);
    return false;
  }
  if (cap_mb > 0) options.streaming_link.memory_cap_bytes = cap_mb << 20;
  if (!index_kind.empty()) {
    try {
      options.streaming_link.index.kind = core::parse_index_kind(index_kind);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: --index: %s\n", flags.tool().c_str(), e.what());
      return false;
    }
  }
  if (flags.has("--index-nprobe")) {
    const std::size_t nprobe = flags.value("--index-nprobe", std::size_t{0});
    if (nprobe == 0) {
      std::fprintf(stderr, "%s: --index-nprobe expects a positive integer\n",
                   flags.tool().c_str());
      return false;
    }
    options.streaming_link.index.nprobe = nprobe;
  }
  return true;
}

int cmd_build(const Flags& flags) {
  if (!apply_threads_flag(flags)) return 2;
  const std::string out = flags.value("--out", std::string());
  if (out.empty()) {
    std::fprintf(stderr, "patchdb build: --out DIR is required\n");
    return 2;
  }
  core::BuildOptions options;
  options.world.repos = 40;
  options.world.nvd_security = flags.value("--nvd", std::size_t{400});
  options.world.wild_pool = flags.value("--wild", std::size_t{10000});
  options.world.seed = flags.value("--seed", std::size_t{42});
  options.augment.max_rounds = flags.value("--rounds", std::size_t{3});
  options.synthesis.max_per_patch = flags.value("--synth", std::size_t{4});
  options.checkpoint_dir = flags.value("--checkpoint-dir", std::string());
  options.resume = flags.has("--resume");
  if (!apply_link_flags(flags, options)) return 2;

  std::printf("building PatchDB: %zu NVD CVEs, %zu wild commits, %zu rounds, seed %zu%s%s\n",
              options.world.nvd_security, options.world.wild_pool,
              options.augment.max_rounds,
              static_cast<std::size_t>(options.world.seed),
              options.use_streaming_link ? " (streaming nearest link)" : "",
              options.checkpoint_dir.empty() ? "" : " (checkpointed)");
  CliObs cli_obs("patchdb build", flags);
  const core::PatchDb db = store::build_with_checkpoints(options);
  const store::ExportStats stats = store::export_patchdb(db, out);
  cli_obs.write_artifacts(cli_obs.report());

  std::printf("exported %zu patches (%zu feature rows) to %s\n",
              stats.patches_written, stats.feature_rows,
              stats.root.string().c_str());
  std::printf("  nvd: %zu  wild: %zu  nonsecurity: %zu  synthetic: %zu\n",
              db.nvd_security.size(), db.wild_security.size(),
              db.nonsecurity.size(), db.synthetic.size());
  for (const core::RoundStats& round : db.rounds) {
    std::printf("  round %zu: %zu candidates -> %zu security (%.0f%%)\n",
                round.round, round.candidates, round.verified_security,
                round.ratio * 100.0);
  }
  return 0;
}

int cmd_stats(const std::string& dir) {
  const store::LoadedPatchDb db = store::load_patchdb(dir);
  std::printf("dataset at %s\n", dir.c_str());
  std::printf("  nvd security:  %zu\n", db.nvd_security.size());
  std::printf("  wild security: %zu\n", db.wild_security.size());
  std::printf("  nonsecurity:   %zu\n", db.nonsecurity.size());
  std::printf("  synthetic:     %zu\n", db.synthetic.size());

  std::array<std::size_t, corpus::kSecurityTypeCount> truth{};
  std::array<std::size_t, corpus::kSecurityTypeCount> predicted{};
  std::size_t agree = 0;
  std::size_t total = 0;
  auto scan = [&](const std::vector<corpus::CommitRecord>& records) {
    for (const corpus::CommitRecord& r : records) {
      if (!corpus::is_security_type(r.truth.type)) continue;
      ++total;
      ++truth[static_cast<std::size_t>(static_cast<int>(r.truth.type)) - 1];
      const corpus::PatchType p = core::categorize(r.patch);
      if (corpus::is_security_type(p)) {
        ++predicted[static_cast<std::size_t>(static_cast<int>(p)) - 1];
      }
      agree += (p == r.truth.type);
    }
  };
  scan(db.nvd_security);
  scan(db.wild_security);
  if (total == 0) return 0;

  util::Table table("security patch composition (Table V taxonomy)");
  table.set_header({"ID", "Pattern", "Labeled %", "Categorizer %"});
  for (std::size_t i = 0; i < corpus::kSecurityTypeCount; ++i) {
    table.add_row({std::to_string(i + 1),
                   std::string(corpus::patch_type_name(corpus::security_types()[i])),
                   util::format_percent(static_cast<double>(truth[i]) /
                                            static_cast<double>(total), 1),
                   util::format_percent(static_cast<double>(predicted[i]) /
                                            static_cast<double>(total), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  categorizer agreement with labels: %.0f%%\n",
              100.0 * static_cast<double>(agree) / static_cast<double>(total));
  return 0;
}

int cmd_fsck(const std::string& dir) {
  if (dir.empty()) {
    std::fprintf(stderr, "patchdb fsck: need a dataset or checkpoint DIR\n");
    return 2;
  }
  const store::FsckReport report = store::fsck(dir);
  for (const std::string& error : report.errors) {
    std::fprintf(stderr, "fsck: %s\n", error.c_str());
  }
  if (!report.ok()) {
    std::fprintf(stderr, "fsck: %s: %zu error(s)\n", dir.c_str(),
                 report.errors.size());
    return 1;
  }
  std::printf("fsck: %s: ok (%zu files, %zu bytes, %zu rows verified)\n",
              dir.c_str(), report.files_checked, report.bytes_checked,
              report.manifest_rows);
  return 0;
}

int cmd_features(const std::string& path, bool all, bool semantic,
                 bool interproc) {
  const diff::Patch patch = diff::parse_patch(read_file_or_die(path));
  const feature::FeatureSpace space =
      interproc ? feature::FeatureSpace::kInterproc
                : semantic ? feature::FeatureSpace::kSemantic
                           : feature::FeatureSpace::kSyntactic;
  std::vector<double> v;
  if (interproc) {
    const feature::InterprocFeatureVector e = feature::extract_interproc(patch);
    v.assign(e.begin(), e.end());
  } else if (semantic) {
    const feature::ExtendedFeatureVector e = feature::extract_extended(patch);
    v.assign(e.begin(), e.end());
  } else {
    const feature::FeatureVector e = feature::extract(patch);
    v.assign(e.begin(), e.end());
  }
  const auto names = feature::feature_names(space);
  std::printf("commit %s: %zu files, %zu hunks\n", patch.commit.c_str(),
              patch.files.size(), patch.hunk_count());
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (all || v[i] != 0.0) {
      std::printf("  %2zu  %-24s %g\n", i + 1, std::string(names[i]).c_str(), v[i]);
    }
  }
  return 0;
}

int cmd_analyze(const Flags& flags) {
  const std::string path = flags.positional();
  const diff::Patch patch = diff::parse_patch(read_file_or_die(path));
  CliObs cli_obs("patchdb analyze", flags);
  analysis::AnalyzeOptions analyze_options;
  analyze_options.interproc = flags.has("--interproc");
  const analysis::PatchAnalysis pa =
      analysis::analyze_patch(patch, analyze_options);
  std::printf("commit %s: %zu files, %zu hunks\n", patch.commit.c_str(),
              patch.files.size(), patch.hunk_count());
  analysis::ReportOptions options;
  options.show_unchanged = flags.has("--unchanged");
  std::printf("%s", analysis::render_report(pa, options).c_str());
  cli_obs.write_artifacts(cli_obs.report());
  return 0;
}

int cmd_categorize(const std::string& path) {
  const diff::Patch patch = diff::parse_patch(read_file_or_die(path));
  const corpus::PatchType type = core::categorize(patch);
  std::printf("Type %d: %s\n", static_cast<int>(type),
              std::string(corpus::patch_type_name(type)).c_str());
  return 0;
}

int cmd_tokens(const std::string& path) {
  const diff::Patch patch = diff::parse_patch(read_file_or_die(path));
  for (const std::string& token : nn::patch_tokens(patch)) {
    std::printf("%s ", token.c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_presence(const std::string& patch_path, const std::string& target_path) {
  if (patch_path.empty() || target_path.empty()) {
    std::fprintf(stderr, "patchdb presence: need FILE.patch and TARGET file\n");
    return 2;
  }
  const diff::Patch patch = diff::parse_patch(read_file_or_die(patch_path));
  const std::string target_text = read_file_or_die(target_path);
  std::vector<std::string> target_lines;
  for (std::string_view line : util::split_lines(target_text)) {
    target_lines.emplace_back(line);
  }

  int exit_code = 0;
  for (const diff::FileDiff& fd : patch.files) {
    if (fd.hunks.empty()) continue;
    const core::PresenceReport report = core::test_presence(target_lines, fd);
    std::printf("%s: %s (%zu patched / %zu vulnerable / %zu unknown hunks)\n",
                fd.new_path.c_str(), core::presence_name(report.verdict),
                report.hunks_patched, report.hunks_vulnerable,
                report.hunks_unknown);
    if (report.verdict == core::Presence::kVulnerable) exit_code = 3;
  }
  return exit_code;
}

int cmd_metrics_validate(const std::string& path) {
  if (path.empty()) {
    std::fprintf(stderr, "patchdb metrics --validate: need FILE.json\n");
    return 2;
  }
  obs::RunReport report;
  try {
    report = obs::read_report_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "patchdb metrics: %s is not a valid report: %s\n",
                 path.c_str(), e.what());
    return 1;
  }
  // Round-trip check: serializing the parsed report must reproduce the
  // file's JSON value exactly (field loss here would silently corrupt
  // the perf-trajectory artifacts).
  const obs::Json reparsed = obs::Json::parse(read_file_or_die(path));
  if (report.to_json() != reparsed) {
    std::fprintf(stderr, "patchdb metrics: %s did not survive a JSON round-trip\n",
                 path.c_str());
    return 1;
  }
  std::printf("%s: valid %s report \"%s\"\n", path.c_str(),
              report.schema.c_str(), report.name.c_str());
  std::printf("  wall: %.1f ms, %zu counters, %zu gauges, %zu histograms, "
              "%zu spans (%llu dropped)",
              report.wall_ms, report.metrics.counters.size(),
              report.metrics.gauges.size(), report.metrics.histograms.size(),
              report.spans.size(),
              static_cast<unsigned long long>(report.spans_dropped));
  if (!report.resource_timeline.empty()) {
    std::printf(", %zu resource samples", report.resource_timeline.size());
  }
  std::printf("\n");
  return 0;
}

int cmd_metrics(const Flags& flags) {
  if (flags.has("--validate")) {
    return cmd_metrics_validate(flags.value("--validate", std::string()));
  }
  if (!apply_threads_flag(flags)) return 2;
  core::BuildOptions options;
  options.world.repos = 20;
  options.world.nvd_security = flags.value("--nvd", std::size_t{200});
  options.world.wild_pool = flags.value("--wild", std::size_t{4000});
  options.world.seed = flags.value("--seed", std::size_t{42});
  options.augment.max_rounds = flags.value("--rounds", std::size_t{3});
  options.synthesis.max_per_patch = flags.value("--synth", std::size_t{2});
  if (!apply_link_flags(flags, options)) return 2;

  CliObs cli_obs("patchdb metrics", flags);
  const core::PatchDb db = core::build_patchdb(options);
  const obs::RunReport report = cli_obs.report();

  std::printf("pipeline: %zu NVD + %zu wild security, %zu nonsecurity, "
              "%zu synthetic\n\n",
              db.nvd_security.size(), db.wild_security.size(),
              db.nonsecurity.size(), db.synthetic.size());
  std::printf("%s", report.render().c_str());

  cli_obs.write_artifacts(report);
  return 0;
}

int cmd_variants(const std::string& condition) {
  std::printf("if (%s) { ... }\n\n", condition.c_str());
  for (synth::IfVariant v : synth::all_variants()) {
    const synth::VariantRewrite r = synth::rewrite_if(v, condition, "  ");
    std::printf("-- variant %d: %s\n", static_cast<int>(v), synth::variant_name(v));
    for (const std::string& line : r.setup) std::printf("%s\n", line.c_str());
    std::printf("%s { ... }\n\n", r.new_if_head.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  try {
    if (command == "build") return cmd_build(flags);
    if (command == "stats") return cmd_stats(flags.positional());
    if (command == "fsck") return cmd_fsck(flags.positional());
    if (command == "features") {
      return cmd_features(flags.positional(), flags.has("--all"),
                          flags.has("--semantic"), flags.has("--interproc"));
    }
    if (command == "analyze") return cmd_analyze(flags);
    if (command == "categorize") return cmd_categorize(flags.positional());
    if (command == "tokens") return cmd_tokens(flags.positional());
    if (command == "variants") return cmd_variants(flags.positional());
    if (command == "presence" && argc >= 4) {
      return cmd_presence(argv[2], argv[3]);
    }
    if (command == "metrics") return cmd_metrics(flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "patchdb %s: %s\n", command.c_str(), e.what());
    return 1;
  }
  return usage();
}
