#!/usr/bin/env bash
# Bench smoke check: run one real bench end to end on a small fixture
# with --metrics-out and validate the emitted observability artifact.
#
#   tools/bench_smoke.sh [BUILD_DIR]
#
# BUILD_DIR defaults to ./build and must already contain the built
# bench/table2_augmentation and tools/patchdb binaries. The check fails
# when the bench exits nonzero, when the JSON does not parse/round-trip
# (patchdb metrics --validate), or when the report is missing the
# pipeline signals the bench is supposed to produce (per-round hit-ratio
# gauges, augmentation round spans, thread-pool histograms).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"

bench_bin="${build_dir}/bench/table2_augmentation"
cli_bin="${build_dir}/tools/patchdb"
for bin in "${bench_bin}" "${cli_bin}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "bench_smoke.sh: ${bin} missing; build the repo first" >&2
    exit 2
  fi
done

out_json="$(mktemp --suffix=.patchdb-smoke.json)"
trap 'rm -f "${out_json}"' EXIT

# Scale 0.1 keeps the five-round protocol intact (seed 80, pools 2K/4K)
# while finishing in seconds.
"${bench_bin}" 0.1 --metrics-out "${out_json}" > /dev/null

"${cli_bin}" metrics --validate "${out_json}"

require() {
  if ! grep -q -- "$1" "${out_json}"; then
    echo "bench_smoke.sh: report is missing $1" >&2
    exit 1
  fi
}
for round in 1 2 3 4 5; do
  require "\"augment.round.${round}.hit_ratio\""
done
require '"name": "augment.round"'
require '"pool.task_ms"'
require '"bench.items"'

echo "bench_smoke.sh: OK (${bench_bin##*/} --metrics-out artifact is valid)"
