#!/usr/bin/env bash
# Run clang-tidy over the first-party sources using the compile database
# of an existing build directory.
#
#   tools/lint.sh [BUILD_DIR] [-- extra clang-tidy args]
#
# BUILD_DIR defaults to ./build. The build must have been configured with
# CMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo's default configure does
# this) so clang-tidy sees the real flags. Exits nonzero when clang-tidy
# reports any diagnostic, so it can gate CI.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true
if [[ "${1:-}" == "--" ]]; then shift; fi

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${tidy_bin}" >/dev/null 2>&1; then
  echo "lint.sh: ${tidy_bin} not found; install clang-tidy or set CLANG_TIDY" >&2
  exit 127
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "lint.sh: ${build_dir}/compile_commands.json missing." >&2
  echo "  configure with: cmake -B '${build_dir}' -S '${repo_root}' -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# find covers every module under src/ recursively — including the
# observability layer (src/obs), whose macro call sites clang-tidy must
# see expanded with the real compile flags.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tools" \
  -name '*.cpp' | sort)

echo "lint.sh: clang-tidy over ${#sources[@]} files (config: ${repo_root}/.clang-tidy)"
"${tidy_bin}" -p "${build_dir}" --quiet "$@" "${sources[@]}"
