// Shared command-line plumbing for the patchdb tools (patchdb,
// patchdbd, patchdb_client, micro_serve): strict flag parsing and the
// observability session/artifact wrapper.
//
// The parsing is deliberately strict. `--nvd 4OO` used to reach
// std::stoull and either silently truncate ("4") or escape as an
// uncaught std::invalid_argument; now every numeric flag goes through
// parse_size(), which accepts only a complete non-negative decimal
// integer and otherwise prints the flag, the offending text, and exits
// 2 (the usage-error exit the tools already use).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/progress.h"

namespace patchdb::cli {

/// Strict decimal parse of a numeric flag value. Exits 2 with a
/// message naming the flag and the bad text on anything that is not a
/// complete non-negative integer (letters, trailing junk, minus signs,
/// overflow, empty string).
inline std::size_t parse_size(const std::string& tool, const std::string& flag,
                              const std::string& raw) {
  bool ok = !raw.empty();
  unsigned long long value = 0;
  std::size_t consumed = 0;
  if (ok && (raw[0] == '-' || raw[0] == '+')) ok = false;
  if (ok) {
    try {
      value = std::stoull(raw, &consumed);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (ok && consumed != raw.size()) ok = false;
  if (!ok) {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got \"%s\"\n",
                 tool.c_str(), flag.c_str(), raw.c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(value);
}

/// `--flag value` parser over argv[first..]. Numeric lookups are
/// strict: a malformed value is a usage error (exit 2), never an
/// exception or a silent truncation.
class Flags {
 public:
  Flags(int argc, char** argv, int first, std::string tool = "patchdb")
      : tool_(std::move(tool)) {
    for (int i = first; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string value(const std::string& name, std::string fallback) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return args_[i + 1];
    }
    return fallback;
  }

  std::size_t value(const std::string& name, std::size_t fallback) const {
    const std::string raw = value(name, std::string());
    return raw.empty() ? fallback : parse_size(tool_, name, raw);
  }

  bool has(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == name) return true;
    }
    return false;
  }

  /// First argument that is not a flag or a flag value.
  std::string positional() const {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      if (args_[i].rfind("--", 0) == 0) {
        ++i;  // skip the flag's value
        continue;
      }
      return args_[i];
    }
    return {};
  }

  const std::string& tool() const noexcept { return tool_; }

 private:
  std::string tool_;
  std::vector<std::string> args_;
};

/// Shared observability plumbing for the pipeline commands: applies
/// --progress/--progress-ms, installs an ObsSession, and — when
/// --trace-out or --metrics-out asks for an artifact — runs a
/// ResourceSampler at --sample-ms (default 50) for the command's
/// lifetime. report() stops the sampler and snapshots;
/// write_artifacts() honors --metrics-out and --trace-out.
class CliObs {
 public:
  CliObs(const char* name, const Flags& flags)
      : trace_out_(flags.value("--trace-out", std::string())),
        metrics_out_(flags.value("--metrics-out", std::string())),
        obs_(name) {
    if (flags.has("--progress")) obs::set_progress_interval_ms(1000);
    const std::size_t progress_ms = flags.value("--progress-ms", std::size_t{0});
    if (progress_ms > 0) obs::set_progress_interval_ms(progress_ms);
    const bool want_artifacts = !trace_out_.empty() || !metrics_out_.empty();
    if (obs_.installed() && want_artifacts) {
      obs::ResourceSampler::Options opt;
      // Clamp before the signed cast: a size_t like 2^63 would wrap to
      // a negative interval. One hour is already far beyond any useful
      // sampling period.
      constexpr std::size_t kMaxSampleMs = 3'600'000;
      opt.interval = std::chrono::milliseconds(static_cast<long long>(
          std::min(flags.value("--sample-ms", std::size_t{50}), kMaxSampleMs)));
      sampler_ = std::make_unique<obs::ResourceSampler>(opt);
      obs_.attach_sampler(sampler_.get());
      sampler_->start();
    }
  }

  obs::RunReport report() {
    if (sampler_) sampler_->stop();  // idempotent
    return obs_.report();
  }

  void write_artifacts(const obs::RunReport& report) {
    if (!metrics_out_.empty()) {
      obs::write_report_file(report, metrics_out_);
      std::printf("metrics written to %s\n", metrics_out_.c_str());
    }
    if (!trace_out_.empty()) {
      obs::write_trace_file(report, trace_out_);
      std::printf("trace written to %s (load in Perfetto / chrome://tracing)\n",
                  trace_out_.c_str());
    }
  }

 private:
  std::string trace_out_;
  std::string metrics_out_;
  obs::ObsSession obs_;
  std::unique_ptr<obs::ResourceSampler> sampler_;
};

}  // namespace patchdb::cli
