// patchdb_client — command-line client for a running patchdbd.
//
//   patchdb_client <command> [args] --port P [--host H]
//     ping
//     lookup ID
//     features ID [--semantic | --interproc]
//     nearest ID [--k K]
//     nearest --vector "v0,v1,..." [--k K]
//     stats
//     analyze FILE.patch [--interproc]
//     ids [--component nvd|wild|nonsecurity|synthetic] [--limit N]
//
// Exit 0 on a kOk response, 1 on a server-reported error or transport
// failure, 2 on usage errors. Put positional arguments before flags.
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "serve/client.h"
#include "util/strings.h"

#include "cli_common.h"

namespace {

using namespace patchdb;

int usage() {
  std::fprintf(stderr,
               "usage: patchdb_client <command> [args] --port P [--host H]\n"
               "  ping\n"
               "  lookup ID\n"
               "  features ID [--semantic | --interproc]\n"
               "  nearest ID [--k K]\n"
               "  nearest --vector \"v0,v1,...\" [--k K]\n"
               "  stats\n"
               "  analyze FILE.patch [--interproc]\n"
               "  ids [--component nvd|wild|nonsecurity|synthetic]"
               " [--limit N]\n");
  return 2;
}

std::string_view component_name(serve::WireComponent component) {
  switch (component) {
    case serve::WireComponent::kAll: return "all";
    case serve::WireComponent::kNvd: return "nvd";
    case serve::WireComponent::kWild: return "wild";
    case serve::WireComponent::kNonsecurity: return "nonsecurity";
    case serve::WireComponent::kSynthetic: return "synthetic";
  }
  return "unknown";
}

/// Print a non-kOk response and return the tool's failure exit code.
int report_error(const serve::Response& response) {
  std::fprintf(stderr, "patchdb_client: %s: %s\n",
               std::string(serve::status_name(response.status)).c_str(),
               response.error.c_str());
  return 1;
}

int run(const std::string& command, const cli::Flags& flags) {
  const std::string host = flags.value("--host", std::string("127.0.0.1"));
  const std::size_t port = flags.value("--port", std::size_t{0});
  if (port == 0 || port > 65535) {
    std::fprintf(stderr, "patchdb_client: --port P (1..65535) is required\n");
    return 2;
  }

  serve::Client client;
  client.connect(host, static_cast<std::uint16_t>(port));

  if (command == "ping") {
    const serve::Response r = client.ping();
    if (r.status != serve::Status::kOk) return report_error(r);
    std::printf("protocol v%u, %llu patches\n", r.ping.protocol_version,
                static_cast<unsigned long long>(r.ping.patches));
    return 0;
  }

  if (command == "lookup") {
    const std::string id = flags.positional();
    if (id.empty()) return usage();
    const serve::Response r = client.lookup(id);
    if (r.status != serve::Status::kOk) return report_error(r);
    std::printf("component: %s\nsecurity: %s\ntype: %lld\n",
                std::string(component_name(r.lookup.component)).c_str(),
                r.lookup.is_security ? "yes" : "no",
                static_cast<long long>(r.lookup.type));
    if (!r.lookup.repo.empty()) {
      std::printf("repo: %s\n", r.lookup.repo.c_str());
    }
    if (!r.lookup.origin.empty()) {
      std::printf("origin: %s\n", r.lookup.origin.c_str());
    }
    std::printf("---\n%s", r.lookup.patch_text.c_str());
    return 0;
  }

  if (command == "features") {
    const std::string id = flags.positional();
    if (id.empty()) return usage();
    serve::WireFeatureSpace space = serve::WireFeatureSpace::kSyntactic;
    if (flags.has("--semantic")) space = serve::WireFeatureSpace::kSemantic;
    if (flags.has("--interproc")) space = serve::WireFeatureSpace::kInterproc;
    const serve::Response r = client.features(id, space);
    if (r.status != serve::Status::kOk) return report_error(r);
    for (std::size_t i = 0; i < r.features.vector.size(); ++i) {
      std::printf("%s%.17g", i == 0 ? "" : " ", r.features.vector[i]);
    }
    std::printf("\n");
    return 0;
  }

  if (command == "nearest") {
    const std::uint32_t k =
        static_cast<std::uint32_t>(flags.value("--k", std::size_t{5}));
    serve::Response r;
    const std::string vector_text = flags.value("--vector", std::string());
    if (!vector_text.empty()) {
      std::vector<double> vector;
      for (std::string_view part : util::split(vector_text, ',')) {
        // std::stod would accept trailing junk ("1.5abc") and
        // non-finite spellings ("inf", "nan"); require the element to
        // parse completely to a finite double.
        const std::string text(part);
        char* end = nullptr;
        errno = 0;
        const double v = std::strtod(text.c_str(), &end);
        if (text.empty() || end != text.c_str() + text.size() ||
            errno == ERANGE || !std::isfinite(v)) {
          std::fprintf(stderr, "patchdb_client: bad --vector element \"%s\"\n",
                       text.c_str());
          return 2;
        }
        vector.push_back(v);
      }
      r = client.nearest_by_vector(vector, k);
    } else {
      const std::string id = flags.positional();
      if (id.empty()) return usage();
      r = client.nearest_by_id(id, k);
    }
    if (r.status != serve::Status::kOk) return report_error(r);
    for (const serve::NearestHit& hit : r.nearest.hits) {
      std::printf("%s %.9g\n", hit.id.c_str(),
                  static_cast<double>(hit.distance));
    }
    return 0;
  }

  if (command == "stats") {
    const serve::Response r = client.stats();
    if (r.status != serve::Status::kOk) return report_error(r);
    const serve::StatsResponse& s = r.stats;
    std::printf("nvd: %llu\nwild: %llu\nnonsecurity: %llu\nsynthetic: %llu\n",
                static_cast<unsigned long long>(s.nvd),
                static_cast<unsigned long long>(s.wild),
                static_cast<unsigned long long>(s.nonsecurity),
                static_cast<unsigned long long>(s.synthetic));
    std::printf("security labeled: %llu, categorizer agreement: %llu\n",
                static_cast<unsigned long long>(s.security_total),
                static_cast<unsigned long long>(s.agreement));
    for (const serve::CategoryCount& c : s.categories) {
      std::printf("type %2lld: labeled %llu, predicted %llu\n",
                  static_cast<long long>(c.type),
                  static_cast<unsigned long long>(c.labeled),
                  static_cast<unsigned long long>(c.predicted));
    }
    return 0;
  }

  if (command == "analyze") {
    const std::string path = flags.positional();
    if (path.empty()) return usage();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "patchdb_client: cannot read %s\n", path.c_str());
      return 1;
    }
    const std::string diff_text{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
    const serve::Response r =
        client.analyze(diff_text, flags.has("--interproc"));
    if (r.status != serve::Status::kOk) return report_error(r);
    std::printf("category: %lld\nresolved: %llu\nintroduced: %llu\n%s",
                static_cast<long long>(r.analyze.category),
                static_cast<unsigned long long>(r.analyze.resolved),
                static_cast<unsigned long long>(r.analyze.introduced),
                r.analyze.report.c_str());
    return 0;
  }

  if (command == "ids") {
    const std::string which = flags.value("--component", std::string("all"));
    serve::WireComponent component = serve::WireComponent::kAll;
    if (which == "nvd") component = serve::WireComponent::kNvd;
    else if (which == "wild") component = serve::WireComponent::kWild;
    else if (which == "nonsecurity") component = serve::WireComponent::kNonsecurity;
    else if (which == "synthetic") component = serve::WireComponent::kSynthetic;
    else if (which != "all") {
      std::fprintf(stderr, "patchdb_client: unknown component \"%s\"\n",
                   which.c_str());
      return 2;
    }
    const std::uint32_t limit =
        static_cast<std::uint32_t>(flags.value("--limit", std::size_t{0}));
    const serve::Response r = client.list_ids(component, limit);
    if (r.status != serve::Status::kOk) return report_error(r);
    for (const std::string& id : r.list_ids.ids) {
      std::printf("%s\n", id.c_str());
    }
    return 0;
  }

  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const cli::Flags flags(argc, argv, 2, "patchdb_client");
  try {
    return run(command, flags);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "patchdb_client: %s\n", e.what());
    return 1;
  }
}
