// patchdbd — long-running daemon serving a sealed PatchDB export over
// the length-prefixed TCP protocol (src/serve). The export is loaded
// once, verified (manifest trailer + per-patch checksums — a truncated
// or tampered dataset is refused and the daemon exits 1 without ever
// opening the socket), precomputed into an immutable snapshot, and
// shared read-only across a worker pool.
//
//   patchdbd --data DIR [--bind ADDR] [--port P] [--threads N]
//            [--max-pending N] [--read-timeout-ms N] [--port-file FILE]
//            [--metrics-out FILE] [--trace-out FILE] [--sample-ms N]
//
// --port 0 (the default) binds an ephemeral port; --port-file writes
// the bound port for scripts that need to find the daemon. SIGINT or
// SIGTERM drains gracefully: accepting stops, in-flight requests
// finish and are answered, then the daemon writes its obs artifacts
// (--metrics-out / --trace-out) and exits 0.
#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "serve/dataset.h"
#include "serve/server.h"

#include "cli_common.h"

namespace {

using namespace patchdb;

int usage() {
  std::fprintf(stderr,
               "usage: patchdbd --data DIR [--bind ADDR] [--port P]\n"
               "                [--threads N] [--max-pending N]\n"
               "                [--read-timeout-ms N] [--port-file FILE]\n"
               "                [--metrics-out FILE] [--trace-out FILE]"
               " [--sample-ms N]\n");
  return 2;
}

// Self-pipe: the handler only write()s (async-signal-safe); the main
// thread blocks on the read end and runs the actual drain.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int signo) {
  const unsigned char byte = static_cast<unsigned char>(signo);
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

}  // namespace

int main(int argc, char** argv) {
  const cli::Flags flags(argc, argv, 1, "patchdbd");
  const std::string data_dir = flags.value("--data", std::string());
  if (data_dir.empty()) return usage();

  cli::CliObs cli_obs("patchdbd", flags);

  serve::ServedDataset dataset;
  try {
    dataset = serve::ServedDataset::load(data_dir);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "patchdbd: refusing to serve %s: %s\n"
                 "patchdbd: the dataset failed integrity verification; "
                 "re-export it or run `patchdb fsck %s`\n",
                 data_dir.c_str(), e.what(), data_dir.c_str());
    return 1;
  }

  serve::ServerOptions options;
  options.bind_address = flags.value("--bind", std::string("127.0.0.1"));
  options.port =
      static_cast<std::uint16_t>(flags.value("--port", std::size_t{0}));
  options.threads = flags.value("--threads", std::size_t{0});
  options.max_pending = flags.value("--max-pending", options.max_pending);
  options.read_timeout = std::chrono::milliseconds(static_cast<long>(
      flags.value("--read-timeout-ms", std::size_t{5000})));

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "patchdbd: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action {};
  action.sa_handler = on_signal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);

  serve::Server server(dataset, options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "patchdbd: %s\n", e.what());
    return 1;
  }

  const std::string port_file = flags.value("--port-file", std::string());
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "patchdbd: cannot write %s\n", port_file.c_str());
      server.stop();
      return 1;
    }
  }

  std::printf("patchdbd: serving %zu patches from %s on %s:%u\n",
              dataset.size(), data_dir.c_str(),
              options.bind_address.c_str(), server.port());
  std::fflush(stdout);

  // Park until a signal arrives; everything else happens on the
  // acceptor and worker threads.
  unsigned char signo = 0;
  for (;;) {
    const ssize_t n = ::read(g_signal_pipe[0], &signo, 1);
    if (n == 1) break;
    if (n < 0 && errno == EINTR) continue;
    break;  // pipe broken — treat as shutdown
  }

  std::printf("patchdbd: received %s, draining (in-flight requests finish)\n",
              signo == SIGTERM ? "SIGTERM" : "SIGINT");
  std::fflush(stdout);
  server.stop();

  std::printf("patchdbd: drained; %llu connections served, %llu shed\n",
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.connections_shed()));
  cli_obs.write_artifacts(cli_obs.report());
  return 0;
}
