#!/usr/bin/env bash
# Vectorization proof for the streaming nearest-link block kernel.
#
#   tools/vec_proof.sh [MARCH]
#
# Compiles src/core/link_kernel.cpp standalone at -O3 for MARCH (default
# x86-64-v3, the AVX2 baseline of the GitHub runners) under each
# available compiler's vectorization-report flags and FAILS unless the
# report proves the kernel's inner loops vectorized:
#
#   g++     -fopt-info-vec-optimized  -> "optimized: loop vectorized"
#   clang++ -Rpass=loop-vectorize     -> "vectorized loop" remarks
#
# The missed-optimization remarks (-fopt-info-vec-missed /
# -Rpass-missed=loop-vectorize) are printed for the kernel's lines so a
# failure names what blocked the vectorizer instead of just saying "no".
# This is the CI tripwire for the SIMD half of the streaming engine: an
# innocent-looking edit that introduces a loop-carried dependence or an
# aliasing hazard turns the kernel scalar, the 5x bench win silently
# evaporates, and nothing else in the test suite would notice.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
march="${1:-x86-64-v3}"
kernel="${repo_root}/src/core/link_kernel.cpp"
common_flags=(-std=c++20 -O3 "-march=${march}" -ffp-contract=off
              -I "${repo_root}/src" -c -o /dev/null)

checked=0
failed=0

check() {
  local name="$1" compiler="$2" opt_flag="$3" missed_flag="$4" pattern="$5"
  if ! command -v "${compiler}" > /dev/null; then
    echo "vec_proof.sh: ${compiler} not found, skipping" >&2
    return 0
  fi
  checked=$((checked + 1))
  local report
  report="$("${compiler}" "${common_flags[@]}" "${opt_flag}" "${kernel}" 2>&1)" || {
    echo "${report}" >&2
    echo "vec_proof.sh: ${name}: link_kernel.cpp failed to compile" >&2
    failed=1
    return 0
  }
  local hits
  hits="$(grep -c -- "${pattern}" <<< "${report}" || true)"
  if [[ "${hits}" -ge 1 ]]; then
    echo "vec_proof.sh: ${name} -march=${march}: ${hits} vectorized loop(s)"
    grep -- "${pattern}" <<< "${report}" | sed 's/^/  /' | head -n 8
  else
    echo "vec_proof.sh: ${name} -march=${march}: NO vectorized loops in" \
         "link_kernel.cpp" >&2
    echo "vec_proof.sh: ${name} missed-vectorization remarks:" >&2
    "${compiler}" "${common_flags[@]}" "${missed_flag}" "${kernel}" 2>&1 |
      grep -i -- "miss" | sed 's/^/  /' | head -n 20 >&2 || true
    failed=1
  fi
}

check gcc g++ -fopt-info-vec-optimized -fopt-info-vec-missed \
      "loop vectorized"
check clang clang++ -Rpass=loop-vectorize -Rpass-missed=loop-vectorize \
      "vectorized loop"

if [[ "${checked}" -eq 0 ]]; then
  echo "vec_proof.sh: no compiler available (need g++ or clang++)" >&2
  exit 2
fi
if [[ "${failed}" -ne 0 ]]; then
  echo "vec_proof.sh: FAIL (block kernel did not vectorize)" >&2
  exit 1
fi
echo "vec_proof.sh: OK (${checked} compiler(s) vectorized the block kernel)"
