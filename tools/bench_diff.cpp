// bench_diff — perf-regression gate over two RunReport artifacts.
//
//   bench_diff BASELINE.json CANDIDATE.json
//       [--max-increase METRIC:PCT]...
//       [--max-decrease METRIC:PCT]...
//       [--require METRIC[=VALUE]]...
//       [--min METRIC:VALUE]...
//
// Compares the candidate (the run just produced) against the committed
// baseline under per-metric threshold rules (see src/obs/diff.h for the
// metric-name resolution, including "hist@p95" histogram statistics).
// Prints one line per rule and exits 0 when every rule passes, 1 on any
// regression, 2 on usage errors — so CI can wire it directly into the
// bench-smoke job.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "obs/diff.h"
#include "obs/report.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff BASELINE.json CANDIDATE.json [rules]\n"
               "  --max-increase METRIC:PCT   candidate may rise at most PCT%%\n"
               "  --max-decrease METRIC:PCT   candidate may fall at most PCT%%\n"
               "  --require METRIC[=VALUE]    metric must exist (and match VALUE)\n"
               "  --min METRIC:VALUE          candidate metric must be >= VALUE\n"
               "metrics: wall_ms, counters, gauges, HISTOGRAM@{p50,p95,mean,max,count}\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using patchdb::obs::DiffRule;

  std::vector<std::string> paths;
  std::vector<DiffRule> rules;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const bool max_increase = arg == "--max-increase";
    const bool max_decrease = arg == "--max-decrease";
    const bool require = arg == "--require";
    const bool min_rule = arg == "--min";
    if (max_increase || max_decrease || require || min_rule) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_diff: %s needs a value\n", argv[i]);
        return usage();
      }
      DiffRule rule;
      std::string error;
      const bool ok =
          require    ? patchdb::obs::parse_require_spec(argv[i + 1], rule, error)
          : min_rule ? patchdb::obs::parse_min_spec(argv[i + 1], rule, error)
                     : patchdb::obs::parse_threshold_spec(
                           argv[i + 1],
                           max_increase ? DiffRule::Kind::kMaxIncrease
                                        : DiffRule::Kind::kMaxDecrease,
                           rule, error);
      if (!ok) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", argv[i], error.c_str());
        return usage();
      }
      rules.push_back(std::move(rule));
      ++i;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_diff: unknown flag %s\n", argv[i]);
      return usage();
    }
    paths.emplace_back(arg);
  }
  if (paths.size() != 2) return usage();
  if (rules.empty()) {
    std::fprintf(stderr, "bench_diff: no rules given, nothing to gate on\n");
    return usage();
  }

  patchdb::obs::RunReport baseline;
  patchdb::obs::RunReport candidate;
  try {
    baseline = patchdb::obs::read_report_file(paths[0]);
    candidate = patchdb::obs::read_report_file(paths[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }

  std::printf("bench_diff: %s (baseline \"%s\") vs %s (candidate \"%s\")\n",
              paths[0].c_str(), baseline.name.c_str(), paths[1].c_str(),
              candidate.name.c_str());
  const std::vector<patchdb::obs::DiffResult> results =
      patchdb::obs::diff_reports(baseline, candidate, rules);
  bool any_fail = false;
  for (const patchdb::obs::DiffResult& r : results) {
    std::printf("  %s\n", r.message.c_str());
    any_fail = any_fail || !r.ok;
  }
  if (any_fail) {
    std::fprintf(stderr, "bench_diff: REGRESSION (%zu rule(s) failed)\n",
                 static_cast<std::size_t>(
                     std::count_if(results.begin(), results.end(),
                                   [](const auto& r) { return !r.ok; })));
    return 1;
  }
  std::printf("bench_diff: OK (%zu rule(s) passed)\n", results.size());
  return 0;
}
