#!/usr/bin/env bash
# Obs-overhead check: how much wall time does the observability layer
# cost an instrumented kernel? Runs the same micro_core benchmark twice —
# once with the ObsSession installed (spans, counters, pool observer)
# and once inert under PATCHDB_OBS_DISABLED — and compares the
# benchmark's own per-iteration median real time (process wall would
# lie: google-benchmark adapts iteration counts to the kernel speed, so
# a faster kernel runs MORE iterations). Records the ratio as a
# patchdb.obs.v2 report.
#
#   tools/obs_overhead.sh [BUILD_DIR] [OUT_JSON] [MAX_PCT]
#
# BUILD_DIR defaults to ./build, OUT_JSON to bench/BENCH_obs_overhead.json,
# MAX_PCT to 2.0 (the acceptance bound: obs must cost < 2% wall). Exits 1
# when the measured overhead exceeds MAX_PCT. OBS_OVERHEAD_REPS and
# OBS_OVERHEAD_FILTER override the rep count and benchmark subset.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/bench/BENCH_obs_overhead.json}"
max_pct="${3:-2.0}"
reps="${OBS_OVERHEAD_REPS:-5}"
# The streaming nearest-link kernel is the most densely instrumented
# code path (spans + counters + pool tasks per tile).
filter="${OBS_OVERHEAD_FILTER:-BM_NearestLinkStreaming/100/2000}"

bench="${build_dir}/bench/micro_core"
if [[ ! -x "${bench}" ]]; then
  echo "obs_overhead.sh: ${bench} missing; build the repo first" >&2
  exit 2
fi

bench_args=(
  "--benchmark_filter=${filter}"
  "--benchmark_repetitions=${reps}"
  "--benchmark_report_aggregates_only=true"
  "--benchmark_format=csv"
)

run_median_ms() {  # $1 = "on" | "off"
  local csv
  if [[ "$1" == off ]]; then
    csv=$(PATCHDB_OBS_DISABLED=1 "${bench}" "${bench_args[@]}" 2> /dev/null)
  else
    csv=$("${bench}" "${bench_args[@]}" 2> /dev/null)
  fi
  # CSV row: name,iterations,real_time,cpu_time,time_unit,... — the
  # median aggregate's real_time, in the benchmark's own time unit
  # (identical across both modes, so the ratio below is unitless).
  echo "${csv}" | awk -F, '/_median"?,/ { printf "%.4f", $3; exit }'
}

enabled_ms=$(run_median_ms on)
disabled_ms=$(run_median_ms off)
if [[ -z "${enabled_ms}" || -z "${disabled_ms}" ]]; then
  echo "obs_overhead.sh: no median row for filter ${filter}" >&2
  exit 2
fi
overhead_pct=$(awk -v e="${enabled_ms}" -v d="${disabled_ms}" \
  'BEGIN { printf "%.3f", (d > 0 ? (e - d) * 100.0 / d : 0) }')

echo "obs_overhead.sh: enabled ${enabled_ms} ms/iter, disabled ${disabled_ms} ms/iter," \
  "overhead ${overhead_pct}% (median of ${reps} reps, filter ${filter})"

total_ms=$(awk -v e="${enabled_ms}" -v d="${disabled_ms}" \
  'BEGIN { printf "%.1f", e + d }')
cat > "${out_json}" <<EOF
{
  "counters": {
    "obs_overhead.reps": ${reps}
  },
  "gauges": {
    "obs_overhead.disabled_ms": ${disabled_ms},
    "obs_overhead.enabled_ms": ${enabled_ms},
    "obs_overhead.overhead_pct": ${overhead_pct}
  },
  "histograms": {},
  "report": "obs_overhead ${filter}",
  "schema": "patchdb.obs.v2",
  "spans": [],
  "spans_dropped": 0,
  "wall_ms": ${total_ms}
}
EOF
echo "obs_overhead.sh: recorded to ${out_json}"

if awk -v p="${overhead_pct}" -v cap="${max_pct}" 'BEGIN { exit !(p > cap) }'; then
  echo "obs_overhead.sh: FAIL — overhead ${overhead_pct}% exceeds ${max_pct}%" >&2
  exit 1
fi
echo "obs_overhead.sh: OK (overhead ${overhead_pct}% <= ${max_pct}%)"
