// Micro-benchmarks (google-benchmark) for the crash-safe store: sealed
// export, verified load, checkpoint write/read, and a full fsck walk.
// These are the costs a production build pays per round (checkpoint) and
// once at the end (export); the load/fsck arms bound what a consumer or
// an integrity sweep pays per dataset.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "core/patchdb.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "store/checkpoint.h"
#include "store/export.h"
#include "store/fsck.h"
#include "store/io.h"

namespace {

using namespace patchdb;
namespace fs = std::filesystem;

const core::PatchDb& bench_db() {
  static const core::PatchDb db = [] {
    core::BuildOptions options;
    options.world.repos = 6;
    options.world.nvd_security = 60;
    options.world.wild_pool = 1200;
    options.world.seed = 1717;
    options.augment.max_rounds = 2;
    options.synthesis.max_per_patch = 2;
    return core::build_patchdb(options);
  }();
  return db;
}

fs::path bench_dir(const char* name) {
  return fs::temp_directory_path() / "patchdb_micro_store" / name;
}

void BM_ExportPatchDb(benchmark::State& state) {
  const core::PatchDb& db = bench_db();
  const fs::path root = bench_dir("export");
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const store::ExportStats stats = store::export_patchdb(db, root);
    benchmark::DoNotOptimize(stats.patches_written);
  }
  for (const fs::directory_entry& e : fs::recursive_directory_iterator(root)) {
    if (e.is_regular_file()) bytes += static_cast<std::int64_t>(e.file_size());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
  fs::remove_all(root);
}
BENCHMARK(BM_ExportPatchDb)->Unit(benchmark::kMillisecond);

void BM_LoadPatchDb(benchmark::State& state) {
  const fs::path root = bench_dir("load");
  store::export_patchdb(bench_db(), root);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store::load_patchdb(root).nvd_security.size());
  }
  fs::remove_all(root);
}
BENCHMARK(BM_LoadPatchDb)->Unit(benchmark::kMillisecond);

core::LoopCheckpoint sample_checkpoint(std::size_t commits) {
  core::LoopCheckpoint cp;
  cp.rounds_run = 3;
  cp.oracle_effort = commits;
  for (std::size_t r = 1; r <= cp.rounds_run; ++r) {
    core::RoundStats stats;
    stats.round = r;
    stats.pool_size = commits - r;
    stats.candidates = 40;
    stats.verified_security = 11;
    cp.history.push_back(stats);
  }
  for (std::size_t i = 0; i < commits; ++i) {
    const std::string id = "c" + std::to_string(i);
    std::string hex;
    for (char c : id) hex += "0123456789abcdef"[static_cast<unsigned char>(c) % 16];
    (i % 8 == 0 ? cp.wild_security : i % 8 == 1 ? cp.nonsecurity : cp.pool)
        .push_back(hex + std::string(12, 'a'));
  }
  return cp;
}

void BM_CheckpointWrite(benchmark::State& state) {
  const core::LoopCheckpoint cp =
      sample_checkpoint(static_cast<std::size_t>(state.range(0)));
  const fs::path dir = bench_dir("ckpt_write");
  for (auto _ : state) {
    store::write_checkpoint(dir, cp, 0xfeedu);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointWrite)->Arg(1000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_CheckpointRead(benchmark::State& state) {
  const fs::path dir = bench_dir("ckpt_read");
  store::write_checkpoint(
      dir, sample_checkpoint(static_cast<std::size_t>(state.range(0))), 0xfeedu);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store::read_checkpoint(dir, store::kAnyFingerprint).pool.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointRead)->Arg(1000)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_FsckDataset(benchmark::State& state) {
  const fs::path root = bench_dir("fsck");
  store::export_patchdb(bench_db(), root);
  for (auto _ : state) {
    const store::FsckReport report = store::fsck_dataset(root);
    benchmark::DoNotOptimize(report.errors.size());
  }
  fs::remove_all(root);
}
BENCHMARK(BM_FsckDataset)->Unit(benchmark::kMillisecond);

}  // namespace

// Same --metrics-out contract as micro_core: peel the flag, run under an
// ObsSession, and emit the store.* counters as a report artifact.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--metrics-out") {
      if (i + 1 < argc) metrics_out = argv[++i];
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = arg.substr(std::string_view("--metrics-out=").size());
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  {
    patchdb::obs::ObsSession session("micro_store");
    benchmark::RunSpecifiedBenchmarks();
    if (!metrics_out.empty()) {
      patchdb::obs::write_report_file(session.report(), metrics_out);
    }
  }
  benchmark::Shutdown();
  return 0;
}
