// Ablation: which Table I feature families carry the nearest link
// search? Drops one family at a time (by zeroing its weights) and
// measures candidate precision, then runs each family alone. DESIGN.md
// calls the 60-dimension space out as a core design choice; this bench
// quantifies it.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance.h"
#include "core/nearest_link.h"

namespace {

using namespace patchdb;

struct Family {
  const char* name;
  std::size_t begin;  // [begin, end) feature indices
  std::size_t end;
};

// Index layout documented in feature/features.h.
constexpr Family kFamilies[] = {
    {"size (lines/chars/hunks)", 0, 10},
    {"if statements", 10, 14},
    {"loops", 14, 18},
    {"function calls", 18, 22},
    {"operators (arith/rel/logic/bit)", 22, 38},
    {"memory operators", 38, 42},
    {"variables", 42, 46},
    {"modified functions", 46, 48},
    {"Levenshtein/same-hunk", 48, 56},
    {"affected files/functions", 56, 60},
};

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Ablation — Table I feature families in nearest link", argc, argv);
  const double scale = session.scale();

  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = bench::scaled(250, scale);
  config.wild_pool = bench::scaled(10000, scale);
  config.wild_security_rate = 0.08;
  config.keep_nvd_snapshots = false;
  config.seed = 91919;
  corpus::World world = corpus::build_world(config);

  const auto seed_ptrs = bench::as_pointers(world.nvd_security);
  const auto pool_ptrs = bench::as_pointers(world.wild);
  const feature::FeatureMatrix sec = bench::features_of(seed_ptrs);
  const feature::FeatureMatrix pool = bench::features_of(pool_ptrs);
  const std::vector<double> base_weights = core::maxabs_weights(sec, pool);

  auto precision_in = [&](const feature::FeatureMatrix& s,
                          const feature::FeatureMatrix& p,
                          const std::vector<double>& weights) {
    const core::DistanceMatrix d = core::distance_matrix(s, p, weights);
    const core::LinkResult link = core::nearest_link_search(d);
    session.add_items(link.candidate.size());
    std::size_t hits = 0;
    for (std::size_t idx : link.candidate) {
      hits += world.oracle.truth(pool_ptrs[idx]->patch.commit).is_security;
    }
    return static_cast<double>(hits) / static_cast<double>(link.candidate.size());
  };
  auto precision_with = [&](const std::vector<double>& weights) {
    return precision_in(sec, pool, weights);
  };

  const double full = precision_with(base_weights);
  std::printf("full 60-dimension space: %s candidate precision\n\n",
              util::format_percent(full, 1).c_str());

  util::Table table("Feature family ablation (greedy nearest link)");
  table.set_header({"Family", "Dims", "Drop family", "Family alone"});
  for (const Family& family : kFamilies) {
    std::vector<double> without = base_weights;
    std::vector<double> only(feature::kFeatureCount, 0.0);
    for (std::size_t j = family.begin; j < family.end; ++j) {
      without[j] = 0.0;
      only[j] = base_weights[j];
    }
    table.add_row({family.name, std::to_string(family.end - family.begin),
                   util::format_percent(precision_with(without), 1),
                   util::format_percent(precision_with(only), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  'drop family' near the full-space %s means redundancy; a high\n"
              "  'family alone' marks the load-bearing families\n\n",
              util::format_percent(full, 1).c_str());

  // ---- syntactic vs semantic vs interprocedural feature space.
  // The extended space appends 12 CFG/checker dimensions (features.h,
  // indices 60-71); the interprocedural space a further 8 call-graph and
  // summary dimensions (72-79). Compare the nearest link search across
  // the three spaces and across each extension alone.
  {
    const feature::FeatureMatrix sec_x =
        bench::features_of(seed_ptrs, feature::FeatureSpace::kSemantic);
    const feature::FeatureMatrix pool_x =
        bench::features_of(pool_ptrs, feature::FeatureSpace::kSemantic);
    const std::vector<double> weights_x = core::maxabs_weights(sec_x, pool_x);

    std::vector<double> semantic_only = weights_x;
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) semantic_only[j] = 0.0;

    const feature::FeatureMatrix sec_ip =
        bench::features_of(seed_ptrs, feature::FeatureSpace::kInterproc);
    const feature::FeatureMatrix pool_ip =
        bench::features_of(pool_ptrs, feature::FeatureSpace::kInterproc);
    const std::vector<double> weights_ip = core::maxabs_weights(sec_ip, pool_ip);

    std::vector<double> interproc_only = weights_ip;
    for (std::size_t j = 0; j < feature::kExtendedFeatureCount; ++j) {
      interproc_only[j] = 0.0;
    }

    util::Table space_table("Feature space ablation (greedy nearest link)");
    space_table.set_header({"Space", "Dims", "Precision"});
    space_table.add_row({"syntactic (Table I)",
                         std::to_string(feature::kFeatureCount),
                         util::format_percent(full, 1)});
    space_table.add_row({"syntactic + semantic",
                         std::to_string(feature::kExtendedFeatureCount),
                         util::format_percent(precision_in(sec_x, pool_x, weights_x), 1)});
    space_table.add_row({"semantic alone",
                         std::to_string(feature::kSemanticFeatureCount),
                         util::format_percent(precision_in(sec_x, pool_x, semantic_only), 1)});
    space_table.add_row({"syntactic + semantic + interproc",
                         std::to_string(feature::kInterprocExtendedFeatureCount),
                         util::format_percent(precision_in(sec_ip, pool_ip, weights_ip), 1)});
    space_table.add_row({"interproc alone",
                         std::to_string(feature::kInterprocFeatureCount),
                         util::format_percent(precision_in(sec_ip, pool_ip, interproc_only), 1)});
    std::printf("%s", space_table.render().c_str());
    std::printf("  semantic dims encode what the patch fixed (checker diffs, CFG\n"
                "  deltas) rather than how it is written; alone they are coarse,\n"
                "  appended they refine ties between syntactically similar commits.\n"
                "  interproc dims add the cross-function view: summary-visible\n"
                "  defects, call-graph churn, and fan of the changed functions\n"
                "  (counters under analysis.interproc.* in --metrics-out)\n");
  }
  return 0;
}
