// Extension experiment: why text mining is not enough (paper Sec. I).
//
// "A straightforward method to identify security patches is to analyze
// the literal descriptions ... However, such identification methods are
// error-prone due to the poor quality of the textual information. For
// instance, 61% of security patches for the Linux kernel do not mention
// security impacts."
//
// The simulated corpus encodes exactly that: NVD-referenced fixes carry
// descriptive messages (often naming the CVE), while 61% of wild silent
// fixes are euphemized ("handle edge case", "small fix"). This bench
// evaluates three identifiers on both populations:
//   - keyword matching on the message,
//   - multinomial naive Bayes on message words,
//   - Random Forest on the Table I CODE features (PatchDB's approach).
#include <cstdio>

#include "bench_common.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "text/textmine.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

struct Labeled {
  std::vector<const corpus::CommitRecord*> records;
  std::vector<int> labels;
};

ml::Confusion score(const std::vector<int>& truth, const std::vector<int>& pred) {
  return ml::confusion(truth, pred);
}

std::string pr(const ml::Confusion& c) {
  return util::format_percent(c.precision(), 0) + " / " +
         util::format_percent(c.recall(), 0);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Extension — text mining vs code features (Sec. I)", argc, argv);
  const double scale = session.scale();

  // NVD world (descriptive, CVE-tagged messages) + wild world (61%
  // euphemized security fixes).
  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = bench::scaled(500, scale);
  config.wild_pool = bench::scaled(8000, scale);
  config.wild_security_rate = 0.08;
  config.keep_nvd_snapshots = false;
  config.seed = 616161;
  const corpus::World world = corpus::build_world(config);

  const std::vector<corpus::CommitRecord> nonsec = bench::make_nonsecurity_set(
      bench::scaled(1000, scale), 617, false, /*defensive_share=*/0.10);

  // The NVD-side security messages as crawled (CVE-enriched) live in
  // world.nvd_security; wild messages as committed.
  // Train on the NVD-based dataset (what a text miner would have).
  std::vector<std::string> train_messages;
  std::vector<int> train_labels;
  std::vector<std::vector<double>> train_rows;
  for (const corpus::CommitRecord& r : world.nvd_security) {
    train_messages.push_back(r.patch.message);
    train_labels.push_back(1);
    const feature::FeatureVector v = feature::extract(r.patch);
    train_rows.emplace_back(v.begin(), v.end());
  }
  for (const corpus::CommitRecord& r : nonsec) {
    train_messages.push_back(r.patch.message);
    train_labels.push_back(0);
    const feature::FeatureVector v = feature::extract(r.patch);
    train_rows.emplace_back(v.begin(), v.end());
  }

  session.add_items(train_messages.size());
  text::TextNaiveBayes nb;
  nb.fit(train_messages, train_labels);
  ml::RandomForest forest;
  forest.fit(ml::Dataset(train_rows, train_labels), 7);

  // Test populations: (a) held-out NVD-style (fresh world, same config),
  // (b) the wild pool with its silent fixes.
  corpus::WorldConfig holdout_config = config;
  holdout_config.nvd_security = bench::scaled(250, scale);
  holdout_config.wild_pool = 10;
  holdout_config.seed = 626262;
  const corpus::World holdout = corpus::build_world(holdout_config);
  const std::vector<corpus::CommitRecord> holdout_nonsec =
      bench::make_nonsecurity_set(bench::scaled(500, scale), 627, false, 0.10);

  auto evaluate = [&](const std::vector<const corpus::CommitRecord*>& records,
                      const std::vector<int>& truth) {
    std::vector<int> kw;
    std::vector<int> nbp;
    std::vector<int> rf;
    for (const corpus::CommitRecord* r : records) {
      kw.push_back(text::mentions_security(r->patch.message) ? 1 : 0);
      nbp.push_back(nb.predict(r->patch.message));
      const feature::FeatureVector v = feature::extract(r->patch);
      rf.push_back(forest.predict(std::vector<double>(v.begin(), v.end())));
    }
    return std::array<ml::Confusion, 3>{score(truth, kw), score(truth, nbp),
                                        score(truth, rf)};
  };

  // (a) NVD-style test set.
  Labeled nvd_test;
  for (const auto& r : holdout.nvd_security) {
    nvd_test.records.push_back(&r);
    nvd_test.labels.push_back(1);
  }
  for (const auto& r : holdout_nonsec) {
    nvd_test.records.push_back(&r);
    nvd_test.labels.push_back(0);
  }
  const auto on_nvd = evaluate(nvd_test.records, nvd_test.labels);

  // (b) wild pool (silent fixes + security-sounding hardening commits).
  Labeled wild_test;
  std::size_t silent = 0;
  std::size_t wild_sec = 0;
  for (const auto& r : world.wild) {
    wild_test.records.push_back(&r);
    wild_test.labels.push_back(r.truth.is_security ? 1 : 0);
    if (r.truth.is_security) {
      ++wild_sec;
      silent += !text::mentions_security(r.patch.message);
    }
  }
  const auto on_wild = evaluate(wild_test.records, wild_test.labels);

  std::printf("silent security fixes in the wild: %.0f%% mention nothing "
              "security-related (paper: 61%% for Linux)\n\n",
              100.0 * static_cast<double>(silent) / static_cast<double>(wild_sec));

  util::Table table("Identification precision / recall by input signal");
  table.set_header({"Method", "Signal", "NVD-style test", "Wild test"});
  table.add_row({"keyword match", "message", pr(on_nvd[0]), pr(on_wild[0])});
  table.add_row({"naive Bayes", "message", pr(on_nvd[1]), pr(on_wild[1])});
  table.add_row({"Random Forest", "code (Table I)", pr(on_nvd[2]), pr(on_wild[2])});
  std::printf("%s", table.render().c_str());
  std::printf("  text methods have a hard recall CEILING on the wild: the\n"
              "  euphemized silent fixes carry no lexical signal at all, so the\n"
              "  best message classifier tops out near the non-silent share.\n"
              "  code features see every fix but drown in hardening mimics\n"
              "  (low precision) — which is exactly why the paper pairs\n"
              "  code-feature candidate selection with human verification\n"
              "  (Table II) instead of trusting either signal alone\n");
  return 0;
}
