// Reproduces Table III: "Comparison with other augmentation methods".
//
// Paper protocol: train on the NVD-based dataset (4076 security + 8352
// non-security), then ask each method to pick candidates from 200K
// unlabeled wild commits. Manually verify (here: oracle) a 1K sample of
// each candidate set and report the security-patch percentage at the
// 95% confidence level. Paper: brute force 8(+/-1.7)%, pseudo labeling
// 13(+/-1.8)%, uncertainty-based 12%, nearest link 29(+/-2.4)%.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/baselines.h"
#include "core/distance.h"
#include "core/nearest_link.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace patchdb;

/// Verify (at most) `cap` of the candidates through the oracle and
/// report the measured proportion with its 95% interval.
util::Interval verify_sample(corpus::Oracle& oracle,
                             const std::vector<const corpus::CommitRecord*>& pool,
                             std::vector<std::size_t> candidates,
                             std::size_t cap, std::uint64_t seed) {
  util::Rng rng(seed);
  rng.shuffle(candidates);
  if (candidates.size() > cap) candidates.resize(cap);
  std::size_t hits = 0;
  for (std::size_t idx : candidates) {
    hits += oracle.verify_security(pool[idx]->patch.commit);
  }
  return util::wald_interval(hits, candidates.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Table III — nearest link search vs. other augmentation methods (RQ2)", argc, argv);
  const double scale = session.scale();

  const std::size_t nvd_size = bench::scaled(800, scale);
  const std::size_t nonsec_size = bench::scaled(1650, scale);  // paper 8352:4076
  const std::size_t pool_size = bench::scaled(40000, scale);
  const std::size_t verify_cap = bench::scaled(1000, scale);

  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = nvd_size;
  config.wild_pool = pool_size;
  config.wild_security_rate = 0.08;
  config.keep_nvd_snapshots = false;
  config.seed = 33033;
  corpus::World world = corpus::build_world(config);

  // The labeled training data: NVD security + previously-cleaned
  // non-security patches.
  const std::vector<corpus::CommitRecord> nonsec =
      bench::make_nonsecurity_set(nonsec_size, 404);
  for (const corpus::CommitRecord& r : nonsec) world.oracle.add(r);

  const auto sec_ptrs = bench::as_pointers(world.nvd_security);
  const auto nonsec_ptrs = bench::as_pointers(nonsec);
  const auto pool_ptrs = bench::as_pointers(world.wild);

  std::printf("training data: %zu security + %zu non-security, pool: %s unlabeled\n\n",
              sec_ptrs.size(), nonsec_ptrs.size(),
              util::human_count(pool_size).c_str());

  const feature::FeatureMatrix sec_features = bench::features_of(sec_ptrs);
  const feature::FeatureMatrix nonsec_features = bench::features_of(nonsec_ptrs);
  const feature::FeatureMatrix pool_features = bench::features_of(pool_ptrs);

  const core::NormalizedTask task =
      core::normalize_task(sec_features, nonsec_features, pool_features);
  session.add_items(pool_ptrs.size());

  util::Table table("Table III: comparison with other augmentation methods");
  table.set_header({"Methods", "Unlabeled Patches", "Candidates",
                    "Security Patches (%)", "Paper"});

  // --- Brute force search.
  {
    const auto sel = core::brute_force_select(pool_ptrs.size(), verify_cap, 1);
    const util::Interval ci =
        verify_sample(world.oracle, pool_ptrs, sel, verify_cap, 11);
    table.add_row({"Brute Force Search", util::human_count(pool_size),
                   util::human_count(pool_size), util::format_percent_ci(ci),
                   "8(+/-1.7)%"});
  }

  // --- Pseudo labeling: Random Forest top-M.
  {
    const auto sel =
        core::pseudo_label_select(task.train, task.pool, sec_ptrs.size(), 2);
    const util::Interval ci =
        verify_sample(world.oracle, pool_ptrs, sel, verify_cap, 12);
    table.add_row({"Pseudo Labeling", util::human_count(pool_size),
                   util::human_count(sel.size()), util::format_percent_ci(ci),
                   "13(+/-1.8)%"});
  }

  // --- Uncertainty-based labeling: 10-classifier unanimous consensus.
  {
    const auto sel = core::uncertainty_select(task.train, task.pool, 3);
    const util::Interval ci =
        verify_sample(world.oracle, pool_ptrs, sel, verify_cap, 13);
    table.add_row({"Uncertainty-based Labeling", util::human_count(pool_size),
                   util::human_count(sel.size()), util::format_percent_ci(ci),
                   "12%"});
  }

  // --- Nearest link search (ours).
  {
    const core::DistanceMatrix d =
        core::distance_matrix(sec_features, pool_features);
    const core::LinkResult link = core::nearest_link_search(d);
    const util::Interval ci =
        verify_sample(world.oracle, pool_ptrs, link.candidate, verify_cap, 14);
    table.add_row({"Nearest Link Search (ours)", util::human_count(pool_size),
                   util::human_count(link.candidate.size()),
                   util::format_percent_ci(ci), "29(+/-2.4)%"});
  }

  std::printf("%s", table.render().c_str());
  std::printf("  note: sampled results, %zu verified per method, 95%% confidence level\n",
              verify_cap);
  return 0;
}
