// Reproduces Fig. 6: "Distribution comparison between NVD-based and
// wild-based datasets in terms of code changes".
//
// Paper finding: the NVD-based dataset follows a long-tail distribution
// (Types 11/3/8 carry ~60%, Type 11 is the head); the wild-based dataset
// found by nearest link search is reshuffled — Type 8 becomes the head
// and Type 11 falls to ~5%. The augmentation therefore adds variety
// rather than cloning the seed distribution.
#include <array>
#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/augment.h"

namespace {
using namespace patchdb;

std::array<double, corpus::kSecurityTypeCount> type_shares(
    const std::vector<const corpus::CommitRecord*>& records) {
  std::array<double, corpus::kSecurityTypeCount> shares{};
  std::size_t total = 0;
  for (const corpus::CommitRecord* r : records) {
    if (!corpus::is_security_type(r->truth.type)) continue;
    ++shares[static_cast<std::size_t>(static_cast<int>(r->truth.type)) - 1];
    ++total;
  }
  if (total > 0) {
    for (double& s : shares) s /= static_cast<double>(total);
  }
  return shares;
}

std::string bar(double fraction) {
  const std::size_t width = static_cast<std::size_t>(fraction * 120.0);
  return std::string(width, '#');
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Fig. 6 — NVD-based vs wild-based type distribution (RQ4)", argc, argv);
  const double scale = session.scale();

  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = bench::scaled(500, scale);
  config.wild_pool = bench::scaled(15000, scale);
  config.wild_security_rate = 0.08;
  config.keep_nvd_snapshots = false;
  config.seed = 66066;
  corpus::World world = corpus::build_world(config);

  core::AugmentationLoop loop(bench::as_pointers(world.nvd_security),
                              world.oracle);
  loop.set_pool(bench::as_pointers(world.wild));
  core::AugmentOptions opt;
  opt.max_rounds = 3;
  loop.run(opt);
  session.add_items(world.wild.size());

  const auto nvd_shares = type_shares(bench::as_pointers(world.nvd_security));
  const auto wild_shares = type_shares(loop.wild_security());

  std::printf("wild security patches found by nearest link: %zu\n\n",
              loop.wild_security().size());

  util::Table table("Fig. 6 data series: share of each patch type (%)");
  table.set_header({"Type", "Pattern", "NVD-based", "Wild-based"});
  for (std::size_t i = 0; i < corpus::kSecurityTypeCount; ++i) {
    table.add_row({std::to_string(i + 1),
                   std::string(corpus::patch_type_name(corpus::security_types()[i])),
                   util::format_percent(nvd_shares[i], 1),
                   util::format_percent(wild_shares[i], 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("NVD-based dataset (long tail):\n");
  for (std::size_t i = 0; i < corpus::kSecurityTypeCount; ++i) {
    std::printf("  T%-2zu %5.1f%% |%s\n", i + 1, nvd_shares[i] * 100.0,
                bar(nvd_shares[i]).c_str());
  }
  std::printf("Wild-based dataset (reshuffled):\n");
  for (std::size_t i = 0; i < corpus::kSecurityTypeCount; ++i) {
    std::printf("  T%-2zu %5.1f%% |%s\n", i + 1, wild_shares[i] * 100.0,
                bar(wild_shares[i]).c_str());
  }

  // The paper's two headline shape checks.
  const bool nvd_head_is_11 = nvd_shares[10] >= nvd_shares[7];
  const bool wild_head_is_8 = wild_shares[7] >= wild_shares[10];
  std::printf("\nshape checks: NVD head is Type 11: %s (paper: yes); "
              "wild head is Type 8 and Type 11 ~5%%: %s (paper: yes, %.1f%%)\n",
              nvd_head_is_11 ? "yes" : "NO", wild_head_is_8 ? "yes" : "NO",
              wild_shares[10] * 100.0);
  return 0;
}
