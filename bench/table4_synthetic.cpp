// Reproduces Table IV: "Performance w/o or w/ synthetic patches".
//
// Paper protocol: train the RNN token classifier on (a) the NVD-based
// dataset alone, (b) NVD + its source-level synthetic dataset, (c) the
// NVD+wild natural dataset, (d) NVD+wild + synthetic. Synthetic patches
// are generated from the TRAINING split only; the test split stays
// natural. Paper: NVD 82.1/84.8 -> 86.0/87.2 with synthetic (clear
// gain); NVD+wild 92.9/61.1 -> 93.0/61.2 (no real gain). SMOTE (feature
// space) shows no obvious improvement either; an extra section reports
// the SMOTE ablation with a Random Forest.
#include <cstdio>

#include "bench_common.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "ml/smote.h"
#include "synth/synthesize.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

struct SplitRecords {
  std::vector<const corpus::CommitRecord*> train;
  std::vector<const corpus::CommitRecord*> test;
};

SplitRecords split_80_20(const std::vector<const corpus::CommitRecord*>& records,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  SplitRecords out;
  const std::size_t n_train = records.size() * 8 / 10;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < n_train ? out.train : out.test).push_back(records[order[i]]);
  }
  return out;
}

struct TokenCorpus {
  nn::SequenceDataset data;
  std::vector<std::vector<std::string>> docs;  // kept for vocab building
};

void add_patch(TokenCorpus& corpus_out, const diff::Patch& patch, int label) {
  corpus_out.docs.push_back(nn::patch_tokens(patch));
  corpus_out.data.labels.push_back(label);
}

/// Encode all docs once the vocabulary is final.
void finalize(TokenCorpus& corpus_out, const nn::Vocabulary& vocab) {
  corpus_out.data.sequences.clear();
  for (const auto& doc : corpus_out.docs) {
    corpus_out.data.sequences.push_back(vocab.encode(doc));
  }
}

ml::Confusion run_rnn(const TokenCorpus& train_corpus, TokenCorpus test_corpus,
                      std::uint64_t seed) {
  const nn::Vocabulary vocab = nn::Vocabulary::build(train_corpus.docs, 2, 1500);
  TokenCorpus train = train_corpus;
  finalize(train, vocab);
  finalize(test_corpus, vocab);

  nn::GruOptions opt;
  opt.embed_dim = 12;
  opt.hidden_dim = 20;
  opt.epochs = 5;
  opt.max_len = 128;
  nn::GruClassifier gru(opt);
  gru.fit(train.data, vocab.size(), seed);

  const std::vector<int> pred = gru.predict_all(test_corpus.data);
  return ml::confusion(test_corpus.data.labels, pred);
}

std::string pct(double v) { return util::format_percent(v, 1); }

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Table IV — usefulness of synthetic patches (RQ3)", argc, argv);
  const double scale = session.scale();

  const std::size_t nvd_sec = bench::scaled(500, scale);
  const std::size_t nvd_nonsec = bench::scaled(1000, scale);
  const std::size_t wild_sec = bench::scaled(1000, scale);
  const std::size_t wild_nonsec = bench::scaled(2000, scale);

  // --- Assemble the natural datasets (snapshots kept for synthesis).
  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = nvd_sec;
  config.wild_pool = wild_sec;       // reused as the wild SECURITY set
  config.wild_security_rate = 1.0;   // every "wild" commit is a security fix
  config.keep_nvd_snapshots = true;
  config.keep_wild_snapshots = true;
  config.seed = 44044;
  const corpus::World world = corpus::build_world(config);

  const std::vector<corpus::CommitRecord> nvd_nonsec_set = bench::make_nonsecurity_set(
      nvd_nonsec, 501, /*keep_snapshots=*/true, /*defensive_share=*/0.12);
  const std::vector<corpus::CommitRecord> wild_nonsec_set = bench::make_nonsecurity_set(
      wild_nonsec, 502, /*keep_snapshots=*/true, /*defensive_share=*/0.12);

  std::vector<const corpus::CommitRecord*> nvd_all =
      bench::as_pointers(world.nvd_security);
  for (const auto& r : nvd_nonsec_set) nvd_all.push_back(&r);
  std::vector<const corpus::CommitRecord*> wild_all =
      bench::as_pointers(world.wild);
  for (const auto& r : wild_nonsec_set) wild_all.push_back(&r);

  util::Table table("Table IV: RNN performance w/o and w/ synthetic patches");
  table.set_header({"Dataset", "Synthetic Dataset", "Precision", "Recall",
                    "Paper P", "Paper R"});

  synth::SynthesisOptions synth_opt;
  synth_opt.max_per_patch = 4;

  auto run_block = [&](const std::string& label,
                       const std::vector<const corpus::CommitRecord*>& records,
                       std::uint64_t seed, const char* paper_nat_p,
                       const char* paper_nat_r, const char* paper_syn_p,
                       const char* paper_syn_r) {
    const SplitRecords split = split_80_20(records, seed);

    TokenCorpus train_nat;
    for (const corpus::CommitRecord* r : split.train) {
      add_patch(train_nat, r->patch, r->truth.is_security ? 1 : 0);
    }
    TokenCorpus test;
    for (const corpus::CommitRecord* r : split.test) {
      add_patch(test, r->patch, r->truth.is_security ? 1 : 0);
    }

    const ml::Confusion natural = run_rnn(train_nat, test, seed + 1);
    table.add_row({label, "-", pct(natural.precision()), pct(natural.recall()),
                   paper_nat_p, paper_nat_r});

    // Synthesize from the training split only. The paper multiplies the
    // security side harder than the non-security side (4076 -> 16,836
    // sec, ~2x nonsec -> 19,936): match that by capping synthetic
    // non-security at ~1.2x the synthetic security count.
    std::vector<corpus::CommitRecord> train_records;
    for (const corpus::CommitRecord* r : split.train) train_records.push_back(*r);
    std::vector<synth::SyntheticPatch> synthetic =
        synth::synthesize_all(train_records, synth_opt, seed + 2);
    session.add_items(synthetic.size());
    std::size_t total_sec = 0;
    for (const auto& s : synthetic) total_sec += s.truth.is_security;
    const std::size_t nonsec_cap =
        static_cast<std::size_t>(1.2 * static_cast<double>(total_sec));
    std::size_t syn_sec = 0;
    std::size_t syn_nonsec = 0;
    TokenCorpus train_aug = train_nat;
    for (const synth::SyntheticPatch& s : synthetic) {
      if (!s.truth.is_security && syn_nonsec >= nonsec_cap) continue;
      add_patch(train_aug, s.patch, s.truth.is_security ? 1 : 0);
      if (s.truth.is_security) {
        ++syn_sec;
      } else {
        ++syn_nonsec;
      }
    }

    const ml::Confusion augmented = run_rnn(train_aug, test, seed + 1);
    table.add_row({label,
                   std::to_string(syn_sec) + " Sec. + " +
                       std::to_string(syn_nonsec) + " NonSec.",
                   pct(augmented.precision()), pct(augmented.recall()),
                   paper_syn_p, paper_syn_r});
    return split;
  };

  run_block("NVD", nvd_all, 71, "82.1%", "84.8%", "86.0%", "87.2%");
  table.add_separator();

  std::vector<const corpus::CommitRecord*> combined = nvd_all;
  combined.insert(combined.end(), wild_all.begin(), wild_all.end());
  run_block("NVD+Wild", combined, 72, "92.9%", "61.1%", "93.0%", "61.2%");

  std::printf("%s", table.render().c_str());
  std::printf("  note: Sec. = security patch; NonSec. = non-security patch\n");
  std::printf("  note: synthetic patches generated solely from the training split\n\n");

  // --- SMOTE ablation (Section IV-C: "we also try some traditional
  // oversampling techniques like SMOTE and do not observe obvious
  // performance increase"). SMOTE lives in feature space, so the ablation
  // uses the Random Forest feature classifier.
  {
    const SplitRecords split = split_80_20(nvd_all, 73);
    const ml::Dataset train = bench::feature_dataset(split.train);
    const ml::Dataset test = bench::feature_dataset(split.test);

    ml::RandomForest plain;
    plain.fit(train, 7);
    const ml::Confusion base = ml::confusion(test.labels(), plain.predict_all(test));

    const ml::Dataset smoted = ml::smote(train, {.k = 5, .multiplier = 2.0}, 9);
    ml::RandomForest boosted;
    boosted.fit(smoted, 7);
    const ml::Confusion after =
        ml::confusion(test.labels(), boosted.predict_all(test));

    util::Table ablation("SMOTE ablation (feature-space oversampling, RF on NVD)");
    ablation.set_header({"Training Set", "Precision", "Recall"});
    ablation.add_row({"natural features", pct(base.precision()), pct(base.recall())});
    ablation.add_row({"natural + SMOTE", pct(after.precision()), pct(after.recall())});
    std::printf("%s", ablation.render().c_str());
    std::printf("  paper: no obvious increase from SMOTE\n");
  }
  return 0;
}
