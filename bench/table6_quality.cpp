// Reproduces Table VI: "Impacts of datasets over learning-based models".
//
// Paper protocol: split the NVD-based and wild-based datasets 80/20;
// train Random Forest (Table I statistical features) and the RNN (token
// stream) on (a) the NVD training split alone and (b) NVD+wild training
// splits combined; test each model on both the NVD and wild test splits.
// Paper shape: NVD-only models generalize poorly to the wild (RF recall
// 21.7 -> 19.5, RNN recall 83.2 -> 24.2), while NVD+wild models stay
// stable across both test sets and the RNN beats the RF.
#include <cstdio>

#include "bench_common.h"
#include "ml/forest.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

struct LabeledSet {
  std::vector<const corpus::CommitRecord*> records;
};

struct SplitSet {
  LabeledSet train;
  LabeledSet test;
};

SplitSet split_80_20(const std::vector<const corpus::CommitRecord*>& records,
                     std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::size_t> order(records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  SplitSet out;
  const std::size_t n_train = records.size() * 8 / 10;
  for (std::size_t i = 0; i < order.size(); ++i) {
    (i < n_train ? out.train : out.test).records.push_back(records[order[i]]);
  }
  return out;
}

struct TokenSet {
  nn::SequenceDataset data;
  std::vector<std::vector<std::string>> docs;
};

TokenSet tokenize(const LabeledSet& set) {
  TokenSet out;
  for (const corpus::CommitRecord* r : set.records) {
    out.docs.push_back(nn::patch_tokens(r->patch));
    out.data.labels.push_back(r->truth.is_security ? 1 : 0);
  }
  return out;
}

std::string pct(double v) { return util::format_percent(v, 1); }

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Table VI — dataset quality across models (RQ5)", argc, argv);
  const double scale = session.scale();

  // NVD-like dataset: long-tail security types + non-security.
  corpus::WorldConfig nvd_config;
  nvd_config.repos = 40;
  nvd_config.nvd_security = bench::scaled(500, scale);
  nvd_config.wild_pool = 4;  // unused here
  nvd_config.keep_nvd_snapshots = false;
  nvd_config.seed = 77077;
  const corpus::World nvd_world = corpus::build_world(nvd_config);
  const std::vector<corpus::CommitRecord> nvd_nonsec = bench::make_nonsecurity_set(
      bench::scaled(1000, scale), 701, /*keep_snapshots=*/false,
      /*defensive_share=*/0.12);

  // Wild-like dataset: reshuffled security types + non-security.
  corpus::WorldConfig wild_config;
  wild_config.repos = 40;
  wild_config.nvd_security = 4;  // unused
  wild_config.wild_pool = bench::scaled(1000, scale);
  wild_config.wild_security_rate = 1.0;  // the wild SECURITY set
  wild_config.seed = 77177;
  const corpus::World wild_world = corpus::build_world(wild_config);
  const std::vector<corpus::CommitRecord> wild_nonsec = bench::make_nonsecurity_set(
      bench::scaled(2000, scale), 702, /*keep_snapshots=*/false,
      /*defensive_share=*/0.18);

  std::vector<const corpus::CommitRecord*> nvd_all =
      bench::as_pointers(nvd_world.nvd_security);
  for (const auto& r : nvd_nonsec) nvd_all.push_back(&r);
  std::vector<const corpus::CommitRecord*> wild_all =
      bench::as_pointers(wild_world.wild);
  for (const auto& r : wild_nonsec) wild_all.push_back(&r);

  const SplitSet nvd = split_80_20(nvd_all, 81);
  const SplitSet wild = split_80_20(wild_all, 82);
  session.add_items(nvd_all.size() + wild_all.size());

  LabeledSet combined_train = nvd.train;
  combined_train.records.insert(combined_train.records.end(),
                                wild.train.records.begin(),
                                wild.train.records.end());

  util::Table table("Table VI: impacts of datasets over learning-based models");
  table.set_header({"Training Dataset", "Algorithm", "Test Dataset",
                    "Precision", "Recall", "Paper P", "Paper R"});

  // ---- Random Forest on Table I features.
  auto rf_row = [&](const char* train_label, const LabeledSet& train,
                    const char* test_label, const LabeledSet& test,
                    const char* paper_p, const char* paper_r) {
    const ml::Dataset train_data = bench::feature_dataset(train.records);
    const ml::Dataset test_data = bench::feature_dataset(test.records);
    ml::RandomForest forest;
    forest.fit(train_data, 7);
    const ml::Confusion c =
        ml::confusion(test_data.labels(), forest.predict_all(test_data));
    table.add_row({train_label, "Random Forest", test_label, pct(c.precision()),
                   pct(c.recall()), paper_p, paper_r});
  };

  // ---- RNN on token sequences.
  auto rnn_row = [&](const char* train_label, const LabeledSet& train,
                     const char* test_label, const LabeledSet& test,
                     const char* paper_p, const char* paper_r) {
    TokenSet train_tokens = tokenize(train);
    TokenSet test_tokens = tokenize(test);
    const nn::Vocabulary vocab = nn::Vocabulary::build(train_tokens.docs, 2, 1500);
    for (const auto& doc : train_tokens.docs) {
      train_tokens.data.sequences.push_back(vocab.encode(doc));
    }
    for (const auto& doc : test_tokens.docs) {
      test_tokens.data.sequences.push_back(vocab.encode(doc));
    }
    nn::GruOptions opt;
    opt.embed_dim = 12;
    opt.hidden_dim = 20;
    opt.epochs = 5;
    opt.max_len = 128;
    nn::GruClassifier gru(opt);
    gru.fit(train_tokens.data, vocab.size(), 11);
    const ml::Confusion c = ml::confusion(test_tokens.data.labels,
                                          gru.predict_all(test_tokens.data));
    table.add_row({train_label, "RNN", test_label, pct(c.precision()),
                   pct(c.recall()), paper_p, paper_r});
  };

  rf_row("NVD", nvd.train, "NVD", nvd.test, "58.4%", "21.7%");
  rf_row("NVD", nvd.train, "Wild", wild.test, "58.0%", "19.5%");
  rnn_row("NVD", nvd.train, "NVD", nvd.test, "82.8%", "83.2%");
  rnn_row("NVD", nvd.train, "Wild", wild.test, "88.3%", "24.2%");
  table.add_separator();
  rf_row("NVD+Wild", combined_train, "NVD", nvd.test, "90.1%", "22.5%");
  rf_row("NVD+Wild", combined_train, "Wild", wild.test, "91.8%", "44.6%");
  rnn_row("NVD+Wild", combined_train, "NVD", nvd.test, "92.8%", "60.2%");
  rnn_row("NVD+Wild", combined_train, "Wild", wild.test, "92.3%", "63.2%");

  std::printf("%s", table.render().c_str());
  std::printf("  paper shape: NVD-only models lose recall on wild data; "
              "NVD+Wild models stay stable; RNN > RF\n");

  // ---- feature-space cross-evaluation: the same RF protocol on the
  // semantic (72-dim) and interprocedural (80-dim) extensions of the
  // Table I space, to see whether the checker-diff and call-graph
  // dimensions move the NVD -> wild generalization gap.
  util::Table space_table(
      "Table VI addendum: Random Forest across feature spaces (NVD+Wild train)");
  space_table.set_header(
      {"Feature space", "Test Dataset", "Precision", "Recall"});
  auto rf_space_row = [&](const char* space_label, feature::FeatureSpace space,
                          const char* test_label, const LabeledSet& test) {
    const ml::Dataset train_data =
        bench::feature_dataset(combined_train.records, space);
    const ml::Dataset test_data = bench::feature_dataset(test.records, space);
    ml::RandomForest forest;
    forest.fit(train_data, 7);
    const ml::Confusion c =
        ml::confusion(test_data.labels(), forest.predict_all(test_data));
    space_table.add_row(
        {space_label, test_label, pct(c.precision()), pct(c.recall())});
  };
  rf_space_row("syntactic (60)", feature::FeatureSpace::kSyntactic, "NVD", nvd.test);
  rf_space_row("syntactic (60)", feature::FeatureSpace::kSyntactic, "Wild", wild.test);
  rf_space_row("semantic (72)", feature::FeatureSpace::kSemantic, "NVD", nvd.test);
  rf_space_row("semantic (72)", feature::FeatureSpace::kSemantic, "Wild", wild.test);
  rf_space_row("interproc (80)", feature::FeatureSpace::kInterproc, "NVD", nvd.test);
  rf_space_row("interproc (80)", feature::FeatureSpace::kInterproc, "Wild", wild.test);
  std::printf("%s", space_table.render().c_str());
  std::printf("  the interproc rows add the call-graph/summary deltas of "
              "features.h dims 72-79 on top of the semantic space\n");
  return 0;
}
