// Micro-benchmarks (google-benchmark) for the algorithmic kernels:
// Levenshtein, the lexer, feature extraction, distance-matrix
// construction, nearest link search (greedy vs exact ablation), Myers
// diff, commit fabrication, patch synthesis, and GRU inference.
#include <benchmark/benchmark.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/categorize.h"
#include "core/distance.h"
#include "core/nearest_link.h"
#include "core/streaming_link.h"
#include "corpus/repo.h"
#include "diff/myers.h"
#include "feature/features.h"
#include "lang/lexer.h"
#include "nn/encode.h"
#include "nn/gru.h"
#include "nn/vocab.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "synth/synthesize.h"
#include "util/levenshtein.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

std::string random_code_line(util::Rng& rng, std::size_t tokens) {
  std::string out;
  for (std::size_t i = 0; i < tokens; ++i) {
    out += "var" + std::to_string(rng.index(40)) + " = call" +
           std::to_string(rng.index(9)) + "(x) + " + std::to_string(rng.index(100)) +
           "; ";
  }
  return out;
}

void BM_Levenshtein(benchmark::State& state) {
  util::Rng rng(1);
  const std::string a = random_code_line(rng, static_cast<std::size_t>(state.range(0)));
  const std::string b = random_code_line(rng, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::levenshtein(a, b));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.size() + b.size()));
}
BENCHMARK(BM_Levenshtein)->Arg(4)->Arg(16)->Arg(64);

void BM_LevenshteinBounded(benchmark::State& state) {
  util::Rng rng(2);
  const std::string a = random_code_line(rng, 64);
  const std::string b = random_code_line(rng, 64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::levenshtein_bounded(a, b, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_LevenshteinBounded)->Arg(8)->Arg(64);

void BM_Lexer(benchmark::State& state) {
  util::Rng rng(3);
  const std::string code = random_code_line(rng, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lang::lex(code));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(code.size()));
}
BENCHMARK(BM_Lexer);

corpus::CommitRecord sample_commit(std::uint64_t seed,
                                   corpus::PatchType type,
                                   bool snapshots = false) {
  util::Rng rng(seed);
  corpus::CommitOptions opt;
  opt.keep_snapshots = snapshots;
  return corpus::make_commit(rng, "bench", type, opt);
}

void BM_FeatureExtraction(benchmark::State& state) {
  const corpus::CommitRecord record =
      sample_commit(11, corpus::PatchType::kRedesign);
  for (auto _ : state) {
    benchmark::DoNotOptimize(feature::extract(record.patch));
  }
}
BENCHMARK(BM_FeatureExtraction);

void BM_MakeCommit(benchmark::State& state) {
  util::Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        corpus::make_commit(rng, "bench", corpus::PatchType::kBoundCheck));
  }
}
BENCHMARK(BM_MakeCommit);

void BM_MyersDiff(benchmark::State& state) {
  util::Rng rng(17);
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
    a.push_back("line " + std::to_string(rng.index(50)));
    b.push_back(rng.chance(0.8) && i < a.size() ? a[i]
                                                : "edit " + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(diff::diff_lines(a, b));
  }
}
BENCHMARK(BM_MyersDiff)->Arg(50)->Arg(200);

feature::FeatureMatrix random_features(std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  feature::FeatureMatrix m(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      m[i][j] = rng.uniform(-10, 10);
    }
  }
  return m;
}

void BM_DistanceMatrix(benchmark::State& state) {
  const auto sec = random_features(static_cast<std::size_t>(state.range(0)), 1);
  const auto wild = random_features(static_cast<std::size_t>(state.range(1)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::distance_matrix(sec, wild));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_DistanceMatrix)->Args({100, 2000})->Args({400, 8000});

void BM_NearestLinkGreedy(benchmark::State& state) {
  const auto sec = random_features(static_cast<std::size_t>(state.range(0)), 3);
  const auto wild = random_features(static_cast<std::size_t>(state.range(1)), 4);
  const core::DistanceMatrix d = core::distance_matrix(sec, wild);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::nearest_link_search(d));
  }
}
BENCHMARK(BM_NearestLinkGreedy)->Args({100, 2000})->Args({400, 8000});

// Dense-vs-streaming ablation, end to end (features -> LinkResult). The
// dense arm pays the full M x N matrix (fill + greedy re-reads); the
// streaming arm runs the tiled norm-decomposed engine. Same inputs,
// bit-identical outputs; the {1000, 100000} shape is the acceptance
// scale recorded in bench/BENCH_nearest_link.json.
void BM_NearestLinkDenseEndToEnd(benchmark::State& state) {
  const auto sec = random_features(static_cast<std::size_t>(state.range(0)), 7);
  const auto wild = random_features(static_cast<std::size_t>(state.range(1)), 8);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  for (auto _ : state) {
    const core::DistanceMatrix d = core::distance_matrix(sec, wild, w);
    benchmark::DoNotOptimize(core::nearest_link_search(d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_NearestLinkDenseEndToEnd)
    ->Args({100, 2000})
    ->Args({1000, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_NearestLinkStreaming(benchmark::State& state) {
  const auto sec = random_features(static_cast<std::size_t>(state.range(0)), 7);
  const auto wild = random_features(static_cast<std::size_t>(state.range(1)), 8);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::streaming_nearest_link(sec, wild, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * state.range(1));
}
BENCHMARK(BM_NearestLinkStreaming)
    ->Args({100, 2000})
    ->Args({1000, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_ExactAssignment(benchmark::State& state) {
  // The O(m^2 n) exact solver: ablation scale only.
  const auto sec = random_features(static_cast<std::size_t>(state.range(0)), 5);
  const auto wild = random_features(static_cast<std::size_t>(state.range(1)), 6);
  const core::DistanceMatrix d = core::distance_matrix(sec, wild);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exact_assignment(d));
  }
}
BENCHMARK(BM_ExactAssignment)->Args({50, 500})->Args({100, 1000});

void BM_Categorize(benchmark::State& state) {
  const corpus::CommitRecord record =
      sample_commit(23, corpus::PatchType::kFuncCall);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::categorize(record.patch));
  }
}
BENCHMARK(BM_Categorize);

void BM_SynthesizePatch(benchmark::State& state) {
  const corpus::CommitRecord record =
      sample_commit(29, corpus::PatchType::kBoundCheck, /*snapshots=*/true);
  synth::SynthesisOptions opt;
  opt.max_per_patch = 4;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(synth::synthesize(record, opt, ++seed));
  }
}
BENCHMARK(BM_SynthesizePatch);

// Reduced-scale dense-vs-streaming probe for the CI gate: one dense run
// and one streaming run over the same inputs, with the verdict recorded
// as nearest_link.bench.* gauges in the metrics artifact. bench_diff
// then enforces machine-independent rules (identical = 1, a speedup
// floor, pool.threads >= 2) without paying the full 1000 x 100000
// ablation scale on every push.
bool run_link_check(std::size_t m, std::size_t n) {
  const auto sec = random_features(m, 7);
  const auto wild = random_features(n, 8);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const auto t0 = std::chrono::steady_clock::now();
  const core::DistanceMatrix d = core::distance_matrix(sec, wild, w);
  const core::LinkResult dense = core::nearest_link_search(d);
  const auto t1 = std::chrono::steady_clock::now();
  core::StreamingLinkStats stats;
  const core::LinkResult streamed =
      core::streaming_nearest_link(sec, wild, w, {}, &stats);
  const auto t2 = std::chrono::steady_clock::now();
  const double dense_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double stream_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  const bool identical = dense.candidate == streamed.candidate &&
                         dense.total_distance == streamed.total_distance;
  const double speedup = stream_ms > 0.0 ? dense_ms / stream_ms : 0.0;
  obs::gauge_set("nearest_link.bench.dense_ms", dense_ms);
  obs::gauge_set("nearest_link.bench.streaming_ms", stream_ms);
  obs::gauge_set("nearest_link.bench.speedup", speedup);
  obs::gauge_set("nearest_link.bench.identical", identical ? 1.0 : 0.0);
  obs::gauge_set("nearest_link.bench.threads",
                 static_cast<double>(stats.threads));
  std::printf(
      "link-check %zux%zu: dense %.1f ms, streaming %.1f ms (%.2fx, "
      "%zu threads), results %s\n",
      m, n, dense_ms, stream_ms, speedup, stats.threads,
      identical ? "identical" : "DIVERGED");
  return identical;
}

// Gaussian-mixture features: uniform data defeats every pruning bound
// (the committed baseline records pruned_cells: 0 on it), so the index
// probe uses clustered columns where a coarse partition actually
// separates distances.
std::vector<std::array<double, feature::kFeatureCount>> mixture_centers(
    std::size_t centers, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::array<double, feature::kFeatureCount>> c(centers);
  for (auto& center : c) {
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      center[j] = rng.uniform(-10, 10);
    }
  }
  return c;
}

feature::FeatureMatrix clustered_features(
    const std::vector<std::array<double, feature::kFeatureCount>>& centers,
    std::size_t rows, std::uint64_t seed) {
  util::Rng rng(seed);
  feature::FeatureMatrix m(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& center = centers[i % centers.size()];
    for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
      m[i][j] = center[j] + rng.uniform(-1, 1) * 0.5;
    }
  }
  return m;
}

// Index probe for the CI gate: dense reference, streaming-exact, and
// streaming-coarse over the same clustered inputs. The verdict lands as
// nearest_link.bench.index_* gauges; bench_diff requires
// index_identical = 1 and a speedup floor on coarse vs streaming-exact.
bool run_index_check(std::size_t m, std::size_t n) {
  // Queries share the pool's mixture centers: the engine's target
  // workload is seeds near wild variants, and the pending proof only
  // bites when the query actually has a nearby cluster.
  const auto centers = mixture_centers(12, 106);
  const auto sec = clustered_features(centers, m, 107);
  const auto wild = clustered_features(centers, n, 108);
  const std::vector<double> w = core::maxabs_weights(sec, wild);
  const auto t0 = std::chrono::steady_clock::now();
  const core::DistanceMatrix d = core::distance_matrix(sec, wild, w);
  const core::LinkResult dense = core::nearest_link_search(d);
  const auto t1 = std::chrono::steady_clock::now();
  core::StreamingLinkConfig exact_cfg;
  core::StreamingLinkStats exact_stats;
  const core::LinkResult exact =
      core::streaming_nearest_link(sec, wild, w, exact_cfg, &exact_stats);
  const auto t2 = std::chrono::steady_clock::now();
  core::StreamingLinkConfig coarse_cfg;
  coarse_cfg.index.kind = core::IndexKind::kCoarse;
  core::StreamingLinkStats coarse_stats;
  const core::LinkResult coarse =
      core::streaming_nearest_link(sec, wild, w, coarse_cfg, &coarse_stats);
  const auto t3 = std::chrono::steady_clock::now();
  const double dense_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double exact_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  const double index_ms =
      std::chrono::duration<double, std::milli>(t3 - t2).count();
  const bool identical = dense.candidate == exact.candidate &&
                         dense.total_distance == exact.total_distance &&
                         dense.candidate == coarse.candidate &&
                         dense.total_distance == coarse.total_distance;
  const double speedup = index_ms > 0.0 ? exact_ms / index_ms : 0.0;
  obs::gauge_set("nearest_link.bench.index_ms", index_ms);
  obs::gauge_set("nearest_link.bench.index_exact_ms", exact_ms);
  obs::gauge_set("nearest_link.bench.index_dense_ms", dense_ms);
  obs::gauge_set("nearest_link.bench.index_speedup", speedup);
  obs::gauge_set("nearest_link.bench.index_identical", identical ? 1.0 : 0.0);
  obs::gauge_set("nearest_link.bench.index_fallbacks",
                 static_cast<double>(coarse_stats.index_fallback_rescans));
  obs::gauge_set("nearest_link.bench.index_probes",
                 static_cast<double>(coarse_stats.index_probes));
  std::printf(
      "index-check %zux%zu: dense %.1f ms, streaming-exact %.1f ms, "
      "streaming-coarse %.1f ms (%.2fx vs exact, %llu fallback rescans), "
      "results %s\n",
      m, n, dense_ms, exact_ms, index_ms, speedup,
      static_cast<unsigned long long>(coarse_stats.index_fallback_rescans),
      identical ? "identical" : "DIVERGED");
  return identical;
}

void BM_GruInference(benchmark::State& state) {
  nn::SequenceDataset train;
  util::Rng rng(31);
  for (int i = 0; i < 64; ++i) {
    std::vector<std::int32_t> seq;
    for (int t = 0; t < 64; ++t) {
      seq.push_back(static_cast<std::int32_t>(2 + rng.index(100)));
    }
    train.sequences.push_back(std::move(seq));
    train.labels.push_back(i % 2);
  }
  nn::GruOptions opt;
  opt.epochs = 1;
  nn::GruClassifier gru(opt);
  gru.fit(train, 102, 1);
  const std::vector<std::int32_t>& probe = train.sequences[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.predict_score(probe));
  }
}
BENCHMARK(BM_GruInference);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark aborts on
// flags it does not know, so the obs flags (--metrics-out, --trace-out,
// --sample-ms), --link-check[=MxN], and --index-check[=MxN] are peeled
// off argv first. When given, the whole run
// executes under an ObsSession with a ResourceSampler and the
// counters/spans the kernels record (distance.tiles, nearest_link.*)
// land in machine-readable artifacts — this is what the CI bench-smoke
// job uploads.
int main(int argc, char** argv) {
  std::string metrics_out;
  std::string trace_out;
  long sample_ms = 50;
  bool link_check = false;
  std::size_t link_m = 250;
  std::size_t link_n = 25000;
  bool index_check = false;
  std::size_t index_m = 250;
  std::size_t index_n = 25000;
  std::vector<char*> args;
  // Strict MxN parse: rejects overflow (ERANGE wraps strtoull to
  // ULLONG_MAX silently otherwise), trailing junk, and zero extents.
  const auto parse_shape = [](std::string_view flag, const std::string& shape,
                              std::size_t& out_m, std::size_t& out_n) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long m_val = std::strtoull(shape.c_str(), &end, 10);
    const bool m_ok =
        end != shape.c_str() && *end == 'x' && m_val > 0 && errno != ERANGE;
    const char* n_text = m_ok ? end + 1 : end;
    errno = 0;
    const unsigned long long n_val = std::strtoull(n_text, &end, 10);
    if (!m_ok || end == n_text || *end != '\0' || n_val == 0 ||
        errno == ERANGE) {
      std::fprintf(stderr,
                   "micro_core: bad %.*s shape \"%s\" (want MxN, e.g. "
                   "250x25000)\n",
                   static_cast<int>(flag.size()), flag.data(), shape.c_str());
      return false;
    }
    out_m = static_cast<std::size_t>(m_val);
    out_n = static_cast<std::size_t>(n_val);
    return true;
  };
  const auto peel = [&](std::string_view arg, std::string_view name,
                        int& i, std::string& out) {
    const std::string flag = "--" + std::string(name);
    if (arg == flag && i + 1 < argc) {
      out = argv[++i];
      return true;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
      out = arg.substr(flag.size() + 1);
      return true;
    }
    return false;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string sample_value;
    if (peel(arg, "metrics-out", i, metrics_out) ||
        peel(arg, "trace-out", i, trace_out)) {
      continue;
    }
    // --link-check[=MxN]: run the dense-vs-streaming identity/speedup
    // probe after the benchmarks (default shape 250x25000).
    if (arg == "--link-check") {
      link_check = true;
      continue;
    }
    if (arg.rfind("--link-check=", 0) == 0) {
      link_check = true;
      const std::string shape(arg.substr(std::strlen("--link-check=")));
      if (!parse_shape("--link-check", shape, link_m, link_n)) return 2;
      continue;
    }
    // --index-check[=MxN]: run the two-phase index identity/speedup
    // probe after the benchmarks (default shape 250x25000).
    if (arg == "--index-check") {
      index_check = true;
      continue;
    }
    if (arg.rfind("--index-check=", 0) == 0) {
      index_check = true;
      const std::string shape(arg.substr(std::strlen("--index-check=")));
      if (!parse_shape("--index-check", shape, index_m, index_n)) return 2;
      continue;
    }
    if (peel(arg, "sample-ms", i, sample_value)) {
      char* end = nullptr;
      errno = 0;
      sample_ms = std::strtol(sample_value.c_str(), &end, 10);
      if (end == sample_value.c_str() || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "micro_core: bad --sample-ms value \"%s\"\n",
                     sample_value.c_str());
        return 2;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  bool link_ok = true;
  {
    patchdb::obs::ObsSession session("micro_core");
    patchdb::obs::ResourceSampler sampler(
        {.interval = std::chrono::milliseconds(sample_ms > 0 ? sample_ms : 50)});
    const bool want_artifacts = !metrics_out.empty() || !trace_out.empty();
    if (session.installed() && want_artifacts) {
      session.attach_sampler(&sampler);
      sampler.start();
    }
    benchmark::RunSpecifiedBenchmarks();
    if (link_check) link_ok = run_link_check(link_m, link_n);
    if (index_check && !run_index_check(index_m, index_n)) link_ok = false;
    sampler.stop();
    if (want_artifacts) {
      const patchdb::obs::RunReport report = session.report();
      if (!metrics_out.empty()) {
        patchdb::obs::write_report_file(report, metrics_out);
      }
      if (!trace_out.empty()) {
        patchdb::obs::write_trace_file(report, trace_out);
      }
    }
  }
  benchmark::Shutdown();
  if (!link_ok) {
    std::fprintf(stderr,
                 "micro_core: link/index check FAILED (a streaming result "
                 "diverged from dense)\n");
    return 1;
  }
  return 0;
}
