// Reproduces Table II: "# of security patches identified in five rounds"
// of nearest-link dataset augmentation.
//
// Paper protocol: the 4076-patch NVD seed searches Set I (100K random
// wild commits) for three rounds, then fresh Sets II and III (200K each)
// for rounds 4 and 5. Paper ratios: 22%, 25%, 16%, 29%, 30% — versus a
// 6-10% brute-force base rate.
//
// Default scale here is 1:5 (seed 800, Set I 20K, Sets II/III 40K).
#include <cstdio>

#include "bench_common.h"
#include "core/augment.h"
#include "util/log.h"
#include "util/table.h"

namespace {

using namespace patchdb;

corpus::World make_set(std::size_t nvd, std::size_t pool, double rate,
                       std::uint64_t seed) {
  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = nvd;
  config.wild_pool = pool;
  config.wild_security_rate = rate;
  config.keep_nvd_snapshots = false;  // not needed here; saves memory
  config.seed = seed;
  return corpus::build_world(config);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Table II — wild-based dataset construction (RQ1)", argc, argv);
  const double scale = session.scale();

  const std::size_t nvd_size = bench::scaled(800, scale);
  const std::size_t set1_size = bench::scaled(20000, scale);
  const std::size_t set23_size = bench::scaled(40000, scale);
  const double base_rate = 0.08;

  // Set I supplies both the NVD seed and the first wild pool so that the
  // seed's feature distribution matches the paper's collection pipeline.
  corpus::World set1 = make_set(nvd_size, set1_size, base_rate, 20210621);
  std::printf("NVD-based seed: %zu security patches (crawled from %zu CVE entries)\n",
              set1.nvd_security.size(), set1.nvd_entries.size());
  std::printf("wild base rate: %.0f%% (paper observes 6-10%%)\n\n", base_rate * 100);

  core::AugmentationLoop loop(bench::as_pointers(set1.nvd_security), set1.oracle);
  loop.set_pool(bench::as_pointers(set1.wild));

  util::Table table("Table II: security patches identified in five rounds");
  table.set_header({"Search Range", "Round", "Candidates",
                    "Verified Security Patches", "Ratio", "Paper Ratio"});
  const char* paper_ratio[5] = {"22%", "25%", "16%", "29%", "30%"};

  std::vector<core::RoundStats> all_rounds;
  auto run_round = [&](const std::string& range_label, std::size_t round_index) {
    const core::RoundStats stats = loop.run_round();
    session.add_items(stats.candidates);
    all_rounds.push_back(stats);
    table.add_row({range_label, std::to_string(round_index),
                   std::to_string(stats.candidates),
                   std::to_string(stats.verified_security),
                   util::format_percent(stats.ratio, 0),
                   paper_ratio[round_index - 1]});
  };

  // Rounds 1-3 on Set I.
  run_round("Set I: " + util::human_count(set1_size), 1);
  run_round("", 2);
  run_round("", 3);
  table.add_separator();

  // Round 4 on a fresh, larger Set II. The oracle must know the new
  // commits; each set carries its own oracle, so register Set II's truth
  // into Set I's oracle (they share the verification ledger).
  corpus::World set2 = make_set(1, set23_size, base_rate, 20210622);
  for (const corpus::CommitRecord& r : set2.wild) set1.oracle.add(r);
  loop.set_pool(bench::as_pointers(set2.wild));
  run_round("Set II: " + util::human_count(set23_size), 4);
  table.add_separator();

  corpus::World set3 = make_set(1, set23_size, base_rate, 20210623);
  for (const corpus::CommitRecord& r : set3.wild) set1.oracle.add(r);
  loop.set_pool(bench::as_pointers(set3.wild));
  run_round("Set III: " + util::human_count(set23_size), 5);

  std::printf("%s\n", table.render().c_str());

  std::size_t total_candidates = 0;
  std::size_t total_found = 0;
  for (const core::RoundStats& r : all_rounds) {
    total_candidates += r.candidates;
    total_found += r.verified_security;
  }
  std::printf("final dataset: %zu security patches (%zu NVD + %zu wild), "
              "%zu cleaned non-security patches\n",
              loop.security().size(), set1.nvd_security.size(),
              loop.wild_security().size(), loop.nonsecurity().size());
  std::printf("human verification effort: %zu candidate checks for %zu finds "
              "(%.0f%% hit rate vs %.0f%% brute force => %.0f%% effort saved)\n",
              total_candidates, total_found,
              100.0 * static_cast<double>(total_found) /
                  static_cast<double>(total_candidates),
              base_rate * 100.0,
              100.0 * (1.0 - base_rate * static_cast<double>(total_candidates) /
                                 static_cast<double>(total_found)));
  std::printf("paper: 12,073 security patches total (4076 NVD + 7997 wild), "
              "23,742 non-security; ~66%% effort reduction\n");
  return 0;
}
