// Extension experiment: automatic security-patch TYPE classification
// under the long-tail imbalance the paper measures (Section IV-D).
//
// The NVD-based dataset follows a long-tail type distribution, so "there
// is not enough data for tail classes [and] machine learning would not
// perform well when handling those minority instances. The wild-based
// dataset solves this problem to a certain extent by introducing more
// varieties." This bench makes that concrete: a one-vs-rest Random
// Forest over Table I features is trained (a) on an NVD-like long-tail
// sample and (b) on the same sample plus wild-like finds, then evaluated
// per type on a balanced test set. The rule-based categorizer provides
// the knowledge-engineering reference point (companion work [33] builds
// the ML version once the dataset is large enough).
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "core/categorize.h"
#include "ml/forest.h"
#include "ml/multiclass.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

void append_sample(ml::MultiDataset& data, util::Rng& rng,
                   const corpus::TypeDistribution& dist, std::size_t n,
                   std::vector<corpus::CommitRecord>* keep = nullptr) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = rng.weighted(std::span(dist.data(), dist.size()));
    const auto record =
        corpus::make_commit(rng, "bench", corpus::security_types()[t]);
    const feature::FeatureVector v = feature::extract(record.patch);
    data.rows.emplace_back(v.begin(), v.end());
    data.labels.push_back(static_cast<int>(t));
    if (keep != nullptr) keep->push_back(record);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Extension — type classification under long-tail imbalance (Sec. IV-D)", argc, argv);
  const double scale = session.scale();

  util::Rng rng(121212);
  const int classes = static_cast<int>(corpus::kSecurityTypeCount);

  // (a) NVD-like long-tail training sample.
  ml::MultiDataset nvd_train;
  nvd_train.classes = classes;
  append_sample(nvd_train, rng, corpus::nvd_type_distribution(),
                bench::scaled(500, scale));

  // (b) plus wild-like finds (reshuffled distribution, richer tail).
  ml::MultiDataset combined_train = nvd_train;
  append_sample(combined_train, rng, corpus::wild_type_distribution(),
                bench::scaled(800, scale));

  // Balanced test set (the deployment condition: every type matters).
  ml::MultiDataset test;
  test.classes = classes;
  std::vector<corpus::CommitRecord> test_records;
  const std::size_t per_type_test = bench::scaled(30, scale);
  for (std::size_t rep = 0; rep < per_type_test; ++rep) {
    for (std::size_t t = 0; t < corpus::kSecurityTypeCount; ++t) {
      test_records.push_back(
          corpus::make_commit(rng, "bench", corpus::security_types()[t]));
      const feature::FeatureVector v = feature::extract(test_records.back().patch);
      test.rows.emplace_back(v.begin(), v.end());
      test.labels.push_back(static_cast<int>(t));
    }
  }

  auto train_and_predict = [&](const ml::MultiDataset& train) {
    ml::OneVsRest ovr([] {
      ml::ForestOptions opt;
      opt.trees = 32;
      return std::make_unique<ml::RandomForest>(opt);
    });
    ovr.fit(train, 7);
    std::vector<int> predicted;
    predicted.reserve(test.rows.size());
    for (const auto& row : test.rows) predicted.push_back(ovr.predict(row));
    return predicted;
  };

  session.add_items(test.rows.size());
  const std::vector<int> nvd_pred = train_and_predict(nvd_train);
  const std::vector<int> combined_pred = train_and_predict(combined_train);
  std::vector<int> rule_pred;
  for (const auto& record : test_records) {
    const corpus::PatchType rule = core::categorize(record.patch);
    rule_pred.push_back(corpus::is_security_type(rule)
                            ? static_cast<int>(rule) - 1
                            : classes - 1);
  }

  const ml::MultiMetrics nvd_m = ml::multi_metrics(test.labels, nvd_pred, classes);
  const ml::MultiMetrics com_m =
      ml::multi_metrics(test.labels, combined_pred, classes);
  const ml::MultiMetrics rule_m =
      ml::multi_metrics(test.labels, rule_pred, classes);

  // Training-set composition per type, to show where the tail starts.
  std::vector<std::size_t> nvd_counts(static_cast<std::size_t>(classes), 0);
  for (int label : nvd_train.labels) {
    ++nvd_counts[static_cast<std::size_t>(label)];
  }

  util::Table table(
      "Per-type recall on a balanced test set (long-tail vs augmented training)");
  table.set_header({"ID", "Pattern", "NVD train n", "NVD-only recall",
                    "NVD+Wild recall", "Rules"});
  for (std::size_t t = 0; t < corpus::kSecurityTypeCount; ++t) {
    table.add_row({std::to_string(t + 1),
                   std::string(corpus::patch_type_name(corpus::security_types()[t])),
                   std::to_string(nvd_counts[t]),
                   util::format_percent(nvd_m.per_class_recall[t], 0),
                   util::format_percent(com_m.per_class_recall[t], 0),
                   util::format_percent(rule_m.per_class_recall[t], 0)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  overall accuracy: NVD-only %s -> NVD+Wild %s (rules %s, chance 8.3%%)\n",
              util::format_percent(nvd_m.accuracy, 1).c_str(),
              util::format_percent(com_m.accuracy, 1).c_str(),
              util::format_percent(rule_m.accuracy, 1).c_str());
  std::printf("  paper (Sec. IV-D): the wild-based dataset 'alleviates the\n"
              "  imbalance by introducing more instances in the tail'\n");
  return 0;
}
