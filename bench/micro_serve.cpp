// micro_serve — sustained-QPS load generator for the patchdbd serving
// path. Spins up an in-process serve::Server over a small deterministic
// dataset (or targets a running daemon with --host/--port), opens
// --conns concurrent connections, and drives --reps request cycles per
// connection, where one cycle is the five query ops: lookup, features,
// nearest, stats, analyze. Client-side latency lands in the
// serve.client.* histograms; the summary gauges (serve.bench.qps,
// serve.bench.p50_ms, serve.bench.p99_ms) and exact request counters
// feed bench/BENCH_serve.json, which CI gates with tools/bench_diff on
// machine-independent rules (request counts and zero protocol errors —
// latency numbers vary with hardware and are recorded, not gated).
//
//   micro_serve [SCALE] [--conns N] [--reps N] [--k K]
//               [--host H --port P]            (skip in-process server)
//               [--metrics-out FILE] [--trace-out FILE]
//
// SCALE multiplies the in-process dataset size (default 1.0).
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "corpus/world.h"
#include "diff/render.h"
#include "serve/client.h"
#include "serve/dataset.h"
#include "serve/server.h"

namespace {

using namespace patchdb;

std::size_t flag_or(int argc, char** argv, std::string_view name,
                    std::size_t fallback) {
  const std::string raw = bench::parse_flag_value(argc, argv, name);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  // strtoull silently clamps overflow to ULLONG_MAX and accepts a
  // leading '-' (negation modulo 2^64) — reject both.
  if (end == raw.c_str() || *end != '\0' || raw[0] == '-' ||
      errno == ERANGE) {
    std::fprintf(stderr, "micro_serve: bad --%s \"%s\"\n",
                 std::string(name).c_str(), raw.c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

/// One connection's worth of load: `reps` five-op cycles, latencies
/// appended to `latencies_out` under `mutex`.
void drive_connection(const std::string& host, std::uint16_t port,
                      const std::vector<std::string>& ids,
                      const std::string& analyze_text, std::size_t thread_id,
                      std::size_t reps, std::uint32_t k,
                      std::vector<double>& latencies_out, std::mutex& mutex,
                      std::atomic<std::uint64_t>& failures) {
  std::vector<double> local;
  local.reserve(reps * 5);
  const auto timed = [&](const char* op, auto&& call) {
    const auto start = std::chrono::steady_clock::now();
    serve::Response response;
    try {
      response = call();
    } catch (const std::exception&) {
      obs::counter_add("serve.client.protocol_errors", 1);
      failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    obs::counter_add("serve.client.requests", 1);
    obs::counter_add(std::string("serve.client.requests.") + op, 1);
    obs::histogram_observe("serve.client.request_ms", ms);
    obs::histogram_observe(std::string("serve.client.") + op + "_ms", ms);
    if (response.status != serve::Status::kOk) {
      obs::counter_add("serve.client.errors", 1);
      failures.fetch_add(1, std::memory_order_relaxed);
    }
    local.push_back(ms);
  };

  try {
    serve::Client client;
    client.connect(host, port);
    for (std::size_t i = 0; i < reps; ++i) {
      const std::string& id = ids[(thread_id * reps + i) % ids.size()];
      timed("lookup", [&] { return client.lookup(id); });
      timed("features", [&] { return client.features(id); });
      timed("nearest", [&] { return client.nearest_by_id(id, k); });
      timed("stats", [&] { return client.stats(); });
      timed("analyze", [&] { return client.analyze(analyze_text); });
    }
  } catch (const std::exception& e) {
    // Connect failure: every request this connection would have sent
    // counts as failed so the gate's exact-count rule trips.
    obs::counter_add("serve.client.protocol_errors", 1);
    failures.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "micro_serve: connection %zu: %s\n", thread_id,
                 e.what());
  }

  const std::lock_guard<std::mutex> lock(mutex);
  latencies_out.insert(latencies_out.end(), local.begin(), local.end());
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session("micro_serve", argc, argv);

  const std::size_t conns = flag_or(argc, argv, "conns", 8);
  const std::size_t reps = flag_or(argc, argv, "reps", 20);
  const auto k = static_cast<std::uint32_t>(flag_or(argc, argv, "k", 5));
  const std::string ext_host = bench::parse_flag_value(argc, argv, "host");
  const std::size_t ext_port = flag_or(argc, argv, "port", 0);

  // Zero-seed the counters the CI gate asserts exact values on, so a
  // run with no failures still reports them as explicit zeros.
  obs::counter_add("serve.client.requests", 0);
  obs::counter_add("serve.client.errors", 0);
  obs::counter_add("serve.client.protocol_errors", 0);

  // In-process server over a small deterministic world, unless the load
  // is aimed at an external daemon.
  serve::ServedDataset dataset;
  std::unique_ptr<serve::Server> server;
  std::string host = ext_host.empty() ? "127.0.0.1" : ext_host;
  std::uint16_t port = static_cast<std::uint16_t>(ext_port);
  if (ext_host.empty() || ext_port == 0) {
    corpus::WorldConfig config;
    config.repos = 8;
    config.nvd_security = bench::scaled(48, session.scale());
    config.wild_pool = bench::scaled(240, session.scale());
    config.seed = 907;
    corpus::World world = corpus::build_world(config);
    std::vector<corpus::CommitRecord> wild(
        world.wild.begin(),
        world.wild.begin() +
            static_cast<std::ptrdiff_t>(std::min<std::size_t>(
                bench::scaled(32, session.scale()), world.wild.size())));
    dataset = serve::ServedDataset::from_components(
        std::move(world.nvd_security), std::move(wild),
        bench::make_nonsecurity_set(bench::scaled(32, session.scale()), 911),
        {});
    serve::ServerOptions options;
    options.threads = conns;
    server = std::make_unique<serve::Server>(dataset, options);
    server->start();
    port = server->port();
  }

  // The request mix every connection cycles through.
  serve::Client setup;
  setup.connect(host, port);
  serve::Response ids_response = setup.list_ids();
  if (ids_response.status != serve::Status::kOk ||
      ids_response.list_ids.ids.empty()) {
    std::fprintf(stderr, "micro_serve: cannot list ids from %s:%u\n",
                 host.c_str(), port);
    return 1;
  }
  const std::vector<std::string> ids = std::move(ids_response.list_ids.ids);
  const serve::Response seed_patch = setup.lookup(ids.front());
  if (seed_patch.status != serve::Status::kOk) {
    std::fprintf(stderr, "micro_serve: seed lookup failed\n");
    return 1;
  }
  const std::string analyze_text = seed_patch.lookup.patch_text;
  setup.close();

  std::printf("micro_serve: %zu connections x %zu cycles x 5 ops against "
              "%s:%u (%zu ids)\n",
              conns, reps, host.c_str(), port, ids.size());

  std::vector<double> latencies;
  std::mutex latencies_mutex;
  std::atomic<std::uint64_t> failures{0};
  const auto load_start = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan span("serve.bench.load");
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (std::size_t t = 0; t < conns; ++t) {
      threads.emplace_back([&, t] {
        drive_connection(host, port, ids, analyze_text, t, reps, k, latencies,
                         latencies_mutex, failures);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  const double load_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - load_start)
                             .count();

  if (server) server->stop();

  std::sort(latencies.begin(), latencies.end());
  const double p50 = quantile(latencies, 0.50);
  const double p99 = quantile(latencies, 0.99);
  const double qps = load_ms > 0.0
                         ? static_cast<double>(latencies.size()) /
                               (load_ms / 1000.0)
                         : 0.0;
  obs::gauge_set("serve.bench.conns", static_cast<double>(conns));
  obs::gauge_set("serve.bench.qps", qps);
  obs::gauge_set("serve.bench.p50_ms", p50);
  obs::gauge_set("serve.bench.p99_ms", p99);
  session.add_items(latencies.size());

  std::printf("micro_serve: %zu requests in %.1f ms — %.0f req/s, "
              "p50 %.3f ms, p99 %.3f ms, %llu failures\n",
              latencies.size(), load_ms, qps, p50, p99,
              static_cast<unsigned long long>(
                  failures.load(std::memory_order_relaxed)));
  return failures.load(std::memory_order_relaxed) == 0 ? 0 : 1;
}
