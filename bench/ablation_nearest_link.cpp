// Ablation: the nearest link design choices (Section III-B).
//
//   1. Assignment strategy — Algorithm 1's greedy vs the exact
//      (Hungarian) assignment vs per-row argmin (KNN-style, reuse
//      allowed): candidate precision, distinct-candidate count, total
//      link distance, wall time.
//   2. Feature weighting — the paper's max-abs weights vs z-score vs no
//      weighting: candidate precision of the greedy search under each.
//   3. Search-range scaling — candidate precision as the pool grows
//      (the paper's "larger search range enables a higher ratio" claim,
//      measured densely rather than at two points).
//   4. Multi-round cost — full recompute vs the incremental linker.
//   5. Dense vs streaming engine — wall time and peak working set of
//      the materialized M x N matrix against the tiled top-k engine on
//      a 1000 x 100000 synthetic pool, with a bitwise equality check.
//   6. Two-phase index retrieval — the coarse and random-projection
//      shortlist backends against streaming-exact on a clustered
//      Gaussian-mixture pool (uniform data defeats every pruning
//      bound), with an nprobe sweep and a bitwise equality check on
//      each arm.
#include <cmath>
#include <cstdio>
#include <set>

#include "bench_common.h"
#include "core/distance.h"
#include "core/incremental.h"
#include "core/index.h"
#include "core/nearest_link.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace {

using namespace patchdb;

double precision_of(const corpus::World& world,
                    const std::vector<const corpus::CommitRecord*>& pool,
                    const std::vector<std::size_t>& candidates) {
  if (candidates.empty()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t idx : candidates) {
    hits += world.oracle.truth(pool[idx]->patch.commit).is_security;
  }
  return static_cast<double>(hits) / static_cast<double>(candidates.size());
}

}  // namespace

int main(int argc, char** argv) {
  bench::Session session(
      "Ablation — nearest link design choices", argc, argv);
  const double scale = session.scale();

  corpus::WorldConfig config;
  config.repos = 40;
  config.nvd_security = bench::scaled(250, scale);
  config.wild_pool = bench::scaled(12000, scale);
  config.wild_security_rate = 0.08;
  config.keep_nvd_snapshots = false;
  config.seed = 90909;
  corpus::World world = corpus::build_world(config);

  const auto seed_ptrs = bench::as_pointers(world.nvd_security);
  const auto pool_ptrs = bench::as_pointers(world.wild);
  const feature::FeatureMatrix sec = bench::features_of(seed_ptrs);
  const feature::FeatureMatrix pool = bench::features_of(pool_ptrs);

  // ---- 1. Assignment strategy.
  {
    const core::DistanceMatrix d = core::distance_matrix(sec, pool);

    util::Table table("Assignment strategy (same weighted distance matrix)");
    table.set_header({"Strategy", "Candidates", "Distinct", "Total distance",
                      "Precision", "Time (ms)"});

    auto report = [&](const char* name, auto&& solver) {
      core::LinkResult link;
      const double elapsed =
          bench::timed_ms("ablation.assignment", [&] { link = solver(d); });
      session.add_items(link.candidate.size());
      const std::set<std::size_t> distinct(link.candidate.begin(),
                                           link.candidate.end());
      table.add_row({name, std::to_string(link.candidate.size()),
                     std::to_string(distinct.size()),
                     util::format_double(link.total_distance, 1),
                     util::format_percent(
                         precision_of(world, pool_ptrs, link.candidate), 1),
                     util::format_double(elapsed, 1)});
    };
    report("greedy (Algorithm 1)", core::nearest_link_search);
    report("exact assignment", core::exact_assignment);
    report("per-row argmin (KNN-like)", core::row_argmin);
    std::printf("%s", table.render().c_str());
    std::printf("  the greedy total distance should sit within a few %% of the\n"
                "  exact optimum at a fraction of the cost; per-row argmin reuses\n"
                "  candidates, shrinking the distinct set (the paper's KNN contrast)\n\n");
  }

  // ---- 2. Feature weighting.
  {
    util::Table table("Feature weighting (greedy assignment)");
    table.set_header({"Weighting", "Precision"});

    auto run_with = [&](const char* name, std::vector<double> weights) {
      const core::DistanceMatrix d = core::distance_matrix(sec, pool, weights);
      const core::LinkResult link = core::nearest_link_search(d);
      table.add_row({name, util::format_percent(
                               precision_of(world, pool_ptrs, link.candidate), 1)});
    };

    run_with("max-abs (paper, Sec. III-B.2)", core::maxabs_weights(sec, pool));

    // z-score weights: 1/stddev per dimension over the union.
    {
      std::vector<double> mean(feature::kFeatureCount, 0.0);
      std::vector<double> var(feature::kFeatureCount, 0.0);
      const double n = static_cast<double>(sec.rows() + pool.rows());
      auto accumulate_mean = [&](const feature::FeatureMatrix& m) {
        for (std::size_t i = 0; i < m.rows(); ++i) {
          const std::span<const double> row = m[i];
          for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
            mean[j] += row[j];
          }
        }
      };
      accumulate_mean(sec);
      accumulate_mean(pool);
      for (double& m : mean) m /= n;
      auto accumulate_var = [&](const feature::FeatureMatrix& m) {
        for (std::size_t i = 0; i < m.rows(); ++i) {
          const std::span<const double> row = m[i];
          for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
            const double d = row[j] - mean[j];
            var[j] += d * d;
          }
        }
      };
      accumulate_var(sec);
      accumulate_var(pool);
      std::vector<double> weights(feature::kFeatureCount, 1.0);
      for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
        const double sd = std::sqrt(var[j] / n);
        if (sd > 0.0) weights[j] = 1.0 / sd;
      }
      run_with("z-score (1/stddev)", std::move(weights));
    }

    run_with("unweighted (raw Euclidean)",
             std::vector<double>(feature::kFeatureCount, 1.0));
    std::printf("%s", table.render().c_str());
    std::printf("  unweighted distances are dominated by large-scale dimensions\n"
                "  (character counts), which is why Sec. III-B.2 normalizes\n\n");
  }

  // ---- 3. Search-range scaling.
  {
    util::Table table("Search range vs candidate precision (greedy)");
    table.set_header({"Pool size", "Precision"});
    for (const double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
      const std::size_t n =
          static_cast<std::size_t>(fraction * static_cast<double>(pool.rows()));
      if (n < sec.rows()) continue;
      feature::FeatureMatrix sub(n);
      for (std::size_t i = 0; i < n; ++i) sub.set_row(i, pool[i]);
      const core::DistanceMatrix d = core::distance_matrix(sec, sub);
      const core::LinkResult link = core::nearest_link_search(d);
      table.add_row({util::human_count(n),
                     util::format_percent(
                         precision_of(world, pool_ptrs, link.candidate), 1)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("  paper: Set II/III (200K) reach 29-30%% vs Set I (100K) 16-25%% —\n"
                "  a larger range offers closer neighbors, so precision rises\n\n");
  }

  // ---- 4. Multi-round cost: full recompute vs the incremental linker.
  {
    const std::size_t rounds = 3;
    const std::vector<double> weights = core::maxabs_weights(sec, pool);

    // Batch: recompute the full matrix every round (pool additionally
    // shrinks each round in the real loop; keeping it fixed here isolates
    // the recompute cost).
    double batch_ms = 0.0;
    {
      feature::FeatureMatrix seeds = sec;
      for (std::size_t r = 0; r < rounds; ++r) {
        core::LinkResult link;
        batch_ms += bench::timed_ms("ablation.batch_round", [&] {
          const core::DistanceMatrix d =
              core::distance_matrix(seeds, pool, weights);
          link = core::nearest_link_search(d);
        });
        // Grow the seed set by the round's security finds.
        for (std::size_t idx : link.candidate) {
          if (world.oracle.truth(pool_ptrs[idx]->patch.commit).is_security) {
            seeds.push_back(pool[idx]);
          }
        }
      }
    }

    // Incremental: cached neighborhoods, only new seeds cost row scans.
    double incremental_ms = 0.0;
    std::size_t scans = 0;
    {
      core::IncrementalLinker linker(/*k=*/24);
      linker.set_pool(pool, weights);
      linker.add_seeds(sec);
      for (std::size_t r = 0; r < rounds; ++r) {
        core::LinkResult link;
        incremental_ms += bench::timed_ms("ablation.incremental_round",
                                          [&] { link = linker.link(); });
        feature::FeatureMatrix found(0);
        for (std::size_t idx : link.candidate) {
          if (world.oracle.truth(pool_ptrs[idx]->patch.commit).is_security) {
            found.push_back(pool[idx]);
          }
        }
        linker.remove_from_pool(link.candidate);
        incremental_ms += bench::timed_ms("ablation.incremental_add",
                                          [&] { linker.add_seeds(found); });
      }
      scans = linker.row_scans();
    }

    util::Table table("Multi-round linking cost (3 rounds, growing seed set)");
    table.set_header({"Strategy", "Total time (ms)", "Full row scans"});
    table.add_row({"full recompute per round", util::format_double(batch_ms, 1),
                   "M x rounds (implicit)"});
    table.add_row({"incremental linker", util::format_double(incremental_ms, 1),
                   std::to_string(scans)});
    std::printf("%s", table.render().c_str());
    std::printf("  the incremental linker scans each seed's row once and pays\n"
                "  only for newly-labeled seeds afterwards\n");
  }

  // ---- 5. Dense vs streaming engine (acceptance scale).
  {
    const std::size_t m = bench::scaled(1000, scale);
    const std::size_t n = bench::scaled(100000, scale);
    auto synthetic = [](std::size_t rows, std::uint64_t seed) {
      util::Rng rng(seed);
      feature::FeatureMatrix out(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
          out[i][j] = rng.uniform(-10, 10);
        }
      }
      return out;
    };
    const feature::FeatureMatrix big_sec = synthetic(m, 7001);
    const feature::FeatureMatrix big_pool = synthetic(n, 7002);
    const std::vector<double> weights = core::maxabs_weights(big_sec, big_pool);

    core::LinkResult dense_link;
    const double dense_ms = bench::timed_ms("ablation.dense_engine", [&] {
      const core::DistanceMatrix d =
          core::distance_matrix(big_sec, big_pool, weights);
      dense_link = core::nearest_link_search(d);
    });
    const double dense_bytes =
        static_cast<double>(m) * static_cast<double>(n) * sizeof(float);

    core::StreamingLinkStats stats;
    core::LinkResult stream_link;
    const double stream_ms = bench::timed_ms("ablation.streaming_engine", [&] {
      stream_link = core::streaming_nearest_link(big_sec, big_pool, weights,
                                                 core::StreamingLinkConfig{},
                                                 &stats);
    });
    session.add_items(m * 2);

    const bool identical =
        dense_link.candidate == stream_link.candidate &&
        dense_link.total_distance == stream_link.total_distance;
    const double speedup = stream_ms > 0.0 ? dense_ms / stream_ms : 0.0;
    const double mem_ratio =
        stats.working_set_bytes > 0
            ? dense_bytes / static_cast<double>(stats.working_set_bytes)
            : 0.0;

    util::Table table("Dense vs streaming nearest link (" +
                      util::human_count(m) + " x " + util::human_count(n) + ")");
    table.set_header({"Engine", "Time (ms)", "Working set (MB)", "Identical"});
    table.add_row({"dense matrix", util::format_double(dense_ms, 1),
                   util::format_double(dense_bytes / (1024.0 * 1024.0), 1), "—"});
    table.add_row({"streaming tiled", util::format_double(stream_ms, 1),
                   util::format_double(
                       static_cast<double>(stats.working_set_bytes) /
                           (1024.0 * 1024.0),
                       2),
                   identical ? "yes (bitwise)" : "NO — MISMATCH"});
    std::printf("%s", table.render().c_str());
    std::printf("  speedup %.2fx, working-set reduction %.0fx; topk hits %llu,\n"
                "  fallback rescans %llu, pruned %llu of %llu cells\n",
                speedup, mem_ratio,
                static_cast<unsigned long long>(stats.topk_hits),
                static_cast<unsigned long long>(stats.fallback_rescans),
                static_cast<unsigned long long>(stats.pruned_cells),
                static_cast<unsigned long long>(stats.pruned_cells +
                                                stats.exact_cells));

    PATCHDB_GAUGE_SET("nearest_link.bench.dense_ms", dense_ms);
    PATCHDB_GAUGE_SET("nearest_link.bench.streaming_ms", stream_ms);
    PATCHDB_GAUGE_SET("nearest_link.bench.speedup", speedup);
    PATCHDB_GAUGE_SET("nearest_link.bench.dense_bytes", dense_bytes);
    PATCHDB_GAUGE_SET("nearest_link.bench.streaming_bytes",
                      static_cast<double>(stats.working_set_bytes));
    PATCHDB_GAUGE_SET("nearest_link.bench.memory_reduction", mem_ratio);
    PATCHDB_GAUGE_SET("nearest_link.bench.identical", identical ? 1.0 : 0.0);
    if (!identical) {
      std::printf("  ERROR: streaming result diverged from dense\n");
      return 1;
    }
  }

  // ---- 6. Two-phase index retrieval (acceptance scale, clustered data).
  //
  // The index backends only pay off when the pool has structure — on
  // uniform synthetic data every pruning bound collapses (the committed
  // baseline records pruned_cells: 0), so this arm draws columns from a
  // Gaussian mixture where a coarse partition genuinely separates
  // distances. Every arm must stay bitwise identical to streaming-exact;
  // the interesting axis is wall time vs shortlist coverage as nprobe
  // shrinks.
  {
    const std::size_t m = bench::scaled(1000, scale);
    const std::size_t n = bench::scaled(100000, scale);
    // Queries and pool share the mixture centers — the workload the
    // two-phase engine targets is security seeds sitting near wild
    // variants, not seeds disjoint from every pool cluster (the
    // pending proof degenerates there and every row re-scans).
    std::vector<std::vector<double>> centers(
        16, std::vector<double>(feature::kFeatureCount));
    {
      util::Rng rng(8100);
      for (auto& center : centers) {
        for (double& v : center) v = rng.uniform(-10, 10);
      }
    }
    auto clustered = [&centers](std::size_t rows, std::uint64_t seed) {
      util::Rng rng(seed);
      feature::FeatureMatrix out(rows);
      for (std::size_t i = 0; i < rows; ++i) {
        const auto& center = centers[i % centers.size()];
        for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
          out[i][j] = center[j] + rng.uniform(-1, 1) * 0.5;
        }
      }
      return out;
    };
    const feature::FeatureMatrix big_sec = clustered(m, 8101);
    const feature::FeatureMatrix big_pool = clustered(n, 8102);
    const std::vector<double> weights = core::maxabs_weights(big_sec, big_pool);

    core::StreamingLinkStats exact_stats;
    core::LinkResult exact_link;
    const double exact_ms = bench::timed_ms("ablation.index_exact", [&] {
      exact_link = core::streaming_nearest_link(
          big_sec, big_pool, weights, core::StreamingLinkConfig{},
          &exact_stats);
    });
    session.add_items(m);

    util::Table table("Two-phase index vs streaming-exact (" +
                      util::human_count(m) + " x " + util::human_count(n) +
                      ", clustered pool)");
    table.set_header({"Backend", "nprobe", "Time (ms)", "Speedup",
                      "Shortlist %", "Fallback rescans", "Identical"});
    table.add_row({"exact (phase 1 only)", "—",
                   util::format_double(exact_ms, 1), "1.00", "100.0", "0",
                   "—"});

    bool all_identical = true;
    double default_ms = exact_ms;
    double default_fallbacks = 0.0;
    double default_probes = 0.0;
    for (const core::IndexKind kind :
         {core::IndexKind::kCoarse, core::IndexKind::kRproj}) {
      for (const std::size_t nprobe : {2ul, 4ul, 8ul}) {
        core::StreamingLinkConfig cfg;
        cfg.index.kind = kind;
        cfg.index.nprobe = nprobe;
        core::StreamingLinkStats stats;
        core::LinkResult link;
        const double ms = bench::timed_ms("ablation.index_arm", [&] {
          link = core::streaming_nearest_link(big_sec, big_pool, weights, cfg,
                                              &stats);
        });
        const bool identical =
            exact_link.candidate == link.candidate &&
            exact_link.total_distance == link.total_distance;
        all_identical = all_identical && identical;
        const double total_cells = static_cast<double>(m) *
                                   static_cast<double>(n);
        const double shortlist_pct =
            total_cells > 0.0
                ? 100.0 * static_cast<double>(stats.index_shortlist_cols) /
                      total_cells
                : 0.0;
        table.add_row(
            {std::string(core::index_kind_name(kind)), std::to_string(nprobe),
             util::format_double(ms, 1),
             util::format_double(ms > 0.0 ? exact_ms / ms : 0.0, 2),
             util::format_double(shortlist_pct, 1),
             std::to_string(stats.index_fallback_rescans),
             identical ? "yes (bitwise)" : "NO — MISMATCH"});
        if (kind == core::IndexKind::kCoarse && nprobe == 8) {
          default_ms = ms;
          default_fallbacks =
              static_cast<double>(stats.index_fallback_rescans);
          default_probes = static_cast<double>(stats.index_probes);
        }
        session.add_items(m);
      }
    }
    std::printf("%s", table.render().c_str());
    std::printf("  every arm re-verifies its shortlist through the exact blocked\n"
                "  kernel, so the LinkResult is the dense answer regardless of\n"
                "  nprobe — only wall time and rescan count move\n");

    PATCHDB_GAUGE_SET("nearest_link.bench.index_exact_ms", exact_ms);
    PATCHDB_GAUGE_SET("nearest_link.bench.index_ms", default_ms);
    PATCHDB_GAUGE_SET("nearest_link.bench.index_speedup",
                      default_ms > 0.0 ? exact_ms / default_ms : 0.0);
    PATCHDB_GAUGE_SET("nearest_link.bench.index_identical",
                      all_identical ? 1.0 : 0.0);
    PATCHDB_GAUGE_SET("nearest_link.bench.index_fallbacks", default_fallbacks);
    PATCHDB_GAUGE_SET("nearest_link.bench.index_probes", default_probes);
    if (!all_identical) {
      std::printf("  ERROR: an index arm diverged from streaming-exact\n");
      return 1;
    }
  }
  return 0;
}
