// Extension experiment: vulnerable code clone detection (Sec. V-A.1).
//
// "The verified security patches can be used to generate signatures for
// detecting more vulnerabilities ... more security patch instances
// enable more vulnerability signatures for matching and thus enhances
// the detection capability."
//
// Protocol: build signatures from the pre-images of a PatchDB security
// set, then scan a target codebase seeded with (a) renamed vulnerable
// clones, (b) already-patched versions of the same functions, and (c)
// unrelated files. Report detection recall on (a) and false alarms on
// (b)+(c), as a function of how many patches feed the signature
// database — the paper's "more patches, more capability" claim.
#include <cstdio>

#include "bench_common.h"
#include "core/clone.h"
#include "corpus/world.h"
#include "util/rng.h"

namespace {
using namespace patchdb;
}

int main(int argc, char** argv) {
  bench::Session session(
      "Extension — vulnerable clone detection (Sec. V-A.1)", argc, argv);
  const double scale = session.scale();

  // Security patches with snapshots: the BEFORE version is the
  // vulnerable code we will re-plant (renamed) in the target codebase.
  corpus::WorldConfig config;
  config.repos = 30;
  config.nvd_security = bench::scaled(600, scale);
  config.wild_pool = 10;
  config.keep_nvd_snapshots = true;
  config.seed = 717171;
  const corpus::World world = corpus::build_world(config);

  // Target codebase: for every 4th patch plant its vulnerable version
  // (a downstream copy that never took the fix), for every 4th+1 plant
  // the patched version; fill with unrelated files. Rename-invariance is
  // covered by the unit tests; here the planted copies are vendored
  // verbatim, the most common downstream situation.
  util::Rng rng(727272);
  struct TargetFile {
    std::vector<std::string> lines;
    bool vulnerable = false;    // contains a planted vulnerable clone
    std::string origin_commit;  // the patch this file derives from ("" = unrelated)
  };
  std::vector<TargetFile> codebase;
  for (std::size_t i = 0; i < world.nvd_security.size(); ++i) {
    const corpus::CommitRecord& r = world.nvd_security[i];
    if (r.snapshots.empty()) continue;
    if (i % 4 == 0) {
      codebase.push_back({r.snapshots.front().before, true, r.patch.commit});
    } else if (i % 4 == 1) {
      codebase.push_back({r.snapshots.front().after, false, r.patch.commit});
    }
  }
  const std::size_t unrelated = codebase.size();
  for (std::size_t i = 0; i < unrelated; ++i) {
    const corpus::FunctionContext ctx = corpus::draw_context(rng);
    codebase.push_back(
        {corpus::make_function(ctx, corpus::filler_statements(rng, ctx, 8)),
         false,
         ""});
  }

  session.add_items(codebase.size());
  std::size_t total_vulnerable = 0;
  for (const TargetFile& f : codebase) total_vulnerable += f.vulnerable;
  std::printf("target codebase: %zu files (%zu with planted vulnerable clones)\n\n",
              codebase.size(), total_vulnerable);

  util::Table table("Detection vs signature-database size");
  table.set_header({"Patches used", "Signatures", "Clones found", "Recall",
                    "Abstraction-blind", "Cross false alarms"});

  for (const double fraction : {0.25, 0.5, 1.0}) {
    // min_lines = 4: short pre-images (a bare guard + call) are generic
    // code shapes that alias across unrelated files; discriminative
    // signatures need a wider window, the same precision/recall knob
    // VUDDY-style matchers expose.
    core::CloneScanner scanner(/*min_lines=*/4);
    const std::size_t n_patches = static_cast<std::size_t>(
        fraction * static_cast<double>(world.nvd_security.size()));
    for (std::size_t i = 0; i < n_patches; ++i) {
      scanner.add_patch(world.nvd_security[i].patch);
    }

    std::size_t found = 0;
    std::size_t blind_files = 0;   // patched file still matches its own
                                   // signature: the fix is invisible to the
                                   // literal-abstracted window (e.g. a
                                   // buffer-size-only change)
    std::size_t cross_alarm_files = 0;
    for (const TargetFile& file : codebase) {
      const auto matches = scanner.scan(file.lines);
      bool hit_origin = false;
      bool hit_other = false;
      for (const core::CloneMatch& m : matches) {
        (m.origin == file.origin_commit ? hit_origin : hit_other) = true;
      }
      if (file.vulnerable) {
        found += hit_origin;
      } else {
        blind_files += hit_origin;
        cross_alarm_files += (!hit_origin && hit_other);
      }
    }
    table.add_row(
        {std::to_string(n_patches), std::to_string(scanner.signature_count()),
         std::to_string(found) + "/" + std::to_string(total_vulnerable),
         util::format_percent(total_vulnerable == 0
                                  ? 0.0
                                  : static_cast<double>(found) /
                                        static_cast<double>(total_vulnerable), 0),
         std::to_string(blind_files), std::to_string(cross_alarm_files)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  notes: recall grows with the signature database (the paper's\n"
              "  'more patches, more capability'); it tops out below 100%%\n"
              "  because pure-addition patches (new checks) leave no removable\n"
              "  pre-image. 'Abstraction-blind' counts patched files that STILL\n"
              "  match their own signature — fixes that only change a literal\n"
              "  (e.g. a buffer size) vanish under token abstraction, the known\n"
              "  VUDDY-style blind spot. Cross false alarms are files matching\n"
              "  someone else's signature.\n");
  return 0;
}
