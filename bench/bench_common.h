// Shared helpers for the experiment benches: scaled world construction,
// feature dataset assembly, and paper-vs-measured table plumbing.
//
// Every bench accepts an optional scale multiplier as argv[1] (default
// 1.0). The default scale is roughly 1:5 of the paper's (4076 NVD
// patches -> 800; 100K/200K pools -> 20K/40K) so the full suite runs on
// one machine in minutes; pass 5 to run at paper scale.
#pragma once

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/repo.h"
#include "corpus/world.h"
#include "feature/features.h"
#include "ml/data.h"
#include "nn/encode.h"
#include "nn/gru.h"
#include "nn/vocab.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/progress.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/table.h"

namespace patchdb::bench {

inline double parse_scale(int argc, char** argv) {
  // google-benchmark style flags (e.g. --benchmark_filter) are ignored.
  if (argc > 1 && argv[1][0] != '-') {
    // Full-consumption parse: "5x" or "1.5GB" is a typo'd run that
    // would otherwise silently bench the wrong scale — fail loudly.
    // isfinite + ERANGE reject "inf" and overflowing exponents like
    // "1e999" (strtod returns HUGE_VAL without an error flag in the
    // return value alone), which would otherwise ask for an infinite
    // world size.
    char* end = nullptr;
    errno = 0;
    const double s = std::strtod(argv[1], &end);
    if (end == argv[1] || *end != '\0' || errno == ERANGE ||
        !std::isfinite(s) || !(s > 0.0)) {
      std::fprintf(stderr,
                   "bench: bad scale \"%s\" (want a positive number, e.g. 1 "
                   "or 0.25 or 5)\n",
                   argv[1]);
      std::exit(2);
    }
    return s;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t base, double scale) {
  const auto v = static_cast<std::size_t>(static_cast<double>(base) * scale);
  return v == 0 ? 1 : v;
}

/// Pointers into a world's record vectors (the shape AugmentationLoop
/// and the baselines consume).
inline std::vector<const corpus::CommitRecord*> as_pointers(
    const std::vector<corpus::CommitRecord>& records) {
  std::vector<const corpus::CommitRecord*> out;
  out.reserve(records.size());
  for (const corpus::CommitRecord& r : records) out.push_back(&r);
  return out;
}

/// Table I features of a record set as a FeatureMatrix (optionally in
/// the extended semantic space).
inline feature::FeatureMatrix features_of(
    const std::vector<const corpus::CommitRecord*>& records,
    feature::FeatureSpace space = feature::FeatureSpace::kSyntactic) {
  std::vector<diff::Patch> patches;
  patches.reserve(records.size());
  for (const corpus::CommitRecord* r : records) patches.push_back(r->patch);
  return feature::extract_all(patches, space);
}

/// Labeled feature dataset (label from ground truth).
inline ml::Dataset feature_dataset(
    const std::vector<const corpus::CommitRecord*>& records,
    feature::FeatureSpace space = feature::FeatureSpace::kSyntactic) {
  ml::Dataset data;
  for (const corpus::CommitRecord* r : records) {
    std::vector<double> row;
    if (space == feature::FeatureSpace::kSyntactic) {
      const feature::FeatureVector v = feature::extract(r->patch);
      row.assign(v.begin(), v.end());
    } else if (space == feature::FeatureSpace::kSemantic) {
      const feature::ExtendedFeatureVector v = feature::extract_extended(r->patch);
      row.assign(v.begin(), v.end());
    } else {
      const feature::InterprocFeatureVector v = feature::extract_interproc(r->patch);
      row.assign(v.begin(), v.end());
    }
    data.push_back(std::move(row), r->truth.is_security ? 1 : 0);
  }
  return data;
}

/// Fabricate `n` labeled non-security commits (the "cleaned non-security
/// patches previously verified by experts" training sets of Tables III,
/// IV and VI).
/// Fabricate `n` labeled non-security commits (the "cleaned non-security
/// patches previously verified by experts" training sets of Tables III,
/// IV and VI). Cleaned sets skew toward unambiguous commits — ambiguous
/// hardening commits are underrepresented relative to the raw wild
/// stream (this mismatch between training negatives and the wild's
/// negative modes is what the paper blames for the pseudo-labeling
/// baseline's collapse). `defensive_share` controls how many ambiguous
/// security-shaped commits remain after cleaning: 0 for the Table III
/// training set; a small share for the classification datasets of
/// Tables IV/VI, whose verified negatives do legitimately include
/// hardening commits the experts recognized as non-security from
/// context.
inline std::vector<corpus::CommitRecord> make_nonsecurity_set(
    std::size_t n, std::uint64_t seed, bool keep_snapshots = false,
    double defensive_share = 0.0) {
  util::Rng rng(seed);
  corpus::CommitOptions opt;
  opt.keep_snapshots = keep_snapshots;
  std::vector<corpus::CommitRecord> out;
  out.reserve(n);
  const double rest = 1.0 - defensive_share;
  const double kWeights[] = {
      0.24 * rest,  // kNewFeature
      0.14 * rest,  // kRefactor
      0.15 * rest,  // kPerfFix
      0.23 * rest,  // kLogicBugFix
      0.14 * rest,  // kStyle
      0.10 * rest,  // kDocs
      defensive_share,
  };
  const auto kinds = corpus::nonsecurity_types();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(corpus::make_commit(
        rng, "bench_repo", kinds[rng.weighted(kWeights)], opt));
  }
  return out;
}

/// Token sequences for the GRU from records (+ optional synthetic set).
struct TokenTask {
  nn::Vocabulary vocab;
  nn::SequenceDataset train;
  nn::SequenceDataset test;
};

inline std::vector<std::string> tokens_of(const diff::Patch& patch) {
  return nn::patch_tokens(patch);
}

inline void print_header(const std::string& title, double scale) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("scale multiplier: %.2f (pass a number as argv[1] to change; 5 = paper scale)\n",
              scale);
  std::printf("================================================================\n\n");
}

/// Value of `--NAME FILE` / `--NAME=FILE` at any argv position. Empty
/// when absent.
inline std::string parse_flag_value(int argc, char** argv,
                                    std::string_view name) {
  const std::string eq_form = "--" + std::string(name) + "=";
  const std::string flag_form = "--" + std::string(name);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == flag_form && i + 1 < argc) return argv[i + 1];
    if (arg.rfind(eq_form, 0) == 0) {
      return std::string(arg.substr(eq_form.size()));
    }
  }
  return {};
}

inline bool parse_flag_present(int argc, char** argv, std::string_view name) {
  const std::string flag_form = "--" + std::string(name);
  for (int i = 1; i < argc; ++i) {
    if (flag_form == argv[i]) return true;
  }
  return false;
}

inline std::string parse_metrics_out(int argc, char** argv) {
  return parse_flag_value(argc, argv, "metrics-out");
}

/// Strict unsigned parse for small numeric flag values: full
/// consumption, no sign, overflow rejected — exits 2 with the offending
/// text, like parse_scale. (Raw strtoull would silently wrap overflow
/// and accept "50x" as 50.)
inline std::uint64_t parse_uint_flag(std::string_view flag,
                                     const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || text[0] == '-' || end == text.c_str() || *end != '\0' ||
      errno == ERANGE) {
    std::fprintf(stderr, "bench: bad --%.*s value \"%s\" (want a non-negative "
                 "integer)\n",
                 static_cast<int>(flag.size()), flag.data(), text.c_str());
    std::exit(2);
  }
  return v;
}

/// Per-bench observability session. Construct it first thing in main():
/// it parses the scale plus the shared obs flags, prints the bench
/// header, and installs an obs::ObsSession so every instrumented
/// pipeline stage the bench touches records into one registry. Shared
/// flags (any argv position, `--flag V` or `--flag=V`):
///
///   --metrics-out FILE   write the RunReport JSON
///   --trace-out FILE     write a Chrome trace (load in Perfetto)
///   --sample-ms N        run a ResourceSampler at N ms (default 50
///                        whenever --trace-out or --metrics-out is on)
///   --progress[-ms N]    heartbeat lines from instrumented loops
///
/// Call add_items() with the bench's natural unit of work; finish()
/// (implicit in the destructor) prints the one-line summary — items,
/// wall ms, items/s — straight from the registry and writes the
/// requested artifacts.
class Session {
 public:
  Session(const std::string& title, int argc, char** argv)
      : scale_(parse_scale(argc, argv)),
        metrics_out_(parse_metrics_out(argc, argv)),
        trace_out_(parse_flag_value(argc, argv, "trace-out")),
        obs_(title) {
    print_header(title, scale_);
    if (parse_flag_present(argc, argv, "progress")) {
      obs::set_progress_interval_ms(1000);
    }
    const std::string progress_ms = parse_flag_value(argc, argv, "progress-ms");
    if (!progress_ms.empty()) {
      obs::set_progress_interval_ms(parse_uint_flag("progress-ms", progress_ms));
    }
    if (obs_.installed() && (!trace_out_.empty() || !metrics_out_.empty())) {
      obs::ResourceSampler::Options opt;
      const std::string sample_ms = parse_flag_value(argc, argv, "sample-ms");
      opt.interval = std::chrono::milliseconds(static_cast<long long>(
          sample_ms.empty() ? 50 : parse_uint_flag("sample-ms", sample_ms)));
      sampler_ = std::make_unique<obs::ResourceSampler>(opt);
      obs_.attach_sampler(sampler_.get());
      sampler_->start();
    }
  }
  ~Session() { finish(); }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  double scale() const noexcept { return scale_; }

  /// Count `n` units of bench work (counter `bench.items`).
  void add_items(std::size_t n) { obs::counter_add("bench.items", n); }

  obs::RunReport report() const { return obs_.report(); }

  void finish() {
    if (finished_) return;
    finished_ = true;
    if (sampler_) sampler_->stop();
    if (obs_.installed()) {
      // Record the pool's actual shape into the artifact: the worker
      // count as a gauge and each worker's cumulative busy time as a
      // histogram observation. A single-threaded pathology (the
      // pool.threads: 1 bench runs this replaces) then shows up as
      // workers_active = 1 with one hot histogram lane, instead of
      // silently producing a serial measurement.
      const std::vector<double> busy = util::default_pool().worker_busy_ms();
      std::size_t active = 0;
      for (const double ms : busy) {
        obs::histogram_observe("pool.worker_busy_ms", ms);
        if (ms > 0.0) ++active;
      }
      obs::gauge_set("pool.threads",
                     static_cast<double>(util::default_pool().size()));
      obs::gauge_set("pool.workers_active", static_cast<double>(active));
    }
    const obs::RunReport report = obs_.report();
    const std::uint64_t items = report.metrics.counter("bench.items");
    const double rate =
        report.wall_ms > 0.0
            ? static_cast<double>(items) / (report.wall_ms / 1000.0)
            : 0.0;
    std::printf("[bench] %s: %llu items in %.1f ms (%.0f items/s)\n",
                obs_.name().c_str(), static_cast<unsigned long long>(items),
                report.wall_ms, rate);
    if (!metrics_out_.empty()) {
      obs::write_report_file(report, metrics_out_);
      std::printf("[bench] metrics written to %s\n", metrics_out_.c_str());
    }
    if (!trace_out_.empty()) {
      obs::write_trace_file(report, trace_out_);
      std::printf("[bench] trace written to %s (load in Perfetto)\n",
                  trace_out_.c_str());
    }
  }

 private:
  double scale_;
  std::string metrics_out_;
  std::string trace_out_;
  obs::ObsSession obs_;
  std::unique_ptr<obs::ResourceSampler> sampler_;
  bool finished_ = false;
};

/// Run `fn` under a trace span and return its wall time in milliseconds
/// (replacement for the per-bench hand-rolled Clock/ms_since timers).
template <typename F>
inline double timed_ms(const char* span_name, F&& fn) {
  const auto start = std::chrono::steady_clock::now();
  {
    obs::ScopedSpan span(span_name);
    fn();
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace patchdb::bench
