// Reproduces Fig. 5: "Eight different variants of IF statements" — the
// control-flow templates the oversampling method injects — and reports
// variant usage over a synthesized dataset (the Section III-C pipeline).
#include <array>
#include <cstdio>

#include "bench_common.h"
#include "synth/synthesize.h"
#include "synth/variants.h"

namespace {
using namespace patchdb;
}

int main(int argc, char** argv) {
  bench::Session session(
      "Fig. 5 — the eight IF-statement variants (RQ3)", argc, argv);
  const double scale = session.scale();

  // Render every template against the running example `if (len > max)`.
  const std::string condition = "len > max";
  std::printf("original statement:\n    if (%s) { handle(); }\n\n",
              condition.c_str());
  for (synth::IfVariant v : synth::all_variants()) {
    const synth::VariantRewrite r = synth::rewrite_if(v, condition, "    ");
    std::printf("variant %d (%s):\n", static_cast<int>(v),
                synth::variant_name(v));
    for (const std::string& line : r.setup) std::printf("%s\n", line.c_str());
    std::printf("%s { handle(); }\n\n", r.new_if_head.c_str());
  }

  // Apply the full synthesizer to a batch of natural patches and report
  // how many variants of each kind materialize.
  corpus::WorldConfig config;
  config.repos = 20;
  config.nvd_security = bench::scaled(400, scale);
  config.wild_pool = 4;
  config.keep_nvd_snapshots = true;
  config.seed = 50505;
  const corpus::World world = corpus::build_world(config);

  synth::SynthesisOptions opt;
  opt.max_per_patch = 0;  // enumerate everything
  const auto synthetic = synth::synthesize_all(world.nvd_security, opt, 3);
  session.add_items(synthetic.size());

  std::array<std::size_t, synth::kVariantCount> per_variant{};
  std::size_t before_side = 0;
  for (const synth::SyntheticPatch& s : synthetic) {
    ++per_variant[static_cast<std::size_t>(static_cast<int>(s.variant)) - 1];
    before_side += !s.modified_after;
  }

  util::Table table("Synthesized variants over the NVD-based sample");
  table.set_header({"Variant", "Name", "Synthesized patches"});
  for (std::size_t i = 0; i < synth::kVariantCount; ++i) {
    table.add_row({std::to_string(i + 1),
                   synth::variant_name(synth::all_variants()[i]),
                   std::to_string(per_variant[i])});
  }
  std::printf("%s", table.render().c_str());
  std::printf("  natural patches: %zu -> synthetic patches: %zu "
              "(%.1fx; paper: 4076 -> 16,836 security, ~4.1x)\n",
              world.nvd_security.size(), synthetic.size(),
              static_cast<double>(synthetic.size()) /
                  static_cast<double>(world.nvd_security.size()));
  std::printf("  modified BEFORE version: %zu, modified AFTER version: %zu\n",
              before_side, synthetic.size() - before_side);

  // With the default per-patch cap the multiple matches the paper's.
  synth::SynthesisOptions capped;
  capped.max_per_patch = 4;
  const auto capped_set = synth::synthesize_all(world.nvd_security, capped, 3);
  std::printf("  with the default cap of 4 variants per patch: %zu synthetic "
              "(%.1fx, paper ~4.1x)\n",
              capped_set.size(),
              static_cast<double>(capped_set.size()) /
                  static_cast<double>(world.nvd_security.size()));
  return 0;
}
