// Source-level patch oversampling (Section III-C): locate the `if`
// statements a patch touches, apply one of the Fig. 5 control-flow
// variants to the BEFORE or AFTER file version, and re-diff to obtain a
// synthetic patch. Modifying AFTER adds the extra change on top of the
// original fix; modifying BEFORE is equivalent to merging the inverse
// modification into the patch — re-diffing the reconstructed versions
// realizes both cases exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "corpus/repo.h"
#include "diff/patch.h"
#include "synth/variants.h"
#include "util/rng.h"

namespace patchdb::synth {

struct SyntheticPatch {
  diff::Patch patch;
  std::string origin_commit;  // the natural patch this was derived from
  IfVariant variant = IfVariant::kOrZero;
  bool modified_after = true;  // false = BEFORE version was modified
  corpus::GroundTruth truth;   // inherited from the origin
};

struct SynthesisOptions {
  /// Cap on synthetic patches derived from one natural patch (the paper
  /// produces roughly 4x the natural count; 0 = no cap).
  std::size_t max_per_patch = 4;
  /// Consider variants on the BEFORE version too (default yes — this is
  /// the paper's "inverse modification" direction).
  bool modify_before = true;
  bool modify_after = true;
};

/// Synthesize variants of one natural patch. Requires the record to
/// carry file snapshots; records without snapshots yield an empty set.
std::vector<SyntheticPatch> synthesize(const corpus::CommitRecord& record,
                                       const SynthesisOptions& options,
                                       std::uint64_t seed);

/// Synthesize over a whole set of records (parallel).
std::vector<SyntheticPatch> synthesize_all(
    std::span<const corpus::CommitRecord> records,
    const SynthesisOptions& options, std::uint64_t seed);

}  // namespace patchdb::synth
