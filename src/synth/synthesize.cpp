#include "synth/synthesize.h"

#include <algorithm>
#include <mutex>

#include "diff/myers.h"
#include "diff/render.h"
#include "lang/parser.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/hash.h"
#include "util/thread_pool.h"

namespace patchdb::synth {

namespace {

/// 1-based changed-line ranges of one version of a file, derived from the
/// hunks: old-side lines with removals (BEFORE) or new-side lines with
/// additions (AFTER).
std::vector<std::pair<std::size_t, std::size_t>> changed_ranges(
    const diff::FileDiff& fd, bool after_version) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (const diff::Hunk& hunk : fd.hunks) {
    if (after_version) {
      if (hunk.new_count == 0) continue;
      ranges.emplace_back(hunk.new_start, hunk.new_start + hunk.new_count - 1);
    } else {
      if (hunk.old_count == 0) continue;
      ranges.emplace_back(hunk.old_start, hunk.old_start + hunk.old_count - 1);
    }
  }
  return ranges;
}

struct Site {
  const corpus::FileSnapshot* snapshot = nullptr;
  const diff::FileDiff* fd = nullptr;
  bool after_version = true;
  std::size_t if_line = 0;
  std::string condition;
};

}  // namespace

std::vector<SyntheticPatch> synthesize(const corpus::CommitRecord& record,
                                       const SynthesisOptions& options,
                                       std::uint64_t seed) {
  std::vector<SyntheticPatch> out;
  if (record.snapshots.empty()) return out;

  // ---- Step 1+2 (paper): parse both file versions, collect the `if`
  // statements whose extent intersects the patch's changed lines.
  std::vector<Site> sites;
  for (const corpus::FileSnapshot& snapshot : record.snapshots) {
    const diff::FileDiff* fd = nullptr;
    for (const diff::FileDiff& candidate : record.patch.files) {
      const std::string& path =
          candidate.new_path.empty() ? candidate.old_path : candidate.new_path;
      if (path == snapshot.path) {
        fd = &candidate;
        break;
      }
    }
    if (fd == nullptr) continue;

    for (const bool after_version : {false, true}) {
      if (after_version && !options.modify_after) continue;
      if (!after_version && !options.modify_before) continue;
      const std::vector<std::string>& lines =
          after_version ? snapshot.after : snapshot.before;
      const lang::ParsedFile parsed = lang::parse_file(lines);
      const auto ranges = changed_ranges(*fd, after_version);
      for (const auto& [first, last] : ranges) {
        for (const lang::IfStatementInfo* info :
             lang::ifs_touching(parsed, first, last)) {
          // Only single-line conditions are rewriteable (Fig. 5 templates
          // substitute the whole condition in place).
          if (info->cond_begin_line != info->if_line ||
              info->cond_end_line != info->if_line || info->condition.empty()) {
            continue;
          }
          sites.push_back(Site{&snapshot, fd, after_version, info->if_line,
                               info->condition});
        }
      }
    }
  }
  if (sites.empty()) return out;

  // Dedupe sites that multiple overlapping ranges discovered twice.
  std::sort(sites.begin(), sites.end(), [](const Site& a, const Site& b) {
    if (a.snapshot != b.snapshot) return a.snapshot < b.snapshot;
    if (a.after_version != b.after_version) return a.after_version < b.after_version;
    return a.if_line < b.if_line;
  });
  sites.erase(std::unique(sites.begin(), sites.end(),
                          [](const Site& a, const Site& b) {
                            return a.snapshot == b.snapshot &&
                                   a.after_version == b.after_version &&
                                   a.if_line == b.if_line;
                          }),
              sites.end());

  // ---- Step 3: enumerate (site, variant) pairs, sample down to the cap,
  // apply each rewrite and re-diff.
  struct Job {
    std::size_t site;
    IfVariant variant;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < sites.size(); ++s) {
    for (IfVariant v : all_variants()) jobs.push_back(Job{s, v});
  }
  util::Rng rng(seed);
  rng.shuffle(jobs);
  if (options.max_per_patch > 0 && jobs.size() > options.max_per_patch) {
    jobs.resize(options.max_per_patch);
  }

  for (const Job& job : jobs) {
    const Site& site = sites[job.site];
    std::vector<std::string> mutated =
        site.after_version ? site.snapshot->after : site.snapshot->before;
    if (!apply_variant(mutated, site.if_line, site.condition, job.variant)) {
      continue;
    }

    SyntheticPatch synthetic;
    synthetic.origin_commit = record.patch.commit;
    synthetic.variant = job.variant;
    synthetic.modified_after = site.after_version;
    synthetic.truth = record.truth;

    diff::Patch patch;
    patch.author = record.patch.author;
    patch.date = record.patch.date;
    patch.message = record.patch.message;
    // Re-diff the (possibly mutated) version pair for every touched file.
    for (const corpus::FileSnapshot& snapshot : record.snapshots) {
      const bool is_target = &snapshot == site.snapshot;
      const std::vector<std::string>& before =
          (is_target && !site.after_version) ? mutated : snapshot.before;
      const std::vector<std::string>& after =
          (is_target && site.after_version) ? mutated : snapshot.after;
      diff::FileDiff fd = diff::diff_file(snapshot.path, before, after);
      if (!fd.hunks.empty()) patch.files.push_back(std::move(fd));
    }
    if (patch.files.empty()) continue;
    patch.commit = util::commit_id(diff::render_file_diffs(patch.files) +
                                   synthetic.origin_commit +
                                   std::to_string(static_cast<int>(job.variant)));
    synthetic.patch = std::move(patch);
    out.push_back(std::move(synthetic));
  }
  return out;
}

std::vector<SyntheticPatch> synthesize_all(
    std::span<const corpus::CommitRecord> records,
    const SynthesisOptions& options, std::uint64_t seed) {
  PATCHDB_TRACE_SPAN("synth.all");
  PATCHDB_COUNTER_ADD("synth.records", records.size());
  std::vector<std::vector<SyntheticPatch>> per_record(records.size());
  util::Rng rng(seed);
  std::vector<std::uint64_t> seeds(records.size());
  for (auto& s : seeds) s = rng();

  util::default_pool().parallel_for(
      records.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          per_record[i] = synthesize(records[i], options, seeds[i]);
        }
      });

  std::vector<SyntheticPatch> out;
  for (auto& chunk : per_record) {
    for (auto& p : chunk) out.push_back(std::move(p));
  }
  PATCHDB_COUNTER_ADD("synth.patches", out.size());
  return out;
}

}  // namespace patchdb::synth
