// The eight `if`-statement control-flow variants of Fig. 5. Each variant
// rewrites one `if (COND)` into a semantically equivalent form (guard
// constant, hoisted boolean, or flag variable), optionally preceded by
// setup statements. Applying a variant to the BEFORE or AFTER version of
// a patched file and re-diffing yields a synthetic patch (Section III-C).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace patchdb::synth {

enum class IfVariant : int {
  kOrZero = 1,        // const int _SYS_ZERO = 0;  if (_SYS_ZERO || COND)
  kAndOne = 2,        // const int _SYS_ONE = 1;   if (_SYS_ONE && COND)
  kHoistEq = 3,       // int _SYS_STMT = (COND);   if (1 == _SYS_STMT)
  kHoistNegate = 4,   // int _SYS_STMT = !(COND);  if (!_SYS_STMT)
  kFlagSet = 5,       // _SYS_VAL=0; if (COND) _SYS_VAL=1;  if (_SYS_VAL)
  kFlagClear = 6,     // _SYS_VAL=1; if (COND) _SYS_VAL=0;  if (!_SYS_VAL)
  kFlagAnd = 7,       // flag-set form, then if (_SYS_VAL && COND)
  kFlagOrNot = 8,     // flag-clear form, then if (!_SYS_VAL || COND)
};

inline constexpr std::size_t kVariantCount = 8;

/// All eight variants in Fig. 5 order.
std::array<IfVariant, kVariantCount> all_variants();

const char* variant_name(IfVariant variant);

struct VariantRewrite {
  /// Setup statements inserted immediately before the `if` line (already
  /// carrying the same indentation).
  std::vector<std::string> setup;
  /// Replacement text for the `if (...)` head (indentation included).
  std::string new_if_head;
};

/// Build the rewrite for `if (condition)` with the given indentation.
/// `condition` is the raw text between the parentheses.
VariantRewrite rewrite_if(IfVariant variant, const std::string& condition,
                          const std::string& indent);

/// Apply a variant to file `lines`, rewriting the single-line `if` at
/// 1-based `if_line` whose condition is `condition`. Returns false (and
/// leaves `lines` untouched) when the line does not look like the
/// expected `if` head.
bool apply_variant(std::vector<std::string>& lines, std::size_t if_line,
                   const std::string& condition, IfVariant variant);

}  // namespace patchdb::synth
