#include "synth/variants.h"

#include "util/strings.h"

namespace patchdb::synth {

std::array<IfVariant, kVariantCount> all_variants() {
  return {IfVariant::kOrZero,   IfVariant::kAndOne,  IfVariant::kHoistEq,
          IfVariant::kHoistNegate, IfVariant::kFlagSet, IfVariant::kFlagClear,
          IfVariant::kFlagAnd,  IfVariant::kFlagOrNot};
}

const char* variant_name(IfVariant variant) {
  switch (variant) {
    case IfVariant::kOrZero: return "or-zero guard";
    case IfVariant::kAndOne: return "and-one guard";
    case IfVariant::kHoistEq: return "hoisted boolean (==)";
    case IfVariant::kHoistNegate: return "hoisted negated boolean";
    case IfVariant::kFlagSet: return "flag set";
    case IfVariant::kFlagClear: return "flag clear";
    case IfVariant::kFlagAnd: return "flag and condition";
    case IfVariant::kFlagOrNot: return "not-flag or condition";
  }
  return "?";
}

VariantRewrite rewrite_if(IfVariant variant, const std::string& condition,
                          const std::string& indent) {
  VariantRewrite r;
  const std::string cond = "(" + condition + ")";
  switch (variant) {
    case IfVariant::kOrZero:
      r.setup = {indent + "const int _SYS_ZERO = 0;"};
      r.new_if_head = indent + "if (_SYS_ZERO || " + cond + ")";
      break;
    case IfVariant::kAndOne:
      r.setup = {indent + "const int _SYS_ONE = 1;"};
      r.new_if_head = indent + "if (_SYS_ONE && " + cond + ")";
      break;
    case IfVariant::kHoistEq:
      r.setup = {indent + "int _SYS_STMT = " + cond + ";"};
      r.new_if_head = indent + "if (1 == _SYS_STMT)";
      break;
    case IfVariant::kHoistNegate:
      r.setup = {indent + "int _SYS_STMT = !" + cond + ";"};
      r.new_if_head = indent + "if (!_SYS_STMT)";
      break;
    case IfVariant::kFlagSet:
      r.setup = {indent + "int _SYS_VAL = 0;",
                 indent + "if " + cond + " { _SYS_VAL = 1; }"};
      r.new_if_head = indent + "if (_SYS_VAL)";
      break;
    case IfVariant::kFlagClear:
      r.setup = {indent + "int _SYS_VAL = 1;",
                 indent + "if " + cond + " { _SYS_VAL = 0; }"};
      r.new_if_head = indent + "if (!_SYS_VAL)";
      break;
    case IfVariant::kFlagAnd:
      r.setup = {indent + "int _SYS_VAL = 0;",
                 indent + "if " + cond + " { _SYS_VAL = 1; }"};
      r.new_if_head = indent + "if (_SYS_VAL && " + cond + ")";
      break;
    case IfVariant::kFlagOrNot:
      r.setup = {indent + "int _SYS_VAL = 1;",
                 indent + "if " + cond + " { _SYS_VAL = 0; }"};
      r.new_if_head = indent + "if (!_SYS_VAL || " + cond + ")";
      break;
  }
  return r;
}

bool apply_variant(std::vector<std::string>& lines, std::size_t if_line,
                   const std::string& condition, IfVariant variant) {
  if (if_line == 0 || if_line > lines.size()) return false;
  const std::size_t index = if_line - 1;
  const std::string& original = lines[index];

  // The line must contain an `if (` head and the closing paren of the
  // condition must be on the same line (single-line conditions only).
  const std::size_t if_pos = original.find("if");
  if (if_pos == std::string::npos) return false;
  const std::size_t open = original.find('(', if_pos);
  if (open == std::string::npos) return false;
  // Match the closing parenthesis of the condition.
  std::size_t depth = 0;
  std::size_t close = std::string::npos;
  for (std::size_t i = open; i < original.size(); ++i) {
    if (original[i] == '(') ++depth;
    else if (original[i] == ')') {
      if (--depth == 0) {
        close = i;
        break;
      }
    }
  }
  if (close == std::string::npos) return false;

  const std::string indent = original.substr(0, original.find_first_not_of(" \t"));
  const std::string tail = original.substr(close + 1);  // " {" or ""

  const VariantRewrite rewrite = rewrite_if(variant, condition, indent);
  std::vector<std::string> replacement = rewrite.setup;
  replacement.push_back(rewrite.new_if_head + tail);

  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(index));
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(index),
               replacement.begin(), replacement.end());
  return true;
}

}  // namespace patchdb::synth
