// Deterministic pseudo-random number generation for every stochastic
// component in PatchDB. All randomized code takes an explicit seed so
// corpus generation, dataset splits, and classifier training are
// reproducible run to run.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <span>
#include <stdexcept>
#include <vector>

namespace patchdb::util {

/// SplitMix64: used to expand a single user seed into full generator state.
/// Passes BigCrush; recommended seeding procedure for xoshiro generators.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — small, fast, high-quality 64-bit PRNG.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1db2c86f0a7045ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto l = static_cast<std::uint64_t>(m);
    if (l < range) {
      const std::uint64_t t = (0 - range) % range;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * range;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("index: n == 0");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform real in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) noexcept { return mean + stddev * normal(); }

  /// Uniformly pick one element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[index(items.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("sample_indices: k > n");
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: only the first k positions need randomizing.
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + index(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

  /// Draw an index from a discrete distribution given non-negative weights.
  std::size_t weighted(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) throw std::invalid_argument("weighted: total weight <= 0");
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive an independent child generator (e.g. per worker thread).
  Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace patchdb::util
