// Fixed-size thread pool with a blocking parallel_for. The nearest link
// search computes an M x N weighted distance matrix (Section III-B);
// at paper scale (4076 x 200K) that is the dominant cost, so the matrix
// is computed in row blocks across the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace patchdb::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; runs on some worker eventually.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Partition [0, n) into contiguous chunks and run `body(begin, end)`
  /// on the pool; blocks until all chunks are done. Exceptions thrown by
  /// the body are rethrown (first one wins) on the calling thread.
  /// Nested calls from a worker thread run the body inline (serially):
  /// blocking a worker on wait_idle() would deadlock the pool, and the
  /// outer parallelism already saturates it.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide default pool, sized to the machine.
ThreadPool& default_pool();

}  // namespace patchdb::util
