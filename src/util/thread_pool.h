// Fixed-size thread pool with a blocking parallel_for. The nearest link
// search computes an M x N weighted distance matrix (Section III-B);
// at paper scale (4076 x 200K) that is the dominant cost, so the matrix
// is computed in row blocks across the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace patchdb::util {

class ThreadPool {
 public:
  /// Metric hooks, invoked outside the pool lock. Both optional. The
  /// observability layer (src/obs) installs these; the pool itself has
  /// no obs dependency so the util library stays at the bottom of the
  /// dependency order.
  struct Observer {
    /// Queue depth after every enqueue and dequeue.
    std::function<void(std::size_t depth)> queue_depth;
    /// Wall-clock latency of each completed task, in milliseconds.
    std::function<void(double ms)> task_ms;
  };

  /// What submit() does when the bounded queue is at max_pending.
  enum class Overflow {
    kBlock,   // submit blocks until a worker frees a queue slot
    kReject,  // submit throws QueueFull; use try_submit to probe instead
  };

  struct Options {
    /// `threads == 0` means hardware_concurrency (at least 1).
    std::size_t threads = 0;
    /// Cap on *queued* (not yet running) tasks. 0 = unbounded — the
    /// default, which preserves the original fire-and-forget behavior
    /// for parallel_for and every existing caller.
    std::size_t max_pending = 0;
    Overflow overflow = Overflow::kBlock;
  };

  /// Thrown by submit() on a full queue under Overflow::kReject.
  class QueueFull : public std::runtime_error {
   public:
    QueueFull() : std::runtime_error("ThreadPool: bounded queue is full") {}
  };

  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  explicit ThreadPool(const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Tasks enqueued but not yet picked up by a worker.
  std::size_t pending() const;

  /// Tasks enqueued and not yet finished (pending + running).
  std::size_t in_flight() const;

  /// Tasks currently executing on a worker (in_flight - pending, read
  /// under one lock so the two can't tear).
  std::size_t running() const;

  /// Cumulative wall time each worker has spent executing tasks, in
  /// milliseconds, indexed by worker. Always maintained (two clock
  /// reads per task); the per-worker histogram the bench sessions
  /// record is derived from this, so a single-threaded pool pathology
  /// shows up as one busy worker and N-1 zeros in the artifact.
  std::vector<double> worker_busy_ms() const;

  /// Install (or, with a default-constructed Observer, clear) the metric
  /// hooks. Thread-safe; tasks already running may still report to the
  /// previous observer.
  void set_observer(Observer observer);

  /// The queued-task cap this pool was constructed with (0 = unbounded).
  std::size_t max_pending() const noexcept { return max_pending_; }

  /// Enqueue a task; runs on some worker eventually. A task that throws
  /// does not take the worker (or the process) down: the exception is
  /// caught, counted in task_errors(), and the first one is stashed for
  /// take_task_error(), so wait_idle() still completes.
  ///
  /// On a bounded pool (Options::max_pending > 0) a full queue makes
  /// submit block for a slot (Overflow::kBlock) or throw QueueFull
  /// (Overflow::kReject). Tasks submitted from a pool worker bypass the
  /// cap: blocking a worker on queue space can deadlock the pool
  /// (workers are what free slots), and parallel_for's inline nested
  /// path never reaches here anyway.
  void submit(std::function<void()> task);

  /// Non-blocking submit: enqueue and return true, or return false when
  /// a bounded queue is at max_pending (never blocks, never throws
  /// QueueFull, regardless of the overflow policy). The backpressure
  /// primitive for callers that would rather shed load than wait — the
  /// serve acceptor rejects a connection instead of stalling accept.
  [[nodiscard]] bool try_submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Submitted tasks that terminated with an exception. parallel_for
  /// reports its errors by rethrowing on the caller and never counts
  /// here.
  std::size_t task_errors() const;

  /// The first exception thrown by a submit() task since the last call;
  /// clears the slot. Null when no task has thrown.
  std::exception_ptr take_task_error();

  /// Partition [0, n) into contiguous chunks and run `body(begin, end)`
  /// on the pool; blocks until all chunks are done. Exceptions thrown by
  /// the body are rethrown (first one wins) on the calling thread.
  /// Nested calls from a worker thread run the body inline (serially):
  /// blocking a worker on wait_idle() would deadlock the pool, and the
  /// outer parallelism already saturates it.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop(std::size_t worker_index);
  /// Shared enqueue path. `blocking` selects the full-queue behavior:
  /// wait (true) vs report failure (false).
  bool enqueue(std::function<void()>&& task, bool blocking);

  std::vector<std::thread> workers_;
  std::vector<double> worker_busy_ms_;  // guarded by mutex_
  std::queue<std::function<void()>> tasks_;
  std::size_t max_pending_ = 0;
  Overflow overflow_ = Overflow::kBlock;
  mutable std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable space_free_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::size_t task_errors_ = 0;
  std::exception_ptr task_error_;
  /// Shared so submit/worker can invoke hooks after dropping the lock
  /// even while set_observer swaps in a replacement.
  std::shared_ptr<const Observer> observer_;
};

/// Process-wide default pool. Sized, in priority order, from
/// configure_default_pool(), the PATCHDB_THREADS environment variable,
/// or hardware_concurrency. PATCHDB_THREADS parsing is strict: anything
/// other than a complete decimal integer in [1, 1024] aborts the
/// process with a diagnostic on first pool use — a typo'd override must
/// not silently fall back to a serial (or default) pool and invalidate
/// a benchmark run.
ThreadPool& default_pool();

/// Request a worker count for default_pool() before its first use
/// (e.g. from `patchdb build --threads N`). Takes precedence over
/// PATCHDB_THREADS. Throws std::invalid_argument for threads outside
/// [1, 1024] and std::logic_error when the default pool was already
/// constructed with a different size — a late override would silently
/// not apply, which is exactly the single-threaded-bench pathology this
/// knob exists to prevent.
void configure_default_pool(std::size_t threads);

/// The worker count default_pool() has, or would be created with
/// (override > PATCHDB_THREADS > hardware_concurrency).
std::size_t default_pool_threads();

}  // namespace patchdb::util
