// Plain-text table rendering for the benchmark harness. Every bench
// binary prints paper-style tables (Table II..VI) through this renderer
// so output formatting stays uniform, plus CSV export for plotting.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::util {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Set the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Append a data row; must match the header width.
  void add_row(std::vector<std::string> row);

  /// Append a full-width separator line between row groups.
  void add_separator();

  /// Footnote printed under the table (paper tables carry footnotes).
  void add_note(std::string note);

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing in a fixed-width grid.
  std::string render() const;

  /// Render as CSV (title and notes omitted).
  std::string to_csv() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

/// Format helpers used by the bench binaries.
std::string format_double(double value, int decimals);
std::string format_percent(double fraction, int decimals);

}  // namespace patchdb::util
