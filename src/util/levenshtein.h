// Levenshtein (edit) distance between strings. Used by the Table I
// feature extractor (features 49-54: mean/min/max edit distance between
// the removed and added text of each hunk, before and after token
// abstraction).
#pragma once

#include <cstddef>
#include <string_view>

namespace patchdb::util {

/// Classic O(|a|*|b|) time, O(min) space edit distance with unit costs.
std::size_t levenshtein(std::string_view a, std::string_view b);

/// Edit distance normalized to [0, 1]: distance / max(|a|, |b|).
/// Two empty strings have distance 0.
double levenshtein_normalized(std::string_view a, std::string_view b);

/// Banded variant: returns the exact distance if it is <= `bound`,
/// otherwise returns `bound + 1`. Runs in O(bound * min(|a|,|b|)).
std::size_t levenshtein_bounded(std::string_view a, std::string_view b,
                                std::size_t bound);

}  // namespace patchdb::util
