#include "util/table.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace patchdb::util {

void Table::set_header(std::vector<std::string> header) {
  if (!rows_.empty()) throw std::logic_error("Table: header after rows");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty() && row.size() != header_.size()) {
    throw std::invalid_argument("Table: row width != header width");
  }
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string Table::render() const {
  const std::size_t cols = header_.size();
  std::vector<std::size_t> width(cols, 0);
  for (std::size_t c = 0; c < cols; ++c) width[c] = header_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size() && c < cols; ++c) {
      width[c] = std::max(width[c], r.cells[c].size());
    }
  }

  auto rule = [&](char fill) {
    std::string line = "+";
    for (std::size_t c = 0; c < cols; ++c) {
      line.append(width[c] + 2, fill);
      line += '+';
    }
    line += '\n';
    return line;
  };
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = (c < cells.size()) ? cells[c] : std::string();
      line += ' ';
      line += cell;
      line.append(width[c] - cell.size() + 1, ' ');
      line += '|';
    }
    line += '\n';
    return line;
  };

  std::string out;
  if (!title_.empty()) out += "== " + title_ + " ==\n";
  out += rule('-');
  out += render_row(header_);
  out += rule('=');
  for (const Row& r : rows_) {
    out += r.separator ? rule('-') : render_row(r.cells);
  }
  out += rule('-');
  for (const std::string& n : notes_) out += "  note: " + n + "\n";
  return out;
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c != 0) out += ',';
    out += escape(header_[c]);
  }
  out += '\n';
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c) {
      if (c != 0) out += ',';
      out += escape(r.cells[c]);
    }
    out += '\n';
  }
  return out;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string format_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace patchdb::util
