// String helpers shared across the diff parser, lexer, and corpus
// generators. All functions are allocation-conscious: views in, strings
// out only where ownership is needed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace patchdb::util {

/// Split on a single character; keeps empty fields ("a,,b" -> 3 fields).
std::vector<std::string_view> split(std::string_view text, char sep);

/// Split into lines, treating "\n" as terminator. A trailing newline does
/// not produce a final empty line ("a\nb\n" -> {"a","b"}). A line's
/// trailing '\r' is stripped — including on a final unterminated line,
/// so CRLF text parses the same with or without a trailing newline.
std::vector<std::string_view> split_lines(std::string_view text);

/// Split on runs of whitespace; no empty fields.
std::vector<std::string_view> split_ws(std::string_view text);

std::string_view trim(std::string_view text);
std::string_view trim_left(std::string_view text);
std::string_view trim_right(std::string_view text);

std::string to_lower(std::string_view text);

std::string join(const std::vector<std::string>& parts, std::string_view sep);
std::string join_views(const std::vector<std::string_view>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

/// File extension including the dot, lower-cased ("src/a.CPP" -> ".cpp");
/// empty when there is none.
std::string extension(std::string_view path);

/// Parse a non-negative integer; returns false on any non-digit input.
bool parse_size(std::string_view text, std::size_t& out);

/// Render `n` as a short human string: 950 -> "950", 6'200'000 -> "6.2M".
std::string human_count(std::size_t n);

}  // namespace patchdb::util
