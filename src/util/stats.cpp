#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace patchdb::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double total = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    total += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = total / static_cast<double>(values.size());
  if (values.size() > 1) {
    double ss = 0.0;
    for (double v : values) {
      const double d = v - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return s;
}

Interval wald_interval(std::size_t successes, std::size_t trials, double z) {
  Interval ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  ci.center = p;
  ci.half_width = z * std::sqrt(p * (1.0 - p) / n);
  ci.lo = std::max(0.0, p - ci.half_width);
  ci.hi = std::min(1.0, p + ci.half_width);
  return ci;
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  Interval ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  ci.center = center;
  ci.half_width = margin;
  ci.lo = std::max(0.0, center - margin);
  ci.hi = std::min(1.0, center + margin);
  return ci;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const double n = static_cast<double>(a.size());
  double ma = 0.0;
  double mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

std::string format_percent_ci(const Interval& ci) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f(+/-%.1f)%%", ci.center * 100.0,
                ci.half_width * 100.0);
  return buf;
}

}  // namespace patchdb::util
