// Hashing helpers: FNV-1a for content hashing and deterministic
// generation of git-style 40-hex commit identifiers for the simulated
// repositories.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace patchdb::util {

constexpr std::uint64_t fnv1a64(std::string_view data,
                                std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Render a 64-bit value as fixed-width lowercase hex.
inline std::string to_hex(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

/// Deterministic git-style commit id (40 hex chars) derived from content.
inline std::string commit_id(std::string_view content) {
  const std::uint64_t a = fnv1a64(content);
  const std::uint64_t b = fnv1a64(content, 0x84222325cbf29ce4ULL);
  const std::uint64_t c = fnv1a64(content, 0x9e3779b97f4a7c15ULL);
  return to_hex(a) + to_hex(b) + to_hex(c).substr(0, 8);
}

}  // namespace patchdb::util
