// Small statistics toolkit: summary statistics and binomial confidence
// intervals. Table III of the paper reports candidate precision with a
// 95% confidence interval over a 1K manually verified sample; we compute
// the same interval here.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace patchdb::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// Binomial proportion confidence interval.
struct Interval {
  double center = 0.0;   // point estimate of the proportion
  double half_width = 0.0;  // +/- margin
  double lo = 0.0;
  double hi = 0.0;
};

/// Normal-approximation (Wald) interval, the form "p (+/- e)%" used by the
/// paper's Table III. `z` defaults to the 95% two-sided quantile.
Interval wald_interval(std::size_t successes, std::size_t trials, double z = 1.959964);

/// Wilson score interval — better behaved near 0/1 and for small samples.
Interval wilson_interval(std::size_t successes, std::size_t trials, double z = 1.959964);

/// Pearson correlation of two equal-length series; 0 for degenerate input.
double pearson(std::span<const double> a, std::span<const double> b);

/// Format a proportion as a paper-style percentage string, e.g. "29(+/-2.4)%".
std::string format_percent_ci(const Interval& ci);

}  // namespace patchdb::util
