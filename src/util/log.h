// Minimal leveled logger. Library code logs sparingly (round summaries,
// corpus generation progress); bench binaries raise the level to Info.
//
// The streaming helpers check the threshold *before* constructing the
// stream: `log_debug() << expensive()` below the threshold neither
// formats nor evaluates operator<< into the stream (the chained values
// are still evaluated by the language, but nothing is stringified).
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace patchdb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Optional line-prefix decorations, both off by default:
/// timestamps ("2026-08-06 12:34:56.789") and the logging thread's id
/// (a small dense index, not the opaque std::thread::id).
struct LogFormat {
  bool timestamps = false;
  bool thread_ids = false;
};
void set_log_format(LogFormat format) noexcept;
LogFormat log_format() noexcept;

/// True when `level` passes the current threshold.
bool log_enabled(LogLevel level) noexcept;

/// Emit one line at `level` (thread-safe; no-op when below the
/// threshold). The line is assembled into one buffer and written with a
/// single unlocked-stdio-free fwrite — no printf-family formatting on
/// the emit path.
void log_line(LogLevel level, const std::string& message);

namespace detail {
/// Holds the ostringstream only when the level passed the threshold at
/// construction; otherwise operator<< is a no-op and the destructor
/// emits nothing.
class LogStream {
 public:
  explicit LogStream(LogLevel level, bool enabled) : level_(level) {
    if (enabled) stream_.emplace();
  }
  ~LogStream() {
    if (stream_.has_value()) log_line(level_, stream_->str());
  }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  LogStream(LogStream&&) = default;

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (stream_.has_value()) *stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::optional<std::ostringstream> stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() {
  return detail::LogStream(LogLevel::kDebug, log_enabled(LogLevel::kDebug));
}
inline detail::LogStream log_info() {
  return detail::LogStream(LogLevel::kInfo, log_enabled(LogLevel::kInfo));
}
inline detail::LogStream log_warn() {
  return detail::LogStream(LogLevel::kWarn, log_enabled(LogLevel::kWarn));
}
inline detail::LogStream log_error() {
  return detail::LogStream(LogLevel::kError, log_enabled(LogLevel::kError));
}

}  // namespace patchdb::util
