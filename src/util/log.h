// Minimal leveled logger. Library code logs sparingly (round summaries,
// corpus generation progress); bench binaries raise the level to Info.
#pragma once

#include <sstream>
#include <string>

namespace patchdb::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at `level` (thread-safe; no-op when below the threshold).
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, stream_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace patchdb::util
