#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace patchdb::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// Format flags packed into one atomic so readers never see a torn pair.
std::atomic<unsigned> g_format{0};
constexpr unsigned kTimestampBit = 1u;
constexpr unsigned kThreadIdBit = 2u;
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

/// Small dense id for the calling thread (first logger = 1, ...); far
/// easier on the eyes than std::thread::id in interleaved output.
unsigned local_thread_id() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1) + 1;
  return id;
}

void append_unsigned(std::string& out, unsigned long long value, int min_digits) {
  char digits[24];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (int pad = n; pad < min_digits; ++pad) out.push_back('0');
  while (n > 0) out.push_back(digits[--n]);
}

void append_timestamp(std::string& out) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&seconds, &tm);
  append_unsigned(out, static_cast<unsigned>(tm.tm_year + 1900), 4);
  out.push_back('-');
  append_unsigned(out, static_cast<unsigned>(tm.tm_mon + 1), 2);
  out.push_back('-');
  append_unsigned(out, static_cast<unsigned>(tm.tm_mday), 2);
  out.push_back(' ');
  append_unsigned(out, static_cast<unsigned>(tm.tm_hour), 2);
  out.push_back(':');
  append_unsigned(out, static_cast<unsigned>(tm.tm_min), 2);
  out.push_back(':');
  append_unsigned(out, static_cast<unsigned>(tm.tm_sec), 2);
  out.push_back('.');
  append_unsigned(out, static_cast<unsigned long long>(millis), 3);
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_log_format(LogFormat format) noexcept {
  unsigned bits = 0;
  if (format.timestamps) bits |= kTimestampBit;
  if (format.thread_ids) bits |= kThreadIdBit;
  g_format.store(bits, std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  const unsigned bits = g_format.load(std::memory_order_relaxed);
  return LogFormat{(bits & kTimestampBit) != 0, (bits & kThreadIdBit) != 0};
}

bool log_enabled(LogLevel level) noexcept {
  return level >= g_level.load(std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  if (!log_enabled(level)) return;
  const unsigned format = g_format.load(std::memory_order_relaxed);

  // Assemble the whole line up front so the critical section is one
  // write call — no printf-family formatting anywhere on this path.
  std::string line;
  line.reserve(message.size() + 48);
  line.push_back('[');
  if ((format & kTimestampBit) != 0) {
    append_timestamp(line);
    line.push_back(' ');
  }
  line += level_name(level);
  if ((format & kThreadIdBit) != 0) {
    line += " t";
    append_unsigned(line, local_thread_id(), 2);
  }
  line += "] ";
  line += message;
  line.push_back('\n');

  std::lock_guard lock(g_io_mutex);
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace patchdb::util
