#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <utility>

namespace patchdb::util {

namespace {
// True while the current thread is executing a pool task; used to run
// nested parallel_for bodies inline instead of deadlocking on wait_idle.
thread_local bool t_on_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : ThreadPool(Options{.threads = threads}) {}

ThreadPool::ThreadPool(const Options& options)
    : max_pending_(options.max_pending), overflow_(options.overflow) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_free_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return tasks_.size();
}

std::size_t ThreadPool::in_flight() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

std::size_t ThreadPool::running() const {
  std::lock_guard lock(mutex_);
  return in_flight_ > tasks_.size() ? in_flight_ - tasks_.size() : 0;
}

std::size_t ThreadPool::task_errors() const {
  std::lock_guard lock(mutex_);
  return task_errors_;
}

std::exception_ptr ThreadPool::take_task_error() {
  std::lock_guard lock(mutex_);
  return std::exchange(task_error_, nullptr);
}

void ThreadPool::set_observer(Observer observer) {
  auto shared = (observer.queue_depth || observer.task_ms)
                    ? std::make_shared<const Observer>(std::move(observer))
                    : nullptr;
  std::lock_guard lock(mutex_);
  observer_ = std::move(shared);
}

void ThreadPool::submit(std::function<void()> task) {
  const bool blocking = overflow_ == Overflow::kBlock;
  if (!enqueue(std::move(task), blocking)) throw QueueFull();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  return enqueue(std::move(task), /*blocking=*/false);
}

bool ThreadPool::enqueue(std::function<void()>&& task, bool blocking) {
  std::shared_ptr<const Observer> observer;
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    // Workers bypass the cap: they are the consumers that free slots,
    // so blocking one on queue space could deadlock the whole pool.
    if (max_pending_ != 0 && !t_on_pool_worker) {
      if (blocking) {
        space_free_.wait(lock, [this] {
          return stopping_ || tasks_.size() < max_pending_;
        });
      } else if (tasks_.size() >= max_pending_ && !stopping_) {
        return false;
      }
    }
    tasks_.push(std::move(task));
    ++in_flight_;
    observer = observer_;
    depth = tasks_.size();
  }
  task_ready_.notify_one();
  if (observer && observer->queue_depth) observer->queue_depth(depth);
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (t_on_pool_worker) {
    body(0, n);  // nested call: run inline (see header)
    return;
  }
  const std::size_t workers = workers_.size();
  // Over-decompose a little so uneven chunks balance out.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    submit([&, begin, end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    std::shared_ptr<const Observer> observer;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping with an empty queue
      task = std::move(tasks_.front());
      tasks_.pop();
      observer = observer_;
      depth = tasks_.size();
    }
    if (max_pending_ != 0) space_free_.notify_one();
    if (observer && observer->queue_depth) observer->queue_depth(depth);
    const bool timed = observer && observer->task_ms;
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
    t_on_pool_worker = true;
    // A throwing task must not escape into the thread body (that would
    // std::terminate the process) or skip the in_flight_ bookkeeping
    // below (that would deadlock wait_idle forever). parallel_for wraps
    // its chunks in its own handler, so anything caught here came from
    // a bare submit(): stash the first, count the rest.
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      ++task_errors_;
      if (!task_error_) task_error_ = std::current_exception();
    }
    t_on_pool_worker = false;
    if (timed) {
      observer->task_ms(std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace patchdb::util
