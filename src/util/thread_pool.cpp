#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <utility>

namespace patchdb::util {

namespace {
// True while the current thread is executing a pool task; used to run
// nested parallel_for bodies inline instead of deadlocking on wait_idle.
thread_local bool t_on_pool_worker = false;

constexpr std::size_t kMaxDefaultPoolThreads = 1024;

// Pre-creation override for default_pool() (configure_default_pool).
std::mutex g_default_pool_mutex;
std::size_t g_default_pool_override = 0;  // 0 = no override
bool g_default_pool_created = false;

/// Strict parse of PATCHDB_THREADS: a complete decimal integer in
/// [1, 1024]. Anything else (letters, trailing junk, 0, negatives,
/// overflow) is a hard configuration error: exit 2 with a message
/// rather than silently benching on the wrong pool size.
std::size_t threads_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env lookup
  const char* raw = std::getenv("PATCHDB_THREADS");
  if (raw == nullptr || *raw == '\0') return 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0' || raw[0] == '-' || raw[0] == '+' ||
      value < 1 || value > kMaxDefaultPoolThreads) {
    std::fprintf(stderr,
                 "patchdb: PATCHDB_THREADS expects an integer in [1, %zu], "
                 "got \"%s\"\n",
                 kMaxDefaultPoolThreads, raw);
    std::exit(2);
  }
  return static_cast<std::size_t>(value);
}

/// Resolution order: configure_default_pool > PATCHDB_THREADS >
/// hardware_concurrency. Caller holds g_default_pool_mutex.
std::size_t resolve_default_threads_locked() {
  if (g_default_pool_override > 0) return g_default_pool_override;
  const std::size_t env = threads_from_env();
  if (env > 0) return env;
  return std::max(1u, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : ThreadPool(Options{.threads = threads}) {}

ThreadPool::ThreadPool(const Options& options)
    : max_pending_(options.max_pending), overflow_(options.overflow) {
  std::size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  worker_busy_ms_.assign(threads, 0.0);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  space_free_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard lock(mutex_);
  return tasks_.size();
}

std::size_t ThreadPool::in_flight() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

std::size_t ThreadPool::running() const {
  std::lock_guard lock(mutex_);
  return in_flight_ > tasks_.size() ? in_flight_ - tasks_.size() : 0;
}

std::vector<double> ThreadPool::worker_busy_ms() const {
  std::lock_guard lock(mutex_);
  return worker_busy_ms_;
}

std::size_t ThreadPool::task_errors() const {
  std::lock_guard lock(mutex_);
  return task_errors_;
}

std::exception_ptr ThreadPool::take_task_error() {
  std::lock_guard lock(mutex_);
  return std::exchange(task_error_, nullptr);
}

void ThreadPool::set_observer(Observer observer) {
  auto shared = (observer.queue_depth || observer.task_ms)
                    ? std::make_shared<const Observer>(std::move(observer))
                    : nullptr;
  std::lock_guard lock(mutex_);
  observer_ = std::move(shared);
}

void ThreadPool::submit(std::function<void()> task) {
  const bool blocking = overflow_ == Overflow::kBlock;
  if (!enqueue(std::move(task), blocking)) throw QueueFull();
}

bool ThreadPool::try_submit(std::function<void()> task) {
  return enqueue(std::move(task), /*blocking=*/false);
}

bool ThreadPool::enqueue(std::function<void()>&& task, bool blocking) {
  std::shared_ptr<const Observer> observer;
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    // Workers bypass the cap: they are the consumers that free slots,
    // so blocking one on queue space could deadlock the whole pool.
    if (max_pending_ != 0 && !t_on_pool_worker) {
      if (blocking) {
        space_free_.wait(lock, [this] {
          return stopping_ || tasks_.size() < max_pending_;
        });
      } else if (tasks_.size() >= max_pending_ && !stopping_) {
        return false;
      }
    }
    tasks_.push(std::move(task));
    ++in_flight_;
    observer = observer_;
    depth = tasks_.size();
  }
  task_ready_.notify_one();
  if (observer && observer->queue_depth) observer->queue_depth(depth);
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (t_on_pool_worker) {
    body(0, n);  // nested call: run inline (see header)
    return;
  }
  const std::size_t workers = workers_.size();
  // Over-decompose a little so uneven chunks balance out.
  const std::size_t chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + chunks - 1) / chunks;

  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    submit([&, begin, end] {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        body(begin, end);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    });
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  while (true) {
    std::function<void()> task;
    std::shared_ptr<const Observer> observer;
    std::size_t depth = 0;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping with an empty queue
      task = std::move(tasks_.front());
      tasks_.pop();
      observer = observer_;
      depth = tasks_.size();
    }
    if (max_pending_ != 0) space_free_.notify_one();
    if (observer && observer->queue_depth) observer->queue_depth(depth);
    const auto start = std::chrono::steady_clock::now();
    t_on_pool_worker = true;
    // A throwing task must not escape into the thread body (that would
    // std::terminate the process) or skip the in_flight_ bookkeeping
    // below (that would deadlock wait_idle forever). parallel_for wraps
    // its chunks in its own handler, so anything caught here came from
    // a bare submit(): stash the first, count the rest.
    try {
      task();
    } catch (...) {
      std::lock_guard lock(mutex_);
      ++task_errors_;
      if (!task_error_) task_error_ = std::current_exception();
    }
    t_on_pool_worker = false;
    const double task_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    if (observer && observer->task_ms) observer->task_ms(task_ms);
    {
      std::lock_guard lock(mutex_);
      worker_busy_ms_[worker_index] += task_ms;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& default_pool() {
  // The creation flag is flipped under the same mutex the override
  // uses so configure_default_pool can reliably reject a too-late call.
  static ThreadPool pool([] {
    std::lock_guard lock(g_default_pool_mutex);
    g_default_pool_created = true;
    return resolve_default_threads_locked();
  }());
  return pool;
}

void configure_default_pool(std::size_t threads) {
  if (threads < 1 || threads > kMaxDefaultPoolThreads) {
    throw std::invalid_argument(
        "configure_default_pool: threads must be in [1, 1024]");
  }
  std::lock_guard lock(g_default_pool_mutex);
  if (g_default_pool_created) {
    // An identical re-request is harmless (idempotent callers); a
    // different size can no longer take effect and must fail loudly.
    if (default_pool().size() == threads) return;
    throw std::logic_error(
        "configure_default_pool: default pool already created with " +
        std::to_string(default_pool().size()) + " threads");
  }
  g_default_pool_override = threads;
}

std::size_t default_pool_threads() {
  std::lock_guard lock(g_default_pool_mutex);
  if (g_default_pool_created) return default_pool().size();
  return resolve_default_threads_locked();
}

}  // namespace patchdb::util
