#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace patchdb::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_lines(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t pos = text.find('\n', start);
    if (pos == std::string_view::npos) {
      std::string_view line = text.substr(start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      out.push_back(line);
      break;
    }
    std::string_view line = text.substr(start, pos - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.push_back(line);
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim_left(std::string_view text) {
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
  return text.substr(i);
}

std::string_view trim_right(std::string_view text) {
  std::size_t n = text.size();
  while (n > 0 && std::isspace(static_cast<unsigned char>(text[n - 1]))) --n;
  return text.substr(0, n);
}

std::string_view trim(std::string_view text) { return trim_right(trim_left(text)); }

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string join_views(const std::vector<std::string_view>& parts,
                       std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  out.reserve(text.size());
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string extension(std::string_view path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string_view base =
      (slash == std::string_view::npos) ? path : path.substr(slash + 1);
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string_view::npos || dot == 0) return "";
  return to_lower(base.substr(dot));
}

bool parse_size(std::string_view text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  out = value;
  return true;
}

std::string human_count(std::size_t n) {
  char buf[32];
  if (n >= 1000000) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10000) {
    std::snprintf(buf, sizeof(buf), "%.0fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", n);
  }
  return buf;
}

}  // namespace patchdb::util
