#include "util/levenshtein.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace patchdb::util {

std::size_t levenshtein(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();

  // Single-row DP over the shorter string.
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev_diag = row[0];  // dp[i-1][0]
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t prev_row = row[j];  // dp[i-1][j]
      const std::size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      prev_diag = prev_row;
    }
  }
  return row[b.size()];
}

double levenshtein_normalized(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(levenshtein(a, b)) / static_cast<double>(longest);
}

std::size_t levenshtein_bounded(std::string_view a, std::string_view b,
                                std::size_t bound) {
  if (a.size() < b.size()) std::swap(a, b);
  if (a.size() - b.size() > bound) return bound + 1;
  if (b.empty()) return a.size();

  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max() / 2;
  std::vector<std::size_t> row(b.size() + 1, kInf);
  for (std::size_t j = 0; j <= std::min(b.size(), bound); ++j) row[j] = j;

  for (std::size_t i = 1; i <= a.size(); ++i) {
    // Cells outside the diagonal band [i-bound, i+bound] stay infinite.
    const std::size_t lo = (i > bound) ? i - bound : 1;
    const std::size_t hi = std::min(b.size(), i + bound);
    std::size_t prev_diag = (lo == 1) ? row[0] : kInf;
    if (lo == 1) row[0] = (i <= bound) ? i : kInf;
    std::size_t band_min = kInf;
    for (std::size_t j = lo; j <= hi; ++j) {
      const std::size_t prev_row = row[j];
      const std::size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      const std::size_t left = (j >= 1 && row[j - 1] < kInf) ? row[j - 1] + 1 : kInf;
      const std::size_t up = (prev_row < kInf) ? prev_row + 1 : kInf;
      row[j] = std::min({up, left, subst});
      prev_diag = prev_row;
      band_min = std::min(band_min, row[j]);
    }
    if (hi < b.size()) row[hi + 1] = kInf;  // seal the band edge
    if (band_min > bound) return bound + 1;
  }
  return row[b.size()] <= bound ? row[b.size()] : bound + 1;
}

}  // namespace patchdb::util
