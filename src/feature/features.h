// The 60-dimension syntactic feature space of Table I. This is the
// representation the nearest link search, the ML baselines (Table III)
// and the Random Forest classifier (Table VI) all operate on.
//
// Layout (0-based index -> Table I row):
//   0      #1    changed lines (added + removed)
//   1      #2    hunks
//   2-5    #3-6  added/removed/total/net lines
//   6-9    #7-10 added/removed/total/net characters
//   10-13  #11-14 added/removed/total/net if statements
//   14-17  #15-18 added/removed/total/net loops
//   18-21  #19-22 added/removed/total/net function calls
//   22-25  #23-26 added/removed/total/net arithmetic operators
//   26-29  #27-30 added/removed/total/net relational operators
//   30-33  #31-34 added/removed/total/net logical operators
//   34-37  #35-38 added/removed/total/net bitwise operators
//   38-41  #39-42 added/removed/total/net memory operators
//   42-45  #43-46 added/removed/total/net variables
//   46-47  #47-48 total/net modified functions
//   48-50  #49-51 mean/min/max Levenshtein distance within hunks (raw)
//   51-53  #52-54 mean/min/max Levenshtein distance within hunks (abstracted)
//   54     #55   same hunks before token abstraction
//   55     #56   same hunks after token abstraction
//   56-57  #57-58 # and % of affected files
//   58-59  #59-60 # and % of affected functions
//
// "total" = added + removed; "net" = added - removed (may be negative —
// the paper's max-abs weighting preserves sign, Section III-B.2).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "diff/patch.h"

namespace patchdb::feature {

inline constexpr std::size_t kFeatureCount = 60;

using FeatureVector = std::array<double, kFeatureCount>;

/// Human-readable names, index-aligned with FeatureVector.
std::span<const std::string_view> feature_names();

/// Optional repository-level context. Percent-of-repo features (58, 60 in
/// Table I numbering) need the denominator; without it the extractor
/// falls back to within-patch fractions, which is still informative and
/// keeps the extractor usable on a bare `.patch` file.
struct RepoContext {
  std::size_t total_files = 0;
  std::size_t total_functions = 0;
};

/// Extract the Table I features from one patch.
FeatureVector extract(const diff::Patch& patch);
FeatureVector extract(const diff::Patch& patch, const RepoContext& repo);

/// Row-major feature matrix for a set of patches.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(std::size_t rows) : data_(rows) {}

  void push_back(const FeatureVector& row) { data_.push_back(row); }

  std::size_t rows() const noexcept { return data_.size(); }
  static constexpr std::size_t cols() noexcept { return kFeatureCount; }

  FeatureVector& operator[](std::size_t i) noexcept { return data_[i]; }
  const FeatureVector& operator[](std::size_t i) const noexcept { return data_[i]; }

  auto begin() const noexcept { return data_.begin(); }
  auto end() const noexcept { return data_.end(); }

 private:
  std::vector<FeatureVector> data_;
};

/// Extract features for many patches (parallel over the default pool).
FeatureMatrix extract_all(std::span<const diff::Patch> patches);

}  // namespace patchdb::feature
