// The feature space of Table I, plus the semantic extension. The 60
// syntactic dimensions are the representation the nearest link search,
// the ML baselines (Table III) and the Random Forest classifier
// (Table VI) all operate on.
//
// Layout (0-based index -> Table I row):
//   0      #1    changed lines (added + removed)
//   1      #2    hunks
//   2-5    #3-6  added/removed/total/net lines
//   6-9    #7-10 added/removed/total/net characters
//   10-13  #11-14 added/removed/total/net if statements
//   14-17  #15-18 added/removed/total/net loops
//   18-21  #19-22 added/removed/total/net function calls
//   22-25  #23-26 added/removed/total/net arithmetic operators
//   26-29  #27-30 added/removed/total/net relational operators
//   30-33  #31-34 added/removed/total/net logical operators
//   34-37  #35-38 added/removed/total/net bitwise operators
//   38-41  #39-42 added/removed/total/net memory operators
//   42-45  #43-46 added/removed/total/net variables
//   46-47  #47-48 total/net modified functions
//   48-50  #49-51 mean/min/max Levenshtein distance within hunks (raw)
//   51-53  #52-54 mean/min/max Levenshtein distance within hunks (abstracted)
//   54     #55   same hunks before token abstraction
//   55     #56   same hunks after token abstraction
//   56-57  #57-58 # and % of affected files
//   58-59  #59-60 # and % of affected functions
//
// "total" = added + removed; "net" = added - removed (may be negative —
// the paper's max-abs weighting preserves sign, Section III-B.2).
//
// FeatureSpace::kSemantic appends 12 dimensions computed by the
// src/analysis CFG + checker layer from the BEFORE -> AFTER diagnostic
// diff (see analysis/analyze.h):
//   60     diagnostics resolved by the patch (total)
//   61     diagnostics introduced by the patch (total)
//   62-68  per-checker net resolved (resolved - introduced), in CheckerId
//          order: unchecked-alloc, missing-bounds-check, use-after-free,
//          int-overflow-size, missing-null-guard, uninit-use, format-string
//   69-71  CFG shape deltas, AFTER minus BEFORE: basic blocks, edges,
//          cyclomatic complexity
// The default space stays bit-identical to the original 60 dimensions.
//
// FeatureSpace::kInterproc appends 8 more dimensions on top of the 72,
// computed by the opt-in interprocedural engine (analysis/callgraph.h,
// analysis/summary.h). Dimensions 0-71 stay bit-identical to kSemantic:
//   72     diagnostics resolved under interprocedural analysis
//   73     diagnostics introduced under interprocedural analysis
//   74     interprocedural minus intraprocedural resolved count — the
//          cross-function defects only the summaries can see
//   75     same delta for introduced diagnostics
//   76     net resolved call-graph edges (AFTER minus BEFORE)
//   77-78  total fan-in / fan-out of the functions the patch changed
//   79     functions whose summary signature the patch changed
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "diff/patch.h"

namespace patchdb::feature {

inline constexpr std::size_t kFeatureCount = 60;
inline constexpr std::size_t kSemanticFeatureCount = 12;
inline constexpr std::size_t kExtendedFeatureCount =
    kFeatureCount + kSemanticFeatureCount;
inline constexpr std::size_t kInterprocFeatureCount = 8;
inline constexpr std::size_t kInterprocExtendedFeatureCount =
    kExtendedFeatureCount + kInterprocFeatureCount;

/// Which representation a pipeline stage runs on. kSyntactic is the
/// paper's Table I space and the default everywhere; kSemantic appends
/// the 12 analysis-derived dimensions, kInterproc a further 8 from the
/// call-graph + summary engine.
enum class FeatureSpace { kSyntactic, kSemantic, kInterproc };

constexpr std::size_t feature_dims(FeatureSpace space) noexcept {
  switch (space) {
    case FeatureSpace::kSyntactic: return kFeatureCount;
    case FeatureSpace::kSemantic: return kExtendedFeatureCount;
    case FeatureSpace::kInterproc: return kInterprocExtendedFeatureCount;
  }
  return kFeatureCount;
}

using FeatureVector = std::array<double, kFeatureCount>;
using ExtendedFeatureVector = std::array<double, kExtendedFeatureCount>;
using InterprocFeatureVector = std::array<double, kInterprocExtendedFeatureCount>;

/// Human-readable names, index-aligned with the vector of the space.
std::span<const std::string_view> feature_names();  // the 60 Table I names
std::span<const std::string_view> feature_names(FeatureSpace space);

/// Optional repository-level context. Percent-of-repo features (58, 60 in
/// Table I numbering) need the denominator; without it the extractor
/// falls back to within-patch fractions, which is still informative and
/// keeps the extractor usable on a bare `.patch` file.
struct RepoContext {
  std::size_t total_files = 0;
  std::size_t total_functions = 0;
};

/// Extract the Table I features from one patch.
FeatureVector extract(const diff::Patch& patch);
FeatureVector extract(const diff::Patch& patch, const RepoContext& repo);

/// Extract the extended vector: dimensions 0-59 are bit-identical to
/// extract(), 60-71 come from the BEFORE/AFTER checker diff.
ExtendedFeatureVector extract_extended(const diff::Patch& patch);
ExtendedFeatureVector extract_extended(const diff::Patch& patch,
                                       const RepoContext& repo);

/// Extract the interprocedural vector: dimensions 0-71 are bit-identical
/// to extract_extended(), 72-79 diff an interprocedural analysis run
/// against the intraprocedural one.
InterprocFeatureVector extract_interproc(const diff::Patch& patch);
InterprocFeatureVector extract_interproc(const diff::Patch& patch,
                                         const RepoContext& repo);

/// Row-major feature matrix for a set of patches. Width is fixed per
/// matrix (one FeatureSpace), chosen at construction.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(std::size_t rows, std::size_t cols = kFeatureCount)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  void push_back(std::span<const double> row) {
    if (rows_ == 0 && data_.empty()) cols_ = row.size();
    data_.insert(data_.end(), row.begin(), row.end());
    ++rows_;
  }

  void set_row(std::size_t i, std::span<const double> row) {
    std::copy(row.begin(), row.end(), data_.begin() + static_cast<std::ptrdiff_t>(i * cols_));
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  std::span<double> operator[](std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  std::span<const double> operator[](std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = kFeatureCount;
  std::vector<double> data_;
};

/// Extract features for many patches (parallel over the default pool).
FeatureMatrix extract_all(std::span<const diff::Patch> patches,
                          FeatureSpace space = FeatureSpace::kSyntactic);

}  // namespace patchdb::feature
