#include "feature/features.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "analysis/analyze.h"
#include "lang/abstract.h"
#include "lang/lexer.h"
#include "lang/taxonomy.h"
#include "util/levenshtein.h"
#include "util/thread_pool.h"

namespace patchdb::feature {

namespace {

constexpr std::array<std::string_view, kFeatureCount> kNames = {
    "changed_lines",
    "hunks",
    "added_lines", "removed_lines", "total_lines", "net_lines",
    "added_chars", "removed_chars", "total_chars", "net_chars",
    "added_ifs", "removed_ifs", "total_ifs", "net_ifs",
    "added_loops", "removed_loops", "total_loops", "net_loops",
    "added_calls", "removed_calls", "total_calls", "net_calls",
    "added_arith_ops", "removed_arith_ops", "total_arith_ops", "net_arith_ops",
    "added_rel_ops", "removed_rel_ops", "total_rel_ops", "net_rel_ops",
    "added_logic_ops", "removed_logic_ops", "total_logic_ops", "net_logic_ops",
    "added_bit_ops", "removed_bit_ops", "total_bit_ops", "net_bit_ops",
    "added_mem_ops", "removed_mem_ops", "total_mem_ops", "net_mem_ops",
    "added_vars", "removed_vars", "total_vars", "net_vars",
    "total_modified_funcs", "net_modified_funcs",
    "lev_mean_raw", "lev_min_raw", "lev_max_raw",
    "lev_mean_abs", "lev_min_abs", "lev_max_abs",
    "same_hunks_raw", "same_hunks_abs",
    "affected_files", "affected_files_pct",
    "affected_funcs", "affected_funcs_pct",
};

constexpr std::array<std::string_view, kSemanticFeatureCount> kSemanticNames = {
    "sem_resolved_diags",
    "sem_introduced_diags",
    "sem_net_unchecked_alloc",
    "sem_net_missing_bounds",
    "sem_net_use_after_free",
    "sem_net_int_overflow",
    "sem_net_null_guard",
    "sem_net_uninit_use",
    "sem_net_format_string",
    "sem_cfg_net_blocks",
    "sem_cfg_net_edges",
    "sem_cfg_net_cyclomatic",
};

constexpr std::array<std::string_view, kInterprocFeatureCount> kInterprocNames = {
    "ip_resolved_diags",
    "ip_introduced_diags",
    "ip_resolved_delta",
    "ip_introduced_delta",
    "ip_net_call_edges",
    "ip_changed_fan_in",
    "ip_changed_fan_out",
    "ip_summary_changes",
};

/// Write the added/removed/total/net quad for one syntactic category.
void write_quad(FeatureVector& v, std::size_t base, double added, double removed) {
  v[base] = added;
  v[base + 1] = removed;
  v[base + 2] = added + removed;
  v[base + 3] = added - removed;
}

}  // namespace

std::span<const std::string_view> feature_names() { return kNames; }

std::span<const std::string_view> feature_names(FeatureSpace space) {
  if (space == FeatureSpace::kSyntactic) return kNames;
  static const std::array<std::string_view, kInterprocExtendedFeatureCount> kAll =
      [] {
        std::array<std::string_view, kInterprocExtendedFeatureCount> all{};
        std::copy(kNames.begin(), kNames.end(), all.begin());
        std::copy(kSemanticNames.begin(), kSemanticNames.end(),
                  all.begin() + kFeatureCount);
        std::copy(kInterprocNames.begin(), kInterprocNames.end(),
                  all.begin() + kExtendedFeatureCount);
        return all;
      }();
  if (space == FeatureSpace::kSemantic) {
    return {kAll.data(), kExtendedFeatureCount};
  }
  return kAll;
}

FeatureVector extract(const diff::Patch& patch, const RepoContext& repo) {
  FeatureVector v{};

  // Gather the added and removed text of the whole patch, and per hunk.
  std::string all_added;
  std::string all_removed;
  std::size_t added_chars = 0;
  std::size_t removed_chars = 0;

  std::vector<double> lev_raw;
  std::vector<double> lev_abs;
  std::size_t same_raw = 0;
  std::size_t same_abs = 0;

  std::unordered_set<std::string> touched_functions;
  std::size_t sectionless_hunks = 0;

  for (const diff::FileDiff& fd : patch.files) {
    for (const diff::Hunk& hunk : fd.hunks) {
      const std::string removed = hunk.removed_text();
      const std::string added = hunk.added_text();
      all_removed += removed;
      all_removed += '\n';
      all_added += added;
      all_added += '\n';
      added_chars += added.size();
      removed_chars += removed.size();

      if (!(removed.empty() && added.empty())) {
        lev_raw.push_back(static_cast<double>(util::levenshtein(removed, added)));
        const std::string removed_abs = lang::abstract_code(removed);
        const std::string added_abs = lang::abstract_code(added);
        lev_abs.push_back(
            static_cast<double>(util::levenshtein(removed_abs, added_abs)));
        if (removed == added) ++same_raw;
        if (removed_abs == added_abs) ++same_abs;
      }

      if (!hunk.section.empty()) {
        // The section line is the enclosing function signature; dedupe on
        // its text to count distinct touched functions.
        touched_functions.insert(fd.new_path + "::" + hunk.section);
      } else {
        ++sectionless_hunks;
      }
    }
  }

  const lang::SyntaxCounts added = lang::count_syntax(all_added);
  const lang::SyntaxCounts removed = lang::count_syntax(all_removed);

  const double added_lines = static_cast<double>(patch.added_lines());
  const double removed_lines = static_cast<double>(patch.removed_lines());

  v[0] = added_lines + removed_lines;
  v[1] = static_cast<double>(patch.hunk_count());
  write_quad(v, 2, added_lines, removed_lines);
  write_quad(v, 6, static_cast<double>(added_chars), static_cast<double>(removed_chars));
  write_quad(v, 10, static_cast<double>(added.if_statements),
             static_cast<double>(removed.if_statements));
  write_quad(v, 14, static_cast<double>(added.loops), static_cast<double>(removed.loops));
  write_quad(v, 18, static_cast<double>(added.function_calls),
             static_cast<double>(removed.function_calls));
  write_quad(v, 22, static_cast<double>(added.arithmetic_ops),
             static_cast<double>(removed.arithmetic_ops));
  write_quad(v, 26, static_cast<double>(added.relational_ops),
             static_cast<double>(removed.relational_ops));
  write_quad(v, 30, static_cast<double>(added.logical_ops),
             static_cast<double>(removed.logical_ops));
  write_quad(v, 34, static_cast<double>(added.bitwise_ops),
             static_cast<double>(removed.bitwise_ops));
  write_quad(v, 38, static_cast<double>(added.memory_ops),
             static_cast<double>(removed.memory_ops));
  write_quad(v, 42, static_cast<double>(added.variables),
             static_cast<double>(removed.variables));

  const double total_funcs =
      static_cast<double>(touched_functions.size() + sectionless_hunks);
  v[46] = total_funcs;
  v[47] = static_cast<double>(added.function_defs) -
          static_cast<double>(removed.function_defs);

  auto write_lev = [&v](std::size_t base, const std::vector<double>& values) {
    if (values.empty()) return;  // stays 0
    double total = 0.0;
    double lo = std::numeric_limits<double>::max();
    double hi = 0.0;
    for (double d : values) {
      total += d;
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
    v[base] = total / static_cast<double>(values.size());
    v[base + 1] = lo;
    v[base + 2] = hi;
  };
  write_lev(48, lev_raw);
  write_lev(51, lev_abs);
  v[54] = static_cast<double>(same_raw);
  v[55] = static_cast<double>(same_abs);

  const double files = static_cast<double>(patch.files.size());
  v[56] = files;
  if (repo.total_files > 0) {
    v[57] = files / static_cast<double>(repo.total_files);
  } else {
    // Fallback: fraction of listed files that actually carry hunks.
    double with_hunks = 0.0;
    for (const diff::FileDiff& fd : patch.files) with_hunks += !fd.hunks.empty();
    v[57] = files > 0.0 ? with_hunks / files : 0.0;
  }
  v[58] = total_funcs;
  if (repo.total_functions > 0) {
    v[59] = total_funcs / static_cast<double>(repo.total_functions);
  } else {
    const double hunks = v[1];
    v[59] = hunks > 0.0 ? total_funcs / hunks : 0.0;
  }
  return v;
}

FeatureVector extract(const diff::Patch& patch) { return extract(patch, RepoContext{}); }

ExtendedFeatureVector extract_extended(const diff::Patch& patch,
                                       const RepoContext& repo) {
  ExtendedFeatureVector e{};
  const FeatureVector base = extract(patch, repo);
  std::copy(base.begin(), base.end(), e.begin());

  const analysis::PatchAnalysis pa = analysis::analyze_patch(patch);
  e[60] = static_cast<double>(pa.resolved.size());
  e[61] = static_cast<double>(pa.introduced.size());
  for (std::size_t c = 0; c < analysis::kCheckerCount; ++c) {
    e[62 + c] = static_cast<double>(pa.resolved_by_checker[c]) -
                static_cast<double>(pa.introduced_by_checker[c]);
  }
  e[69] = static_cast<double>(pa.net_blocks);
  e[70] = static_cast<double>(pa.net_edges);
  e[71] = static_cast<double>(pa.net_cyclomatic);
  return e;
}

ExtendedFeatureVector extract_extended(const diff::Patch& patch) {
  return extract_extended(patch, RepoContext{});
}

InterprocFeatureVector extract_interproc(const diff::Patch& patch,
                                         const RepoContext& repo) {
  InterprocFeatureVector v{};
  const ExtendedFeatureVector base = extract_extended(patch, repo);
  std::copy(base.begin(), base.end(), v.begin());

  const analysis::PatchAnalysis ip =
      analysis::analyze_patch(patch, analysis::AnalyzeOptions{.interproc = true});
  v[72] = static_cast<double>(ip.resolved.size());
  v[73] = static_cast<double>(ip.introduced.size());
  // What only the cross-function view can see: interprocedural counts
  // minus the intraprocedural ones already sitting at dims 60/61.
  v[74] = v[72] - base[60];
  v[75] = v[73] - base[61];
  v[76] = static_cast<double>(ip.net_call_edges);
  v[77] = static_cast<double>(ip.changed_fan_in);
  v[78] = static_cast<double>(ip.changed_fan_out);
  v[79] = static_cast<double>(ip.summary_changes);
  return v;
}

InterprocFeatureVector extract_interproc(const diff::Patch& patch) {
  return extract_interproc(patch, RepoContext{});
}

FeatureMatrix extract_all(std::span<const diff::Patch> patches, FeatureSpace space) {
  FeatureMatrix matrix(patches.size(), feature_dims(space));
  util::default_pool().parallel_for(
      patches.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          if (space == FeatureSpace::kSyntactic) {
            matrix.set_row(i, extract(patches[i]));
          } else if (space == FeatureSpace::kSemantic) {
            matrix.set_row(i, extract_extended(patches[i]));
          } else {
            matrix.set_row(i, extract_interproc(patches[i]));
          }
        }
      });
  return matrix;
}

}  // namespace patchdb::feature
