// Lightweight statement-level parser: the stand-in for the LLVM AST
// pass in Section III-C of the paper. The synthesizer needs, for each
// file version, (a) function boundaries and (b) the extents of `if`
// statements — start line, end line, and the span of the condition —
// which is exactly the `IfStmt <line:N, line:N>` information the paper
// reads from clang ASTs. We recover it with a brace/paren matcher over
// the token stream, which is robust on incomplete or macro-heavy code.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace patchdb::lang {

/// A function definition found in a file.
struct FunctionInfo {
  std::string name;
  std::size_t signature_line = 0;  // line of the name token (1-based)
  std::size_t body_begin_line = 0; // line of the '{'
  std::size_t body_end_line = 0;   // line of the matching '}'

  bool contains_line(std::size_t line) const noexcept {
    return line >= signature_line && line <= body_end_line;
  }
};

/// An `if` statement found in a file.
struct IfStatementInfo {
  std::size_t if_line = 0;          // line of the `if` keyword
  std::size_t cond_begin_line = 0;  // line of '('
  std::size_t cond_end_line = 0;    // line of matching ')'
  std::size_t stmt_end_line = 0;    // last line of the controlled statement
                                    // (matching '}' or the ';' of a bare stmt)
  std::string condition;            // condition text, single-spaced tokens
  bool has_else = false;
  bool braced = false;              // body wrapped in { }

  bool touches_line(std::size_t line) const noexcept {
    return line >= if_line && line <= stmt_end_line;
  }
};

struct ParsedFile {
  std::vector<FunctionInfo> functions;
  std::vector<IfStatementInfo> ifs;
  std::vector<std::size_t> loop_lines;  // lines holding for/while/do keywords
};

/// Parse a whole file given as lines (the form file stores keep).
ParsedFile parse_file(const std::vector<std::string>& lines);

/// Parse a file given as one string.
ParsedFile parse_source(std::string_view source);

/// Find the innermost function containing `line`, if any.
const FunctionInfo* enclosing_function(const ParsedFile& parsed, std::size_t line);

/// Find every `if` statement whose extent intersects [first, last].
std::vector<const IfStatementInfo*> ifs_touching(const ParsedFile& parsed,
                                                 std::size_t first,
                                                 std::size_t last);

}  // namespace patchdb::lang
