// Token abstraction: map identifiers and literals onto canonical symbols
// so that two hunks that differ only in naming compare as equal. Table I
// computes the hunk-level Levenshtein features twice — "before token
// abstraction" and "after token abstraction" — and counts identical
// hunks under both views (features 49-56).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace patchdb::lang {

struct AbstractOptions {
  // When true, identifiers that look like function calls (followed by a
  // '(') get the distinct symbol FUNC instead of ID, preserving the
  // call structure of the code.
  bool distinguish_calls = true;
};

/// Abstract a token sequence in place order: identifiers -> "ID"/"FUNC",
/// numbers -> "NUM", strings -> "STR", char literals -> "CHR"; keywords,
/// operators and punctuation unchanged; comments/preprocessor dropped.
std::vector<std::string> abstract_tokens(const std::vector<Token>& tokens,
                                         const AbstractOptions& options = {});

/// Lex then abstract, returning one space-joined canonical string. This
/// is the "after token abstraction" text used for the Levenshtein
/// features and same-hunk detection.
std::string abstract_code(std::string_view source,
                          const AbstractOptions& options = {});

/// Alpha-renaming abstraction: identifiers map to V1, V2, ... in first-
/// occurrence order (consistently within the fragment), literals to
/// NUM/STR/CHR. Unlike abstract_code this preserves which positions
/// share an identifier — `f(a, a)` and `f(a, b)` stay distinct — which
/// is what near-duplicate fingerprinting needs.
std::string alpha_abstract_code(std::string_view source);

}  // namespace patchdb::lang
