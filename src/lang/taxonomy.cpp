#include "lang/taxonomy.h"

#include <unordered_set>

#include "lang/lexer.h"

namespace patchdb::lang {

OperatorClass classify_operator(std::string_view op) {
  if (op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" ||
      op == ">=" || op == "<=>") {
    return OperatorClass::kRelational;
  }
  if (op == "&&" || op == "||" || op == "!" || op == "and" || op == "or" ||
      op == "not") {
    return OperatorClass::kLogical;
  }
  if (op == "&" || op == "|" || op == "^" || op == "~" || op == "<<" ||
      op == ">>") {
    return OperatorClass::kBitwise;
  }
  if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%" ||
      op == "++" || op == "--") {
    return OperatorClass::kArithmetic;
  }
  if (op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
      op == "%=" || op == "&=" || op == "|=" || op == "^=" || op == "<<=" ||
      op == ">>=") {
    return OperatorClass::kAssignment;
  }
  return OperatorClass::kOther;
}

bool is_memory_operator(std::string_view name) {
  static const std::unordered_set<std::string_view> kMemoryOps = {
      "malloc", "calloc", "realloc", "free", "new", "delete",
      "memcpy", "memmove", "memset", "memcmp", "mmap", "munmap",
      "strcpy", "strncpy", "strlcpy", "strcat", "strncat", "strlcat",
      "strdup", "strndup", "sprintf", "snprintf", "vsnprintf",
      "alloca", "kmalloc", "kzalloc", "kcalloc", "kfree", "vmalloc",
      "vfree", "kmem_cache_alloc", "kmem_cache_free", "brk", "sbrk",
      "xmalloc", "xfree", "g_malloc", "g_free", "av_malloc", "av_free",
      "OPENSSL_malloc", "OPENSSL_free", "sizeof",
  };
  return kMemoryOps.contains(name);
}

SyntaxCounts& SyntaxCounts::operator+=(const SyntaxCounts& other) noexcept {
  if_statements += other.if_statements;
  loops += other.loops;
  function_calls += other.function_calls;
  arithmetic_ops += other.arithmetic_ops;
  relational_ops += other.relational_ops;
  logical_ops += other.logical_ops;
  bitwise_ops += other.bitwise_ops;
  memory_ops += other.memory_ops;
  variables += other.variables;
  function_defs += other.function_defs;
  return *this;
}

SyntaxCounts count_syntax(const std::vector<Token>& tokens) {
  SyntaxCounts counts;
  std::unordered_set<std::string_view> seen_vars;

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    const bool next_is_paren = i + 1 < tokens.size() &&
                               tokens[i + 1].kind == TokenKind::kPunctuator &&
                               tokens[i + 1].text == "(";
    switch (t.kind) {
      case TokenKind::kKeyword:
        if (t.text == "if") ++counts.if_statements;
        if (t.text == "for" || t.text == "while" || t.text == "do") ++counts.loops;
        if (is_memory_operator(t.text)) ++counts.memory_ops;  // new/delete/sizeof
        break;
      case TokenKind::kIdentifier:
        if (is_memory_operator(t.text)) ++counts.memory_ops;
        if (next_is_paren) {
          ++counts.function_calls;
          // Function definition heuristic: `type name ( ... ) {` — the
          // token before the name is a type-ish token and a '{' follows
          // the matching ')'.
          if (i > 0 && (tokens[i - 1].kind == TokenKind::kKeyword ||
                        tokens[i - 1].kind == TokenKind::kIdentifier ||
                        tokens[i - 1].text == "*")) {
            std::size_t depth = 0;
            for (std::size_t j = i + 1; j < tokens.size(); ++j) {
              if (tokens[j].text == "(") ++depth;
              else if (tokens[j].text == ")") {
                if (--depth == 0) {
                  if (j + 1 < tokens.size() && tokens[j + 1].text == "{") {
                    ++counts.function_defs;
                  }
                  break;
                }
              }
            }
          }
        } else {
          if (seen_vars.insert(t.text).second) ++counts.variables;
        }
        break;
      case TokenKind::kOperator:
        switch (classify_operator(t.text)) {
          case OperatorClass::kArithmetic: ++counts.arithmetic_ops; break;
          case OperatorClass::kRelational: ++counts.relational_ops; break;
          case OperatorClass::kLogical: ++counts.logical_ops; break;
          case OperatorClass::kBitwise: ++counts.bitwise_ops; break;
          default: break;
        }
        break;
      default:
        break;
    }
  }
  return counts;
}

SyntaxCounts count_syntax(std::string_view source) {
  return count_syntax(lex(source));
}

}  // namespace patchdb::lang
