#include "lang/parser.h"

#include <algorithm>

#include "lang/lexer.h"

namespace patchdb::lang {

namespace {

/// Index of the token matching an opening bracket at `open_index`, or
/// npos when unbalanced. `open`/`close` are single-char punctuators.
std::size_t match_bracket(const std::vector<Token>& tokens, std::size_t open_index,
                          std::string_view open, std::string_view close) {
  std::size_t depth = 0;
  for (std::size_t i = open_index; i < tokens.size(); ++i) {
    if (tokens[i].text == open) {
      ++depth;
    } else if (tokens[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// End (token index) of the statement starting at `start`: for a braced
/// block, the matching '}'; otherwise the terminating ';'. Handles a
/// nested if/for/while chain by skipping over its parenthesized head.
std::size_t statement_end(const std::vector<Token>& tokens, std::size_t start) {
  if (start >= tokens.size()) return kNpos;
  if (tokens[start].text == "{") {
    return match_bracket(tokens, start, "{", "}");
  }
  std::size_t i = start;
  std::size_t brace_depth = 0;
  std::size_t paren_depth = 0;
  while (i < tokens.size()) {
    const std::string& text = tokens[i].text;
    if (text == "(") ++paren_depth;
    else if (text == ")") { if (paren_depth > 0) --paren_depth; }
    else if (text == "{") ++brace_depth;
    else if (text == "}") {
      if (brace_depth == 0) return i > start ? i - 1 : start;  // ill-formed
      if (--brace_depth == 0 && paren_depth == 0) {
        // A `if (...) { ... }` nested inside an unbraced body ends it
        // only if no `;` is required — treat the '}' as a candidate end
        // unless an `else` follows.
        if (i + 1 < tokens.size() && tokens[i + 1].text == "else") {
          ++i;
          continue;
        }
        return i;
      }
    } else if (text == ";" && brace_depth == 0 && paren_depth == 0) {
      return i;
    }
    ++i;
  }
  return tokens.empty() ? kNpos : tokens.size() - 1;
}

}  // namespace

ParsedFile parse_source(std::string_view source) {
  ParsedFile out;
  const std::vector<Token> tokens = lex(source);

  // --- Function definitions: `name ( ... ) {` at brace depth 0, where
  // the matching ')' is directly followed by '{' (ignoring common
  // attributes is out of scope for generated corpora).
  std::size_t depth = 0;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.text == "{") {
      ++depth;
      continue;
    }
    if (t.text == "}") {
      if (depth > 0) --depth;
      continue;
    }
    if (depth != 0 || t.kind != TokenKind::kIdentifier) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    // Must look like a definition, not a call: previous token is a type
    // name, '*' or a keyword (static/int/void...).
    if (i == 0) continue;
    const Token& prev = tokens[i - 1];
    const bool type_like = prev.kind == TokenKind::kKeyword ||
                           prev.kind == TokenKind::kIdentifier || prev.text == "*";
    if (!type_like) continue;
    const std::size_t close = match_bracket(tokens, i + 1, "(", ")");
    if (close == kNpos || close + 1 >= tokens.size()) continue;
    if (tokens[close + 1].text != "{") continue;
    const std::size_t body_end = match_bracket(tokens, close + 1, "{", "}");
    if (body_end == kNpos) continue;

    FunctionInfo fn;
    fn.name = t.text;
    fn.signature_line = t.line;
    fn.body_begin_line = tokens[close + 1].line;
    fn.body_end_line = tokens[body_end].line;
    out.functions.push_back(std::move(fn));
    // Note: we do not skip past the body; nested lambdas/ifs are found by
    // the passes below which scan the whole token stream.
  }

  // --- if statements and loops.
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (t.kind != TokenKind::kKeyword) continue;
    if (t.text == "for" || t.text == "while" || t.text == "do") {
      out.loop_lines.push_back(t.line);
      continue;
    }
    if (t.text != "if") continue;

    IfStatementInfo info;
    info.if_line = t.line;
    // `else if` chains produce their own `if` token — fine, each is a
    // separate IfStatementInfo, matching clang's nested IfStmt nodes.
    std::size_t open = i + 1;
    // `if constexpr (...)`
    if (open < tokens.size() && tokens[open].text == "constexpr") ++open;
    if (open >= tokens.size() || tokens[open].text != "(") continue;
    const std::size_t close = match_bracket(tokens, open, "(", ")");
    if (close == kNpos) continue;
    info.cond_begin_line = tokens[open].line;
    info.cond_end_line = tokens[close].line;
    for (std::size_t j = open + 1; j < close; ++j) {
      if (!info.condition.empty()) info.condition += ' ';
      info.condition += tokens[j].text;
    }

    std::size_t body_start = close + 1;
    if (body_start >= tokens.size()) continue;
    info.braced = tokens[body_start].text == "{";
    std::size_t end = statement_end(tokens, body_start);
    if (end == kNpos) continue;

    // else branch (and else-if chains) extend the statement.
    while (end + 1 < tokens.size() && tokens[end + 1].text == "else") {
      info.has_else = true;
      std::size_t else_body = end + 2;
      if (else_body < tokens.size() && tokens[else_body].text == "if") {
        // skip the `if (...)` head, then its body
        std::size_t nested_open = else_body + 1;
        if (nested_open < tokens.size() && tokens[nested_open].text == "constexpr") {
          ++nested_open;
        }
        if (nested_open >= tokens.size() || tokens[nested_open].text != "(") break;
        const std::size_t nested_close = match_bracket(tokens, nested_open, "(", ")");
        if (nested_close == kNpos) break;
        else_body = nested_close + 1;
      }
      const std::size_t else_end = statement_end(tokens, else_body);
      if (else_end == kNpos) break;
      end = else_end;
    }
    info.stmt_end_line = tokens[end].line;
    out.ifs.push_back(std::move(info));
  }
  return out;
}

ParsedFile parse_file(const std::vector<std::string>& lines) {
  std::string source;
  std::size_t total = 0;
  for (const std::string& l : lines) total += l.size() + 1;
  source.reserve(total);
  for (const std::string& l : lines) {
    source += l;
    source += '\n';
  }
  return parse_source(source);
}

const FunctionInfo* enclosing_function(const ParsedFile& parsed, std::size_t line) {
  const FunctionInfo* best = nullptr;
  for (const FunctionInfo& fn : parsed.functions) {
    if (!fn.contains_line(line)) continue;
    // Innermost = smallest extent.
    if (best == nullptr ||
        fn.body_end_line - fn.signature_line < best->body_end_line - best->signature_line) {
      best = &fn;
    }
  }
  return best;
}

std::vector<const IfStatementInfo*> ifs_touching(const ParsedFile& parsed,
                                                 std::size_t first,
                                                 std::size_t last) {
  std::vector<const IfStatementInfo*> out;
  for (const IfStatementInfo& info : parsed.ifs) {
    if (info.if_line <= last && info.stmt_end_line >= first) out.push_back(&info);
  }
  return out;
}

}  // namespace patchdb::lang
