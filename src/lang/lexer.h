// Hand-written C/C++ lexer. Feature extraction (Table I), token
// abstraction, and the RNN token stream all start here.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"

namespace patchdb::lang {

struct LexOptions {
  bool keep_comments = false;       // drop comments by default
  bool keep_preprocessor = true;    // keep # directives as single tokens
};

/// Tokenize a source fragment. Never throws: unrecognized bytes become
/// kUnknown tokens so dirty patch content cannot break the pipeline.
std::vector<Token> lex(std::string_view source, const LexOptions& options = {});

/// Tokenize and return only the token texts (the RNN input form).
std::vector<std::string> lex_texts(std::string_view source,
                                   const LexOptions& options = {});

}  // namespace patchdb::lang
