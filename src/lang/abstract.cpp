#include "lang/abstract.h"

#include <unordered_map>

#include "lang/lexer.h"

namespace patchdb::lang {

std::vector<std::string> abstract_tokens(const std::vector<Token>& tokens,
                                         const AbstractOptions& options) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    switch (t.kind) {
      case TokenKind::kIdentifier: {
        const bool is_call = options.distinguish_calls && i + 1 < tokens.size() &&
                             tokens[i + 1].kind == TokenKind::kPunctuator &&
                             tokens[i + 1].text == "(";
        out.emplace_back(is_call ? "FUNC" : "ID");
        break;
      }
      case TokenKind::kNumber:
        out.emplace_back("NUM");
        break;
      case TokenKind::kString:
        out.emplace_back("STR");
        break;
      case TokenKind::kCharLiteral:
        out.emplace_back("CHR");
        break;
      case TokenKind::kComment:
      case TokenKind::kPreprocessor:
        break;  // dropped
      default:
        out.push_back(t.text);
        break;
    }
  }
  return out;
}

std::string alpha_abstract_code(std::string_view source) {
  const std::vector<Token> tokens = lex(source);
  std::unordered_map<std::string, std::size_t> names;
  std::string out;
  auto append = [&out](std::string_view piece) {
    if (!out.empty()) out += ' ';
    out += piece;
  };
  for (const Token& t : tokens) {
    switch (t.kind) {
      case TokenKind::kIdentifier: {
        const auto [it, inserted] = names.emplace(t.text, names.size() + 1);
        std::string symbol = "V";
        symbol += std::to_string(it->second);
        append(symbol);
        break;
      }
      case TokenKind::kNumber: append("NUM"); break;
      case TokenKind::kString: append("STR"); break;
      case TokenKind::kCharLiteral: append("CHR"); break;
      case TokenKind::kComment:
      case TokenKind::kPreprocessor: break;
      default: append(t.text); break;
    }
  }
  return out;
}

std::string abstract_code(std::string_view source, const AbstractOptions& options) {
  const std::vector<Token> tokens = lex(source);
  const std::vector<std::string> abstracted = abstract_tokens(tokens, options);
  std::string out;
  for (std::size_t i = 0; i < abstracted.size(); ++i) {
    if (i != 0) out += ' ';
    out += abstracted[i];
  }
  return out;
}

}  // namespace patchdb::lang
