// Token model for the C/C++ lexer. Patches are not complete programs, so
// the lexer is line-tolerant: it can tokenize any fragment (a hunk's
// added lines, a whole file) without needing the surrounding context.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace patchdb::lang {

enum class TokenKind {
  kIdentifier,
  kKeyword,
  kNumber,
  kString,
  kCharLiteral,
  kOperator,     // +, -, ==, &&, <<=, ...
  kPunctuator,   // ( ) { } [ ] ; , : :: ...
  kComment,      // // or /* */ (single token, may span lines)
  kPreprocessor, // a whole # directive line
  kUnknown,
};

struct Token {
  TokenKind kind = TokenKind::kUnknown;
  std::string text;
  std::size_t line = 0;    // 1-based line of the first character
  std::size_t column = 0;  // 1-based column of the first character

  friend bool operator==(const Token&, const Token&) = default;
};

/// True for C/C++ keywords (the union of C11 and common C++ keywords;
/// patches mix both).
bool is_keyword(std::string_view word);

const char* token_kind_name(TokenKind kind);

}  // namespace patchdb::lang
