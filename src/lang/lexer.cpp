#include "lang/lexer.h"

#include <array>
#include <cctype>
#include <unordered_set>

namespace patchdb::lang {

bool is_keyword(std::string_view word) {
  static const std::unordered_set<std::string_view> kKeywords = {
      // C
      "auto", "break", "case", "char", "const", "continue", "default", "do",
      "double", "else", "enum", "extern", "float", "for", "goto", "if",
      "inline", "int", "long", "register", "restrict", "return", "short",
      "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
      "unsigned", "void", "volatile", "while", "_Bool", "_Complex",
      "_Atomic", "_Static_assert", "_Noreturn", "_Thread_local",
      // common C++ additions seen in patches
      "bool", "true", "false", "class", "namespace", "template", "typename",
      "public", "private", "protected", "virtual", "override", "final",
      "new", "delete", "this", "nullptr", "using", "try", "catch", "throw",
      "operator", "friend", "explicit", "mutable", "constexpr", "consteval",
      "constinit", "static_cast", "dynamic_cast", "const_cast",
      "reinterpret_cast", "noexcept", "decltype", "concept", "requires",
      "co_await", "co_return", "co_yield", "alignas", "alignof",
      "static_assert", "thread_local", "wchar_t", "char8_t", "char16_t",
      "char32_t", "and", "or", "not", "xor", "NULL",
  };
  return kKeywords.contains(word);
}

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kCharLiteral: return "char";
    case TokenKind::kOperator: return "operator";
    case TokenKind::kPunctuator: return "punctuator";
    case TokenKind::kComment: return "comment";
    case TokenKind::kPreprocessor: return "preprocessor";
    case TokenKind::kUnknown: return "unknown";
  }
  return "?";
}

namespace {

struct Scanner {
  std::string_view src;
  std::size_t pos = 0;
  std::size_t line = 1;
  std::size_t column = 1;

  bool done() const noexcept { return pos >= src.size(); }
  char peek(std::size_t ahead = 0) const noexcept {
    return pos + ahead < src.size() ? src[pos + ahead] : '\0';
  }
  char advance() noexcept {
    const char c = src[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool is_ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

// Multi-character operators, longest first within each leading char.
constexpr std::array<std::string_view, 36> kOperators3Plus = {
    "<<=", ">>=", "...", "->*", "<=>",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "->", "::", ".*", "##",
    "+", "-", "*", "/", "%", "=", "<", ">", "!",
};

constexpr std::string_view kSingleOps = "&|^~?.";
constexpr std::string_view kPunct = "(){}[];,:#@";

void scan_string(Scanner& s, char quote, std::string& out) {
  out += s.advance();  // opening quote
  while (!s.done()) {
    const char c = s.advance();
    out += c;
    if (c == '\\' && !s.done()) {
      out += s.advance();  // escaped char, even if it is the quote
      continue;
    }
    if (c == quote || c == '\n') break;  // unterminated at EOL: stop
  }
}

}  // namespace

std::vector<Token> lex(std::string_view source, const LexOptions& options) {
  std::vector<Token> tokens;
  Scanner s{source};

  while (!s.done()) {
    const char c = s.peek();
    const std::size_t tok_line = s.line;
    const std::size_t tok_col = s.column;

    if (std::isspace(static_cast<unsigned char>(c))) {
      s.advance();
      continue;
    }

    // Preprocessor directive: only when # begins the (trimmed) line.
    if (c == '#' && tok_col == 1) {
      std::string text;
      while (!s.done() && s.peek() != '\n') {
        // Line continuations keep the directive going.
        if (s.peek() == '\\' && s.peek(1) == '\n') {
          s.advance();
          s.advance();
          text += ' ';
          continue;
        }
        text += s.advance();
      }
      if (options.keep_preprocessor) {
        tokens.push_back(Token{TokenKind::kPreprocessor, std::move(text), tok_line, tok_col});
      }
      continue;
    }

    if (c == '/' && s.peek(1) == '/') {
      std::string text;
      while (!s.done() && s.peek() != '\n') text += s.advance();
      if (options.keep_comments) {
        tokens.push_back(Token{TokenKind::kComment, std::move(text), tok_line, tok_col});
      }
      continue;
    }
    if (c == '/' && s.peek(1) == '*') {
      std::string text;
      text += s.advance();
      text += s.advance();
      while (!s.done()) {
        if (s.peek() == '*' && s.peek(1) == '/') {
          text += s.advance();
          text += s.advance();
          break;
        }
        text += s.advance();
      }
      if (options.keep_comments) {
        tokens.push_back(Token{TokenKind::kComment, std::move(text), tok_line, tok_col});
      }
      continue;
    }

    if (is_ident_start(c)) {
      std::string text;
      while (!s.done() && is_ident_cont(s.peek())) text += s.advance();
      const TokenKind kind =
          is_keyword(text) ? TokenKind::kKeyword : TokenKind::kIdentifier;
      tokens.push_back(Token{kind, std::move(text), tok_line, tok_col});
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(s.peek(1))))) {
      std::string text;
      bool seen_exp = false;
      while (!s.done()) {
        const char d = s.peek();
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') {
          seen_exp = (d == 'e' || d == 'E' || d == 'p' || d == 'P');
          text += s.advance();
        } else if ((d == '+' || d == '-') && seen_exp &&
                   (text.back() == 'e' || text.back() == 'E' ||
                    text.back() == 'p' || text.back() == 'P')) {
          text += s.advance();
        } else {
          break;
        }
      }
      tokens.push_back(Token{TokenKind::kNumber, std::move(text), tok_line, tok_col});
      continue;
    }

    if (c == '"') {
      std::string text;
      scan_string(s, '"', text);
      tokens.push_back(Token{TokenKind::kString, std::move(text), tok_line, tok_col});
      continue;
    }
    if (c == '\'') {
      std::string text;
      scan_string(s, '\'', text);
      tokens.push_back(Token{TokenKind::kCharLiteral, std::move(text), tok_line, tok_col});
      continue;
    }

    // Operators: try longest match from the table.
    bool matched = false;
    for (std::string_view op : kOperators3Plus) {
      if (source.substr(s.pos, op.size()) == op) {
        for (std::size_t i = 0; i < op.size(); ++i) s.advance();
        tokens.push_back(Token{TokenKind::kOperator, std::string(op), tok_line, tok_col});
        matched = true;
        break;
      }
    }
    if (matched) continue;

    if (kSingleOps.find(c) != std::string_view::npos) {
      s.advance();
      tokens.push_back(Token{TokenKind::kOperator, std::string(1, c), tok_line, tok_col});
      continue;
    }
    if (kPunct.find(c) != std::string_view::npos) {
      s.advance();
      tokens.push_back(Token{TokenKind::kPunctuator, std::string(1, c), tok_line, tok_col});
      continue;
    }

    s.advance();
    tokens.push_back(Token{TokenKind::kUnknown, std::string(1, c), tok_line, tok_col});
  }
  return tokens;
}

std::vector<std::string> lex_texts(std::string_view source, const LexOptions& options) {
  std::vector<std::string> out;
  for (Token& t : lex(source, options)) out.push_back(std::move(t.text));
  return out;
}

}  // namespace patchdb::lang
