// Syntactic classification of tokens and token sequences: the counting
// primitives behind Table I's language-level features (if statements,
// loops, function calls, arithmetic/relational/logical/bitwise/memory
// operators, variables) and behind the patch-pattern categorizer.
#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "lang/token.h"

namespace patchdb::lang {

enum class OperatorClass {
  kArithmetic,  // + - * / % ++ -- (in expression position)
  kRelational,  // == != < > <= >=
  kLogical,     // && || !
  kBitwise,     // & | ^ ~ << >>
  kAssignment,  // = += -= ...
  kOther,
};

/// Classify an operator token's text. Ambiguous tokens (&, *, -, +) are
/// classified by their dominant use: & and | count as bitwise, * and -
/// and + as arithmetic; this matches how the paper's Python parser
/// counts operator categories without full type analysis.
OperatorClass classify_operator(std::string_view op);

/// True for identifiers naming memory-management routines (malloc, free,
/// memcpy, strcpy, new/delete, kmalloc, ...) — the paper's "memory
/// operators" feature family (39-42).
bool is_memory_operator(std::string_view name);

/// Counts of every Table I syntactic category over one code fragment.
struct SyntaxCounts {
  std::size_t if_statements = 0;
  std::size_t loops = 0;          // for, while, do
  std::size_t function_calls = 0; // identifier '(' — excluding keywords
  std::size_t arithmetic_ops = 0;
  std::size_t relational_ops = 0;
  std::size_t logical_ops = 0;
  std::size_t bitwise_ops = 0;
  std::size_t memory_ops = 0;
  std::size_t variables = 0;      // distinct non-call identifiers
  std::size_t function_defs = 0;  // heuristic: ident '(' ... ')' '{' at depth 0

  SyntaxCounts& operator+=(const SyntaxCounts& other) noexcept;
};

/// Count syntactic categories in a fragment (e.g. the added lines of a
/// hunk). Robust to incomplete code.
SyntaxCounts count_syntax(std::string_view source);
SyntaxCounts count_syntax(const std::vector<Token>& tokens);

}  // namespace patchdb::lang
