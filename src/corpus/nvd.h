// Simulated NVD + GitHub transport: CVE entries with reference URLs, an
// in-memory "remote" that serves GitHub commit pages as `.patch` text,
// and the crawler that drives the paper's Section III-A pipeline
// (URL -> download -> parse -> strip non-C/C++ -> dataset). The
// simulator injects the dirt the paper reports: entries without patch
// links, dead links, and ~1% wrong links pointing at version-bump pages.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "diff/patch.h"

namespace patchdb::corpus {

struct NvdEntry {
  std::string cve_id;                       // "CVE-2017-12345"
  std::vector<std::string> references;      // all reference URLs
  std::vector<std::string> patch_tagged;    // subset tagged "Patch"
  // Enhanced information the NVD layers over CVE (Section II-B): CVSS
  // base score, a CWE tag, and the disclosure year parsed from the id.
  double cvss = 0.0;
  std::string cwe;                          // "CWE-119", ...
  int year = 0;
};

/// CWE tag matching a Table V patch pattern (what the vulnerability most
/// plausibly was, given how it was fixed). Used when fabricating entries.
std::string cwe_for_type(int table5_type);

/// GitHub commit URL for a repo/hash pair (the form the paper crawls).
std::string github_commit_url(const std::string& repo, const std::string& hash);

/// In-memory web: URL -> page body. Patch pages live at "<commit>.patch".
class RemoteStore {
 public:
  void put(std::string url, std::string body);

  /// nullopt = 404.
  std::optional<std::string> fetch(const std::string& url) const;

  std::size_t page_count() const noexcept { return pages_.size(); }

 private:
  std::unordered_map<std::string, std::string> pages_;
};

struct CrawlStats {
  std::size_t entries_total = 0;
  std::size_t entries_without_patch_link = 0;
  std::size_t links_fetched = 0;
  std::size_t links_dead = 0;
  std::size_t parse_failures = 0;
  std::size_t dropped_non_cpp_files = 0;
  std::size_t dropped_empty_after_filter = 0;
  std::size_t patches_collected = 0;
};

struct CrawledPatch {
  std::string cve_id;
  diff::Patch patch;
};

/// Run the NVD collection pipeline over the simulated web.
class NvdCrawler {
 public:
  explicit NvdCrawler(const RemoteStore& store) : store_(store) {}

  /// Crawl every entry's patch-tagged GitHub commit links; download the
  /// `.patch` form, parse it, strip non-C/C++ file diffs, and keep
  /// patches that still contain C/C++ hunks.
  std::vector<CrawledPatch> crawl(const std::vector<NvdEntry>& entries);

  const CrawlStats& stats() const noexcept { return stats_; }

 private:
  const RemoteStore& store_;
  CrawlStats stats_;
};

}  // namespace patchdb::corpus
