// End-to-end simulated world: repositories, an NVD with CVE entries and
// patch hyperlinks, a remote store serving `.patch` pages, a wild commit
// pool with a 6-10% silent-security rate, and the ground-truth oracle.
// Every experiment bench builds one of these at its chosen scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/nvd.h"
#include "corpus/oracle.h"
#include "corpus/repo.h"
#include "corpus/taxonomy.h"

namespace patchdb::corpus {

struct WorldConfig {
  /// Number of simulated repositories (paper: 313).
  std::size_t repos = 40;

  /// Security patches reachable from NVD entries (paper: 4076).
  std::size_t nvd_security = 800;

  /// Size of the unlabeled wild pool (paper: 100K-200K drawn from 6M).
  std::size_t wild_pool = 20000;

  /// Fraction of wild commits that are silent security patches
  /// (paper observes 6-10%).
  double wild_security_rate = 0.08;

  /// Security-type mixes (Fig. 6 shapes).
  TypeDistribution nvd_types = nvd_type_distribution();
  TypeDistribution wild_types = wild_type_distribution();

  /// Collection dirt rates.
  double entry_missing_link_prob = 0.25;  // CVE entries with no patch link
  double dead_link_prob = 0.02;           // links that 404
  double wrong_link_prob = 0.01;          // links to version-bump pages

  /// Keep BEFORE/AFTER file snapshots on these sets (synthesis needs them).
  bool keep_nvd_snapshots = true;
  bool keep_wild_snapshots = false;

  /// Oracle label noise (expert disagreement model).
  double label_noise = 0.0;

  /// Publish wild commits' `.patch` pages on the simulated web. Only the
  /// NVD crawler reads the remote store, so this is off by default; turn
  /// it on when an experiment wants to fetch wild pages by URL (costs
  /// ~1-2 KB of memory per wild commit).
  bool publish_wild_pages = false;

  CommitOptions commit;

  std::uint64_t seed = 42;
};

struct World {
  WorldConfig config;

  /// Verified security patches as collected through the NVD pipeline
  /// (already filtered to C/C++; snapshots per keep_nvd_snapshots).
  std::vector<CommitRecord> nvd_security;

  /// The unlabeled wild pool (mixed security/non-security).
  std::vector<CommitRecord> wild;

  /// Collection artifacts: the simulated NVD, web, and what the crawler
  /// reported while building nvd_security.
  std::vector<NvdEntry> nvd_entries;
  RemoteStore remote;
  CrawlStats crawl_stats;

  Oracle oracle;

  std::vector<std::string> repo_names;
};

/// Build the world: fabricate commits, publish them on the simulated
/// web, index a subset in the NVD, run the crawler, and register all
/// ground truth with the oracle.
World build_world(const WorldConfig& config);

}  // namespace patchdb::corpus
