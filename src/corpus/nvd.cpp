#include "corpus/nvd.h"

#include "diff/filter.h"
#include "diff/parse.h"
#include "util/strings.h"

namespace patchdb::corpus {

std::string github_commit_url(const std::string& repo, const std::string& hash) {
  return "https://github.com/oss/" + repo + "/commit/" + hash;
}

std::string cwe_for_type(int table5_type) {
  switch (table5_type) {
    case 1: return "CWE-119";   // improper restriction of memory bounds
    case 2: return "CWE-476";   // NULL pointer dereference
    case 3: return "CWE-20";    // improper input validation
    case 4: return "CWE-190";   // integer overflow
    case 5: return "CWE-665";   // improper initialization
    case 6:
    case 7: return "CWE-686";   // incorrect argument/declaration use
    case 8: return "CWE-676";   // use of dangerous function
    case 9: return "CWE-755";   // improper exception/error handling
    case 10: return "CWE-416";  // use after free / ordering
    case 11: return "CWE-691";  // insufficient control flow management
    default: return "CWE-710";  // coding-standard violation
  }
}

void RemoteStore::put(std::string url, std::string body) {
  pages_[std::move(url)] = std::move(body);
}

std::optional<std::string> RemoteStore::fetch(const std::string& url) const {
  const auto it = pages_.find(url);
  if (it == pages_.end()) return std::nullopt;
  return it->second;
}

std::vector<CrawledPatch> NvdCrawler::crawl(const std::vector<NvdEntry>& entries) {
  std::vector<CrawledPatch> out;
  stats_ = CrawlStats{};
  stats_.entries_total = entries.size();

  for (const NvdEntry& entry : entries) {
    // The paper only follows references tagged "Patch" that point at
    // GitHub commit pages.
    std::vector<const std::string*> commit_links;
    for (const std::string& url : entry.patch_tagged) {
      if (util::contains(url, "github.com") && util::contains(url, "/commit/")) {
        commit_links.push_back(&url);
      }
    }
    if (commit_links.empty()) {
      ++stats_.entries_without_patch_link;
      continue;
    }

    for (const std::string* url : commit_links) {
      ++stats_.links_fetched;
      const std::optional<std::string> body = store_.fetch(*url + ".patch");
      if (!body.has_value()) {
        ++stats_.links_dead;
        continue;
      }
      diff::Patch patch;
      try {
        patch = diff::parse_patch(*body);
      } catch (const diff::ParseError&) {
        ++stats_.parse_failures;
        continue;
      }
      const diff::FilterStats filtered = diff::keep_cpp_only(patch);
      stats_.dropped_non_cpp_files += filtered.files_dropped;
      if (!diff::has_cpp_changes(patch)) {
        ++stats_.dropped_empty_after_filter;
        continue;
      }
      ++stats_.patches_collected;
      out.push_back(CrawledPatch{entry.cve_id, std::move(patch)});
    }
  }
  return out;
}

}  // namespace patchdb::corpus
