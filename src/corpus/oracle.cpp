#include "corpus/oracle.h"

#include <stdexcept>

namespace patchdb::corpus {

void Oracle::add(const std::string& commit_hash, GroundTruth truth) {
  truths_[commit_hash] = truth;
}

bool Oracle::verify_security(const std::string& commit_hash) {
  ++effort_;
  const GroundTruth t = truth(commit_hash);
  if (label_noise_ > 0.0 && rng_.chance(label_noise_)) return !t.is_security;
  return t.is_security;
}

GroundTruth Oracle::truth(const std::string& commit_hash) const {
  const auto it = truths_.find(commit_hash);
  if (it == truths_.end()) {
    throw std::out_of_range("Oracle: unknown commit " + commit_hash);
  }
  return it->second;
}

}  // namespace patchdb::corpus
