#include "corpus/world.h"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "diff/render.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace patchdb::corpus {

namespace {

std::string draw_cve_id(util::Rng& rng, std::size_t serial, int* year_out) {
  const int year = 1999 + static_cast<int>(rng.index(21));
  if (year_out != nullptr) *year_out = year;
  return "CVE-" + std::to_string(year) + "-" + std::to_string(10000 + serial);
}

}  // namespace

World build_world(const WorldConfig& config) {
  if (config.repos == 0) throw std::invalid_argument("build_world: repos == 0");
  World world;
  world.config = config;
  world.oracle = Oracle(config.label_noise, config.seed ^ 0x9e3779b9ULL);

  util::Rng rng(config.seed);
  world.repo_names.reserve(config.repos);
  for (std::size_t i = 0; i < config.repos; ++i) {
    world.repo_names.push_back(draw_repo_name(rng) + "_" + std::to_string(i));
  }

  // ------------------------------------------------------------------
  // 1. Fabricate the NVD-side security commits (these are what the CVE
  //    entries will reference) and the wild pool, in parallel.
  // ------------------------------------------------------------------
  CommitOptions nvd_commit = config.commit;
  nvd_commit.keep_snapshots = config.keep_nvd_snapshots;
  CommitOptions wild_commit = config.commit;
  wild_commit.keep_snapshots = config.keep_wild_snapshots;
  // Silent wild fixes frequently bundle unrelated cleanups; NVD-indexed
  // fixes are minimal (see CommitOptions::bundle_cleanup_prob).
  wild_commit.bundle_cleanup_prob = 0.5;
  // 61% of real security patches never mention their security impact
  // (paper Sec. I, citing [35]) — the wild side is euphemized at exactly
  // that rate; NVD-referenced fixes keep (and below, enrich) their
  // descriptive messages.
  wild_commit.euphemize_prob = 0.61;

  std::vector<CommitRecord> nvd_commits(config.nvd_security);
  std::vector<std::uint64_t> nvd_seeds(config.nvd_security);
  for (auto& s : nvd_seeds) s = rng();
  util::default_pool().parallel_for(
      config.nvd_security, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          util::Rng local(nvd_seeds[i]);
          const std::size_t type_idx = local.weighted(
              std::span(config.nvd_types.data(), config.nvd_types.size()));
          const PatchType type = security_types()[type_idx];
          const std::string& repo =
              world.repo_names[local.index(world.repo_names.size())];
          nvd_commits[i] = make_commit(local, repo, type, nvd_commit);
        }
      });

  world.wild.resize(config.wild_pool);
  std::vector<std::uint64_t> wild_seeds(config.wild_pool);
  for (auto& s : wild_seeds) s = rng();
  util::default_pool().parallel_for(
      config.wild_pool, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          util::Rng local(wild_seeds[i]);
          const PatchType type = draw_patch_type(local, config.wild_types,
                                                 config.wild_security_rate);
          const std::string& repo =
              world.repo_names[local.index(world.repo_names.size())];
          world.wild[i] = make_commit(local, repo, type, wild_commit);
        }
      });

  // ------------------------------------------------------------------
  // 2. Publish every commit's .patch page on the simulated web and
  //    register ground truth.
  // ------------------------------------------------------------------
  // NVD-side pages are published in step 3 (after CVE ids exist, so the
  // referenced commit messages can mention them the way maintainers do).
  for (const CommitRecord& record : nvd_commits) world.oracle.add(record);
  for (const CommitRecord& record : world.wild) {
    if (config.publish_wild_pages) {
      world.remote.put(
          github_commit_url(record.repo, record.patch.commit) + ".patch",
          diff::render_patch(record.patch));
    }
    world.oracle.add(record);
  }

  // ------------------------------------------------------------------
  // 3. Build the NVD index with injected dirt, then crawl it.
  // ------------------------------------------------------------------
  std::unordered_map<std::string, const CommitRecord*> by_hash;
  for (const CommitRecord& record : nvd_commits) {
    by_hash[record.patch.commit] = &record;
  }

  for (std::size_t i = 0; i < nvd_commits.size(); ++i) {
    CommitRecord& record = nvd_commits[i];
    NvdEntry entry;
    entry.cve_id = draw_cve_id(rng, i, &entry.year);

    // Maintainers of CVE-tracked fixes usually say so in the message.
    if (rng.chance(0.55)) {
      record.patch.message += "\n\nFixes " + entry.cve_id;
    } else if (rng.chance(0.3)) {
      record.patch.message = "security: " + record.patch.message;
    }
    world.remote.put(
        github_commit_url(record.repo, record.patch.commit) + ".patch",
        diff::render_patch(record.patch));
    entry.cwe = cwe_for_type(static_cast<int>(record.truth.type));
    // CVSS base scores cluster by fix pattern: memory-safety bugs skew
    // high, validation/logic issues mid-range.
    const bool memory_safety = record.truth.type == PatchType::kBoundCheck ||
                               record.truth.type == PatchType::kNullCheck ||
                               record.truth.type == PatchType::kMoveStatement;
    const double base = memory_safety ? 7.5 : 5.5;
    entry.cvss = std::min(10.0, std::max(1.0, rng.normal(base, 1.2)));
    entry.references.push_back("https://seclists.example.org/advisory/" +
                               std::to_string(i));

    if (rng.chance(config.entry_missing_link_prob)) {
      // Entry indexed without any patch link: unreachable by the crawler.
      world.nvd_entries.push_back(std::move(entry));
      continue;
    }

    std::string url = github_commit_url(record.repo, record.patch.commit);
    if (rng.chance(config.wrong_link_prob)) {
      // Wrong link: points at a version-bump page instead of the fix.
      CommitRecord bump = make_version_bump_commit(rng, record.repo);
      url = github_commit_url(bump.repo, bump.patch.commit);
      world.remote.put(url + ".patch", diff::render_patch(bump.patch));
      world.oracle.add(bump);
    } else if (rng.chance(config.dead_link_prob)) {
      // Dead link: never published on the remote.
      url = github_commit_url(record.repo, "deadbeef" + std::to_string(i));
    }
    entry.references.push_back(url);
    entry.patch_tagged.push_back(url);
    world.nvd_entries.push_back(std::move(entry));
  }

  NvdCrawler crawler(world.remote);
  const std::vector<CrawledPatch> crawled = crawler.crawl(world.nvd_entries);
  world.crawl_stats = crawler.stats();

  // Keep the crawled form (post C/C++ filter) but reattach snapshots and
  // ground truth from the fabricated record. Wrong-link pages yield
  // version-bump commits; the paper keeps them (up to 1% noise), and so
  // do we — their truth says non-security.
  world.nvd_security.reserve(crawled.size());
  for (const CrawledPatch& cp : crawled) {
    CommitRecord record;
    record.patch = cp.patch;
    const auto it = by_hash.find(cp.patch.commit);
    if (it != by_hash.end()) {
      record.truth = it->second->truth;
      record.repo = it->second->repo;
      record.snapshots = it->second->snapshots;
    } else {
      record.truth = world.oracle.truth(cp.patch.commit);
    }
    world.nvd_security.push_back(std::move(record));
  }

  util::log_info() << "world: " << world.nvd_security.size()
                   << " NVD-collected patches, " << world.wild.size()
                   << " wild commits, " << world.remote.page_count()
                   << " remote pages";
  return world;
}

}  // namespace patchdb::corpus
