#include "corpus/mutate.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "util/strings.h"

namespace patchdb::corpus {

namespace {

using Lines = std::vector<std::string>;

/// Insert `extra` into `base` at `pos` (clamped), returning a copy.
Lines insert_at(const Lines& base, std::size_t pos, const Lines& extra) {
  Lines out = base;
  pos = std::min(pos, out.size());
  out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos), extra.begin(),
             extra.end());
  return out;
}

struct BodyPair {
  Lines before;
  Lines after;
  std::string message;
};

// ---------------------------------------------------------------------------
// Security templates, Table V types 1-12. Each returns body-level lines;
// the caller wraps them with make_function (except types 6/7 which also
// edit the signature).
// ---------------------------------------------------------------------------

BodyPair bound_check(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  switch (rng.index(3)) {
    case 0: {
      // Add a length guard before a copy.
      Lines core = {
          "memcpy(" + c.buf + ", " + c.ptr + "->payload, " + c.len + ");",
          c.val + " = (int)" + c.len + ";",
      };
      p.before = core;
      p.after = insert_at(core, 0,
                          {"if (" + c.len + " > sizeof(" + c.buf + "))",
                           "    return -1;"});
      p.message = "fix buffer overflow in " + c.func_name;
      break;
    }
    case 1: {
      // Strengthen a loop condition with an index bound.
      const std::string loop_before = "while (" + c.ptr + "->" + c.field + " > 0) {";
      const std::string loop_after = "while (" + c.ptr + "->" + c.field +
                                     " > 0 && " + c.idx + " < sizeof(" + c.buf +
                                     ")) {";
      Lines body = {
          loop_before,
          "    " + c.buf + "[" + c.idx + "] = (char)" + c.callee1 + "(" + c.ptr + ");",
          "    " + c.idx + "++;",
          "}",
      };
      p.before = body;
      body[0] = loop_after;
      p.after = body;
      p.message = "prevent out-of-bounds write in " + c.func_name;
      break;
    }
    default: {
      // Fix an off-by-one comparison on an array index (CVE-2019-20912
      // shape: `if (x)` -> `if (x && i > 0)`).
      Lines body = {
          "if (" + c.buf + "[" + c.idx + "] & 0x40)",
          "    " + c.idx + "--;",
          c.val + " = " + c.buf + "[" + c.idx + "];",
      };
      p.before = body;
      body[0] = "if (" + c.buf + "[" + c.idx + "] & 0x40 && " + c.idx + " > 0)";
      p.after = body;
      p.message = "fix stack underflow in " + c.func_name;
      break;
    }
  }
  return p;
}

BodyPair null_check(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  Lines core = {
      c.val + " = " + c.ptr + "->" + c.field + ";",
      c.callee1 + "(" + c.ptr + ", " + c.val + ");",
  };
  if (rng.chance(0.5)) {
    p.before = core;
    p.after = insert_at(core, 0,
                        {"if (" + c.ptr + " == NULL)",
                         "    return -1;"});
    p.message = "fix NULL pointer dereference in " + c.func_name;
  } else {
    Lines before = {
        "char *" + c.tmp + "_p = malloc(" + c.len + ");",
        "memset(" + c.tmp + "_p, 0, " + c.len + ");",
    };
    Lines after = {
        "char *" + c.tmp + "_p = malloc(" + c.len + ");",
        "if (!" + c.tmp + "_p)",
        "    return -1;",
        "memset(" + c.tmp + "_p, 0, " + c.len + ");",
    };
    p.before = before;
    p.after = after;
    p.message = "check allocation result in " + c.func_name;
  }
  return p;
}

BodyPair sanity_check(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  Lines core = {
      c.val + " = " + c.callee1 + "(" + c.ptr + ");",
      c.ptr + "->" + c.field + " = " + c.val + ";",
  };
  switch (rng.index(3)) {
    case 0:
      p.before = core;
      p.after = insert_at(core, 1,
                          {"if (" + c.val + " < 0 || " + c.val + " > 4096)",
                           "    return -1;"});
      p.message = "validate " + c.field + " range in " + c.func_name;
      break;
    case 1:
      p.before = core;
      p.after = insert_at(core, 0,
                          {"if (" + c.len + " == 0)",
                           "    return 0;"});
      p.message = "reject zero-length input in " + c.func_name;
      break;
    default: {
      Lines weak = core;
      weak.insert(weak.begin(), "if (" + c.len + " != 0) {");
      weak.push_back("}");
      Lines strong = core;
      strong.insert(strong.begin(),
                    "if (" + c.len + " != 0 && " + c.len + " % 4 == 0) {");
      strong.push_back("}");
      p.before = weak;
      p.after = strong;
      p.message = "tighten input validation in " + c.func_name;
      break;
    }
  }
  return p;
}

BodyPair var_definition(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  if (rng.chance(0.5)) {
    Lines body = {
        "int " + c.tmp + "_n = (int)" + c.ptr + "->" + c.field + ";",
        c.buf + "[" + c.tmp + "_n % sizeof(" + c.buf + ")] = 1;",
    };
    p.before = body;
    body[0] = "unsigned int " + c.tmp + "_n = (unsigned int)" + c.ptr + "->" +
              c.field + ";";
    p.after = body;
    p.message = "use unsigned index to avoid signed overflow in " + c.func_name;
  } else {
    Lines body = {
        "char " + c.tmp + "_name[16];",
        "snprintf(" + c.tmp + "_name, sizeof(" + c.tmp + "_name), \"%d\", " +
            c.val + ");",
    };
    p.before = body;
    body[0] = "char " + c.tmp + "_name[64];";
    p.after = body;
    p.message = "enlarge truncated name buffer in " + c.func_name;
  }
  return p;
}

BodyPair var_value(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  if (rng.chance(0.5)) {
    Lines body = {
        "char " + c.tmp + "_out[32];",
        c.callee1 + "(" + c.ptr + ", " + c.tmp + "_out);",
    };
    p.before = body;
    p.after = insert_at(body, 1,
                        {"memset(" + c.tmp + "_out, 0, sizeof(" + c.tmp +
                         "_out));"});
    p.message = "avoid leaking uninitialized stack memory in " + c.func_name;
  } else {
    Lines body = {
        "int fd;",
        "fd = " + c.callee2 + "(" + c.ptr + ");",
    };
    p.before = body;
    body[0] = "int fd = -1;";
    p.after = body;
    p.message = "initialize descriptor before error paths in " + c.func_name;
  }
  return p;
}

BodyPair func_call(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  switch (rng.index(3)) {
    case 0: {
      Lines body = {
          "strcpy(" + c.buf + ", " + c.ptr + "->name);",
      };
      p.before = body;
      p.after = {"strlcpy(" + c.buf + ", " + c.ptr + "->name, sizeof(" + c.buf +
                 "));"};
      p.message = "replace unsafe strcpy in " + c.func_name;
      break;
    }
    case 1: {
      Lines core = {
          c.ptr + "->" + c.field + " += " + c.val + ";",
          c.callee1 + "(" + c.ptr + ", " + c.idx + ");",
      };
      p.before = core;
      Lines locked = core;
      locked.insert(locked.begin(), "mutex_lock(&" + c.ptr + "->lock);");
      locked.push_back("mutex_unlock(&" + c.ptr + "->lock);");
      p.after = locked;
      p.message = "fix race on " + c.field + " update in " + c.func_name;
      break;
    }
    default: {
      Lines body = {
          "char *" + c.tmp + "_key = " + c.callee2 + "(" + c.ptr + ");",
          c.callee1 + "(" + c.ptr + ", " + c.idx + ");",
      };
      p.before = body;
      p.after = insert_at(body, 2,
                          {"free(" + c.tmp + "_key);",
                           c.tmp + "_key = NULL;"});
      p.message = "release key material after use in " + c.func_name;
      break;
    }
  }
  return p;
}

BodyPair jump_statement(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  if (rng.chance(0.5)) {
    Lines body = {
        c.val + " = " + c.callee1 + "(" + c.ptr + ");",
        c.callee2 + "(" + c.ptr + ");",
    };
    p.before = body;
    p.after = insert_at(body, 1,
                        {"if (" + c.val + " < 0)",
                         "    goto out;"});
    p.after.push_back("out:");
    p.message = "bail out on " + c.callee1 + " failure in " + c.func_name;
  } else {
    Lines body = {
        "for (" + c.idx + " = 0; " + c.idx + " < " + c.len + "; " + c.idx + "++) {",
        "    if (" + c.buf + "[" + c.idx + "] == 0)",
        "        continue;",
        "    " + c.val + " += " + c.buf + "[" + c.idx + "];",
        "}",
    };
    p.before = body;
    Lines after = body;
    after[2] = "        break;";
    p.after = after;
    p.message = "stop scanning at terminator in " + c.func_name;
  }
  return p;
}

BodyPair move_statement(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  const std::string init = c.tmp + " = (int)sizeof(" + c.buf + ");";
  Lines uses = {
      c.callee1 + "(" + c.ptr + ", " + c.tmp + ");",
      c.val + " |= " + c.tmp + ";",
  };
  if (rng.chance(0.5)) {
    // Move initialization before first use (uninitialized-use fix).
    Lines before = uses;
    before.push_back(init);
    Lines after = uses;
    after.insert(after.begin(), init);
    p.before = before;
    p.after = after;
    p.message = "initialize " + c.tmp + " before use in " + c.func_name;
  } else {
    // Move a release after the last use (use-after-free fix).
    Lines before = {
        "free(" + c.ptr + "->scratch);",
        c.callee2 + "(" + c.ptr + ");",
    };
    Lines after = {
        c.callee2 + "(" + c.ptr + ");",
        "free(" + c.ptr + "->scratch);",
    };
    p.before = before;
    p.after = after;
    p.message = "fix use-after-free of scratch in " + c.func_name;
  }
  return p;
}

BodyPair redesign(util::Rng& rng, const FunctionContext& c) {
  // Large rewrite: different structure on both sides.
  BodyPair p;
  p.before = {
      "for (" + c.idx + " = 0; " + c.idx + " < " + c.len + "; " + c.idx + "++) {",
      "    " + c.val + " = " + c.callee1 + "(" + c.ptr + ");",
      "    " + c.buf + "[" + c.idx + "] = (char)" + c.val + ";",
      "    if (" + c.val + " == 0)",
      "        " + c.tmp + "++;",
      "}",
      c.ptr + "->" + c.field + " = " + c.tmp + ";",
  };
  Lines rewritten = {
      "size_t " + c.idx + "_max = " + c.len + " < sizeof(" + c.buf + ") ? " +
          c.len + " : sizeof(" + c.buf + ");",
      "",
      "for (" + c.idx + " = 0; " + c.idx + " < " + c.idx + "_max; " + c.idx + "++) {",
      "    " + c.val + " = " + c.callee1 + "(" + c.ptr + ");",
      "    if (" + c.val + " < 0)",
      "        return -1;",
      "    if (" + c.val + " == 0) {",
      "        " + c.tmp + "++;",
      "        continue;",
      "    }",
      "    " + c.buf + "[" + c.idx + "] = (char)" + c.val + ";",
      "}",
      "if (" + c.tmp + " > (int)" + c.idx + "_max / 2)",
      "    return -1;",
      c.ptr + "->" + c.field + " = " + c.tmp + ";",
  };
  if (rng.chance(0.3)) {
    rewritten.push_back(c.callee2 + "(" + c.ptr + ");");
  }
  p.after = rewritten;
  p.message = "rework " + c.func_name + " input handling";
  return p;
}

BodyPair other_minor(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  if (rng.chance(0.5)) {
    Lines body = {c.val + " = " + c.tmp + " & 0x7f;"};
    p.before = body;
    p.after = {c.val + " = " + c.tmp + " & 0x3f;"};
    p.message = "correct mask width in " + c.func_name;
  } else {
    Lines body = {
        "if (" + c.val + " <= (int)" + c.len + ")",
        "    " + c.callee1 + "(" + c.ptr + ", " + c.val + ");",
    };
    p.before = body;
    Lines after = body;
    after[0] = "if (" + c.val + " < (int)" + c.len + ")";
    p.after = after;
    p.message = "fix boundary comparison in " + c.func_name;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Non-security templates.
// ---------------------------------------------------------------------------

// Non-security commits in real repositories frequently LOOK like
// security fixes — defensive early returns, new validity checks on
// config values, API migrations that swap calls, error-handling paths.
// Each non-security family therefore includes "security-mimicking"
// variants; without them the 60-dim feature space separates the classes
// almost perfectly and the nearest-link hit ratio saturates near 100%,
// instead of the paper's 22-30%.

BodyPair new_feature(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  Lines core = filler_statements(rng, c, 3);
  p.before = core;
  switch (rng.index(3)) {
    case 0: {
      Lines feature = {
          "if (" + c.ptr + "->" + c.field + " & 0x100) {",
          "    " + c.callee2 + "(" + c.ptr + ", " + c.idx + ");",
          "    " + c.val + " |= 2;",
          "}",
      };
      p.after = insert_at(core, core.size(), feature);
      p.message = "add " + c.field + " flag handling to " + c.func_name;
      break;
    }
    case 1: {
      // Feature-gated early return: same shape as a sanity check.
      p.after = insert_at(core, 0,
                          {"if (!" + c.ptr + "->opt_" + c.field + ")",
                           "    return 0;"});
      p.message = "make " + c.field + " support optional in " + c.func_name;
      break;
    }
    default: {
      // New bookkeeping call pair: same shape as lock/unlock fixes.
      Lines traced = core;
      traced.insert(traced.begin(), "trace_enter(" + c.ptr + ");");
      traced.push_back("trace_exit(" + c.ptr + ");");
      p.after = traced;
      p.message = "add tracing hooks to " + c.func_name;
      break;
    }
  }
  return p;
}

BodyPair redesign(util::Rng& rng, const FunctionContext& c);

BodyPair refactor(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  if (rng.chance(0.35)) {
    // Module restructuring: a big rewrite with the exact shape of a
    // Type 11 security redesign. In real GitHub histories large rewrites
    // are overwhelmingly refactors, not fixes — this is what makes the
    // NVD head class (Type 11) a precision trap for globally-trained
    // models ranking wild commits (Table III's pseudo-labeling result).
    p = redesign(rng, c);
    p.message = "restructure " + c.func_name + " for readability";
    return p;
  }
  if (rng.chance(0.5)) {
    Lines body = {
        c.tmp + " = " + c.ptr + "->" + c.field + " * 2;",
        c.callee1 + "(" + c.ptr + ", " + c.tmp + ");",
        c.val + " += " + c.tmp + ";",
    };
    p.before = body;
    const std::string new_name = c.tmp + "_scaled";
    Lines renamed;
    for (const std::string& line : body) {
      renamed.push_back(util::replace_all(line, c.tmp, new_name));
    }
    renamed.insert(renamed.begin(), "int " + new_name + ";");
    p.after = renamed;
    p.message = "rename " + c.tmp + " for clarity in " + c.func_name;
  } else {
    // API migration: swap a call for its successor — Type 8's shape.
    Lines body = {
        c.callee1 + "(" + c.ptr + ", " + c.buf + ");",
        c.val + " = " + c.ptr + "->" + c.field + ";",
    };
    p.before = body;
    Lines after = body;
    after[0] = c.callee1 + "_v2(" + c.ptr + ", " + c.buf + ", sizeof(" + c.buf +
               "));";
    p.after = after;
    p.message = "migrate to " + c.callee1 + "_v2 API";
  }
  return p;
}

BodyPair perf_fix(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  if (rng.chance(0.5)) {
    Lines before = {
        "for (" + c.idx + " = 0; " + c.idx + " < " + c.len + "; " + c.idx + "++)",
        "    " + c.val + " += " + c.callee1 + "(" + c.ptr + ") * " + c.buf + "[" +
            c.idx + "];",
    };
    Lines after = {
        c.tmp + " = " + c.callee1 + "(" + c.ptr + ");",
        "for (" + c.idx + " = 0; " + c.idx + " < " + c.len + "; " + c.idx + "++)",
        "    " + c.val + " += " + c.tmp + " * " + c.buf + "[" + c.idx + "];",
    };
    p.before = before;
    p.after = after;
    p.message = "hoist invariant " + c.callee1 + " call out of loop";
  } else {
    // Fast-path short-circuit: an added if + return, check-shaped.
    Lines body = {
        c.val + " = " + c.callee1 + "(" + c.ptr + ");",
        c.callee2 + "(" + c.ptr + ");",
    };
    p.before = body;
    p.after = insert_at(body, 0,
                        {"if (" + c.ptr + "->" + c.field + " == " + c.tmp + ")",
                         "    return " + c.val + ";"});
    p.message = "skip recomputation when " + c.field + " is unchanged";
  }
  return p;
}

BodyPair logic_bug_fix(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  switch (rng.index(3)) {
    case 0: {
      Lines body = {
          c.val + " = (" + c.tmp + " + 7) / 4;",
      };
      p.before = body;
      p.after = {c.val + " = (" + c.tmp + " + 3) / 4;"};
      p.message = "fix rounding in " + c.func_name;
      break;
    }
    case 1: {
      Lines body = {
          "if (" + c.ptr + "->" + c.field + " == 0)",
          "    " + c.callee1 + "(" + c.ptr + ", 1);",
      };
      p.before = body;
      Lines after = body;
      after[0] = "if (" + c.ptr + "->" + c.field + " != 0)";
      p.after = after;
      p.message = "fix inverted condition in " + c.func_name;
      break;
    }
    default: {
      // Functional guard for a behavioural (not security) bug: skip
      // empty work items. Shape-identical to a sanity check.
      Lines body = {
          c.callee1 + "(" + c.ptr + ", " + c.idx + ");",
          c.val + "++;",
      };
      p.before = body;
      p.after = insert_at(body, 0,
                          {"if (" + c.len + " == 0)",
                           "    return 0;"});
      p.message = "skip empty batches in " + c.func_name;
      break;
    }
  }
  return p;
}

BodyPair style_cleanup(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  Lines body = {
      "if (" + c.val + ")",
      "    " + c.callee1 + "(" + c.ptr + ", 0);",
  };
  p.before = body;
  p.after = {
      "if (" + c.val + ") {",
      "    " + c.callee1 + "(" + c.ptr + ", 0);",
      "}",
  };
  (void)rng;
  p.message = "style: add braces in " + c.func_name;
  return p;
}

BodyPair docs_change(util::Rng& rng, const FunctionContext& c) {
  BodyPair p;
  Lines body = {
      "/* process one " + c.field + " record */",
      c.callee1 + "(" + c.ptr + ", " + c.idx + ");",
  };
  p.before = body;
  Lines after = body;
  after[0] = "/* process one " + c.field + " record; caller holds the lock */";
  p.after = after;
  (void)rng;
  p.message = "clarify locking contract comment";
  return p;
}

BodyPair make_body_pair(util::Rng& rng, const FunctionContext& ctx, PatchType type);

/// Security-shaped non-security change: reuses a security generator
/// verbatim. Every code-change shape also occurs for non-security
/// reasons — robustness guards look like sanity-check fixes, big
/// refactors look like redesigns, type cleanups look like definition
/// fixes, code motion looks like ordering fixes. In the diff (and
/// therefore in every syntactic feature and token) these are
/// indistinguishable from vulnerability fixes; only context separates
/// them, which is the oracle's (i.e. the human experts') job. Their
/// share of the wild pool is what bounds nearest-link candidate
/// precision at the paper's 22-30% instead of 100%.
BodyPair defensive_hardening(util::Rng& rng, const FunctionContext& ctx) {
  if (rng.chance(0.45)) {
    // Bulk hardening sweep: a maintainer adds guards everywhere at once
    // (assert sweeps, annotation sweeps, -D_FORTIFY-driven cleanups).
    // Far MORE checks than any single vulnerability fix — these commits
    // sit beyond the NVD training distribution in the "more checks =
    // more security-ish" direction, which is precisely where a global
    // classifier's confidence extrapolates and the pseudo-labeling
    // baseline drowns (Table III), while nearest link, anchored to real
    // NVD feature positions, skips them.
    BodyPair p;
    Lines body = filler_statements(rng, ctx, 5 + rng.index(4));
    p.before = body;
    Lines hardened;
    const std::array<std::string, 4> guards = {
        "if (" + ctx.ptr + " == NULL)",
        "if (" + ctx.len + " > sizeof(" + ctx.buf + "))",
        "if (" + ctx.val + " < 0 || " + ctx.val + " > 4096)",
        "if (" + ctx.idx + " >= " + ctx.len + ")",
    };
    std::size_t inserted = 0;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (i % 2 == 0 && inserted < 3 + rng.index(3)) {
        hardened.push_back(guards[rng.index(guards.size())]);
        hardened.push_back("    return -1;");
        ++inserted;
      }
      hardened.push_back(body[i]);
    }
    p.after = hardened;
    p.message = "hardening sweep: validate all inputs in " + ctx.func_name;
    return p;
  }
  // Plain hardening commits are mostly check-shaped (guards, validation,
  // defensive call swaps); redesign-/move-shaped non-security changes
  // come from the refactor family instead.
  static constexpr PatchType kMimicTypes[] = {
      PatchType::kBoundCheck, PatchType::kNullCheck,  PatchType::kSanityCheck,
      PatchType::kVarValue,   PatchType::kFuncCall,   PatchType::kJumpStatement,
      PatchType::kMoveStatement, PatchType::kRedesign,
  };
  static constexpr double kMimicWeights[] = {
      0.22, 0.18, 0.22, 0.08, 0.18, 0.06, 0.03, 0.03,
  };
  const PatchType mimic = kMimicTypes[rng.weighted(kMimicWeights)];
  BodyPair p = make_body_pair(rng, ctx, mimic);
  p.message = "harden " + ctx.func_name + " against unexpected input";
  return p;
}

BodyPair make_body_pair(util::Rng& rng, const FunctionContext& ctx, PatchType type) {
  switch (type) {
    case PatchType::kBoundCheck: return bound_check(rng, ctx);
    case PatchType::kNullCheck: return null_check(rng, ctx);
    case PatchType::kSanityCheck: return sanity_check(rng, ctx);
    case PatchType::kVarDefinition: return var_definition(rng, ctx);
    case PatchType::kVarValue: return var_value(rng, ctx);
    case PatchType::kFuncDeclaration:
    case PatchType::kFuncParameter: {
      // Body stays identical; the signature change happens in
      // make_mutation. Use filler so the function is non-trivial.
      BodyPair p;
      p.before = filler_statements(rng, ctx, 4);
      p.after = p.before;
      return p;
    }
    case PatchType::kFuncCall: return func_call(rng, ctx);
    case PatchType::kJumpStatement: return jump_statement(rng, ctx);
    case PatchType::kMoveStatement: return move_statement(rng, ctx);
    case PatchType::kRedesign: return redesign(rng, ctx);
    case PatchType::kOther: return other_minor(rng, ctx);
    case PatchType::kNewFeature: return new_feature(rng, ctx);
    case PatchType::kRefactor: return refactor(rng, ctx);
    case PatchType::kPerfFix: return perf_fix(rng, ctx);
    case PatchType::kLogicBugFix: return logic_bug_fix(rng, ctx);
    case PatchType::kStyle: return style_cleanup(rng, ctx);
    case PatchType::kDocs: return docs_change(rng, ctx);
    case PatchType::kDefensive: return defensive_hardening(rng, ctx);
  }
  throw std::invalid_argument("make_mutation: unknown patch type");
}

}  // namespace

MutationResult make_mutation(util::Rng& rng, const FunctionContext& ctx,
                             PatchType type) {
  // Surround the changing core with shared filler so hunks sit inside a
  // realistic function, and reuse one filler sequence on both sides.
  const Lines prefix = filler_statements(rng, ctx, 1 + rng.index(3));
  const Lines suffix = filler_statements(rng, ctx, 1 + rng.index(3));
  BodyPair pair = make_body_pair(rng, ctx, type);

  auto assemble = [&](const Lines& core) {
    Lines body = prefix;
    body.push_back("");
    body.insert(body.end(), core.begin(), core.end());
    body.push_back("");
    body.insert(body.end(), suffix.begin(), suffix.end());
    return make_function(ctx, body);
  };

  MutationResult result;
  result.type = type;
  result.before = assemble(pair.before);
  result.after = assemble(pair.after);

  // Signature-level types edit the first line of the AFTER version only.
  if (type == PatchType::kFuncDeclaration) {
    result.after[0] =
        util::replace_all(result.after[0], "static int ", "static long ");
    result.message = "change " + ctx.func_name + " return type to long";
  } else if (type == PatchType::kFuncParameter) {
    result.after[0] =
        util::replace_all(result.after[0], ")", ", unsigned flags)");
    result.message = "pass caller flags into " + ctx.func_name;
  } else {
    result.message = pair.message;
  }
  if (result.message.empty()) result.message = "update " + ctx.func_name;
  return result;
}

}  // namespace patchdb::corpus
