// `git log -p` simulation. The paper collects its non-security commit
// pool by running `git log` on the 313 repositories; this renders a
// repository's commit records into that exact text form so the
// collection pipeline (diff::parse_patch_stream) ingests history the
// same way it would from a real checkout.
#pragma once

#include <span>
#include <string>

#include "corpus/repo.h"

namespace patchdb::corpus {

/// Render records newest-first into `git log -p`-shaped text.
std::string render_git_log(std::span<const CommitRecord> records);

}  // namespace patchdb::corpus
