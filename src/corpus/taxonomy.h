// The paper's 12-type security-patch taxonomy (Table V) plus the
// non-security commit kinds the wild pool mixes in. Type frequencies for
// "NVD-like" (long-tail, Fig. 6 left) and "wild-like" (reshuffled,
// Fig. 6 right) sampling are provided as defaults and are configurable.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace patchdb::corpus {

enum class PatchType : int {
  // Security fix patterns, Table V ids 1..12.
  kBoundCheck = 1,       // add or change bound checks
  kNullCheck = 2,        // add or change null checks
  kSanityCheck = 3,      // add or change other sanity checks
  kVarDefinition = 4,    // change variable definitions
  kVarValue = 5,         // change variable values
  kFuncDeclaration = 6,  // change function declarations
  kFuncParameter = 7,    // change function parameters
  kFuncCall = 8,         // add or change function calls
  kJumpStatement = 9,    // add or change jump statements
  kMoveStatement = 10,   // move statements without modification
  kRedesign = 11,        // add or change functions (redesign)
  kOther = 12,           // uncommon minor changes

  // Non-security commit kinds (not part of Table V).
  kNewFeature = 100,
  kRefactor = 101,
  kPerfFix = 102,
  kLogicBugFix = 103,
  kStyle = 104,
  kDocs = 105,
  /// Defensive hardening: adds checks/guards that are syntactically
  /// identical to security fixes but do not close an exploitable hole
  /// (belt-and-suspenders checks, robustness guards). These are why
  /// candidate precision cannot approach 100% from the diff alone — the
  /// paper's experts separate them using context the 60 features never
  /// see, and the oracle models exactly that.
  kDefensive = 106,
};

inline constexpr std::size_t kSecurityTypeCount = 12;

/// True for the Table V security types.
constexpr bool is_security_type(PatchType type) noexcept {
  return static_cast<int>(type) >= 1 &&
         static_cast<int>(type) <= static_cast<int>(kSecurityTypeCount);
}

/// Table V row label for a security type; short tag for the others.
std::string_view patch_type_name(PatchType type);

/// The Table V security types in id order (1..12).
std::span<const PatchType> security_types();

/// The non-security kinds.
std::span<const PatchType> nonsecurity_types();

/// Security-type sampling weights (index 0 = Type 1 ... index 11 = Type 12).
using TypeDistribution = std::array<double, kSecurityTypeCount>;

/// Long-tail distribution matching the paper's NVD-based dataset
/// (Fig. 6: three head classes carry ~60%, Type 11 is the head).
TypeDistribution nvd_type_distribution();

/// Reshuffled distribution matching the paper's wild-based dataset
/// (Fig. 6: Type 8 becomes the head, Type 11 drops to ~5%).
TypeDistribution wild_type_distribution();

/// PatchDB-wide distribution (Table V percentages).
TypeDistribution patchdb_type_distribution();

}  // namespace patchdb::corpus
