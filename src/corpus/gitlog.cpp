#include "corpus/gitlog.h"

#include "diff/render.h"

namespace patchdb::corpus {

std::string render_git_log(std::span<const CommitRecord> records) {
  std::string out;
  // git log prints newest first.
  for (std::size_t i = records.size(); i-- > 0;) {
    out += diff::render_patch(records[i].patch);
    out += '\n';
  }
  return out;
}

}  // namespace patchdb::corpus
