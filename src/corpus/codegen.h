// Synthetic C code generator. The simulated repositories (DESIGN.md's
// substitution for the paper's 313 real C/C++ projects) are built from
// plausible generated functions: buffer handling, pointer walks, parsing
// loops, state updates. The mutation templates in mutate.h construct the
// BEFORE/AFTER versions of one function; everything around it comes from
// here.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace patchdb::corpus {

/// Names drawn for one generated function; the mutation templates weave
/// the same names into both versions so the diff stays minimal.
struct FunctionContext {
  std::string func_name;
  std::string buf;      // a stack buffer
  std::string ptr;      // a pointer parameter
  std::string idx;      // loop/index variable
  std::string len;      // length parameter
  std::string val;      // a scalar local
  std::string tmp;      // second scalar local
  std::string callee1;  // helper function names this function calls
  std::string callee2;
  std::string field;    // struct field accessed through ptr
  int buf_size = 64;
};

/// Draw a fresh, internally consistent context.
FunctionContext draw_context(util::Rng& rng);

/// `n` plausible filler statements (assignments, calls, conditionals)
/// touching the context's variables. One string per line, no indent.
std::vector<std::string> filler_statements(util::Rng& rng, const FunctionContext& ctx,
                                           std::size_t n);

/// Wrap body statements in a full function definition:
/// `static int <name>(struct <field>_ctx *<ptr>, size_t <len>) { ... }`.
/// Body lines get one level of indentation.
std::vector<std::string> make_function(const FunctionContext& ctx,
                                       const std::vector<std::string>& body);

/// A complete file: include block, a couple of declarations, then the
/// given functions separated by blank lines.
std::vector<std::string> make_file(util::Rng& rng,
                                   const std::vector<std::vector<std::string>>& functions);

/// Random identifiers for repositories/files.
std::string draw_repo_name(util::Rng& rng);
std::string draw_file_name(util::Rng& rng);

}  // namespace patchdb::corpus
