#include "corpus/codegen.h"

#include <array>

namespace patchdb::corpus {

namespace {

constexpr std::array<std::string_view, 24> kVerbs = {
    "parse", "read", "write", "handle", "process", "decode", "encode",
    "init", "update", "flush", "copy", "scan", "load", "store", "emit",
    "check", "validate", "fetch", "push", "pop", "send", "recv", "map",
    "free",
};

constexpr std::array<std::string_view, 24> kNouns = {
    "header", "packet", "frame", "buffer", "chunk", "record", "entry",
    "block", "node", "table", "index", "state", "session", "token",
    "message", "segment", "page", "cache", "queue", "stream", "field",
    "option", "digest", "attr",
};

constexpr std::array<std::string_view, 12> kBufNames = {
    "buf", "data", "tmp_buf", "out", "scratch", "name", "line", "payload",
    "key", "path", "label", "work",
};

constexpr std::array<std::string_view, 10> kPtrNames = {
    "ctx", "state", "req", "conn", "sess", "obj", "hdr", "info", "cfg", "dev",
};

constexpr std::array<std::string_view, 8> kIdxNames = {
    "i", "j", "k", "pos", "off", "cursor", "n", "slot",
};

constexpr std::array<std::string_view, 8> kLenNames = {
    "len", "size", "count", "nbytes", "avail", "total", "limit", "cap",
};

constexpr std::array<std::string_view, 10> kValNames = {
    "val", "ret", "sum", "flags", "status", "code", "left", "bits", "mask",
    "depth",
};

constexpr std::array<std::string_view, 10> kFieldNames = {
    "length", "type", "offset", "version", "seq", "refcnt", "nitems",
    "width", "level", "mode",
};

std::string pick_sv(util::Rng& rng, std::span<const std::string_view> pool) {
  return std::string(pool[rng.index(pool.size())]);
}

}  // namespace

FunctionContext draw_context(util::Rng& rng) {
  FunctionContext ctx;
  ctx.func_name = pick_sv(rng, kVerbs) + "_" + pick_sv(rng, kNouns);
  ctx.buf = pick_sv(rng, kBufNames);
  ctx.ptr = pick_sv(rng, kPtrNames);
  ctx.idx = pick_sv(rng, kIdxNames);
  ctx.len = pick_sv(rng, kLenNames);
  ctx.val = pick_sv(rng, kValNames);
  // tmp must differ from val to avoid shadowing in generated code.
  do {
    ctx.tmp = pick_sv(rng, kValNames);
  } while (ctx.tmp == ctx.val);
  ctx.callee1 = pick_sv(rng, kVerbs) + "_" + pick_sv(rng, kNouns);
  ctx.callee2 = pick_sv(rng, kVerbs) + "_" + pick_sv(rng, kNouns);
  ctx.field = pick_sv(rng, kFieldNames);
  ctx.buf_size = static_cast<int>(16 << rng.index(4));  // 16..128
  return ctx;
}

std::vector<std::string> filler_statements(util::Rng& rng, const FunctionContext& ctx,
                                           std::size_t n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng.index(8)) {
      case 0:
        out.push_back(ctx.val + " = " + ctx.ptr + "->" + ctx.field + ";");
        break;
      case 1:
        out.push_back(ctx.tmp + " += " + ctx.val + " & 0x" +
                      std::to_string(1 + rng.index(9)) + "f;");
        break;
      case 2:
        out.push_back(ctx.callee1 + "(" + ctx.ptr + ", " + ctx.idx + ");");
        break;
      case 3:
        out.push_back("if (" + ctx.val + " != 0)");
        out.push_back("    " + ctx.tmp + " = " + ctx.val + " >> 2;");
        break;
      case 4:
        out.push_back("for (" + ctx.idx + " = 0; " + ctx.idx + " < " + ctx.len +
                      "; " + ctx.idx + "++)");
        out.push_back("    " + ctx.tmp + " ^= " + ctx.buf + "[" + ctx.idx + "];");
        break;
      case 5:
        out.push_back(ctx.buf + "[0] = (char)" + ctx.val + ";");
        break;
      case 6:
        out.push_back(ctx.ptr + "->" + ctx.field + " = " + ctx.tmp + ";");
        break;
      default:
        out.push_back(ctx.tmp + " = " + ctx.callee2 + "(" + ctx.ptr + ");");
        break;
    }
  }
  return out;
}

std::vector<std::string> make_function(const FunctionContext& ctx,
                                       const std::vector<std::string>& body) {
  std::vector<std::string> out;
  out.reserve(body.size() + 8);
  out.push_back("static int " + ctx.func_name + "(struct " + ctx.ptr +
                "_state *" + ctx.ptr + ", size_t " + ctx.len + ")");
  out.push_back("{");
  out.push_back("    char " + ctx.buf + "[" + std::to_string(ctx.buf_size) + "];");
  out.push_back("    size_t " + ctx.idx + " = 0;");
  out.push_back("    int " + ctx.val + " = 0;");
  out.push_back("    int " + ctx.tmp + " = 0;");
  out.push_back("");
  for (const std::string& line : body) {
    out.push_back(line.empty() ? line : "    " + line);
  }
  out.push_back("    return " + ctx.val + ";");
  out.push_back("}");
  return out;
}

std::vector<std::string> make_file(
    util::Rng& rng, const std::vector<std::vector<std::string>>& functions) {
  std::vector<std::string> out;
  out.push_back("#include <stdio.h>");
  out.push_back("#include <stdlib.h>");
  out.push_back("#include <string.h>");
  if (rng.chance(0.5)) out.push_back("#include \"internal.h\"");
  out.push_back("");
  if (rng.chance(0.4)) {
    out.push_back("#define MAX_RETRIES " + std::to_string(1 + rng.index(8)));
    out.push_back("");
  }
  for (const auto& fn : functions) {
    out.insert(out.end(), fn.begin(), fn.end());
    out.push_back("");
  }
  if (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

std::string draw_repo_name(util::Rng& rng) {
  return "lib" + std::string(kNouns[rng.index(kNouns.size())]) +
         std::to_string(rng.index(100));
}

std::string draw_file_name(util::Rng& rng) {
  return "src/" + std::string(kVerbs[rng.index(kVerbs.size())]) + "_" +
         std::string(kNouns[rng.index(kNouns.size())]) + ".c";
}

}  // namespace patchdb::corpus
