// Parameterized vulnerability-fix and non-security transformations. Each
// PatchType has a family of templates producing a (BEFORE, AFTER)
// function pair; the repository seeds the file with BEFORE and the
// commit flips it to AFTER, so the resulting diff carries exactly the
// code-change pattern of that Table V category. Syntactic signatures
// (new `if` with a relational operator for checks, call substitutions
// for Type 8, large rewrites for Type 11, ...) are what the 60-dim
// feature space — and therefore the nearest link search — keys on.
#pragma once

#include <string>
#include <vector>

#include "corpus/codegen.h"
#include "corpus/taxonomy.h"
#include "util/rng.h"

namespace patchdb::corpus {

struct MutationResult {
  std::vector<std::string> before;  // full function, BEFORE version
  std::vector<std::string> after;   // full function, AFTER version
  std::string message;              // commit subject line
  PatchType type = PatchType::kOther;
};

/// Generate one (BEFORE, AFTER) pair of the given type. Every call draws
/// fresh template variants, so repeated calls with the same type yield
/// different concrete patches.
MutationResult make_mutation(util::Rng& rng, const FunctionContext& ctx,
                             PatchType type);

}  // namespace patchdb::corpus
