// Ground-truth oracle: the stand-in for the paper's three security
// experts who manually verify every nearest-link candidate. The oracle
// answers "is this commit a security patch?" from the corpus generator's
// ground truth, counts every query (the paper's headline result is a
// ~66% reduction in this manual effort), and can inject label noise to
// model expert disagreement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "corpus/repo.h"
#include "util/rng.h"

namespace patchdb::corpus {

class Oracle {
 public:
  explicit Oracle(double label_noise = 0.0, std::uint64_t seed = 1)
      : label_noise_(label_noise), rng_(seed) {}

  void add(const std::string& commit_hash, GroundTruth truth);
  void add(const CommitRecord& record) { add(record.patch.commit, record.truth); }

  bool known(const std::string& commit_hash) const {
    return truths_.contains(commit_hash);
  }

  /// "Manual verification": counts toward effort; may flip the answer
  /// with probability label_noise. Throws std::out_of_range for commits
  /// the oracle never saw.
  bool verify_security(const std::string& commit_hash);

  /// Ground truth without effort accounting (for scoring benches only).
  GroundTruth truth(const std::string& commit_hash) const;

  std::size_t effort() const noexcept { return effort_; }
  void reset_effort() noexcept { effort_ = 0; }
  /// Restore a checkpointed effort count so a resumed build reports the
  /// same cumulative manual-verification cost as an uninterrupted one.
  void set_effort(std::size_t effort) noexcept { effort_ = effort; }

  std::size_t size() const noexcept { return truths_.size(); }

 private:
  double label_noise_;
  util::Rng rng_;
  std::size_t effort_ = 0;
  std::unordered_map<std::string, GroundTruth> truths_;
};

}  // namespace patchdb::corpus
