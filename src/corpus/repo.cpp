#include "corpus/repo.h"

#include <array>

#include "diff/myers.h"
#include "diff/render.h"
#include "util/hash.h"

namespace patchdb::corpus {

namespace {

constexpr std::array<std::string_view, 10> kAuthors = {
    "Alex Chen <alex@example.org>",      "Priya Natarajan <priya@example.org>",
    "Sam Okafor <sam@example.org>",      "Lena Fischer <lena@example.org>",
    "Marco Rossi <marco@example.org>",   "Yuki Tanaka <yuki@example.org>",
    "Dana Whitfield <dana@example.org>", "Omar Haddad <omar@example.org>",
    "Ingrid Sol <ingrid@example.org>",   "Pavel Novak <pavel@example.org>",
};

constexpr std::array<std::string_view, 12> kMonths = {
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
};

std::string draw_date(util::Rng& rng) {
  const int year = 1999 + static_cast<int>(rng.index(21));  // 1999..2019
  const auto month = kMonths[rng.index(kMonths.size())];
  const int day = 1 + static_cast<int>(rng.index(28));
  const int hour = static_cast<int>(rng.index(24));
  const int minute = static_cast<int>(rng.index(60));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*s %d %02d:%02d:00 %d +0000",
                static_cast<int>(month.size()), month.data(), day, hour, minute,
                year);
  return buf;
}

/// One touched C file: neighbors + the mutated target function.
struct BuiltFile {
  std::string path;
  std::vector<std::string> before;
  std::vector<std::string> after;
};

BuiltFile build_target_file(util::Rng& rng, PatchType type,
                            const CommitOptions& options, std::string* message) {
  const FunctionContext ctx = draw_context(rng);
  const MutationResult mutation = make_mutation(rng, ctx, type);
  if (message != nullptr && message->empty()) *message = mutation.message;

  const std::size_t span = options.max_neighbor_functions + 1 -
                           options.min_neighbor_functions;
  const std::size_t neighbors =
      options.min_neighbor_functions + (span > 0 ? rng.index(span) : 0);

  std::vector<std::vector<std::string>> before_funcs;
  std::vector<std::vector<std::string>> after_funcs;
  const std::size_t target_slot = neighbors == 0 ? 0 : rng.index(neighbors + 1);
  const bool bundle = is_security_type(type) && neighbors > 0 &&
                      rng.chance(options.bundle_cleanup_prob);
  bool bundled = false;
  for (std::size_t slot = 0; slot <= neighbors; ++slot) {
    if (slot == target_slot) {
      before_funcs.push_back(mutation.before);
      after_funcs.push_back(mutation.after);
    } else {
      const FunctionContext other = draw_context(rng);
      std::vector<std::string> body = filler_statements(rng, other, 3 + rng.index(5));
      const std::vector<std::string> fn = make_function(other, body);
      before_funcs.push_back(fn);
      if (bundle && !bundled) {
        // Unrelated drive-by cleanup riding along with the fix.
        std::vector<std::string> touched = body;
        const std::vector<std::string> extra =
            filler_statements(rng, other, 1 + rng.index(2));
        touched.insert(touched.begin() + static_cast<std::ptrdiff_t>(
                                             rng.index(touched.size() + 1)),
                       extra.begin(), extra.end());
        after_funcs.push_back(make_function(other, touched));
        bundled = true;
      } else {
        after_funcs.push_back(fn);
      }
    }
  }

  BuiltFile file;
  file.path = draw_file_name(rng);
  // One rng must shape both versions identically outside the mutation, so
  // generate the file wrapper once and splice.
  util::Rng wrapper_rng(rng());
  util::Rng wrapper_rng_copy = wrapper_rng;
  file.before = make_file(wrapper_rng, before_funcs);
  file.after = make_file(wrapper_rng_copy, after_funcs);
  return file;
}

}  // namespace

PatchType draw_patch_type(util::Rng& rng, const TypeDistribution& dist,
                          double security_prob) {
  if (rng.chance(security_prob)) {
    const std::size_t idx = rng.weighted(std::span(dist.data(), dist.size()));
    return security_types()[idx];
  }
  // Non-security mix modeled on what GitHub histories actually contain:
  // features/refactors dominate, but a substantial share of commits are
  // defensive hardening that reads exactly like a security fix. The 18%
  // defensive share calibrates the nearest-link candidate precision into
  // the paper's 22-30% band (Table II) at an 8% security base rate.
  static constexpr double kNonSecWeights[] = {
      0.16,  // kNewFeature
      0.15,  // kRefactor
      0.11,  // kPerfFix
      0.14,  // kLogicBugFix
      0.10,  // kStyle
      0.12,  // kDocs
      0.22,  // kDefensive
  };
  const auto kinds = nonsecurity_types();
  static_assert(std::size(kNonSecWeights) == 7);
  return kinds[rng.weighted(kNonSecWeights)];
}

CommitRecord make_commit(util::Rng& rng, const std::string& repo_name,
                         PatchType type, const CommitOptions& options) {
  CommitRecord record;
  record.repo = repo_name;
  record.truth.is_security = is_security_type(type);
  record.truth.type = type;

  std::string message;
  std::vector<BuiltFile> files;
  files.push_back(build_target_file(rng, type, options, &message));
  if (rng.chance(options.multi_file_prob)) {
    files.push_back(build_target_file(rng, type, options, nullptr));
  }

  diff::Patch& patch = record.patch;
  patch.message = message;
  patch.author = std::string(kAuthors[rng.index(kAuthors.size())]);
  patch.date = draw_date(rng);

  for (const BuiltFile& file : files) {
    diff::FileDiff fd = diff::diff_file(file.path, file.before, file.after);
    // Stamp hunk sections with the enclosing function name like git does;
    // cheap approximation: use the first function signature above the hunk.
    for (diff::Hunk& hunk : fd.hunks) {
      for (std::size_t line = std::min(hunk.old_start, file.before.size());
           line-- > 0;) {
        const std::string& text = file.before[line];
        if (text.rfind("static ", 0) == 0) {
          hunk.section = text;
          break;
        }
      }
    }
    patch.files.push_back(std::move(fd));
    if (options.keep_snapshots) {
      record.snapshots.push_back(FileSnapshot{file.path, file.before, file.after});
    }
  }

  if (rng.chance(options.noise_file_prob)) {
    // Companion documentation change the C/C++ filter must strip.
    diff::FileDiff doc;
    doc.old_path = "ChangeLog";
    doc.new_path = "ChangeLog";
    diff::Hunk hunk;
    hunk.old_start = 1;
    hunk.old_count = 1;
    hunk.new_start = 1;
    hunk.new_count = 2;
    hunk.lines.push_back(diff::Line{diff::LineKind::kAdded, "* " + message});
    hunk.lines.push_back(
        diff::Line{diff::LineKind::kContext, "* previous release notes"});
    doc.hunks.push_back(std::move(hunk));
    patch.files.push_back(std::move(doc));
  }

  if (record.truth.is_security && rng.chance(options.euphemize_prob)) {
    // Euphemisms deliberately reuse the vocabulary of ordinary
    // maintenance commits, as real silent fixes do — a text miner must
    // not be able to separate them lexically.
    static constexpr std::array<std::string_view, 8> kEuphemisms = {
        "fix corner case", "improve error handling", "minor cleanup",
        "simplify logic", "fix rare crash", "code cleanup",
        "fix regression from earlier refactor", "address intermittent failure",
    };
    patch.message = std::string(kEuphemisms[rng.index(kEuphemisms.size())]);
    if (rng.chance(0.6)) {
      // often still naming the touched function, like every other commit
      const std::size_t in_pos = patch.message.size();
      (void)in_pos;
      patch.message += " in " + (message.empty() ? "core" : message.substr(
                                     message.find_last_of(' ') + 1));
    }
  }

  patch.commit =
      util::commit_id(diff::render_file_diffs(patch.files) + patch.message +
                      util::to_hex(rng()));
  return record;
}

CommitRecord make_version_bump_commit(util::Rng& rng,
                                      const std::string& repo_name) {
  CommitRecord record;
  record.repo = repo_name;
  record.truth.is_security = false;
  record.truth.type = PatchType::kNewFeature;

  diff::Patch& patch = record.patch;
  patch.message = "release: import version " + std::to_string(1 + rng.index(9)) +
                  "." + std::to_string(rng.index(20));
  patch.author = std::string(kAuthors[rng.index(kAuthors.size())]);
  patch.date = draw_date(rng);

  // A pile of unrelated whole-function changes across many files.
  const std::size_t n_files = 6 + rng.index(8);
  for (std::size_t i = 0; i < n_files; ++i) {
    const FunctionContext ctx = draw_context(rng);
    const std::vector<std::string> old_fn =
        make_function(ctx, filler_statements(rng, ctx, 4 + rng.index(4)));
    const std::vector<std::string> new_fn =
        make_function(ctx, filler_statements(rng, ctx, 4 + rng.index(6)));
    patch.files.push_back(diff::diff_file(draw_file_name(rng), old_fn, new_fn));
  }
  patch.commit = util::commit_id(diff::render_file_diffs(patch.files) +
                                 patch.message + util::to_hex(rng()));
  return record;
}

}  // namespace patchdb::corpus
