#include "corpus/taxonomy.h"

namespace patchdb::corpus {

std::string_view patch_type_name(PatchType type) {
  switch (type) {
    case PatchType::kBoundCheck: return "add or change bound checks";
    case PatchType::kNullCheck: return "add or change null checks";
    case PatchType::kSanityCheck: return "add or change other sanity checks";
    case PatchType::kVarDefinition: return "change variable definitions";
    case PatchType::kVarValue: return "change variable values";
    case PatchType::kFuncDeclaration: return "change function declarations";
    case PatchType::kFuncParameter: return "change function parameters";
    case PatchType::kFuncCall: return "add or change function calls";
    case PatchType::kJumpStatement: return "add or change jump statements";
    case PatchType::kMoveStatement: return "move statements without modification";
    case PatchType::kRedesign: return "add or change functions (redesign)";
    case PatchType::kOther: return "others";
    case PatchType::kNewFeature: return "new feature";
    case PatchType::kRefactor: return "refactor";
    case PatchType::kPerfFix: return "performance fix";
    case PatchType::kLogicBugFix: return "logic bug fix";
    case PatchType::kStyle: return "style cleanup";
    case PatchType::kDocs: return "documentation";
    case PatchType::kDefensive: return "defensive hardening";
  }
  return "unknown";
}

std::span<const PatchType> security_types() {
  static constexpr std::array<PatchType, kSecurityTypeCount> kTypes = {
      PatchType::kBoundCheck,     PatchType::kNullCheck,
      PatchType::kSanityCheck,    PatchType::kVarDefinition,
      PatchType::kVarValue,       PatchType::kFuncDeclaration,
      PatchType::kFuncParameter,  PatchType::kFuncCall,
      PatchType::kJumpStatement,  PatchType::kMoveStatement,
      PatchType::kRedesign,       PatchType::kOther,
  };
  return kTypes;
}

std::span<const PatchType> nonsecurity_types() {
  static constexpr std::array<PatchType, 7> kTypes = {
      PatchType::kNewFeature, PatchType::kRefactor, PatchType::kPerfFix,
      PatchType::kLogicBugFix, PatchType::kStyle, PatchType::kDocs,
      PatchType::kDefensive,
  };
  return kTypes;
}

TypeDistribution nvd_type_distribution() {
  // Long tail: Types 11, 3, 8 carry ~60% (Fig. 6 left panel).
  return {0.10, 0.08, 0.20, 0.04, 0.06, 0.02,
          0.03, 0.15, 0.02, 0.04, 0.25, 0.01};
}

TypeDistribution wild_type_distribution() {
  // Reshuffled: Type 8 head, Type 11 down to ~5% (Fig. 6 right panel).
  return {0.11, 0.10, 0.17, 0.05, 0.10, 0.02,
          0.03, 0.28, 0.02, 0.06, 0.05, 0.01};
}

TypeDistribution patchdb_type_distribution() {
  // Table V column "%".
  return {0.108, 0.091, 0.180, 0.048, 0.091, 0.018,
          0.026, 0.244, 0.017, 0.050, 0.120, 0.008};
}

}  // namespace patchdb::corpus
