// Commit fabrication: turn a mutation into a full git-style Patch with
// metadata, optional multi-file spread, and optional non-C/C++ companion
// files (the dirt the NVD pipeline has to strip). Each commit also
// carries its ground truth and, when requested, BEFORE/AFTER snapshots
// of every touched file — the "roll the repository back" capability the
// synthesizer needs (Section III-C.1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/mutate.h"
#include "corpus/taxonomy.h"
#include "diff/patch.h"
#include "util/rng.h"

namespace patchdb::corpus {

struct GroundTruth {
  bool is_security = false;
  PatchType type = PatchType::kOther;
};

struct FileSnapshot {
  std::string path;
  std::vector<std::string> before;
  std::vector<std::string> after;
};

struct CommitRecord {
  diff::Patch patch;
  GroundTruth truth;
  std::string repo;
  std::vector<FileSnapshot> snapshots;  // empty unless snapshots requested
};

struct CommitOptions {
  bool keep_snapshots = false;
  /// Probability of a second C file changed with the same pattern.
  double multi_file_prob = 0.10;
  /// Probability of a companion non-C/C++ file change (ChangeLog etc.).
  double noise_file_prob = 0.12;
  /// Extra neighbor functions placed around the target in its file.
  std::size_t min_neighbor_functions = 1;
  std::size_t max_neighbor_functions = 3;

  /// Probability that a SECURITY commit bundles a small unrelated
  /// cleanup in a neighbor function (silent wild fixes frequently do;
  /// NVD-referenced fixes are usually minimal). The bundle shifts the
  /// patch's feature vector off the pure fix-template position, which is
  /// the covariate shift between NVD and wild positives that Table III's
  /// globally-trained baselines stumble over.
  double bundle_cleanup_prob = 0.0;

  /// Probability that a SECURITY commit's message is replaced by a
  /// neutral euphemism ("handle edge case", "robustness fix"). Models
  /// the paper's observation that 61% of Linux security patches never
  /// mention their security impact — the reason text mining fails and
  /// code-level analysis is needed.
  double euphemize_prob = 0.0;
};

/// Fabricate one commit of the given type inside `repo_name`.
CommitRecord make_commit(util::Rng& rng, const std::string& repo_name,
                         PatchType type, const CommitOptions& options = {});

/// Fabricate a deliberately wrong "patch" page: a big version-bump commit
/// that mingles many unrelated changes (the paper observes up to 1% of
/// NVD links point at such pages).
CommitRecord make_version_bump_commit(util::Rng& rng, const std::string& repo_name);

/// Draw a PatchType: security type from `dist` with probability
/// `security_prob`, otherwise a uniform non-security kind.
PatchType draw_patch_type(util::Rng& rng, const TypeDistribution& dist,
                          double security_prob);

}  // namespace patchdb::corpus
