// Weighted distance matrix between verified security patches and wild
// commits (Section III-B.2). Features are normalized per dimension by
// 1/max|a_j| computed over BOTH sets, then the M x N Euclidean distance
// matrix is filled in parallel row blocks. Stored as float: at paper
// scale (4076 x 200K) the matrix is ~3.3 GB; callers can also use the
// blocked interface to stream without materializing everything.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "feature/features.h"

namespace patchdb::core {

/// Row-major M x N matrix of distances.
class DistanceMatrix {
 public:
  DistanceMatrix() = default;
  DistanceMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  float at(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }
  float& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }

  std::span<const float> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Max-abs weights learned over the union of both feature sets
/// (w_j = 1/max|a_j|, Section III-B.2). Dimensions that are identically
/// zero get weight 1. Both matrices must share a width; the weight
/// vector has that width, so the wider kSemantic space just works.
std::vector<double> maxabs_weights(const feature::FeatureMatrix& security,
                                   const feature::FeatureMatrix& wild);

/// Full weighted Euclidean distance matrix (parallel).
DistanceMatrix distance_matrix(const feature::FeatureMatrix& security,
                               const feature::FeatureMatrix& wild,
                               std::span<const double> weights);

/// Convenience: learn weights then compute.
DistanceMatrix distance_matrix(const feature::FeatureMatrix& security,
                               const feature::FeatureMatrix& wild);

/// Weighted Euclidean distance between two raw feature vectors (any
/// width; all three spans must agree).
double weighted_distance(std::span<const double> a, std::span<const double> b,
                         std::span<const double> weights);

/// Pre-scale a feature matrix by per-dimension weights into a packed
/// row-major float buffer (rows() x weights.size()). This is the exact
/// double-multiply-then-cast sequence the dense kernel uses; the
/// streaming engine and the incremental linker share it so their cells
/// stay bit-identical to the materialized matrix.
std::vector<float> scale_features(const feature::FeatureMatrix& matrix,
                                  std::span<const double> weights);

/// The scalar distance cell both paths agree on: sequential float
/// accumulation of (a[j]-b[j])^2 followed by a float sqrt. Deliberately
/// a single out-of-line definition — one instantiation means one
/// rounding behavior, which is what makes the streaming engine's
/// results bit-identical to the dense matrix.
float l2_cell(const float* a, const float* b, std::size_t dims) noexcept;

}  // namespace patchdb::core
