// Incremental nearest link across augmentation rounds. The plain loop
// recomputes the full M x N distance matrix every round even though the
// pool barely changes and only a few hundred seeds are added. The
// incremental linker keeps, for every seed, its K nearest pool
// candidates; a round then
//   - assigns greedily from the cached lists,
//   - falls back to a full row scan only when a seed's entire cache was
//     consumed by earlier links (rare for K >= ~16), and
//   - computes fresh rows only for the seeds added this round.
// With R rounds this turns R full matrix passes into one pass plus
// incremental work proportional to the newly labeled patches — the
// dominant cost at paper scale (Section III-B notes O(MN^2)).
#pragma once

#include <cstddef>
#include <vector>

#include "core/nearest_link.h"
#include "feature/features.h"

namespace patchdb::core {

class IncrementalLinker {
 public:
  /// `k` = cached candidates per seed.
  explicit IncrementalLinker(std::size_t k = 24) : k_(k) {}

  /// Reset the pool (features are copied; indices into this pool are the
  /// candidate ids returned by link()). Clears all seeds' caches.
  void set_pool(const feature::FeatureMatrix& pool, std::span<const double> weights);

  /// Add seeds (rows computed lazily at the next link()).
  void add_seeds(const feature::FeatureMatrix& seeds);

  /// Greedy nearest link over live pool entries, one distinct candidate
  /// per seed; mirrors Algorithm 1's ordering semantics on the cached
  /// neighborhoods. Requires live pool size >= seed count.
  LinkResult link();

  /// Remove pool entries (by pool index) after verification.
  void remove_from_pool(std::span<const std::size_t> pool_indices);

  std::size_t seed_count() const noexcept { return seed_count_; }
  std::size_t pool_live() const noexcept { return live_count_; }

  /// Total full-row distance computations performed (instrumentation for
  /// the ablation bench).
  std::size_t row_scans() const noexcept { return row_scans_; }

 private:
  struct Neighbor {
    float distance;
    std::uint32_t pool_index;
  };

  void compute_cache(std::size_t seed_index);
  const float* pool_row(std::size_t i) const noexcept {
    return pool_.data() + i * dims_;
  }
  const float* seed_row(std::size_t i) const noexcept {
    return seeds_.data() + i * dims_;
  }

  std::size_t k_;
  std::size_t dims_ = feature::kFeatureCount;  // set by set_pool
  std::vector<double> weights_;
  std::vector<float> pool_;  // weighted, row-major pool_count x dims_
  /// Dim-major copy of pool_ in kLinkGroupCols-row groups for the
  /// blocked SIMD kernel: group g spans rows [g*64, g*64+64) with
  /// element (row g*64+c, dim j) at pool_t_[(g*dims_ + j)*64 + c];
  /// lanes past pool_count_ are zero-filled.
  std::vector<float> pool_t_;
  std::vector<double> pool_norm_;  // ||row|| per pool entry (norm screening)
  /// Min/max of pool_norm_ per kLinkGroupCols group, computed over all
  /// rows at set_pool time (conservative for later removals): one
  /// hoisted Cauchy-Schwarz screen decision per group instead of one
  /// per row.
  std::vector<double> group_norm_lo_;
  std::vector<double> group_norm_hi_;
  std::size_t pool_count_ = 0;
  std::vector<char> alive_;
  std::size_t live_count_ = 0;
  std::vector<float> seeds_;  // weighted, row-major seed_count x dims_
  std::vector<double> seed_norm_;  // ||row|| per seed
  std::size_t seed_count_ = 0;
  std::vector<std::vector<Neighbor>> cache_;  // ascending distance
  std::vector<char> cache_valid_;
  std::size_t row_scans_ = 0;
};

}  // namespace patchdb::core
