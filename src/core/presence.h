// Patch presence testing — the paper's headline downstream use case
// (Section V-A.1): "The presence of such patches can be tested in the
// downstream software". Given a file from a (possibly diverged)
// downstream tree and a security patch touching it, decide whether the
// fix is already applied. The test matches the patch's post-image
// (context + added lines) and pre-image (context + removed lines)
// against the file with the fuzzy locator, so downstream drift within
// the usual limits does not break the verdict.
#pragma once

#include <string>
#include <vector>

#include "diff/fuzz_apply.h"
#include "diff/patch.h"

namespace patchdb::core {

enum class Presence {
  kPatched,     // post-image found, pre-image not
  kVulnerable,  // pre-image found, post-image not
  kBoth,        // hunks disagree or both images found (partial backport)
  kUnknown,     // neither image locatable (too much drift)
};

const char* presence_name(Presence p);

struct PresenceReport {
  Presence verdict = Presence::kUnknown;
  std::size_t hunks_patched = 0;
  std::size_t hunks_vulnerable = 0;
  std::size_t hunks_unknown = 0;
};

/// Test one file's hunks against downstream content.
PresenceReport test_presence(const std::vector<std::string>& file_lines,
                             const diff::FileDiff& fd,
                             const diff::FuzzOptions& options = {});

}  // namespace patchdb::core
