// Streaming tiled nearest-link engine: Algorithm 1 without the dense
// M x N distance matrix (Section III-B at corpus scale).
//
// The dense path materializes every distance (~3.3 GB at the paper's
// 4076 x 200K shape) and the greedy link re-scans full O(N) rows on
// candidate collisions. This engine instead
//
//   1. streams the wild set in cache-sized column tiles through a
//      norm-decomposed kernel: with per-row and per-tile squared norms
//      precomputed, ||a-b||^2 = ||a||^2 + ||b||^2 - 2 a.b, so a cell
//      can be screened by the O(1) Cauchy-Schwarz lower bound
//      (||a|| - ||b||)^2 and then by the decomposed dot product before
//      the exact kernel ever runs;
//   2. keeps a bounded top-k candidate heap per security patch, filled
//      during the single streaming pass, so the greedy assignment's
//      collision handling (Algorithm 1 lines 10-15) consults a k-entry
//      sorted list instead of an O(N) row; and
//   3. drives the greedy selection with a priority queue keyed on each
//      row's cached minimum instead of the dense path's O(M^2) linear
//      argmin sweep. When a row's heap is fully consumed by earlier
//      links the engine falls back to a tracked full-row re-scan
//      (counter `nearest_link.fallback_rescans`).
//
// Results are bit-identical to
//   nearest_link_search(distance_matrix(security, wild, weights))
// on equal inputs: the surviving cells run the exact same float kernel
// (core::l2_cell), ties break toward the lowest column index, and the
// screening bounds carry conservative error margins so no cell that
// could enter a heap is ever pruned.
#pragma once

#include <cstddef>
#include <span>

#include "core/nearest_link.h"
#include "feature/features.h"

namespace patchdb::core {

/// Knobs for the streaming engine. Defaults suit a few hundred to a
/// few thousand security patches against a 100K+ wild pool.
struct StreamingLinkConfig {
  /// Candidates cached per security patch. Larger k absorbs more
  /// collisions before a fallback re-scan; k >= cols caches whole rows.
  std::size_t top_k = 24;

  /// Wild columns per streaming tile. 2048 columns x 60 dims x 4 bytes
  /// keeps a tile's scaled features inside a typical L2 slice.
  std::size_t tile_cols = 2048;

  /// Optional cap (bytes) on the engine-owned working set: the
  /// candidate heaps plus the per-tile norm buffers. 0 = uncapped.
  /// When the cap binds, top_k and tile_cols shrink (floors: 1 and 64)
  /// rather than allocating past it.
  std::size_t memory_cap_bytes = 0;

  struct Resolved {
    std::size_t top_k = 0;
    std::size_t tile_cols = 0;
    /// Engine-owned bytes under the cap: heaps, cursors, norms.
    std::size_t working_set_bytes = 0;
  };
  /// The effective knobs for an M x N problem after clamping to the
  /// matrix shape and the memory cap.
  Resolved resolve(std::size_t rows, std::size_t cols) const;
};

/// Per-run introspection (mirrors the obs counters, usable without a
/// registry installed).
struct StreamingLinkStats {
  std::size_t tiles = 0;             // streaming tiles processed
  std::size_t pruned_cells = 0;      // rejected by a screening bound
  std::size_t exact_cells = 0;       // ran the exact float kernel
  std::size_t topk_hits = 0;         // links served from a row's heap
  std::size_t fallback_rescans = 0;  // links that re-scanned a full row
  std::size_t top_k = 0;             // effective k after the cap
  std::size_t tile_cols = 0;         // effective tile width
  std::size_t working_set_bytes = 0; // engine-owned footprint
};

/// Algorithm 1 end to end — bit-identical LinkResult to the dense
/// nearest_link_search over distance_matrix(security, wild, weights),
/// O(M·k + N·d) memory instead of O(M·N).
LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  std::span<const double> weights,
                                  const StreamingLinkConfig& config = {},
                                  StreamingLinkStats* stats = nullptr);

/// Convenience: learn the max-abs weights (Section III-B.2) then link.
LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  const StreamingLinkConfig& config = {},
                                  StreamingLinkStats* stats = nullptr);

}  // namespace patchdb::core
