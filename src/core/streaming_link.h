// Streaming tiled nearest-link engine: Algorithm 1 without the dense
// M x N distance matrix (Section III-B at corpus scale).
//
// The dense path materializes every distance (~3.3 GB at the paper's
// 4076 x 200K shape) and the greedy link re-scans full O(N) rows on
// candidate collisions. This engine instead
//
//   1. shards the wild set across the thread pool: each worker owns a
//      contiguous range of column tiles and fills *private* per-row
//      top-k candidate heaps with private prune/flop counters, so the
//      pass-1 stream runs with no shared mutable state (no atomics, no
//      locks on the hot path);
//   2. evaluates each tile through the blocked SIMD kernel
//      (core/link_kernel.h): columns are packed dim-major in groups of
//      kLinkGroupCols so the inner distance loop vectorizes, while the
//      Cauchy-Schwarz norm screen is hoisted to one decision per group
//      using precomputed per-group norm bounds;
//   3. merges the worker heaps per row after the stream — sort the
//      union under the strict (distance, column) order and keep the k
//      smallest. The order is total (columns are unique), so the merge
//      is deterministic for every shard count and equals the top-k a
//      serial scan produces; and
//   4. drives the greedy selection with a priority queue keyed on each
//      row's cached minimum instead of the dense path's O(M^2) linear
//      argmin sweep. When a row's heap is fully consumed by earlier
//      links the engine falls back to a tracked full-row re-scan
//      (counter `nearest_link.fallback_rescans`), itself parallelized
//      over fixed column ranges with a deterministic in-order merge.
//
// Results are bit-identical to
//   nearest_link_search(distance_matrix(security, wild, weights))
// on equal inputs: every computed cell runs the exact arithmetic of the
// scalar kernel (core::l2_cell) lane-parallel (see link_kernel.h for
// why vectorizing across columns preserves each lane bit-for-bit), ties
// break toward the lowest column index, and the screening bounds carry
// conservative error margins so no cell that could enter a heap is ever
// pruned. Pruning and shard counts therefore affect speed and counters,
// never the LinkResult.
//
// Optionally a swappable Index (core/index.h) runs as phase 0: it
// shortlists, per row, the column partitions that could hold the
// nearest neighbors, pass 1 streams a partition-grouped permutation of
// the pool and skips whole SIMD groups outside the shortlist, and every
// greedy pick the shortlist's pending bound cannot prove strictly goes
// through the same exact full-row rescan. The LinkResult therefore
// stays bitwise identical to the dense path for every backend; the
// index only moves wall-clock and the index.* counters (DESIGN.md §3i).
#pragma once

#include <cstddef>
#include <span>

#include "core/index.h"
#include "core/nearest_link.h"
#include "feature/features.h"

namespace patchdb::core {

/// Knobs for the streaming engine. Defaults suit a few hundred to a
/// few thousand security patches against a 100K+ wild pool.
struct StreamingLinkConfig {
  /// Candidates cached per security patch. Larger k absorbs more
  /// collisions before a fallback re-scan; k >= cols caches whole rows.
  std::size_t top_k = 24;

  /// Wild columns per streaming tile. 2048 columns x 60 dims x 4 bytes
  /// keeps a tile's scaled features inside a typical L2 slice.
  std::size_t tile_cols = 2048;

  /// Pass-1 worker shards. 0 (the default) uses the default pool's
  /// worker count (`--threads` / PATCHDB_THREADS / hardware
  /// concurrency). The LinkResult is identical for every value; only
  /// wall-clock and the private-state footprint change.
  std::size_t threads = 0;

  /// Optional cap (bytes) on the engine-owned working set: the shard
  /// heaps, merged heaps, dim-major pack buffers, and norm-bound
  /// tables. 0 = uncapped. When the cap binds, tile_cols, then top_k,
  /// then threads shrink (floors: 64 / 1 / 1) rather than allocating
  /// past it; a cap the floor configuration still exceeds makes
  /// resolve() throw std::invalid_argument instead of silently
  /// allocating past the cap.
  std::size_t memory_cap_bytes = 0;

  /// Phase-0 candidate retrieval. kExact (the default) streams every
  /// column, byte-for-byte the pre-index engine. kCoarse / kRproj
  /// shortlist partitions per row and prove or rescan every pick —
  /// same LinkResult, fewer exact cells (see core/index.h).
  IndexConfig index;

  struct Resolved {
    std::size_t top_k = 0;
    std::size_t tile_cols = 0;
    std::size_t threads = 0;
    /// Engine-owned bytes under the cap: heaps, cursors, norms, packs.
    std::size_t working_set_bytes = 0;
  };
  /// The effective knobs for an M x N problem over `dims` feature
  /// dimensions, after clamping to the matrix shape, the pool size,
  /// and the memory cap.
  Resolved resolve(std::size_t rows, std::size_t cols,
                   std::size_t dims) const;
};

/// Per-run introspection (mirrors the obs counters, usable without a
/// registry installed). Prune/exact counts depend on the shard count
/// and group screening, so they are stable for a fixed configuration
/// but not comparable across different `threads` values — unlike the
/// LinkResult, which never varies.
struct StreamingLinkStats {
  std::size_t tiles = 0;             // streaming tiles processed
  std::size_t pruned_cells = 0;      // skipped by a group norm screen
  std::size_t exact_cells = 0;       // ran the blocked exact kernel
  std::size_t topk_hits = 0;         // links served from a row's heap
  std::size_t fallback_rescans = 0;  // links that re-scanned a full row
  std::size_t index_probes = 0;          // partitions probed (phase 0)
  std::size_t index_shortlist_cols = 0;  // columns shortlisted (phase 0)
  std::size_t index_screened_cells = 0;  // cells skipped by index masks
  std::size_t index_fallback_rescans = 0;  // full-row scans the pending
                                           // bound could not avoid
  std::size_t top_k = 0;             // effective k after the cap
  std::size_t tile_cols = 0;         // effective tile width
  std::size_t threads = 0;           // effective pass-1 shard count
  std::size_t working_set_bytes = 0; // engine-owned footprint
};

/// Algorithm 1 end to end — bit-identical LinkResult to the dense
/// nearest_link_search over distance_matrix(security, wild, weights),
/// O(M·k·T + N·d) memory instead of O(M·N).
LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  std::span<const double> weights,
                                  const StreamingLinkConfig& config = {},
                                  StreamingLinkStats* stats = nullptr);

/// Convenience: learn the max-abs weights (Section III-B.2) then link.
LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  const StreamingLinkConfig& config = {},
                                  StreamingLinkStats* stats = nullptr);

}  // namespace patchdb::core
