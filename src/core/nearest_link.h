// Nearest link search (Algorithm 1 of the paper) plus two comparators:
// an exact rectangular assignment solver (Jonker-Volgenant style
// shortest augmenting paths) for ablating the greedy approximation, and
// plain per-row nearest neighbor (KNN, K=1 with reuse allowed) to
// demonstrate why nearest link is not KNN (Section III-B.3).
#pragma once

#include <cstddef>
#include <vector>

#include "core/distance.h"

namespace patchdb::core {

struct LinkResult {
  /// candidate[m] = wild index linked to security patch m.
  std::vector<std::size_t> candidate;
  double total_distance = 0.0;
};

/// Algorithm 1: greedy global-minimum link assignment. Every security
/// patch gets one distinct wild candidate; requires cols >= rows.
LinkResult nearest_link_search(const DistanceMatrix& d);

/// Exact minimum-cost rectangular assignment (one distinct column per
/// row). O(rows^2 * cols) time — use at ablation scale.
LinkResult exact_assignment(const DistanceMatrix& d);

/// Per-row argmin with reuse allowed (the KNN contrast: one candidate may
/// serve many rows, so the candidate set can be much smaller than M).
LinkResult row_argmin(const DistanceMatrix& d);

}  // namespace patchdb::core
