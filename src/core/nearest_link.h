// Nearest link search (Algorithm 1 of the paper) plus two comparators:
// an exact rectangular assignment solver (Jonker-Volgenant style
// shortest augmenting paths) for ablating the greedy approximation, and
// plain per-row nearest neighbor (KNN, K=1 with reuse allowed) to
// demonstrate why nearest link is not KNN (Section III-B.3).
#pragma once

#include <cstddef>
#include <vector>

#include "core/distance.h"

namespace patchdb::core {

struct LinkResult {
  /// candidate[m] = wild index linked to security patch m.
  std::vector<std::size_t> candidate;
  double total_distance = 0.0;
};

/// Algorithm 1: greedy global-minimum link assignment. Every security
/// patch gets one distinct wild candidate; requires cols >= rows.
LinkResult nearest_link_search(const DistanceMatrix& d);

/// Exact minimum-cost rectangular assignment (one distinct column per
/// row). O(rows^2 * cols) time — use at ablation scale.
LinkResult exact_assignment(const DistanceMatrix& d);

/// Per-row argmin with reuse allowed (the KNN contrast: one candidate may
/// serve many rows, so the candidate set can be much smaller than M).
LinkResult row_argmin(const DistanceMatrix& d);

}  // namespace patchdb::core

// The streaming tiled engine (core/streaming_link.h) produces the same
// LinkResult as nearest_link_search over a materialized matrix without
// ever holding the M x N matrix — callers that only need Algorithm 1's
// output at scale should prefer streaming_nearest_link.
#include "core/streaming_link.h"  // IWYU pragma: export
