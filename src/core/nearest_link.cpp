#include "core/nearest_link.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace patchdb::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

LinkResult nearest_link_search(const DistanceMatrix& d) {
  const std::size_t m = d.rows();
  const std::size_t n = d.cols();
  if (n < m) {
    throw std::invalid_argument("nearest_link_search: need cols >= rows");
  }
  PATCHDB_TRACE_SPAN("nearest_link.greedy");
  PATCHDB_COUNTER_ADD("nearest_link.links", m);
  LinkResult result;
  result.candidate.assign(m, 0);

  // U[m] = current minimum of row m over all columns, V[m] = argmin —
  // Algorithm 1's init (lines 1-3).
  std::vector<double> u(m, kInf);
  std::vector<std::size_t> v(m, 0);
  for (std::size_t row = 0; row < m; ++row) {
    const auto dr = d.row(row);
    double best = kInf;
    std::size_t best_col = 0;
    for (std::size_t col = 0; col < n; ++col) {
      if (dr[col] < best) {
        best = dr[col];
        best_col = col;
      }
    }
    u[row] = best;
    v[row] = best_col;
  }

  std::vector<char> used(n, 0);
  std::vector<char> assigned(m, 0);

  for (std::size_t step = 0; step < m; ++step) {
    // m0 <- argmin U over unassigned rows (line 7).
    std::size_t m0 = 0;
    double best = kInf;
    for (std::size_t row = 0; row < m; ++row) {
      if (!assigned[row] && u[row] < best) {
        best = u[row];
        m0 = row;
      }
    }
    std::size_t n0 = v[m0];
    if (used[n0]) {
      // The cached argmin was taken by an earlier link: recompute the row
      // minimum over unused columns and commit to it (lines 10-15).
      PATCHDB_COUNTER_ADD("nearest_link.rescans", 1);
      PATCHDB_COUNTER_ADD("nearest_link.rescan_cells", n);
      const auto dr = d.row(m0);
      double row_best = kInf;
      std::size_t row_best_col = 0;
      for (std::size_t col = 0; col < n; ++col) {
        if (!used[col] && dr[col] < row_best) {
          row_best = dr[col];
          row_best_col = col;
        }
      }
      n0 = row_best_col;
    }
    result.candidate[m0] = n0;
    result.total_distance += d.at(m0, n0);
    used[n0] = 1;
    assigned[m0] = 1;
    u[m0] = kInf;  // line 17
  }
  return result;
}

LinkResult exact_assignment(const DistanceMatrix& d) {
  const std::size_t m = d.rows();
  const std::size_t n = d.cols();
  if (n < m) throw std::invalid_argument("exact_assignment: need cols >= rows");
  PATCHDB_TRACE_SPAN("nearest_link.exact");
  PATCHDB_COUNTER_ADD("nearest_link.links", m);

  // Hungarian algorithm with potentials (Jonker-Volgenant flavor),
  // 1-based with column 0 as the virtual start. p[j] = row matched to
  // column j (0 = none). O(m^2 n).
  std::vector<double> pot_u(m + 1, 0.0);
  std::vector<double> pot_v(n + 1, 0.0);
  std::vector<std::size_t> p(n + 1, 0);
  std::vector<std::size_t> way(n + 1, 0);

  for (std::size_t i = 1; i <= m; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = p[j0];
      double delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = static_cast<double>(d.at(i0 - 1, j - 1)) -
                           pot_u[i0] - pot_v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          pot_u[p[j]] += delta;
          pot_v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    // Augment along the recorded way.
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  LinkResult result;
  result.candidate.assign(m, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    if (p[j] != 0) result.candidate[p[j] - 1] = j - 1;
  }
  for (std::size_t row = 0; row < m; ++row) {
    result.total_distance += d.at(row, result.candidate[row]);
  }
  return result;
}

LinkResult row_argmin(const DistanceMatrix& d) {
  PATCHDB_TRACE_SPAN("nearest_link.argmin");
  PATCHDB_COUNTER_ADD("nearest_link.links", d.rows());
  LinkResult result;
  result.candidate.assign(d.rows(), 0);
  for (std::size_t row = 0; row < d.rows(); ++row) {
    const auto dr = d.row(row);
    std::size_t best_col = 0;
    for (std::size_t col = 1; col < d.cols(); ++col) {
      if (dr[col] < dr[best_col]) best_col = col;
    }
    result.candidate[row] = best_col;
    result.total_distance += dr[best_col];
  }
  return result;
}

}  // namespace patchdb::core
