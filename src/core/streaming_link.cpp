#include "core/streaming_link.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/link_kernel.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace patchdb::core {

namespace {

/// One cached candidate. Lexicographic (distance, column) order is the
/// tie rule the dense greedy implements implicitly by scanning columns
/// left to right with a strict `<`.
struct Entry {
  float d;
  std::uint32_t col;
};

bool lex_less(const Entry& a, const Entry& b) noexcept {
  return a.d < b.d || (a.d == b.d && a.col < b.col);
}

/// Norm of one scaled row, accumulated in double so the screening
/// bounds lose almost nothing to rounding.
double row_norm_s(const float* v, std::size_t dims) noexcept {
  double total = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    const double x = v[j];
    total += x * x;
  }
  return std::sqrt(total);
}

/// Conservative relative margin for comparing a double-precision
/// squared bound against an exact float-kernel distance: the float
/// kernel's sequential accumulation is off by at most ~(dims+2) float
/// ulps relative, the double side by ~dims double ulps. 4x headroom.
double screening_margin(std::size_t dims) noexcept {
  return 4.0 * static_cast<double>(dims + 2) * 0x1p-24 + 1e-7;
}

std::size_t round_up_groups(std::size_t v) noexcept {
  return (v + kLinkGroupCols - 1) / kLinkGroupCols * kLinkGroupCols;
}

/// Private pass-1 tallies, one per shard, padded so neighboring shards
/// never share a cache line (the whole point is no contended writes).
struct alignas(64) ShardTally {
  std::uint64_t pruned = 0;
  std::uint64_t exact = 0;
  std::uint64_t tiles = 0;
  std::uint64_t screened = 0;  // cells skipped by index group masks
};

}  // namespace

StreamingLinkConfig::Resolved StreamingLinkConfig::resolve(
    std::size_t rows, std::size_t cols, std::size_t dims) const {
  Resolved r;
  r.top_k = std::clamp<std::size_t>(top_k, 1, std::max<std::size_t>(cols, 1));
  const std::size_t tile_floor =
      std::min<std::size_t>(kLinkGroupCols, std::max<std::size_t>(cols, 1));
  r.tile_cols = std::clamp(tile_cols, tile_floor, std::max<std::size_t>(cols, 1));
  r.threads = threads > 0 ? threads : util::default_pool_threads();
  r.threads = std::clamp<std::size_t>(r.threads, 1, 1024);

  const bool use_index = index.kind != IndexKind::kExact;
  auto working_set = [rows, cols, dims, use_index](std::size_t k,
                                                   std::size_t tile,
                                                   std::size_t shards) {
    const std::size_t stride = round_up_groups(tile);
    const std::size_t groups = stride / kLinkGroupCols;
    // Shard-private heaps plus the merged array pass 2 consumes.
    const std::size_t heap_bytes = (shards + 1) * rows * (k + 1) * sizeof(Entry);
    const std::size_t size_bytes = (shards + 1) * rows * sizeof(std::uint32_t);
    const std::size_t cursor_bytes = rows * sizeof(std::uint32_t);
    const std::size_t row_norm_bytes = rows * sizeof(double);
    const std::size_t shard_tile_bytes =
        shards * (stride * dims * sizeof(float)        // dim-major pack
                  + tile * sizeof(double)              // column norms
                  + groups * 2 * sizeof(double)        // group norm bounds
                  + kLinkGroupCols * sizeof(float));   // kernel output lanes
    std::size_t index_bytes = 0;
    if (use_index) {
      // Per-row group-skip bitmasks, one slot per SIMD group of every
      // tile, plus the pending bound and the verified-head slot. (The
      // permuted pool copy is input-sized, like the scaled features the
      // cap has never counted.)
      const std::size_t tiles =
          (std::max<std::size_t>(cols, 1) + tile - 1) / tile;
      const std::size_t slots = tiles * groups;
      const std::size_t words = (slots + 63) / 64;
      index_bytes = rows * (words * sizeof(std::uint64_t) +
                            2 * sizeof(double) + sizeof(std::uint32_t) + 1);
    }
    return heap_bytes + size_bytes + cursor_bytes + row_norm_bytes +
           shard_tile_bytes + index_bytes;
  };

  if (memory_cap_bytes > 0) {
    // Shrink the tile first (it only trades dispatch overhead), then the
    // heaps (they trade fallback re-scans), then the shard count (it
    // trades parallelism), down to hard floors.
    while (r.tile_cols > tile_floor &&
           working_set(r.top_k, r.tile_cols, r.threads) > memory_cap_bytes) {
      r.tile_cols = std::max(tile_floor, r.tile_cols / 2);
    }
    while (r.top_k > 1 &&
           working_set(r.top_k, r.tile_cols, r.threads) > memory_cap_bytes) {
      r.top_k = std::max<std::size_t>(1, r.top_k / 2);
    }
    while (r.threads > 1 &&
           working_set(r.top_k, r.tile_cols, r.threads) > memory_cap_bytes) {
      r.threads = std::max<std::size_t>(1, r.threads / 2);
    }
  }
  // No point sharding finer than one tile per worker.
  const std::size_t tiles =
      (std::max<std::size_t>(cols, 1) + r.tile_cols - 1) / r.tile_cols;
  r.threads = std::min(r.threads, tiles);
  r.working_set_bytes = working_set(r.top_k, r.tile_cols, r.threads);
  if (memory_cap_bytes > 0 && r.working_set_bytes > memory_cap_bytes) {
    // Every knob is at its floor and the pack/heap buffers still do not
    // fit. Exceeding the cap silently would defeat its purpose, so fail
    // loudly and let the caller raise it.
    throw std::invalid_argument(
        "streaming_link: memory_cap_bytes=" + std::to_string(memory_cap_bytes) +
        " is below the floor working set (" +
        std::to_string(r.working_set_bytes) + " bytes at tile_cols=" +
        std::to_string(r.tile_cols) + ", top_k=" + std::to_string(r.top_k) +
        ", threads=" + std::to_string(r.threads) + "); raise the cap");
  }
  return r;
}

LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  std::span<const double> weights,
                                  const StreamingLinkConfig& config,
                                  StreamingLinkStats* stats) {
  const std::size_t dims = weights.size();
  if (dims != security.cols() || dims != wild.cols()) {
    throw std::invalid_argument("streaming_nearest_link: bad weight vector");
  }
  const std::size_t m = security.rows();
  const std::size_t n = wild.rows();
  if (n < m) {
    throw std::invalid_argument("streaming_nearest_link: need cols >= rows");
  }
  LinkResult result;
  if (m == 0) return result;

  PATCHDB_TRACE_SPAN("nearest_link.streaming");
  PATCHDB_COUNTER_ADD("nearest_link.links", m);

  const StreamingLinkConfig::Resolved rc = config.resolve(m, n, dims);
  const std::size_t k = rc.top_k;
  const std::size_t tile = rc.tile_cols;
  const std::size_t shards = rc.threads;
  const std::size_t stride = round_up_groups(tile);
  const std::size_t tiles_total = (n + tile - 1) / tile;

  // Same scale-then-cast as the dense kernel: identical float inputs.
  const std::vector<float> sec = scale_features(security, weights);
  const std::vector<float> wld = scale_features(wild, weights);

  // ---- Phase 0 (optional): build the index over the scaled pool,
  // stream a partition-grouped permutation of it so each row's
  // shortlist becomes a handful of contiguous SIMD-group runs, and
  // record per-row group bitmasks plus the pending bound pass 2 uses to
  // prove or rescan every pick. Heap entries store ORIGINAL column ids,
  // so the merge order, tie-breaking, and the result are untouched.
  const bool use_index = config.index.kind != IndexKind::kExact;
  std::unique_ptr<Index> index;
  std::vector<float> wld_perm;
  std::span<const std::uint32_t> ord;
  const std::size_t groups_per_tile = stride / kLinkGroupCols;
  std::size_t mask_words = 0;
  std::vector<std::uint64_t> mask;  // m x mask_words group bitmasks
  std::vector<double> pending(m, std::numeric_limits<double>::infinity());
  std::vector<std::uint64_t> row_probes;
  std::vector<std::uint64_t> row_shortlist;
  const float* pool = wld.data();  // what pass 1 streams
  if (use_index) {
    PATCHDB_TRACE_SPAN("nearest_link.index_build");
    IndexConfig icfg = config.index;
    if (icfg.kind == IndexKind::kCoarse && icfg.clusters == 0) {
      // Auto-size against two failure modes: the one-off n x C
      // assignment pass must stay well under one exact m x n sweep
      // (cap at m/3), and the partition must not be finer than nprobe
      // can cover — a query whose natural neighborhood splits across
      // more than nprobe clusters leaves a near cluster unprobed,
      // the pending bound collapses, and every such row re-scans.
      // 8*nprobe keeps the probed fraction around 1/8 regardless of
      // scale.
      icfg.clusters = std::clamp<std::size_t>(
          std::min(static_cast<std::size_t>(
                       std::sqrt(static_cast<double>(n))),
                   8 * icfg.nprobe),
          1, std::max<std::size_t>(1, m / 3));
    }
    index = make_index(icfg);
    index->build(wld.data(), n, dims);
    ord = index->ordering();
    wld_perm.resize(n * dims);
    util::default_pool().parallel_for(
        n, [&](std::size_t begin, std::size_t end) {
          for (std::size_t p = begin; p < end; ++p) {
            std::copy_n(wld.data() + ord[p] * dims, dims,
                        wld_perm.data() + p * dims);
          }
        });
    pool = wld_perm.data();

    mask_words = (tiles_total * groups_per_tile + 63) / 64;
    mask.assign(m * mask_words, 0);
    row_probes.assign(m, 0);
    row_shortlist.assign(m, 0);
    util::default_pool().parallel_for(
        m, [&](std::size_t begin, std::size_t end) {
          std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
          // Position p sits in tile p/tile, group (p%tile)/64 — a slot
          // id that is monotone in p with +1 steps, so a contiguous
          // position range covers exactly the slots of its endpoints.
          const auto slot_of = [&](std::size_t p) {
            return (p / tile) * groups_per_tile +
                   (p % tile) / kLinkGroupCols;
          };
          for (std::size_t r = begin; r < end; ++r) {
            ranges.clear();
            const IndexShortlist sl =
                index->shortlist(sec.data() + r * dims, k, ranges);
            pending[r] = sl.pending_lb;
            row_probes[r] = sl.probes;
            row_shortlist[r] = sl.cols;
            std::uint64_t* w = mask.data() + r * mask_words;
            for (const auto& [p_lo, p_hi] : ranges) {
              if (p_lo >= p_hi) continue;
              for (std::size_t s = slot_of(p_lo); s <= slot_of(p_hi - 1);
                   ++s) {
                w[s >> 6] |= std::uint64_t{1} << (s & 63);
              }
            }
          }
        });
  }

  std::vector<double> row_norm(m);  // ||a||
  util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      row_norm[r] = row_norm_s(sec.data() + r * dims, dims);
    }
  });

  const double margin = screening_margin(dims);
  const double sqf = 1.0 - 2.0 * margin;  // factor on squared bounds

  // ---- Pass 1: worker-sharded tile stream. Shard s owns the
  // contiguous tile range [s*T/S, (s+1)*T/S) and fills private per-row
  // top-k heaps (flat: row r owns [r*(k+1), r*(k+1)+k)) plus private
  // tallies — no shared mutable state until the merge below.
  std::vector<std::vector<Entry>> shard_entries(shards);
  std::vector<std::vector<std::uint32_t>> shard_sizes(shards);
  std::vector<ShardTally> tally(shards);
  obs::Progress tile_progress("link.tiles", tiles_total);

  util::default_pool().parallel_for(shards, [&](std::size_t shard_begin,
                                                std::size_t shard_end) {
    for (std::size_t s = shard_begin; s < shard_end; ++s) {
      const std::size_t tile_lo = s * tiles_total / shards;
      const std::size_t tile_hi = (s + 1) * tiles_total / shards;
      std::vector<Entry>& entries = shard_entries[s];
      std::vector<std::uint32_t>& heap_size = shard_sizes[s];
      entries.resize(m * (k + 1));
      heap_size.assign(m, 0);

      std::vector<float> pack(stride * dims);
      std::vector<float> lane(kLinkGroupCols);
      std::vector<double> col_norm(tile);
      const std::size_t group_cap = stride / kLinkGroupCols;
      std::vector<double> group_lo(group_cap);
      std::vector<double> group_hi(group_cap);
      std::uint64_t pruned = 0;
      std::uint64_t exact = 0;
      std::uint64_t screened = 0;

      for (std::size_t t = tile_lo; t < tile_hi; ++t) {
        const std::size_t col0 = t * tile;
        const std::size_t width = std::min(col0 + tile, n) - col0;
        pack_cols_dim_major(pool + col0 * dims, width, dims, stride,
                            pack.data());
        for (std::size_t i = 0; i < width; ++i) {
          col_norm[i] = row_norm_s(pool + (col0 + i) * dims, dims);
        }
        const std::size_t groups = (width + kLinkGroupCols - 1) / kLinkGroupCols;
        for (std::size_t g = 0; g < groups; ++g) {
          const std::size_t lo = g * kLinkGroupCols;
          const std::size_t hi = std::min(lo + kLinkGroupCols, width);
          double mn = col_norm[lo];
          double mx = col_norm[lo];
          for (std::size_t i = lo + 1; i < hi; ++i) {
            mn = std::min(mn, col_norm[i]);
            mx = std::max(mx, col_norm[i]);
          }
          group_lo[g] = mn;
          group_hi[g] = mx;
        }

        for (std::size_t r = 0; r < m; ++r) {
          const float* a = sec.data() + r * dims;
          const double na_s = row_norm[r];
          Entry* h = entries.data() + r * (k + 1);
          std::uint32_t sz = heap_size[r];
          const std::uint64_t* rmask =
              use_index ? mask.data() + r * mask_words : nullptr;
          for (std::size_t g = 0; g < groups; ++g) {
            const std::size_t gc0 = g * kLinkGroupCols;
            const std::size_t gw = std::min(kLinkGroupCols, width - gc0);
            if (rmask != nullptr) {
              // Index screen: the whole group sits outside this row's
              // shortlist — every column in it is covered by the
              // pending bound, so phase 1 never has to score it.
              const std::size_t slot = t * groups_per_tile + g;
              if (((rmask[slot >> 6] >> (slot & 63)) & 1) == 0) {
                screened += gw;
                continue;
              }
            }
            if (sz == k) {
              // Hoisted Cauchy-Schwarz screen, one decision per group:
              // ||a-b||^2 >= (||a|| - ||b||)^2, and the gap from ||a||
              // to the group's norm range lower-bounds every column's
              // gap. The significance guard keeps catastrophic
              // cancellation from producing an overconfident bound;
              // both conditions imply the per-column originals, so
              // nothing a serial per-cell screen would keep is lost.
              const double fsq = static_cast<double>(h[0].d) *
                                 static_cast<double>(h[0].d);
              const double bd = na_s < group_lo[g] ? group_lo[g] - na_s
                                : na_s > group_hi[g] ? na_s - group_hi[g]
                                                     : 0.0;
              if (bd > (na_s + group_hi[g]) * 1e-9 && bd * bd * sqf > fsq) {
                pruned += gw;
                continue;
              }
            }
            // Exact blocked kernel over the whole group: lane i holds
            // the float squared distance with scalar-identical
            // accumulation (padded lanes compute garbage, never read).
            exact += gw;
            sq_cell_block(a, pack.data() + gc0, dims, kLinkGroupCols, stride,
                          lane.data());
            if (sz == k) {
              // Vectorized group rejection: the scalar loop below skips
              // any lane with sq > front^2 * (1 + 2^-21), so when every
              // lane clears that bar the whole group is a no-op and the
              // branchy per-lane pass can be skipped. The bar is
              // rounded *up* to float (nextafter) so a lane is never
              // skipped here that the scalar screen would scan; the
              // heap front only shrinks within a group, so the bar
              // taken before the scan is the loosest one. Padded lanes
              // can only force the scan, never suppress it.
              const double fsq = static_cast<double>(h[0].d) *
                                 static_cast<double>(h[0].d);
              if (fsq > 1e-60) {
                const float cut = std::nextafterf(
                    static_cast<float>(fsq * (1.0 + 0x1p-21)), HUGE_VALF);
                int any = 0;
                for (std::size_t i = 0; i < kLinkGroupCols; ++i) {
                  any |= lane[i] <= cut;
                }
                if (!any) continue;
              }
            }
            for (std::size_t i = 0; i < gw; ++i) {
              const float sq = lane[i];
              if (sz == k) {
                // Cheap pre-sqrt rejection: if sq exceeds the front's
                // square by more than a float ulp's worth, the rounded
                // root is strictly above the front and can't enter.
                // (Guard excludes denormal fronts where the relative
                // margin stops covering one ulp.)
                const double fsq = static_cast<double>(h[0].d) *
                                   static_cast<double>(h[0].d);
                if (fsq > 1e-60 &&
                    static_cast<double>(sq) > fsq * (1.0 + 0x1p-21)) {
                  continue;
                }
              }
              const std::size_t p = col0 + gc0 + i;
              const Entry e{std::sqrt(sq),
                            use_index ? ord[p]
                                      : static_cast<std::uint32_t>(p)};
              if (sz < k) {
                h[sz++] = e;
                std::push_heap(h, h + sz, lex_less);
              } else if (lex_less(e, h[0])) {
                std::pop_heap(h, h + k, lex_less);
                h[k - 1] = e;
                std::push_heap(h, h + k, lex_less);
              }
            }
          }
          heap_size[r] = sz;
        }
        tile_progress.tick();
      }
      tally[s].pruned = pruned;
      tally[s].exact = exact;
      tally[s].tiles = tile_hi - tile_lo;
      tally[s].screened = screened;
    }
  });

  // ---- Deterministic merge: per row, the k lexicographically smallest
  // of the shard top-k union. Columns are unique so (d, col) is a total
  // order — the merged list is the same for every shard count, and it
  // equals the serial top-k because an entry among the k global minima
  // is always inside its own shard's top-k.
  std::vector<Entry> entries(m * (k + 1));
  std::vector<std::uint32_t> heap_size(m, 0);
  util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
    std::vector<Entry> scratch;
    scratch.reserve(shards * k);
    for (std::size_t r = begin; r < end; ++r) {
      scratch.clear();
      for (std::size_t s = 0; s < shards; ++s) {
        const Entry* h = shard_entries[s].data() + r * (k + 1);
        scratch.insert(scratch.end(), h, h + shard_sizes[s][r]);
      }
      std::sort(scratch.begin(), scratch.end(), lex_less);
      const std::size_t keep = std::min<std::size_t>(k, scratch.size());
      std::copy_n(scratch.begin(), keep, entries.begin() + r * (k + 1));
      heap_size[r] = static_cast<std::uint32_t>(keep);
    }
  });

  std::uint64_t pruned_total = 0;
  std::uint64_t exact_total = 0;
  std::uint64_t tiles = 0;
  std::uint64_t screened_total = 0;
  for (const ShardTally& t : tally) {
    pruned_total += t.pruned;
    exact_total += t.exact;
    tiles += t.tiles;
    screened_total += t.screened;
  }

  // Exact full-row re-scan over the ORIGINAL (unpermuted) pool,
  // identical to the dense path's collision handling. Fixed column
  // ranges scan in parallel, each with the serial loop's first-win `<`;
  // merging the range minima in range order keeps the lowest column
  // among the global minima, so the parallel re-scan is deterministic
  // and matches the serial one. (l2_cell returns float, so every value
  // compared here is a float the dense matrix also holds, merely
  // widened.)
  std::vector<char> used(n, 0);

  // Index-path rescans can touch most rows (the pre-pass scans every
  // row whose pending bound fails), so they run through the blocked
  // SIMD kernel instead of scalar l2_cell. l2_cell_block is per-lane
  // bit-identical to l2_cell, so the first-win scan over its output in
  // ascending column order picks the exact column the scalar loop
  // would. The dim-major pack of the ORIGINAL (unpermuted) pool is
  // built lazily on the first rescan — it is input-sized (like the
  // scaled feature copies) and never allocated when every row's
  // pending proof holds.
  const std::size_t rescan_groups = (n + kLinkGroupCols - 1) / kLinkGroupCols;
  std::vector<float> rescan_pack;
  auto ensure_rescan_pack = [&] {
    if (!rescan_pack.empty() || rescan_groups == 0) return;
    rescan_pack.resize(rescan_groups * kLinkGroupCols * dims);
    util::default_pool().parallel_for(
        rescan_groups, [&](std::size_t g_begin, std::size_t g_end) {
          for (std::size_t g = g_begin; g < g_end; ++g) {
            const std::size_t c0 = g * kLinkGroupCols;
            const std::size_t w = std::min(kLinkGroupCols, n - c0);
            pack_cols_dim_major(wld.data() + c0 * dims, w, dims,
                                kLinkGroupCols,
                                rescan_pack.data() + g * kLinkGroupCols * dims);
          }
        });
  };

  auto full_row_rescan = [&](std::size_t r) {
    const float* a = sec.data() + r * dims;
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::pair<double, std::size_t>> range_best(shards, {kInf, 0});
    if (use_index) ensure_rescan_pack();
    util::default_pool().parallel_for(
        shards, [&](std::size_t range_begin, std::size_t range_end) {
          for (std::size_t s = range_begin; s < range_end; ++s) {
            double best = kInf;
            std::size_t best_col = 0;
            if (use_index) {
              // Fixed group ranges per shard; within a shard the scan
              // is serial over ascending columns, so the merge below
              // is deterministic and order-equivalent to the scalar
              // loop.
              const std::size_t g_lo = s * rescan_groups / shards;
              const std::size_t g_hi = (s + 1) * rescan_groups / shards;
              float block[kLinkGroupCols];
              for (std::size_t g = g_lo; g < g_hi; ++g) {
                const std::size_t c0 = g * kLinkGroupCols;
                const std::size_t w = std::min(kLinkGroupCols, n - c0);
                l2_cell_block(a, rescan_pack.data() + g * kLinkGroupCols * dims,
                              dims, kLinkGroupCols, kLinkGroupCols, block);
                for (std::size_t c = 0; c < w; ++c) {
                  if (used[c0 + c]) continue;
                  const double d = static_cast<double>(block[c]);
                  if (d < best) {
                    best = d;
                    best_col = c0 + c;
                  }
                }
              }
            } else {
              const std::size_t c_lo = s * n / shards;
              const std::size_t c_hi = (s + 1) * n / shards;
              for (std::size_t c = c_lo; c < c_hi; ++c) {
                if (used[c]) continue;
                const double d = l2_cell(a, wld.data() + c * dims, dims);
                if (d < best) {
                  best = d;
                  best_col = c;
                }
              }
            }
            range_best[s] = {best, best_col};
          }
        });
    std::pair<double, std::size_t> out{kInf, 0};
    for (const auto& rb : range_best) {
      if (rb.first < out.first) out = rb;
    }
    return out;
  };

  // Index pre-pass: a row whose pending bound cannot strictly prove its
  // cached minimum beats every non-shortlisted column gets one verified
  // full-row scan now, while used[] is still all-false — which is
  // exactly the static minimum u the dense greedy orders rows by. The
  // verified head stays valid at pick time as long as its column is
  // unused: the global first-win minimum, while unused, is also the
  // first-win minimum over the unused columns.
  std::size_t index_rescans = 0;
  std::vector<double> head_d;
  std::vector<std::uint32_t> head_col;
  std::vector<char> has_head;
  if (use_index) {
    head_d.assign(m, 0.0);
    head_col.assign(m, 0);
    has_head.assign(m, 0);
    for (std::size_t r = 0; r < m; ++r) {
      const Entry* h = entries.data() + r * (k + 1);
      if (heap_size[r] > 0 &&
          pending[r] > static_cast<double>(h[0].d)) {
        continue;  // proven: the cached minimum is the true minimum
      }
      const auto [best, col] = full_row_rescan(r);
      head_d[r] = best;
      head_col[r] = static_cast<std::uint32_t>(col);
      has_head[r] = 1;
      ++index_rescans;
    }
  }

  // ---- Pass 2: heap-driven greedy selection (Algorithm 1 lines 5-17).
  // The dense loop's argmin over unassigned rows uses each row's
  // ORIGINAL full-row minimum (u is never refreshed on collisions), so
  // the processing order is static: ascending (u, row). A binary heap
  // replaces the O(M^2) linear sweep. Rows the index could not prove
  // use their verified head as u — the exact value dense would use.
  std::vector<std::pair<double, std::size_t>> order(m);
  for (std::size_t r = 0; r < m; ++r) {
    const double u = use_index && has_head[r]
                         ? head_d[r]
                         : static_cast<double>(entries[r * (k + 1)].d);
    order[r] = {u, r};
  }
  std::make_heap(order.begin(), order.end(), std::greater<>());

  std::vector<std::uint32_t> cursor(m, 0);
  result.candidate.assign(m, 0);
  std::size_t topk_hits = 0;
  std::size_t fallbacks = 0;

  while (!order.empty()) {
    std::pop_heap(order.begin(), order.end(), std::greater<>());
    const std::size_t r = order.back().second;
    order.pop_back();

    const Entry* h = entries.data() + r * (k + 1);
    std::uint32_t pos = cursor[r];
    while (pos < heap_size[r] && used[h[pos].col]) ++pos;
    cursor[r] = pos;

    float chosen_d;
    std::size_t chosen_col;
    if (pos < heap_size[r] &&
        (!use_index || pending[r] > static_cast<double>(h[pos].d))) {
      // Cached candidate: every computed-but-dropped column is
      // lexicographically >= the heap's worst entry >= h[pos], and with
      // an index the strict pending bound excludes every never-computed
      // column too, so the first unused cached entry IS the row's
      // minimum over unused columns. (Unproven rows never take this
      // branch: pending <= h[0].d <= h[pos].d.)
      chosen_d = h[pos].d;
      chosen_col = h[pos].col;
      ++topk_hits;
    } else if (use_index && has_head[r] && !used[head_col[r]]) {
      // The pre-pass already scanned this row and its verified global
      // minimum is still unused, hence still the minimum over unused.
      chosen_d = static_cast<float>(head_d[r]);
      chosen_col = head_col[r];
      ++fallbacks;
    } else {
      // Heap exhausted by earlier links (or the pending bound can no
      // longer prove the next cached entry): tracked full-row re-scan.
      ++fallbacks;
      if (use_index) ++index_rescans;
      const auto [best, col] = full_row_rescan(r);
      chosen_d = static_cast<float>(best);
      chosen_col = col;
    }
    result.candidate[r] = chosen_col;
    result.total_distance += static_cast<double>(chosen_d);
    used[chosen_col] = 1;
  }

  PATCHDB_COUNTER_ADD("distance.tiles", tiles);
  PATCHDB_COUNTER_ADD("distance.cells", exact_total);
  PATCHDB_COUNTER_ADD("distance.flops", exact_total * (3 * dims + 1));
  PATCHDB_COUNTER_ADD("nearest_link.topk_hits", topk_hits);
  PATCHDB_COUNTER_ADD("nearest_link.fallback_rescans", fallbacks);
  PATCHDB_COUNTER_ADD("nearest_link.streaming.pruned_cells", pruned_total);

  std::uint64_t probes_total = 0;
  std::uint64_t shortlist_total = 0;
  if (use_index) {
    for (std::size_t r = 0; r < m; ++r) {
      probes_total += row_probes[r];
      shortlist_total += row_shortlist[r];
    }
    PATCHDB_COUNTER_ADD("index.probes", probes_total);
    PATCHDB_COUNTER_ADD("index.shortlist_cols", shortlist_total);
    PATCHDB_COUNTER_ADD("index.screened_cells", screened_total);
    PATCHDB_COUNTER_ADD("index.fallback_rescans", index_rescans);
  }

  if (stats != nullptr) {
    stats->tiles = tiles;
    stats->pruned_cells = pruned_total;
    stats->exact_cells = exact_total;
    stats->topk_hits = topk_hits;
    stats->fallback_rescans = fallbacks;
    stats->index_probes = probes_total;
    stats->index_shortlist_cols = shortlist_total;
    stats->index_screened_cells = use_index ? screened_total : 0;
    stats->index_fallback_rescans = index_rescans;
    stats->top_k = k;
    stats->tile_cols = tile;
    stats->threads = shards;
    stats->working_set_bytes = rc.working_set_bytes;
  }
  return result;
}

LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  const StreamingLinkConfig& config,
                                  StreamingLinkStats* stats) {
  return streaming_nearest_link(security, wild,
                                maxabs_weights(security, wild), config, stats);
}

}  // namespace patchdb::core
