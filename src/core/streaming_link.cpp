#include "core/streaming_link.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace patchdb::core {

namespace {

/// One cached candidate. Lexicographic (distance, column) order is the
/// tie rule the dense greedy implements implicitly by scanning columns
/// left to right with a strict `<`.
struct Entry {
  float d;
  std::uint32_t col;
};

bool lex_less(const Entry& a, const Entry& b) noexcept {
  return a.d < b.d || (a.d == b.d && a.col < b.col);
}

/// Squared norm (and its root) of one scaled row, accumulated in
/// double so the screening bounds lose almost nothing to rounding.
std::pair<double, double> squared_norm(const float* v, std::size_t dims) noexcept {
  double total = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    const double x = v[j];
    total += x * x;
  }
  return {total, std::sqrt(total)};
}

double dot(const float* a, const float* b, std::size_t dims) noexcept {
  double total = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    total += static_cast<double>(a[j]) * static_cast<double>(b[j]);
  }
  return total;
}

/// Conservative relative margin for comparing a double-precision
/// squared bound against an exact float-kernel distance: the float
/// kernel's sequential accumulation is off by at most ~(dims+2) float
/// ulps relative, the double side by ~dims double ulps. 4x headroom.
double screening_margin(std::size_t dims) noexcept {
  return 4.0 * static_cast<double>(dims + 2) * 0x1p-24 + 1e-7;
}

}  // namespace

StreamingLinkConfig::Resolved StreamingLinkConfig::resolve(
    std::size_t rows, std::size_t cols) const {
  Resolved r;
  r.top_k = std::clamp<std::size_t>(top_k, 1, std::max<std::size_t>(cols, 1));
  const std::size_t tile_floor = std::min<std::size_t>(64, std::max<std::size_t>(cols, 1));
  r.tile_cols = std::clamp(tile_cols, tile_floor, std::max<std::size_t>(cols, 1));

  auto working_set = [rows](std::size_t k, std::size_t tile) {
    const std::size_t heap_bytes = rows * (k + 1) * sizeof(Entry);
    const std::size_t cursor_bytes = rows * (sizeof(std::uint32_t) * 2);
    const std::size_t row_norm_bytes = rows * sizeof(double) * 2;
    const std::size_t tile_norm_bytes = tile * sizeof(double) * 2;
    return heap_bytes + cursor_bytes + row_norm_bytes + tile_norm_bytes;
  };

  if (memory_cap_bytes > 0) {
    // Shrink the tile first (it only trades dispatch overhead), then the
    // heaps (they trade fallback re-scans), down to hard floors.
    while (r.tile_cols > tile_floor &&
           working_set(r.top_k, r.tile_cols) > memory_cap_bytes) {
      r.tile_cols = std::max(tile_floor, r.tile_cols / 2);
    }
    while (r.top_k > 1 && working_set(r.top_k, r.tile_cols) > memory_cap_bytes) {
      r.top_k = std::max<std::size_t>(1, r.top_k / 2);
    }
  }
  r.working_set_bytes = working_set(r.top_k, r.tile_cols);
  return r;
}

LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  std::span<const double> weights,
                                  const StreamingLinkConfig& config,
                                  StreamingLinkStats* stats) {
  const std::size_t dims = weights.size();
  if (dims != security.cols() || dims != wild.cols()) {
    throw std::invalid_argument("streaming_nearest_link: bad weight vector");
  }
  const std::size_t m = security.rows();
  const std::size_t n = wild.rows();
  if (n < m) {
    throw std::invalid_argument("streaming_nearest_link: need cols >= rows");
  }
  LinkResult result;
  if (m == 0) return result;

  PATCHDB_TRACE_SPAN("nearest_link.streaming");
  PATCHDB_COUNTER_ADD("nearest_link.links", m);

  const StreamingLinkConfig::Resolved rc = config.resolve(m, n);
  const std::size_t k = rc.top_k;
  const std::size_t tile = rc.tile_cols;

  // Same scale-then-cast as the dense kernel: identical float inputs.
  const std::vector<float> sec = scale_features(security, weights);
  const std::vector<float> wld = scale_features(wild, weights);

  std::vector<double> row_norm(m);    // ||a||^2
  std::vector<double> row_norm_s(m);  // ||a||
  util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto [sq, root] = squared_norm(sec.data() + r * dims, dims);
      row_norm[r] = sq;
      row_norm_s[r] = root;
    }
  });

  // Per-row bounded heaps, flat: row r owns entries [r*(k+1), r*(k+1)+k).
  std::vector<Entry> entries(m * (k + 1));
  std::vector<std::uint32_t> heap_size(m, 0);

  const double margin = screening_margin(dims);
  const double sqf = 1.0 - 2.0 * margin;  // factor on squared bounds

  std::atomic<std::uint64_t> pruned_total{0};
  std::atomic<std::uint64_t> exact_total{0};

  // ---- Pass 1: stream wild columns in tiles, filling the top-k heaps.
  std::vector<double> col_norm(tile);
  std::vector<double> col_norm_s(tile);
  std::size_t tiles = 0;
  obs::Progress tile_progress("link.tiles", (n + tile - 1) / tile);
  for (std::size_t tile_begin = 0; tile_begin < n; tile_begin += tile) {
    const std::size_t tile_end = std::min(tile_begin + tile, n);
    ++tiles;
    tile_progress.tick();
    util::default_pool().parallel_for(
        tile_end - tile_begin, [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const auto [sq, root] =
                squared_norm(wld.data() + (tile_begin + i) * dims, dims);
            col_norm[i] = sq;
            col_norm_s[i] = root;
          }
        });

    util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
      std::uint64_t pruned = 0;
      std::uint64_t exact = 0;
      for (std::size_t r = begin; r < end; ++r) {
        const float* a = sec.data() + r * dims;
        const double na = row_norm[r];
        const double na_s = row_norm_s[r];
        Entry* h = entries.data() + r * (k + 1);
        std::uint32_t sz = heap_size[r];
        for (std::size_t c = tile_begin; c < tile_end; ++c) {
          const float* b = wld.data() + c * dims;
          if (sz == k) {
            const double fsq =
                static_cast<double>(h[0].d) * static_cast<double>(h[0].d);
            const double nb = col_norm[c - tile_begin];
            const double nb_s = col_norm_s[c - tile_begin];
            // Level 1: Cauchy-Schwarz lower bound (||a|| - ||b||)^2,
            // O(1) per cell. The significance guard keeps catastrophic
            // cancellation in na_s - nb_s from producing an
            // overconfident bound.
            const double bd = na_s > nb_s ? na_s - nb_s : nb_s - na_s;
            if (bd > (na_s + nb_s) * 1e-9 && bd * bd * sqf > fsq) {
              ++pruned;
              continue;
            }
            // Level 2: the decomposed squared distance
            // ||a||^2 + ||b||^2 - 2 a.b in double precision.
            const double d2 = na + nb - 2.0 * dot(a, b, dims);
            if (d2 > (na + nb) * 1e-9 && d2 * sqf > fsq) {
              ++pruned;
              continue;
            }
          }
          // Survivor: the exact float kernel the dense matrix uses.
          ++exact;
          const Entry e{l2_cell(a, b, dims), static_cast<std::uint32_t>(c)};
          if (sz < k) {
            h[sz++] = e;
            std::push_heap(h, h + sz, lex_less);
          } else if (lex_less(e, h[0])) {
            std::pop_heap(h, h + k, lex_less);
            h[k - 1] = e;
            std::push_heap(h, h + k, lex_less);
          }
        }
        heap_size[r] = sz;
      }
      pruned_total.fetch_add(pruned, std::memory_order_relaxed);
      exact_total.fetch_add(exact, std::memory_order_relaxed);
    });
  }

  // Sort each heap ascending: the greedy consumes candidates in
  // (distance, column) order, exactly the dense re-scan's preference.
  util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      Entry* h = entries.data() + r * (k + 1);
      std::sort(h, h + heap_size[r], lex_less);
    }
  });

  // ---- Pass 2: heap-driven greedy selection (Algorithm 1 lines 5-17).
  // The dense loop's argmin over unassigned rows uses each row's
  // ORIGINAL full-row minimum (u is never refreshed on collisions), so
  // the processing order is static: ascending (u, row). A binary heap
  // replaces the O(M^2) linear sweep.
  std::vector<std::pair<double, std::size_t>> order(m);
  for (std::size_t r = 0; r < m; ++r) {
    order[r] = {static_cast<double>(entries[r * (k + 1)].d), r};
  }
  std::make_heap(order.begin(), order.end(), std::greater<>());

  std::vector<char> used(n, 0);
  std::vector<std::uint32_t> cursor(m, 0);
  result.candidate.assign(m, 0);
  std::size_t topk_hits = 0;
  std::size_t fallbacks = 0;

  while (!order.empty()) {
    std::pop_heap(order.begin(), order.end(), std::greater<>());
    const std::size_t r = order.back().second;
    order.pop_back();

    const Entry* h = entries.data() + r * (k + 1);
    std::uint32_t pos = cursor[r];
    while (pos < heap_size[r] && used[h[pos].col]) ++pos;
    cursor[r] = pos;

    float chosen_d;
    std::size_t chosen_col;
    if (pos < heap_size[r]) {
      // Cached candidate: every column outside the heap is
      // lexicographically >= the heap's worst entry, so the first
      // unused cached entry IS the row's minimum over unused columns.
      chosen_d = h[pos].d;
      chosen_col = h[pos].col;
      ++topk_hits;
    } else {
      // Heap exhausted by earlier links: tracked full-row re-scan,
      // identical to the dense path's collision handling.
      ++fallbacks;
      const float* a = sec.data() + r * dims;
      double best = std::numeric_limits<double>::infinity();
      std::size_t best_col = 0;
      for (std::size_t c = 0; c < n; ++c) {
        if (used[c]) continue;
        const double d = l2_cell(a, wld.data() + c * dims, dims);
        if (d < best) {
          best = d;
          best_col = c;
        }
      }
      chosen_d = static_cast<float>(best);
      chosen_col = best_col;
    }
    result.candidate[r] = chosen_col;
    result.total_distance += static_cast<double>(chosen_d);
    used[chosen_col] = 1;
  }

  PATCHDB_COUNTER_ADD("distance.tiles", tiles);
  PATCHDB_COUNTER_ADD("distance.cells",
                      exact_total.load(std::memory_order_relaxed));
  PATCHDB_COUNTER_ADD("nearest_link.topk_hits", topk_hits);
  PATCHDB_COUNTER_ADD("nearest_link.fallback_rescans", fallbacks);
  PATCHDB_COUNTER_ADD("nearest_link.streaming.pruned_cells",
                      pruned_total.load(std::memory_order_relaxed));

  if (stats != nullptr) {
    stats->tiles = tiles;
    stats->pruned_cells = pruned_total.load(std::memory_order_relaxed);
    stats->exact_cells = exact_total.load(std::memory_order_relaxed);
    stats->topk_hits = topk_hits;
    stats->fallback_rescans = fallbacks;
    stats->top_k = k;
    stats->tile_cols = tile;
    stats->working_set_bytes = rc.working_set_bytes;
  }
  return result;
}

LinkResult streaming_nearest_link(const feature::FeatureMatrix& security,
                                  const feature::FeatureMatrix& wild,
                                  const StreamingLinkConfig& config,
                                  StreamingLinkStats* stats) {
  return streaming_nearest_link(security, wild,
                                maxabs_weights(security, wild), config, stats);
}

}  // namespace patchdb::core
