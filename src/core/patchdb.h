// End-to-end PatchDB builder facade: one call runs the whole pipeline
// of Fig. 1 — NVD collection, nearest-link wild augmentation with the
// oracle in the loop, and synthetic oversampling — and returns the three
// dataset components. Examples and the quickstart use this; benches
// drive the stages individually for finer measurement.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <vector>

#include "core/augment.h"
#include "corpus/world.h"
#include "synth/synthesize.h"

namespace patchdb::core {

struct BuildOptions {
  corpus::WorldConfig world;          // scale of the simulated universe
  AugmentOptions augment;             // rounds / stop threshold
  synth::SynthesisOptions synthesis;  // oversampling knobs
  bool run_synthesis = true;
  /// Candidate selection through the streaming tiled engine instead of
  /// the dense matrix (bit-identical rounds, memory capped by the
  /// config). The default stays dense for small builds.
  bool use_streaming_link = false;
  StreamingLinkConfig streaming_link;

  /// Round-boundary checkpoint directory (empty = no checkpointing)
  /// and whether to resume from a checkpoint found there. Plain data
  /// here; the store-layer driver (store::build_with_checkpoints) acts
  /// on them — core::build_patchdb itself ignores both.
  std::filesystem::path checkpoint_dir;
  bool resume = false;
};

/// Injection points for checkpoint/resume (or any other round-boundary
/// instrumentation) without a core -> store dependency.
struct BuildHooks {
  /// Called after the world is built and the loop constructed, before
  /// the wild pool is installed. Return true when loop state was
  /// restored from a checkpoint — set_pool is then skipped because the
  /// checkpoint carries the residual pool.
  std::function<bool(AugmentationLoop&, corpus::World&)> before_rounds;
  /// Installed as the loop's round callback (the checkpoint save point).
  AugmentationLoop::RoundCallback after_round;
};

struct PatchDb {
  /// Component 1: NVD-based security patches (crawled + verified).
  std::vector<corpus::CommitRecord> nvd_security;
  /// Component 2: wild-based security patches found by augmentation.
  std::vector<corpus::CommitRecord> wild_security;
  /// Cleaned non-security patches (rejected candidates).
  std::vector<corpus::CommitRecord> nonsecurity;
  /// Component 3: synthetic patches derived from the natural ones.
  std::vector<synth::SyntheticPatch> synthetic;

  /// Collection + augmentation telemetry.
  corpus::CrawlStats crawl_stats;
  std::vector<RoundStats> rounds;
  std::size_t verification_effort = 0;

  std::size_t natural_security_count() const noexcept {
    return nvd_security.size() + wild_security.size();
  }
};

/// Run the full pipeline at the configured scale.
PatchDb build_patchdb(const BuildOptions& options);

/// Same pipeline with hook injection (checkpoint/resume drivers).
PatchDb build_patchdb(const BuildOptions& options, const BuildHooks& hooks);

}  // namespace patchdb::core
