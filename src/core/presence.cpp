#include "core/presence.h"

namespace patchdb::core {

namespace {

/// One side of a hunk as concrete lines: context plus the given kind.
std::vector<std::string> hunk_image(const diff::Hunk& hunk, diff::LineKind kept) {
  std::vector<std::string> out;
  for (const diff::Line& line : hunk.lines) {
    if (line.kind == diff::LineKind::kContext || line.kind == kept) {
      out.push_back(line.text);
    }
  }
  return out;
}

/// Does `needle` occur as a contiguous run in `haystack` near `around`?
bool contains_run(const std::vector<std::string>& haystack,
                  const std::vector<std::string>& needle, std::size_t around,
                  std::size_t max_offset) {
  if (needle.empty()) return false;
  const auto matches_at = [&](std::size_t start) {
    if (start + needle.size() > haystack.size()) return false;
    for (std::size_t i = 0; i < needle.size(); ++i) {
      if (haystack[start + i] != needle[i]) return false;
    }
    return true;
  };
  if (matches_at(around)) return true;
  for (std::size_t delta = 1; delta <= max_offset; ++delta) {
    if (around + delta <= haystack.size() && matches_at(around + delta)) {
      return true;
    }
    if (around >= delta && matches_at(around - delta)) return true;
  }
  return false;
}

}  // namespace

const char* presence_name(Presence p) {
  switch (p) {
    case Presence::kPatched: return "patched";
    case Presence::kVulnerable: return "vulnerable";
    case Presence::kBoth: return "partial/ambiguous";
    case Presence::kUnknown: return "unknown";
  }
  return "?";
}

PresenceReport test_presence(const std::vector<std::string>& file_lines,
                             const diff::FileDiff& fd,
                             const diff::FuzzOptions& options) {
  PresenceReport report;
  for (const diff::Hunk& hunk : fd.hunks) {
    const std::vector<std::string> pre = hunk_image(hunk, diff::LineKind::kRemoved);
    const std::vector<std::string> post = hunk_image(hunk, diff::LineKind::kAdded);
    const std::size_t around = hunk.old_start > 0 ? hunk.old_start - 1 : 0;

    const bool pre_found = contains_run(file_lines, pre, around, options.max_offset);
    const bool post_found =
        contains_run(file_lines, post, around, options.max_offset);

    if (post_found && !pre_found) {
      ++report.hunks_patched;
    } else if (pre_found && !post_found) {
      ++report.hunks_vulnerable;
    } else if (pre_found && post_found) {
      // Identical pre/post images (pure-move hunks can do this) — count
      // as unknown rather than guessing.
      ++report.hunks_unknown;
    } else {
      ++report.hunks_unknown;
    }
  }

  if (report.hunks_patched > 0 && report.hunks_vulnerable == 0) {
    report.verdict = Presence::kPatched;
  } else if (report.hunks_vulnerable > 0 && report.hunks_patched == 0) {
    report.verdict = Presence::kVulnerable;
  } else if (report.hunks_patched > 0 && report.hunks_vulnerable > 0) {
    report.verdict = Presence::kBoth;
  } else {
    report.verdict = Presence::kUnknown;
  }
  return report;
}

}  // namespace patchdb::core
