// The three augmentation baselines of Table III: brute-force screening,
// pseudo labeling (single Random Forest, highest-confidence candidates),
// and uncertainty-based labeling (ten-classifier unanimous consensus).
// Each returns candidate indices into the wild pool; the bench verifies
// them through the oracle and reports the security-patch proportion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "feature/features.h"
#include "ml/data.h"

namespace patchdb::core {

/// Brute force: a uniform random sample of `sample_size` pool indices
/// (the paper verifies a random 1K subset of the 200K pool).
std::vector<std::size_t> brute_force_select(std::size_t pool_size,
                                            std::size_t sample_size,
                                            std::uint64_t seed);

/// Pseudo labeling: train a Random Forest on `train` (label 1 = security)
/// and return the `top_k` pool rows with the highest predicted
/// confidence, most confident first.
std::vector<std::size_t> pseudo_label_select(const ml::Dataset& train,
                                             const feature::FeatureMatrix& pool,
                                             std::size_t top_k,
                                             std::uint64_t seed);

/// Uncertainty-based labeling: train the ten-classifier Weka-style panel
/// and return every pool row ALL members predict positive.
std::vector<std::size_t> uncertainty_select(const ml::Dataset& train,
                                            const feature::FeatureMatrix& pool,
                                            std::uint64_t seed);

/// Helper: assemble a max-abs-normalized training set from security and
/// non-security feature rows, returning the fitted scaler's view of the
/// pool as well (normalization must be shared or distances are biased).
struct NormalizedTask {
  ml::Dataset train;
  feature::FeatureMatrix pool;  // normalized copy of the pool rows
};
NormalizedTask normalize_task(const feature::FeatureMatrix& security,
                              const feature::FeatureMatrix& nonsecurity,
                              const feature::FeatureMatrix& pool);

}  // namespace patchdb::core
