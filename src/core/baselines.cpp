#include "core/baselines.h"

#include <algorithm>

#include "ml/ensemble.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ml/forest.h"
#include "ml/normalize.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace patchdb::core {

std::vector<std::size_t> brute_force_select(std::size_t pool_size,
                                            std::size_t sample_size,
                                            std::uint64_t seed) {
  PATCHDB_TRACE_SPAN("baselines.brute_force");
  PATCHDB_COUNTER_ADD("baselines.brute_force.items", pool_size);
  util::Rng rng(seed);
  return rng.sample_indices(pool_size, std::min(sample_size, pool_size));
}

namespace {

std::vector<std::vector<double>> matrix_rows(const feature::FeatureMatrix& m) {
  std::vector<std::vector<double>> rows;
  rows.reserve(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const std::span<const double> v = m[i];
    rows.emplace_back(v.begin(), v.end());
  }
  return rows;
}

}  // namespace

NormalizedTask normalize_task(const feature::FeatureMatrix& security,
                              const feature::FeatureMatrix& nonsecurity,
                              const feature::FeatureMatrix& pool) {
  // Fit the scaler on everything the task sees, like the nearest link's
  // weighting does.
  std::vector<std::vector<double>> all = matrix_rows(security);
  {
    auto extra = matrix_rows(nonsecurity);
    all.insert(all.end(), extra.begin(), extra.end());
    extra = matrix_rows(pool);
    all.insert(all.end(), extra.begin(), extra.end());
  }
  ml::MaxAbsScaler scaler;
  scaler.fit(all);

  NormalizedTask task;
  for (std::size_t i = 0; i < security.rows(); ++i) {
    task.train.push_back(scaler.transform(security[i]), 1);
  }
  for (std::size_t i = 0; i < nonsecurity.rows(); ++i) {
    task.train.push_back(scaler.transform(nonsecurity[i]), 0);
  }
  task.pool = feature::FeatureMatrix(pool.rows(), pool.cols());
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    task.pool.set_row(i, scaler.transform(pool[i]));
  }
  return task;
}

std::vector<std::size_t> pseudo_label_select(const ml::Dataset& train,
                                             const feature::FeatureMatrix& pool,
                                             std::size_t top_k,
                                             std::uint64_t seed) {
  PATCHDB_TRACE_SPAN("baselines.pseudo_label");
  PATCHDB_COUNTER_ADD("baselines.pseudo_label.items", pool.rows());
  ml::RandomForest forest;
  {
    PATCHDB_TRACE_SPAN("baselines.pseudo_label.fit");
    forest.fit(train, seed);
  }

  std::vector<double> scores(pool.rows());
  util::default_pool().parallel_for(pool.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      scores[i] = forest.predict_score(pool[i]);
    }
  });

  std::vector<std::size_t> order(pool.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  top_k = std::min(top_k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(top_k),
                    order.end(), [&scores](std::size_t a, std::size_t b) {
                      return scores[a] > scores[b];
                    });
  order.resize(top_k);
  return order;
}

std::vector<std::size_t> uncertainty_select(const ml::Dataset& train,
                                            const feature::FeatureMatrix& pool,
                                            std::uint64_t seed) {
  PATCHDB_TRACE_SPAN("baselines.uncertainty");
  PATCHDB_COUNTER_ADD("baselines.uncertainty.items", pool.rows());
  ml::ConsensusEnsemble ensemble(ml::make_weka_panel());
  {
    PATCHDB_TRACE_SPAN("baselines.uncertainty.fit");
    ensemble.fit(train, seed);
  }

  std::vector<char> keep(pool.rows(), 0);
  util::default_pool().parallel_for(pool.rows(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      keep[i] = ensemble.unanimous(pool[i]) ? 1 : 0;
    }
  });

  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pool.rows(); ++i) {
    if (keep[i] != 0) out.push_back(i);
  }
  return out;
}

}  // namespace patchdb::core
