// Blocked distance kernels for the streaming nearest-link engine.
//
// The scalar cell (core::l2_cell) walks one (row, column) pair at a
// time; at 1000 x 100K x 60 dims that is ~2e10 scalar FLOPs and the
// engine is memory- and issue-bound. These kernels keep the exact same
// arithmetic per output — sequential float accumulation of
// (a[j]-b[j])^2 over dims, then one float sqrt — but evaluate a *block*
// of columns per call with the columns laid out dim-major, so the inner
// loop runs lane-parallel over columns and gcc/clang auto-vectorize it
// (each lane's accumulation order is untouched; vectorizing across
// independent outputs never reassociates a sum). Combined with the
// project-wide `-ffp-contract=off` (no FMA contraction anywhere), every
// lane is bit-identical to the scalar l2_cell / squared-distance loops.
//
// CI proves the vectorization claim: tools/vec_proof.sh compiles this
// translation unit with -fopt-info-vec / -Rpass=loop-vectorize and
// fails the build if the block loops stop vectorizing.
#pragma once

#include <cstddef>

namespace patchdb::core {

/// Column-group width the streaming engine feeds to the block kernels.
/// A compile-time trip count lets the vectorizer fully unroll; 64 floats
/// = two AVX-512 / four AVX2 vectors per dim step, and one screening
/// decision per group keeps the norm test out of the SIMD loop.
inline constexpr std::size_t kLinkGroupCols = 64;

/// out[c] = sum_j (a[j] - bt[j*stride + c])^2 for c in [0, width), with
/// float accumulation sequential over j — per lane bit-identical to the
/// scalar loops in core::l2_cell and the incremental linker's squared
/// distance. `bt` is a dim-major block: dim j of column c lives at
/// bt[j*stride + c]; `stride >= width`. Buffers must not alias.
void sq_cell_block(const float* a, const float* bt, std::size_t dims,
                   std::size_t width, std::size_t stride,
                   float* out) noexcept;

/// sq_cell_block followed by a float sqrt per lane: out[c] is
/// bit-identical to l2_cell(a, column c, dims). (IEEE-754 sqrt is
/// correctly rounded, so a vector sqrt lane equals the scalar sqrtf.)
void l2_cell_block(const float* a, const float* bt, std::size_t dims,
                   std::size_t width, std::size_t stride,
                   float* out) noexcept;

/// Transpose `width` row-major feature rows (`cols`, each `dims`
/// floats, column c at cols + c*dims) into the dim-major layout the
/// block kernels consume: dst[j*stride + c] = cols[c*dims + j].
/// Lanes [width, stride) of each dim row are zero-filled so a partial
/// group can still run the fixed-width kernel without reading garbage.
void pack_cols_dim_major(const float* cols, std::size_t width,
                         std::size_t dims, std::size_t stride,
                         float* dst) noexcept;

}  // namespace patchdb::core
