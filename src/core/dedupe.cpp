#include "core/dedupe.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "lang/abstract.h"
#include "util/hash.h"

namespace patchdb::core {

std::uint64_t change_fingerprint(const diff::Patch& patch) {
  // Hash each hunk's abstracted removed/added text separately, then
  // combine order-insensitively (XOR of per-hunk hashes) so that file
  // ordering and hunk ordering differences between cherry-picks do not
  // break matching. A multiplier distinguishes removed from added sides.
  std::uint64_t combined = 0x9e3779b97f4a7c15ULL;
  std::size_t hunks = 0;
  for (const diff::FileDiff& fd : patch.files) {
    for (const diff::Hunk& hunk : fd.hunks) {
      const std::string removed = lang::alpha_abstract_code(hunk.removed_text());
      const std::string added = lang::alpha_abstract_code(hunk.added_text());
      if (removed.empty() && added.empty()) continue;
      const std::uint64_t h =
          util::fnv1a64(removed) * 0x100000001b3ULL ^ util::fnv1a64(added);
      combined ^= h;
      ++hunks;
    }
  }
  // Patches with no code change at all hash on their file count so they
  // do not all collide onto the seed constant.
  if (hunks == 0) combined ^= patch.files.size() + 1;
  return combined;
}

DedupeResult dedupe(std::span<const diff::Patch> patches) {
  DedupeResult result;
  result.duplicate_of.resize(patches.size());
  std::unordered_map<std::uint64_t, std::size_t> first_seen;
  first_seen.reserve(patches.size());
  for (std::size_t i = 0; i < patches.size(); ++i) {
    const std::uint64_t fp = change_fingerprint(patches[i]);
    const auto [it, inserted] = first_seen.emplace(fp, i);
    if (inserted) {
      result.kept.push_back(i);
      result.duplicate_of[i] = i;
    } else {
      result.duplicate_of[i] = it->second;
    }
  }
  return result;
}

}  // namespace patchdb::core
