// Point queries over a pre-scaled feature corpus — the online entry
// point the serve subsystem exposes over the wire. A KnnQuery owns
// nothing: it views a packed row-major float buffer produced by
// core::scale_features and answers "k nearest rows to this scaled
// vector" with the exact same core::l2_cell kernel the dense matrix and
// the streaming link engine run, so served distances are bit-identical
// to the offline paths (same float accumulation order, same rounding).
// Ties break toward the lowest row index, matching nearest_link_search
// and the streaming engine's selection order.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/distance.h"

namespace patchdb::core {

struct KnnHit {
  std::size_t index = 0;  // row in the scaled corpus
  float distance = 0.0f;  // l2_cell output, bit-identical to the kernels

  friend bool operator==(const KnnHit&, const KnnHit&) = default;
};

/// The `k` corpus rows nearest to `query` (a scaled row of the same
/// width), ascending by (distance, index). `scaled` is the packed
/// rows x dims buffer from core::scale_features. Returns fewer than `k`
/// hits when the corpus is smaller than `k`; an empty corpus or an
/// empty query yields no hits.
std::vector<KnnHit> knn_query(std::span<const float> scaled, std::size_t dims,
                              std::span<const float> query, std::size_t k);

/// Scale one raw feature vector by per-dimension weights through the
/// same double-multiply-then-cast sequence as core::scale_features, so
/// a query vector submitted over the wire lands on the exact floats a
/// corpus row with equal features would occupy.
std::vector<float> scale_query(std::span<const double> vector,
                               std::span<const double> weights);

}  // namespace patchdb::core
