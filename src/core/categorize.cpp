#include "core/categorize.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/checkers.h"
#include "lang/lexer.h"
#include "lang/taxonomy.h"
#include "util/strings.h"

namespace patchdb::core {

namespace {

using util::contains;
using util::trim;

struct ChangeView {
  std::vector<std::string> added;    // trimmed added lines (code files only)
  std::vector<std::string> removed;  // trimmed removed lines
  std::size_t changed = 0;
};

ChangeView collect(const diff::Patch& patch) {
  ChangeView view;
  for (const diff::FileDiff& fd : patch.files) {
    const std::string& path = fd.new_path.empty() ? fd.old_path : fd.new_path;
    if (!diff::is_cpp_path(path)) continue;
    for (const diff::Hunk& hunk : fd.hunks) {
      for (const diff::Line& line : hunk.lines) {
        if (line.kind == diff::LineKind::kContext) continue;
        ++view.changed;
        std::string text(trim(line.text));
        if (line.kind == diff::LineKind::kAdded) {
          view.added.push_back(std::move(text));
        } else {
          view.removed.push_back(std::move(text));
        }
      }
    }
  }
  return view;
}

bool is_new_if(const std::string& added, const std::vector<std::string>& removed) {
  // "changed check" also counts: the removed side has a weaker condition.
  (void)removed;
  if (!contains(added, "(")) return false;
  // Bound checks frequently strengthen loop conditions, so while/for
  // condition changes count as condition checks too.
  return added.rfind("if", 0) == 0 || contains(added, "if (") ||
         contains(added, "while (") || added.rfind("for (", 0) == 0;
}

bool mentions_bound(const std::string& line) {
  return contains(line, "sizeof") || contains(line, "len") ||
         contains(line, "size") || contains(line, "count") ||
         contains(line, "bound") || contains(line, ">=") ||
         contains(line, "<=") || contains(line, " < ") || contains(line, " > ");
}

bool is_declaration(const std::string& line) {
  static constexpr std::string_view kTypes[] = {
      "int ", "unsigned ", "char ", "long ", "short ", "size_t ", "uint",
      "bool ", "float ", "double ",
  };
  for (std::string_view t : kTypes) {
    if (line.rfind(t, 0) == 0) return true;
    if (line.rfind("const ", 0) == 0 && contains(line, t)) return true;
    if (line.rfind("static ", 0) == 0 && contains(line, t)) return true;
  }
  return false;
}

bool is_signature(const std::string& line) {
  return (line.rfind("static ", 0) == 0 || line.rfind("int ", 0) == 0 ||
          line.rfind("void ", 0) == 0 || line.rfind("long ", 0) == 0) &&
         contains(line, "(") && !contains(line, ";") && !contains(line, "=");
}

bool is_jump(const std::string& line) {
  return line.rfind("goto ", 0) == 0 || line.rfind("return", 0) == 0 ||
         line == "break;" || line == "continue;" ||
         (util::ends_with(line, ":") && !contains(line, " "));
}

std::size_t count_calls(const std::string& line) {
  return lang::count_syntax(line).function_calls;
}

/// Multiset equality of nonempty removed vs added lines (pure moves).
bool pure_move(const ChangeView& view) {
  if (view.added.empty() || view.added.size() != view.removed.size()) return false;
  std::map<std::string, int> tally;
  for (const std::string& l : view.added) {
    if (!l.empty()) ++tally[l];
  }
  for (const std::string& l : view.removed) {
    if (!l.empty()) --tally[l];
  }
  for (const auto& [text, n] : tally) {
    if (n != 0) return false;
  }
  return true;
}

/// Last-resort tie-break from checker evidence: if the patch resolves
/// diagnostics of some checker, map that checker to the Table V type the
/// fix corresponds to. Returns kOther when no checker fired.
corpus::PatchType semantic_tiebreak(const diff::Patch& patch,
                                    const CategorizeOptions& options) {
  using corpus::PatchType;
  analysis::AnalyzeOptions analyze_options;
  analyze_options.interproc = options.interproc;
  const analysis::PatchAnalysis pa =
      analysis::analyze_patch(patch, analyze_options);

  std::size_t best_checker = analysis::kCheckerCount;
  std::size_t best_resolved = 0;
  for (std::size_t c = 0; c < analysis::kCheckerCount; ++c) {
    const std::size_t net =
        pa.resolved_by_checker[c] > pa.introduced_by_checker[c]
            ? pa.resolved_by_checker[c] - pa.introduced_by_checker[c]
            : 0;
    if (net > best_resolved) {
      best_resolved = net;
      best_checker = c;
    }
  }
  if (best_checker == analysis::kCheckerCount) return PatchType::kOther;

  switch (static_cast<analysis::CheckerId>(best_checker)) {
    case analysis::CheckerId::kMissingNullGuard:
      return PatchType::kNullCheck;
    case analysis::CheckerId::kMissingBoundsCheck:
    case analysis::CheckerId::kIntOverflowSize:
      return PatchType::kBoundCheck;
    case analysis::CheckerId::kUncheckedAlloc:
    case analysis::CheckerId::kUninitUse:
    case analysis::CheckerId::kFormatString:
      return PatchType::kSanityCheck;
    case analysis::CheckerId::kUseAfterFree:
      return PatchType::kVarValue;
  }
  return PatchType::kOther;
}

}  // namespace

corpus::PatchType categorize(const diff::Patch& patch,
                             const CategorizeOptions& options) {
  const ChangeView view = collect(patch);
  using corpus::PatchType;

  if (view.changed == 0) return PatchType::kOther;

  // Type 10: statements moved without modification.
  if (pure_move(view)) return PatchType::kMoveStatement;

  // Type 11: large rewrites dominate every other signal.
  if (view.changed >= 14 &&
      view.added.size() + view.removed.size() >= 14 &&
      view.added.size() >= 2 * view.removed.size()) {
    return PatchType::kRedesign;
  }

  // Signature-level changes (types 6/7): a function signature appears on
  // both sides with the same name.
  for (const std::string& removed : view.removed) {
    if (!is_signature(removed)) continue;
    for (const std::string& added : view.added) {
      if (!is_signature(added)) continue;
      const std::size_t paren_r = removed.find('(');
      const std::size_t paren_a = added.find('(');
      const std::string name_r = removed.substr(0, paren_r);
      const std::string name_a = added.substr(0, paren_a);
      const std::size_t space_r = name_r.find_last_of(' ');
      const std::size_t space_a = name_a.find_last_of(' ');
      if (name_r.substr(space_r + 1) != name_a.substr(space_a + 1)) continue;
      const auto commas_r = std::count(removed.begin(), removed.end(), ',');
      const auto commas_a = std::count(added.begin(), added.end(), ',');
      return commas_r == commas_a ? PatchType::kFuncDeclaration
                                  : PatchType::kFuncParameter;
    }
  }

  // Type 9 (before the check rules — error-handling fixes usually add a
  // guard *and* a jump, and the goto/label/break is the distinguishing
  // signal): new goto statements, labels, or loop-exit swaps.
  for (const std::string& added : view.added) {
    const bool is_goto = added.rfind("goto ", 0) == 0 ||
                         (util::ends_with(added, ":") && !contains(added, " ") &&
                          !contains(added, "("));
    const bool loop_exit_swap =
        (added == "break;" &&
         std::find(view.removed.begin(), view.removed.end(), "continue;") !=
             view.removed.end()) ||
        (added == "continue;" &&
         std::find(view.removed.begin(), view.removed.end(), "break;") !=
             view.removed.end());
    if (is_goto || loop_exit_swap) return PatchType::kJumpStatement;
  }

  // Types 1-3: sanity checks added or strengthened.
  for (const std::string& added : view.added) {
    if (!is_new_if(added, view.removed)) continue;
    // Skip ifs that merely survived a rewrite: require the removed side to
    // not contain the identical line.
    if (std::find(view.removed.begin(), view.removed.end(), added) !=
        view.removed.end()) {
      continue;
    }
    // NULL-ness first: explicit NULL/nullptr comparisons or a bare
    // pointer-truthiness test `if (!x)` / `if (x &&`.
    if (contains(added, "NULL") || contains(added, "nullptr")) {
      return PatchType::kNullCheck;
    }
    const std::size_t bang = added.find("(!");
    if (bang != std::string::npos && !contains(added, "==") &&
        !contains(added, "<") && !contains(added, ">")) {
      return PatchType::kNullCheck;
    }
    // Buffer-bound checks: sizeof or an index/length comparison.
    if (contains(added, "sizeof")) return PatchType::kBoundCheck;
    if (mentions_bound(added) &&
        (contains(added, " < ") || contains(added, " > ") ||
         contains(added, ">=") || contains(added, "<="))) {
      // Range checks against magic constants are "other sanity checks";
      // comparisons between two variables are bound checks.
      const bool magic_range_constant = contains(added, "4096");
      if (!magic_range_constant) return PatchType::kBoundCheck;
    }
    return PatchType::kSanityCheck;
  }

  // Type 4 vs 5: declaration changes vs value changes.
  for (const std::string& removed : view.removed) {
    if (!is_declaration(removed)) continue;
    for (const std::string& added : view.added) {
      if (!is_declaration(added)) continue;
      if (added == removed) continue;
      // Same variable name? crude check: share the identifier before '='
      // or before '[' / ';'.
      const auto name_of = [](const std::string& line) {
        const std::size_t stop = line.find_first_of("=[;");
        const std::string head = line.substr(0, stop);
        const std::size_t space = head.find_last_of(" *");
        return head.substr(space + 1);
      };
      if (name_of(added) == name_of(removed)) {
        // Initializer added -> value change; type text changed -> defn.
        const bool init_added = contains(added, "=") && !contains(removed, "=");
        return init_added ? PatchType::kVarValue : PatchType::kVarDefinition;
      }
    }
  }

  // Type 5 continued: memset/zeroing or constant value updates.
  for (const std::string& added : view.added) {
    if (added.rfind("memset", 0) == 0 || contains(added, " = 0;") ||
        contains(added, "= -1;")) {
      if (view.removed.empty() ||
          std::none_of(view.removed.begin(), view.removed.end(),
                       [](const std::string& l) { return count_calls(l) > 0; })) {
        return PatchType::kVarValue;
      }
    }
  }

  // Type 9: jump statements.
  {
    std::size_t added_jumps = 0;
    for (const std::string& added : view.added) added_jumps += is_jump(added);
    std::size_t removed_jumps = 0;
    for (const std::string& removed : view.removed) {
      removed_jumps += is_jump(removed);
    }
    if (added_jumps > removed_jumps && added_jumps > 0 &&
        view.added.size() <= added_jumps + 2) {
      return PatchType::kJumpStatement;
    }
  }

  // Type 8: call-level changes (added, removed, or substituted calls).
  {
    std::size_t added_calls = 0;
    for (const std::string& added : view.added) added_calls += count_calls(added);
    std::size_t removed_calls = 0;
    for (const std::string& removed : view.removed) {
      removed_calls += count_calls(removed);
    }
    if (added_calls != removed_calls ||
        (added_calls > 0 && view.added != view.removed)) {
      if (added_calls > 0 || removed_calls > 0) return PatchType::kFuncCall;
    }
  }

  // Every syntactic rule came up empty; let the CFG checkers vote before
  // giving up on the patch as kOther.
  return semantic_tiebreak(patch, options);
}

corpus::PatchType categorize(const diff::Patch& patch) {
  return categorize(patch, CategorizeOptions{});
}

}  // namespace patchdb::core
