#include "core/patchdb.h"

#include "util/log.h"

namespace patchdb::core {

PatchDb build_patchdb(const BuildOptions& options) {
  return build_patchdb(options, BuildHooks{});
}

PatchDb build_patchdb(const BuildOptions& options, const BuildHooks& hooks) {
  PatchDb db;

  // Stage 1: simulate the universe and run the NVD collection pipeline.
  corpus::World world = corpus::build_world(options.world);
  db.crawl_stats = world.crawl_stats;
  db.nvd_security = world.nvd_security;

  // Stage 2: wild augmentation via nearest link + oracle verification.
  std::vector<const corpus::CommitRecord*> seed;
  seed.reserve(world.nvd_security.size());
  for (const corpus::CommitRecord& r : world.nvd_security) seed.push_back(&r);

  AugmentationLoop loop(std::move(seed), world.oracle);
  if (options.use_streaming_link) loop.use_streaming(options.streaming_link);
  const bool restored =
      hooks.before_rounds && hooks.before_rounds(loop, world);
  if (!restored) {
    std::vector<const corpus::CommitRecord*> pool;
    pool.reserve(world.wild.size());
    for (const corpus::CommitRecord& r : world.wild) pool.push_back(&r);
    loop.set_pool(std::move(pool));
  }
  if (hooks.after_round) loop.set_round_callback(hooks.after_round);
  db.rounds = loop.run(options.augment);
  db.verification_effort = world.oracle.effort();

  for (const corpus::CommitRecord* r : loop.wild_security()) {
    db.wild_security.push_back(*r);
  }
  for (const corpus::CommitRecord* r : loop.nonsecurity()) {
    db.nonsecurity.push_back(*r);
  }

  // Stage 3: synthetic oversampling from the natural patches that carry
  // snapshots (NVD side by default; wild side when the world kept them).
  if (options.run_synthesis) {
    db.synthetic = synth::synthesize_all(db.nvd_security, options.synthesis,
                                         options.world.seed ^ 0x5f5f5f5fULL);
    const auto wild_synth = synth::synthesize_all(
        db.wild_security, options.synthesis, options.world.seed ^ 0x3c3c3c3cULL);
    db.synthetic.insert(db.synthetic.end(), wild_synth.begin(), wild_synth.end());
  }

  util::log_info() << "patchdb: " << db.nvd_security.size() << " NVD + "
                   << db.wild_security.size() << " wild security, "
                   << db.nonsecurity.size() << " non-security, "
                   << db.synthetic.size() << " synthetic";
  return db;
}

}  // namespace patchdb::core
