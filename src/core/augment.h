// The human-in-the-loop dataset augmentation of Section III-B: candidate
// selection by nearest link search, "manual" verification through the
// oracle, and the loop judgment on the security-patch hit ratio R.
// Reproduces the Table II protocol (rounds over growing labeled sets,
// pool swaps between rounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "core/streaming_link.h"
#include "corpus/oracle.h"
#include "corpus/repo.h"
#include "feature/features.h"

namespace patchdb::core {

struct RoundStats {
  std::size_t round = 0;
  std::size_t pool_size = 0;           // unlabeled patches searched
  std::size_t candidates = 0;          // = labeled security size (paper)
  std::size_t verified_security = 0;   // oracle said "security"
  double ratio = 0.0;                  // verified / candidates
};

struct AugmentOptions {
  std::size_t max_rounds = 5;
  /// Loop judgment: stop when R falls below this threshold.
  double stop_ratio = 0.0;
};

class AugmentationLoop {
 public:
  /// `seed_security` are the already-verified patches (the NVD-based
  /// dataset). The loop never re-verifies them.
  AugmentationLoop(std::vector<const corpus::CommitRecord*> seed_security,
                   corpus::Oracle& oracle);

  /// Replace the unlabeled pool (the paper swaps Set I -> Set II -> III).
  /// Features are extracted once per record here.
  void set_pool(std::vector<const corpus::CommitRecord*> pool);

  /// Route candidate selection through the streaming tiled engine
  /// instead of materializing the dense M x N matrix. Bit-identical
  /// round results; memory bounded by the config's cap instead of
  /// growing with the pool.
  void use_streaming(const StreamingLinkConfig& config = {});

  /// One candidate-selection + verification round.
  RoundStats run_round();

  /// Run until max_rounds or the ratio drops below stop_ratio.
  std::vector<RoundStats> run(const AugmentOptions& options);

  /// Every verified security patch (seed + wild finds).
  const std::vector<const corpus::CommitRecord*>& security() const noexcept {
    return security_;
  }
  /// Security patches discovered in the wild (excludes the seed).
  std::vector<const corpus::CommitRecord*> wild_security() const;
  /// Candidates the oracle rejected (the cleaned non-security dataset).
  const std::vector<const corpus::CommitRecord*>& nonsecurity() const noexcept {
    return nonsecurity_;
  }
  std::size_t pool_remaining() const noexcept { return pool_.size(); }

 private:
  corpus::Oracle& oracle_;
  std::size_t seed_count_;
  std::size_t rounds_run_ = 0;
  bool streaming_ = false;
  StreamingLinkConfig streaming_config_;

  std::vector<const corpus::CommitRecord*> security_;
  feature::FeatureMatrix security_features_;

  std::vector<const corpus::CommitRecord*> pool_;
  feature::FeatureMatrix pool_features_;

  std::vector<const corpus::CommitRecord*> nonsecurity_;
};

}  // namespace patchdb::core
