// The human-in-the-loop dataset augmentation of Section III-B: candidate
// selection by nearest link search, "manual" verification through the
// oracle, and the loop judgment on the security-patch hit ratio R.
// Reproduces the Table II protocol (rounds over growing labeled sets,
// pool swaps between rounds).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/distance.h"
#include "core/streaming_link.h"
#include "corpus/oracle.h"
#include "corpus/repo.h"
#include "feature/features.h"

namespace patchdb::core {

struct RoundStats {
  std::size_t round = 0;
  std::size_t pool_size = 0;           // unlabeled patches searched
  std::size_t candidates = 0;          // = labeled security size (paper)
  std::size_t verified_security = 0;   // oracle said "security"
  double ratio = 0.0;                  // verified / candidates
};

struct AugmentOptions {
  std::size_t max_rounds = 5;
  /// Loop judgment: stop when R falls below this threshold.
  double stop_ratio = 0.0;
};

/// Serializable loop state captured at a round boundary. Everything a
/// resumed build needs to continue bit-identically: the round counter,
/// the verified security / non-security sets in discovery order, and
/// the residual pool in its exact post-swap-erase order (pool order
/// feeds candidate selection, so it must be preserved, not re-derived).
/// Commits identify records; the world is rebuilt deterministically
/// from the same seed and the commits are resolved against it.
struct LoopCheckpoint {
  std::size_t rounds_run = 0;
  /// Loop judgment already fired (exhaustion or ratio below threshold);
  /// a resumed run must not start another round.
  bool finished = false;
  /// Oracle queries spent so far (restored so a resumed build reports
  /// the same cumulative manual-verification effort).
  std::size_t oracle_effort = 0;
  std::vector<RoundStats> history;
  std::vector<std::string> wild_security;  // finds beyond the seed, in order
  std::vector<std::string> nonsecurity;    // rejected candidates, in order
  std::vector<std::string> pool;           // residual pool, in order
};

/// Resolves checkpointed commits back to the rebuilt world's records.
using CommitIndex =
    std::unordered_map<std::string_view, const corpus::CommitRecord*>;

class AugmentationLoop {
 public:
  /// `seed_security` are the already-verified patches (the NVD-based
  /// dataset). The loop never re-verifies them.
  AugmentationLoop(std::vector<const corpus::CommitRecord*> seed_security,
                   corpus::Oracle& oracle);

  /// Replace the unlabeled pool (the paper swaps Set I -> Set II -> III).
  /// Features are extracted once per record here.
  void set_pool(std::vector<const corpus::CommitRecord*> pool);

  /// Route candidate selection through the streaming tiled engine
  /// instead of materializing the dense M x N matrix. Bit-identical
  /// round results; memory bounded by the config's cap instead of
  /// growing with the pool.
  void use_streaming(const StreamingLinkConfig& config = {});

  /// One candidate-selection + verification round.
  RoundStats run_round();

  /// Run until max_rounds total rounds (counting restored ones) or the
  /// ratio drops below stop_ratio. Returns the full round history,
  /// including rounds restored from a checkpoint.
  std::vector<RoundStats> run(const AugmentOptions& options);

  /// Invoked by run() after every completed round, after the loop
  /// judgment for that round has been evaluated — the checkpoint save
  /// point (store::build_with_checkpoints installs one).
  using RoundCallback =
      std::function<void(const AugmentationLoop&, const RoundStats&)>;
  void set_round_callback(RoundCallback callback) {
    on_round_ = std::move(callback);
  }

  /// Snapshot the loop state at the current round boundary.
  LoopCheckpoint checkpoint() const;

  /// Restore a checkpoint into a freshly constructed loop (same seed
  /// set, no pool installed, no rounds run — throws std::logic_error
  /// otherwise). Replaces set_pool(): the checkpoint carries the
  /// residual pool. Throws std::runtime_error when a checkpointed
  /// commit is missing from `by_commit`.
  void restore(const LoopCheckpoint& checkpoint, const CommitIndex& by_commit);

  /// True once the loop judgment has stopped the run.
  bool finished() const noexcept { return finished_; }

  /// Rounds completed so far, including restored ones.
  std::size_t rounds_run() const noexcept { return rounds_run_; }

  /// Per-round stats, including restored rounds.
  const std::vector<RoundStats>& history() const noexcept { return history_; }

  /// Every verified security patch (seed + wild finds).
  const std::vector<const corpus::CommitRecord*>& security() const noexcept {
    return security_;
  }
  /// Security patches discovered in the wild (excludes the seed).
  std::vector<const corpus::CommitRecord*> wild_security() const;
  /// Candidates the oracle rejected (the cleaned non-security dataset).
  const std::vector<const corpus::CommitRecord*>& nonsecurity() const noexcept {
    return nonsecurity_;
  }
  std::size_t pool_remaining() const noexcept { return pool_.size(); }

 private:
  corpus::Oracle& oracle_;
  std::size_t seed_count_;
  std::size_t rounds_run_ = 0;
  bool finished_ = false;
  bool streaming_ = false;
  StreamingLinkConfig streaming_config_;
  std::vector<RoundStats> history_;
  RoundCallback on_round_;

  std::vector<const corpus::CommitRecord*> security_;
  feature::FeatureMatrix security_features_;

  std::vector<const corpus::CommitRecord*> pool_;
  feature::FeatureMatrix pool_features_;

  std::vector<const corpus::CommitRecord*> nonsecurity_;
};

}  // namespace patchdb::core
