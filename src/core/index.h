// Phase-1 candidate retrieval for the two-phase nearest-link engine
// (ROADMAP item 2, PatchFinder-style approximate-then-verify).
//
// An Index partitions the wild pool's scaled feature columns at build
// time and, per query row, shortlists the partitions that could contain
// the row's nearest neighbors. The streaming engine then runs the exact
// blocked kernel only over the shortlisted partitions; everything else
// is *pending*. The contract that keeps the final LinkResult bitwise
// identical to the dense path is not recall — it is the pending bound:
//
//   shortlist() returns pending_lb, a conservative lower bound on the
//   float-kernel distance (core::l2_cell on the same scaled inputs)
//   from the query to EVERY column it did not shortlist.
//
// Whenever a cached candidate distance d satisfies d < pending_lb
// strictly, no pending column can beat or tie it, so the engine may
// serve the candidate without ever scoring the pending set. Whenever
// the bound cannot prove the choice, the engine re-scans the full row
// through the existing exact fallback path. Approximation quality
// therefore moves the probe/rescan counters and the wall clock, never
// the result (DESIGN.md §3i has the full argument).
//
// Shortlists are expressed as contiguous ranges over ordering(), a
// permutation of the column ids that groups each partition into one
// run. Contiguity is what makes phase 1 cheap: the engine streams the
// pool in permuted order and skips whole kLinkGroupCols SIMD groups
// with one mask bit, instead of testing columns one by one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

namespace patchdb::core {

enum class IndexKind {
  kExact,   // passthrough: every column shortlisted, nothing pending
  kCoarse,  // k-means coarse quantizer: probe clusters by centroid bound
  kRproj,   // random-projection bucketing: probe 1-d interval buckets
};

std::string_view index_kind_name(IndexKind kind) noexcept;

/// Parse "exact" / "coarse" / "rproj". Throws std::invalid_argument on
/// anything else (strict, like the numeric CLI flags).
IndexKind parse_index_kind(std::string_view name);

struct IndexConfig {
  IndexKind kind = IndexKind::kExact;

  /// Partitions probed per query row (clusters for kCoarse, buckets for
  /// kRproj; ignored by kExact). Probing continues past nprobe only
  /// until the shortlist reaches the requested candidate count. More
  /// probes mean larger shortlists and a tighter pending bound — the
  /// recall-vs-speed knob. Must be >= 1 for the approximate backends.
  std::size_t nprobe = 8;

  /// kCoarse: cluster count. 0 = automatic (~sqrt(n), capped so the
  /// one-off assignment pass stays well under one exact phase-1 sweep).
  std::size_t clusters = 0;

  /// kRproj: projection bucket count. 0 = automatic (~n/64).
  std::size_t buckets = 0;

  /// Seed for the projection direction (kRproj). Builds are otherwise
  /// fully deterministic for fixed inputs and config.
  std::uint64_t seed = 0x51ab5u;
};

/// What one shortlist() call covered and what it proved about the rest.
struct IndexShortlist {
  /// Conservative lower bound on the float-kernel distance from the
  /// query to ANY column outside the returned ranges. +infinity when
  /// the ranges cover the whole pool.
  double pending_lb = std::numeric_limits<double>::infinity();
  /// Partitions inspected while assembling the ranges.
  std::size_t probes = 0;
  /// Total columns covered by the returned ranges.
  std::size_t cols = 0;
};

/// Conservative relative margin applied to pending bounds before they
/// are compared against float-kernel distances: covers the kernel's
/// sequential float accumulation error (~(dims+2) ulps relative) and
/// the double-precision geometry on the bound side, with 4x headroom —
/// the same construction as the streaming engine's norm screen.
inline double index_pending_margin(std::size_t dims) noexcept {
  return 4.0 * static_cast<double>(dims + 2) * 0x1p-24 + 1e-7;
}

class Index {
 public:
  virtual ~Index() = default;

  virtual IndexKind kind() const noexcept = 0;

  /// Build over `n` scaled feature columns (row-major, column c at
  /// cols + c * dims — the output of core::scale_features). The data
  /// must stay alive while shortlist() is in use.
  virtual void build(const float* cols, std::size_t n, std::size_t dims) = 0;

  /// Permutation of [0, n): column ids grouped so every partition is
  /// one contiguous run. shortlist() ranges index into this order.
  virtual std::span<const std::uint32_t> ordering() const noexcept = 0;

  /// Append [begin, end) position ranges (into ordering()) covering the
  /// query's most promising partitions — at least min(k, n) columns
  /// when the pool allows — and report the pending bound. Thread-safe
  /// after build(); deterministic for fixed build inputs.
  virtual IndexShortlist shortlist(
      const float* query, std::size_t k,
      std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges) const = 0;
};

/// Construct the backend `config.kind` names. Throws
/// std::invalid_argument when nprobe == 0 for an approximate backend.
std::unique_ptr<Index> make_index(const IndexConfig& config);

}  // namespace patchdb::core
