// Vulnerable code clone detection — the paper's Section V-A.1 usage:
// "since security patches comprise both the vulnerable code and
// corresponding fixes, they can be used to detect vulnerable code clone
// by using patch-enhanced vulnerability signatures ... more security
// patch instances enable more vulnerability signatures."
//
// A signature is the alpha-abstracted pre-image of a patch hunk (its
// context + removed lines): the vulnerable shape, rename-invariant. The
// scanner slides a window over a target file's abstracted lines and
// reports every signature hit — a VUDDY/MVP-style matcher built from
// PatchDB patches.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "diff/patch.h"

namespace patchdb::core {

struct CloneMatch {
  std::string origin;     // commit (or CVE) the signature came from
  std::size_t line = 0;   // 1-based first line of the match in the target
  std::size_t length = 0; // window length in lines
};

class CloneScanner {
 public:
  /// Minimum pre-image size (in non-blank lines) for a usable signature;
  /// tiny windows match everywhere.
  explicit CloneScanner(std::size_t min_lines = 3) : min_lines_(min_lines) {}

  /// Register one signature from raw vulnerable lines.
  /// Returns false when the pre-image is too small to be discriminative.
  bool add_signature(const std::string& origin,
                     const std::vector<std::string>& vulnerable_lines);

  /// Register signatures from every hunk of a security patch that
  /// actually removes code (pre-image = context + removed lines).
  /// Returns how many signatures were added.
  std::size_t add_patch(const diff::Patch& patch);

  /// Scan a file; returns all matches (possibly several per signature).
  std::vector<CloneMatch> scan(const std::vector<std::string>& file_lines) const;

  std::size_t signature_count() const noexcept { return total_signatures_; }

 private:
  struct Signature {
    std::string origin;
  };

  std::size_t min_lines_;
  std::size_t total_signatures_ = 0;
  // window length (lines) -> hash of abstracted window -> signatures
  std::unordered_map<std::size_t,
                     std::unordered_map<std::uint64_t, std::vector<Signature>>>
      by_length_;
};

}  // namespace patchdb::core
