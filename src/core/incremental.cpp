#include "core/incremental.h"

#include <algorithm>

#include "core/link_kernel.h"
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace patchdb::core {

namespace {

void weigh_into(float* out, std::span<const double> v, std::span<const double> weights) {
  for (std::size_t j = 0; j < weights.size(); ++j) {
    out[j] = static_cast<float>(v[j] * weights[j]);
  }
}

float sq_distance(const float* a, const float* b, std::size_t dims) {
  float total = 0.0f;
  for (std::size_t j = 0; j < dims; ++j) {
    const float d = a[j] - b[j];
    total += d * d;
  }
  return total;
}

double row_norm(const float* v, std::size_t dims) {
  double total = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    const double x = v[j];
    total += x * x;
  }
  return std::sqrt(total);
}

}  // namespace

void IncrementalLinker::set_pool(const feature::FeatureMatrix& pool,
                                 std::span<const double> weights) {
  if (weights.size() != pool.cols()) {
    throw std::invalid_argument("IncrementalLinker: bad weight vector");
  }
  if (seed_count_ > 0 && pool.cols() != dims_) {
    throw std::invalid_argument("IncrementalLinker: feature-space width mismatch");
  }
  dims_ = pool.cols();
  weights_.assign(weights.begin(), weights.end());
  pool_count_ = pool.rows();
  pool_.resize(pool_count_ * dims_);
  pool_norm_.resize(pool_count_);
  for (std::size_t i = 0; i < pool_count_; ++i) {
    weigh_into(pool_.data() + i * dims_, pool[i], weights);
    pool_norm_[i] = row_norm(pool_.data() + i * dims_, dims_);
  }
  // Pack the pool dim-major in kLinkGroupCols-row groups for the
  // blocked kernel, and hoist the norm-screen bounds to one min/max
  // pair per group. Removals never touch these: bounds over a superset
  // stay conservative, and dead lanes are filtered at insertion.
  const std::size_t groups =
      (pool_count_ + kLinkGroupCols - 1) / kLinkGroupCols;
  pool_t_.assign(groups * kLinkGroupCols * dims_, 0.0f);
  group_norm_lo_.resize(groups);
  group_norm_hi_.resize(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t lo = g * kLinkGroupCols;
    const std::size_t width = std::min(kLinkGroupCols, pool_count_ - lo);
    pack_cols_dim_major(pool_.data() + lo * dims_, width, dims_,
                        kLinkGroupCols,
                        pool_t_.data() + g * kLinkGroupCols * dims_);
    double mn = pool_norm_[lo];
    double mx = pool_norm_[lo];
    for (std::size_t i = lo + 1; i < lo + width; ++i) {
      mn = std::min(mn, pool_norm_[i]);
      mx = std::max(mx, pool_norm_[i]);
    }
    group_norm_lo_[g] = mn;
    group_norm_hi_[g] = mx;
  }
  alive_.assign(pool_count_, 1);
  live_count_ = pool_count_;
  // All caches are invalid against a new pool.
  cache_.assign(seed_count_, {});
  cache_valid_.assign(seed_count_, 0);
}

void IncrementalLinker::add_seeds(const feature::FeatureMatrix& seeds) {
  if (weights_.empty()) {
    throw std::logic_error("IncrementalLinker: set_pool before add_seeds");
  }
  if (seeds.cols() != dims_) {
    throw std::invalid_argument("IncrementalLinker: feature-space width mismatch");
  }
  for (std::size_t i = 0; i < seeds.rows(); ++i) {
    seeds_.resize(seeds_.size() + dims_);
    weigh_into(seeds_.data() + seed_count_ * dims_, seeds[i], weights_);
    seed_norm_.push_back(row_norm(seeds_.data() + seed_count_ * dims_, dims_));
    ++seed_count_;
    cache_.emplace_back();
    cache_valid_.push_back(0);
  }
}

void IncrementalLinker::compute_cache(std::size_t seed_index) {
  ++row_scans_;
  const float* s = seed_row(seed_index);
  const double ns = seed_norm_[seed_index];
  // Cauchy-Schwarz screening once the heap is full: ||a-b||^2 >=
  // (||a|| - ||b||)^2, so a pool group whose margin-adjusted norm-range
  // gap already exceeds the heap's worst entry cannot contribute to the
  // top-k. The group gap lower-bounds every member row's gap and the
  // significance guard is at least as strict as the per-row one, so the
  // conservative margin (float-kernel accumulation error, 4x headroom)
  // keeps the cached heap exactly what the unscreened scan produced.
  // Surviving groups run the blocked SIMD kernel; each lane's squared
  // distance is bit-identical to the scalar accumulation, and lanes
  // that cannot beat the heap front are simply not inserted.
  const double sqf =
      1.0 - 2.0 * (4.0 * static_cast<double>(dims_ + 2) * 0x1p-24 + 1e-7);
  std::uint64_t pruned = 0;
  // Max-heap of the k smallest squared distances (pair ordered by first).
  std::vector<Neighbor> heap;
  heap.reserve(k_ + 1);
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;  // max-heap on distance
  };
  float lane[kLinkGroupCols];
  const std::size_t groups =
      (pool_count_ + kLinkGroupCols - 1) / kLinkGroupCols;
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t lo = g * kLinkGroupCols;
    const std::size_t width = std::min(kLinkGroupCols, pool_count_ - lo);
    if (k_ > 0 && heap.size() == k_) {
      const double bd = ns < group_norm_lo_[g] ? group_norm_lo_[g] - ns
                        : ns > group_norm_hi_[g] ? ns - group_norm_hi_[g]
                                                 : 0.0;
      if (bd > (ns + group_norm_hi_[g]) * 1e-9 &&
          bd * bd * sqf > static_cast<double>(heap.front().distance)) {
        pruned += width;
        continue;
      }
    }
    sq_cell_block(s, pool_t_.data() + g * kLinkGroupCols * dims_, dims_,
                  kLinkGroupCols, kLinkGroupCols, lane);
    for (std::size_t c = 0; c < width; ++c) {
      const std::size_t i = lo + c;
      if (!alive_[i]) continue;
      const float d = lane[c];
      if (heap.size() < k_) {
        heap.push_back(Neighbor{d, static_cast<std::uint32_t>(i)});
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (!heap.empty() && d < heap.front().distance) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = Neighbor{d, static_cast<std::uint32_t>(i)};
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);  // ascending distance
  cache_[seed_index] = std::move(heap);
  cache_valid_[seed_index] = 1;
  PATCHDB_COUNTER_ADD("incremental.norm_prunes", pruned);
}

LinkResult IncrementalLinker::link() {
  const std::size_t m = seed_count_;
  if (m == 0) return {};
  if (live_count_ < m) {
    throw std::invalid_argument("IncrementalLinker: pool smaller than seed set");
  }
  PATCHDB_TRACE_SPAN("incremental.link");
  PATCHDB_COUNTER_ADD("incremental.links", m);

  // Fill missing caches in parallel (each compute_cache touches only its
  // own slot; row_scans_ is corrected afterwards).
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < m; ++i) {
    if (!cache_valid_[i]) missing.push_back(i);
  }
  PATCHDB_COUNTER_ADD("incremental.cache_hits", m - missing.size());
  PATCHDB_COUNTER_ADD("incremental.cache_fills", missing.size());
  if (!missing.empty()) {
    const std::size_t scans_before = row_scans_;
    util::default_pool().parallel_for(
        missing.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) compute_cache(missing[i]);
        });
    row_scans_ = scans_before + missing.size();
  }

  std::vector<char> used(pool_count_, 0);
  std::vector<char> assigned(m, 0);
  std::vector<std::size_t> cursor(m, 0);
  constexpr float kInf = std::numeric_limits<float>::max();

  // head(i): first cached candidate that is alive and unused; kInf when
  // the cache is exhausted (triggering a fallback scan on selection).
  auto head_distance = [&](std::size_t i) -> float {
    std::vector<Neighbor>& cache = cache_[i];
    std::size_t& pos = cursor[i];
    while (pos < cache.size() &&
           (!alive_[cache[pos].pool_index] || used[cache[pos].pool_index])) {
      ++pos;
    }
    return pos < cache.size() ? cache[pos].distance : kInf;
  };

  LinkResult result;
  result.candidate.assign(m, 0);
  for (std::size_t step = 0; step < m; ++step) {
    std::size_t best_seed = m;
    float best = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      if (assigned[i]) continue;
      const float d = head_distance(i);
      if (d < best || best_seed == m) {
        best = d;
        best_seed = i;
      }
    }

    std::size_t chosen;
    float chosen_distance;
    if (best < kInf) {
      chosen = cache_[best_seed][cursor[best_seed]].pool_index;
      chosen_distance = best;
    } else {
      // Cache exhausted: full row scan over live, unused pool entries.
      ++row_scans_;
      PATCHDB_COUNTER_ADD("incremental.fallback_scans", 1);
      chosen = pool_count_;
      chosen_distance = kInf;
      for (std::size_t i = 0; i < pool_count_; ++i) {
        if (!alive_[i] || used[i]) continue;
        const float d = sq_distance(seed_row(best_seed), pool_row(i), dims_);
        if (d < chosen_distance) {
          chosen_distance = d;
          chosen = i;
        }
      }
      if (chosen == pool_count_) {
        throw std::logic_error("IncrementalLinker: pool exhausted mid-link");
      }
    }
    result.candidate[best_seed] = chosen;
    result.total_distance += std::sqrt(static_cast<double>(chosen_distance));
    used[chosen] = 1;
    assigned[best_seed] = 1;
  }
  return result;
}

void IncrementalLinker::remove_from_pool(std::span<const std::size_t> pool_indices) {
  for (std::size_t idx : pool_indices) {
    if (idx >= alive_.size()) {
      throw std::out_of_range("IncrementalLinker: bad pool index");
    }
    if (alive_[idx]) {
      alive_[idx] = 0;
      --live_count_;
    }
  }
}

}  // namespace patchdb::core
