#include "core/incremental.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.h"

namespace patchdb::core {

namespace {

std::array<float, feature::kFeatureCount> weigh(const feature::FeatureVector& v,
                                                std::span<const double> weights) {
  std::array<float, feature::kFeatureCount> out;
  for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
    out[j] = static_cast<float>(v[j] * weights[j]);
  }
  return out;
}

float sq_distance(const std::array<float, feature::kFeatureCount>& a,
                  const std::array<float, feature::kFeatureCount>& b) {
  float total = 0.0f;
  for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
    const float d = a[j] - b[j];
    total += d * d;
  }
  return total;
}

}  // namespace

void IncrementalLinker::set_pool(const feature::FeatureMatrix& pool,
                                 std::span<const double> weights) {
  if (weights.size() != feature::kFeatureCount) {
    throw std::invalid_argument("IncrementalLinker: bad weight vector");
  }
  weights_.assign(weights.begin(), weights.end());
  pool_.resize(pool.rows());
  for (std::size_t i = 0; i < pool.rows(); ++i) pool_[i] = weigh(pool[i], weights);
  alive_.assign(pool.rows(), 1);
  live_count_ = pool.rows();
  // All caches are invalid against a new pool.
  cache_.assign(seeds_.size(), {});
  cache_valid_.assign(seeds_.size(), 0);
}

void IncrementalLinker::add_seeds(const feature::FeatureMatrix& seeds) {
  if (weights_.empty()) {
    throw std::logic_error("IncrementalLinker: set_pool before add_seeds");
  }
  for (std::size_t i = 0; i < seeds.rows(); ++i) {
    seeds_.push_back(weigh(seeds[i], weights_));
    cache_.emplace_back();
    cache_valid_.push_back(0);
  }
}

void IncrementalLinker::compute_cache(std::size_t seed_index) {
  ++row_scans_;
  const auto& s = seeds_[seed_index];
  // Max-heap of the k smallest squared distances (pair ordered by first).
  std::vector<Neighbor> heap;
  heap.reserve(k_ + 1);
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.distance < b.distance;  // max-heap on distance
  };
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    if (!alive_[i]) continue;
    const float d = sq_distance(s, pool_[i]);
    if (heap.size() < k_) {
      heap.push_back(Neighbor{d, static_cast<std::uint32_t>(i)});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (!heap.empty() && d < heap.front().distance) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = Neighbor{d, static_cast<std::uint32_t>(i)};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);  // ascending distance
  cache_[seed_index] = std::move(heap);
  cache_valid_[seed_index] = 1;
}

LinkResult IncrementalLinker::link() {
  const std::size_t m = seeds_.size();
  if (m == 0) return {};
  if (live_count_ < m) {
    throw std::invalid_argument("IncrementalLinker: pool smaller than seed set");
  }

  // Fill missing caches in parallel (each compute_cache touches only its
  // own slot; row_scans_ is corrected afterwards).
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < m; ++i) {
    if (!cache_valid_[i]) missing.push_back(i);
  }
  if (!missing.empty()) {
    const std::size_t scans_before = row_scans_;
    util::default_pool().parallel_for(
        missing.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) compute_cache(missing[i]);
        });
    row_scans_ = scans_before + missing.size();
  }

  std::vector<char> used(pool_.size(), 0);
  std::vector<char> assigned(m, 0);
  std::vector<std::size_t> cursor(m, 0);
  constexpr float kInf = std::numeric_limits<float>::max();

  // head(i): first cached candidate that is alive and unused; kInf when
  // the cache is exhausted (triggering a fallback scan on selection).
  auto head_distance = [&](std::size_t i) -> float {
    std::vector<Neighbor>& cache = cache_[i];
    std::size_t& pos = cursor[i];
    while (pos < cache.size() &&
           (!alive_[cache[pos].pool_index] || used[cache[pos].pool_index])) {
      ++pos;
    }
    return pos < cache.size() ? cache[pos].distance : kInf;
  };

  LinkResult result;
  result.candidate.assign(m, 0);
  for (std::size_t step = 0; step < m; ++step) {
    std::size_t best_seed = m;
    float best = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      if (assigned[i]) continue;
      const float d = head_distance(i);
      if (d < best || best_seed == m) {
        best = d;
        best_seed = i;
      }
    }

    std::size_t chosen;
    float chosen_distance;
    if (best < kInf) {
      chosen = cache_[best_seed][cursor[best_seed]].pool_index;
      chosen_distance = best;
    } else {
      // Cache exhausted: full row scan over live, unused pool entries.
      ++row_scans_;
      chosen = pool_.size();
      chosen_distance = kInf;
      for (std::size_t i = 0; i < pool_.size(); ++i) {
        if (!alive_[i] || used[i]) continue;
        const float d = sq_distance(seeds_[best_seed], pool_[i]);
        if (d < chosen_distance) {
          chosen_distance = d;
          chosen = i;
        }
      }
      if (chosen == pool_.size()) {
        throw std::logic_error("IncrementalLinker: pool exhausted mid-link");
      }
    }
    result.candidate[best_seed] = chosen;
    result.total_distance += std::sqrt(static_cast<double>(chosen_distance));
    used[chosen] = 1;
    assigned[best_seed] = 1;
  }
  return result;
}

void IncrementalLinker::remove_from_pool(std::span<const std::size_t> pool_indices) {
  for (std::size_t idx : pool_indices) {
    if (idx >= alive_.size()) {
      throw std::out_of_range("IncrementalLinker: bad pool index");
    }
    if (alive_[idx]) {
      alive_[idx] = 0;
      --live_count_;
    }
  }
}

}  // namespace patchdb::core
