#include "core/augment.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/nearest_link.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace patchdb::core {

namespace {

feature::FeatureMatrix extract_records(
    const std::vector<const corpus::CommitRecord*>& records) {
  PATCHDB_TRACE_SPAN("augment.extract_features");
  PATCHDB_COUNTER_ADD("augment.features_extracted", records.size());
  feature::FeatureMatrix matrix(records.size());
  util::default_pool().parallel_for(
      records.size(), [&](std::size_t begin, std::size_t end) {
        // Opened on the worker running the chunk, so traces grow one
        // track per pool thread alongside the caller's.
        PATCHDB_TRACE_SPAN("augment.extract_features.chunk");
        for (std::size_t i = begin; i < end; ++i) {
          matrix.set_row(i, feature::extract(records[i]->patch));
        }
      });
  return matrix;
}

}  // namespace

AugmentationLoop::AugmentationLoop(
    std::vector<const corpus::CommitRecord*> seed_security,
    corpus::Oracle& oracle)
    : oracle_(oracle),
      seed_count_(seed_security.size()),
      security_(std::move(seed_security)) {
  security_features_ = extract_records(security_);
}

void AugmentationLoop::set_pool(std::vector<const corpus::CommitRecord*> pool) {
  pool_ = std::move(pool);
  pool_features_ = extract_records(pool_);
}

void AugmentationLoop::use_streaming(const StreamingLinkConfig& config) {
  streaming_ = true;
  streaming_config_ = config;
}

RoundStats AugmentationLoop::run_round() {
  PATCHDB_TRACE_SPAN("augment.round");
  RoundStats stats;
  stats.round = ++rounds_run_;
  stats.pool_size = pool_.size();
  if (pool_.empty() || security_.empty()) return stats;
  PATCHDB_COUNTER_ADD("augment.rounds", 1);
  PATCHDB_COUNTER_ADD("augment.pool_items", pool_.size());

  // Candidate selection. When the pool is smaller than the labeled set,
  // every remaining pool entry becomes a candidate.
  std::vector<std::size_t> selected;
  if (pool_.size() <= security_.size()) {
    selected.resize(pool_.size());
    for (std::size_t i = 0; i < selected.size(); ++i) selected[i] = i;
  } else if (streaming_) {
    // Same LinkResult as the dense branch below, O(M·k) memory.
    selected = streaming_nearest_link(security_features_, pool_features_,
                                      streaming_config_)
                   .candidate;
  } else {
    const DistanceMatrix d = distance_matrix(security_features_, pool_features_);
    selected = nearest_link_search(d).candidate;
  }
  stats.candidates = selected.size();

  // "Manual" verification of each candidate, then dataset bookkeeping.
  std::vector<char> verdict(selected.size(), 0);
  {
    PATCHDB_TRACE_SPAN("augment.verify");
    obs::Progress progress("augment.verify r" + std::to_string(stats.round),
                           selected.size());
    for (std::size_t i = 0; i < selected.size(); ++i) {
      verdict[i] =
          oracle_.verify_security(pool_[selected[i]]->patch.commit) ? 1 : 0;
      progress.tick();
    }
  }

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const corpus::CommitRecord* record = pool_[selected[i]];
    if (verdict[i] != 0) {
      ++stats.verified_security;
      security_.push_back(record);
      const feature::FeatureVector v = feature::extract(record->patch);
      security_features_.push_back(v);
    } else {
      nonsecurity_.push_back(record);
    }
  }
  stats.ratio = stats.candidates == 0
                    ? 0.0
                    : static_cast<double>(stats.verified_security) /
                          static_cast<double>(stats.candidates);

  // Pipeline-domain stats: per-round candidate hit ratio R (the paper's
  // loop-judgment signal) as a per-round gauge, plus running counters.
  PATCHDB_COUNTER_ADD("augment.candidates", stats.candidates);
  PATCHDB_COUNTER_ADD("augment.verified_security", stats.verified_security);
  const std::string round_prefix =
      "augment.round." + std::to_string(stats.round);
  PATCHDB_GAUGE_SET(round_prefix + ".hit_ratio", stats.ratio);
  PATCHDB_GAUGE_SET(round_prefix + ".pool_size",
                    static_cast<double>(stats.pool_size));
  PATCHDB_GAUGE_SET("augment.last_hit_ratio", stats.ratio);

  // Remove every verified candidate from the pool (swap-erase, highest
  // index first so earlier indices stay valid).
  std::vector<std::size_t> order = selected;
  std::sort(order.begin(), order.end(), std::greater<>());
  for (std::size_t idx : order) {
    const std::size_t last = pool_.size() - 1;
    pool_[idx] = pool_[last];
    if (idx != last) pool_features_.set_row(idx, pool_features_[last]);
    pool_.pop_back();
    // FeatureMatrix has no pop_back; emulate by rebuilding at the end.
    // (see below)
  }
  // Rebuild the feature matrix to the shrunken size.
  feature::FeatureMatrix shrunk(pool_.size(), pool_features_.cols());
  for (std::size_t i = 0; i < pool_.size(); ++i) shrunk.set_row(i, pool_features_[i]);
  pool_features_ = std::move(shrunk);

  util::log_info() << "augment round " << stats.round << ": " << stats.candidates
                   << " candidates, " << stats.verified_security
                   << " security (" << stats.ratio * 100.0 << "%)";
  history_.push_back(stats);
  return stats;
}

std::vector<RoundStats> AugmentationLoop::run(const AugmentOptions& options) {
  // max_rounds is an upper bound, not a prediction — the loop usually
  // stops on the hit-ratio criterion first, so the heartbeat reports
  // round throughput against the cap.
  obs::Progress progress("augment.rounds", options.max_rounds);
  while (rounds_run_ < options.max_rounds && !finished_) {
    const RoundStats stats = run_round();
    progress.tick();
    if (stats.candidates == 0 || stats.ratio < options.stop_ratio) {
      finished_ = true;
    }
    if (on_round_) on_round_(*this, stats);
  }
  return history_;
}

LoopCheckpoint AugmentationLoop::checkpoint() const {
  LoopCheckpoint cp;
  cp.rounds_run = rounds_run_;
  cp.finished = finished_;
  cp.oracle_effort = oracle_.effort();
  cp.history = history_;
  cp.wild_security.reserve(security_.size() - seed_count_);
  for (std::size_t i = seed_count_; i < security_.size(); ++i) {
    cp.wild_security.push_back(security_[i]->patch.commit);
  }
  cp.nonsecurity.reserve(nonsecurity_.size());
  for (const corpus::CommitRecord* r : nonsecurity_) {
    cp.nonsecurity.push_back(r->patch.commit);
  }
  cp.pool.reserve(pool_.size());
  for (const corpus::CommitRecord* r : pool_) {
    cp.pool.push_back(r->patch.commit);
  }
  return cp;
}

void AugmentationLoop::restore(const LoopCheckpoint& checkpoint,
                               const CommitIndex& by_commit) {
  if (rounds_run_ != 0 || !pool_.empty() || !nonsecurity_.empty()) {
    throw std::logic_error("augment: restore requires a fresh loop");
  }
  const auto lookup = [&by_commit](const std::string& commit) {
    const auto it = by_commit.find(commit);
    if (it == by_commit.end()) {
      throw std::runtime_error("augment: checkpoint names unknown commit " +
                               commit);
    }
    return it->second;
  };
  for (const std::string& commit : checkpoint.wild_security) {
    const corpus::CommitRecord* record = lookup(commit);
    security_.push_back(record);
    security_features_.push_back(feature::extract(record->patch));
  }
  nonsecurity_.reserve(checkpoint.nonsecurity.size());
  for (const std::string& commit : checkpoint.nonsecurity) {
    nonsecurity_.push_back(lookup(commit));
  }
  pool_.reserve(checkpoint.pool.size());
  for (const std::string& commit : checkpoint.pool) {
    pool_.push_back(lookup(commit));
  }
  pool_features_ = extract_records(pool_);
  rounds_run_ = checkpoint.rounds_run;
  finished_ = checkpoint.finished;
  history_ = checkpoint.history;
}

std::vector<const corpus::CommitRecord*> AugmentationLoop::wild_security() const {
  return {security_.begin() + static_cast<std::ptrdiff_t>(seed_count_),
          security_.end()};
}

}  // namespace patchdb::core
