#include "core/link_kernel.h"

#include <cmath>

// Lone translation unit on purpose: tools/vec_proof.sh compiles exactly
// this file with vectorization remarks enabled and greps for the block
// loops below, so keep them here and keep them simple (counted inner
// loops over `c`, restrict-qualified pointers, no calls, no branches).
#define PATCHDB_RESTRICT __restrict__

namespace patchdb::core {

namespace {

/// Fixed-trip-count core: `W` known at compile time lets gcc/clang pick
/// a full-width vector factor and unroll without a scalar remainder.
template <std::size_t W>
void sq_cell_block_fixed(const float* PATCHDB_RESTRICT a,
                         const float* PATCHDB_RESTRICT bt, std::size_t dims,
                         std::size_t stride,
                         float* PATCHDB_RESTRICT out) noexcept {
  for (std::size_t c = 0; c < W; ++c) out[c] = 0.0f;
  for (std::size_t j = 0; j < dims; ++j) {
    const float aj = a[j];
    const float* PATCHDB_RESTRICT row = bt + j * stride;
    for (std::size_t c = 0; c < W; ++c) {
      const float d = aj - row[c];
      out[c] += d * d;
    }
  }
}

void sq_cell_block_generic(const float* PATCHDB_RESTRICT a,
                           const float* PATCHDB_RESTRICT bt, std::size_t dims,
                           std::size_t width, std::size_t stride,
                           float* PATCHDB_RESTRICT out) noexcept {
  for (std::size_t c = 0; c < width; ++c) out[c] = 0.0f;
  for (std::size_t j = 0; j < dims; ++j) {
    const float aj = a[j];
    const float* PATCHDB_RESTRICT row = bt + j * stride;
    for (std::size_t c = 0; c < width; ++c) {
      const float d = aj - row[c];
      out[c] += d * d;
    }
  }
}

}  // namespace

void sq_cell_block(const float* a, const float* bt, std::size_t dims,
                   std::size_t width, std::size_t stride,
                   float* out) noexcept {
  if (width == kLinkGroupCols) {
    sq_cell_block_fixed<kLinkGroupCols>(a, bt, dims, stride, out);
    return;
  }
  sq_cell_block_generic(a, bt, dims, width, stride, out);
}

void l2_cell_block(const float* a, const float* bt, std::size_t dims,
                   std::size_t width, std::size_t stride,
                   float* out) noexcept {
  sq_cell_block(a, bt, dims, width, stride, out);
  for (std::size_t c = 0; c < width; ++c) out[c] = std::sqrt(out[c]);
}

void pack_cols_dim_major(const float* cols, std::size_t width,
                         std::size_t dims, std::size_t stride,
                         float* dst) noexcept {
  for (std::size_t j = 0; j < dims; ++j) {
    float* PATCHDB_RESTRICT row = dst + j * stride;
    for (std::size_t c = 0; c < width; ++c) row[c] = cols[c * dims + j];
    for (std::size_t c = width; c < stride; ++c) row[c] = 0.0f;
  }
}

}  // namespace patchdb::core
