#include "core/query.h"

#include <algorithm>

#include "obs/metrics.h"

namespace patchdb::core {

std::vector<KnnHit> knn_query(std::span<const float> scaled, std::size_t dims,
                              std::span<const float> query, std::size_t k) {
  std::vector<KnnHit> hits;
  if (dims == 0 || query.size() != dims || k == 0) return hits;
  const std::size_t rows = scaled.size() / dims;
  if (rows == 0) return hits;

  // Bounded worst-first heap: O(rows log k), no full-corpus sort. The
  // comparator orders by (distance, index) so the heap top is the hit
  // a better candidate must beat — including on exact float ties,
  // where the lower index wins.
  const auto worse = [](const KnnHit& a, const KnnHit& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.index < b.index;
  };
  hits.reserve(std::min(k, rows));
  for (std::size_t r = 0; r < rows; ++r) {
    const float d = l2_cell(query.data(), scaled.data() + r * dims, dims);
    if (hits.size() < k) {
      hits.push_back({r, d});
      std::push_heap(hits.begin(), hits.end(), worse);
    } else if (worse({r, d}, hits.front())) {
      std::pop_heap(hits.begin(), hits.end(), worse);
      hits.back() = {r, d};
      std::push_heap(hits.begin(), hits.end(), worse);
    }
  }
  std::sort_heap(hits.begin(), hits.end(), worse);
  PATCHDB_COUNTER_ADD("query.knn", 1);
  PATCHDB_COUNTER_ADD("query.knn.cells", rows);
  return hits;
}

std::vector<float> scale_query(std::span<const double> vector,
                               std::span<const double> weights) {
  std::vector<float> out(weights.size());
  for (std::size_t j = 0; j < weights.size() && j < vector.size(); ++j) {
    out[j] = static_cast<float>(vector[j] * weights[j]);
  }
  return out;
}

}  // namespace patchdb::core
