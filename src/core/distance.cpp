#include "core/distance.h"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace patchdb::core {

std::vector<double> maxabs_weights(const feature::FeatureMatrix& security,
                                   const feature::FeatureMatrix& wild) {
  const std::size_t dims = security.rows() > 0 ? security.cols() : wild.cols();
  if (wild.rows() > 0 && security.rows() > 0 && wild.cols() != dims) {
    throw std::invalid_argument("maxabs_weights: feature-space width mismatch");
  }
  std::vector<double> max_abs(dims, 0.0);
  auto scan = [&max_abs, dims](const feature::FeatureMatrix& m) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const std::span<const double> row = m[i];
      for (std::size_t j = 0; j < dims; ++j) {
        max_abs[j] = std::max(max_abs[j], std::fabs(row[j]));
      }
    }
  };
  scan(security);
  scan(wild);
  std::vector<double> weights(dims, 1.0);
  for (std::size_t j = 0; j < dims; ++j) {
    if (max_abs[j] > 0.0) weights[j] = 1.0 / max_abs[j];
  }
  return weights;
}

double weighted_distance(std::span<const double> a, std::span<const double> b,
                         std::span<const double> weights) {
  double total = 0.0;
  for (std::size_t j = 0; j < weights.size(); ++j) {
    const double d = (a[j] - b[j]) * weights[j];
    total += d * d;
  }
  return std::sqrt(total);
}

std::vector<float> scale_features(const feature::FeatureMatrix& matrix,
                                  std::span<const double> weights) {
  const std::size_t dims = weights.size();
  std::vector<float> out(matrix.rows() * dims);
  for (std::size_t i = 0; i < matrix.rows(); ++i) {
    const std::span<const double> row = matrix[i];
    for (std::size_t j = 0; j < dims; ++j) {
      out[i * dims + j] = static_cast<float>(row[j] * weights[j]);
    }
  }
  return out;
}

float l2_cell(const float* a, const float* b, std::size_t dims) noexcept {
  float total = 0.0f;
  for (std::size_t j = 0; j < dims; ++j) {
    const float d = a[j] - b[j];
    total += d * d;
  }
  return std::sqrt(total);
}

DistanceMatrix distance_matrix(const feature::FeatureMatrix& security,
                               const feature::FeatureMatrix& wild,
                               std::span<const double> weights) {
  const std::size_t dims = weights.size();
  if (dims != security.cols() || dims != wild.cols()) {
    throw std::invalid_argument("distance_matrix: bad weight vector");
  }
  const std::size_t m = security.rows();
  const std::size_t n = wild.rows();
  DistanceMatrix matrix(m, n);

  PATCHDB_TRACE_SPAN("distance.matrix");
  PATCHDB_COUNTER_ADD("distance.calls", 1);
  PATCHDB_COUNTER_ADD("distance.rows", m);
  PATCHDB_COUNTER_ADD("distance.cells", m * n);
  // 3 FLOPs per dimension per cell (sub, mul, add) + the final sqrt.
  PATCHDB_COUNTER_ADD("distance.flops", m * n * (3 * dims + 1));

  // Pre-scale both sides once so the inner loop is a plain L2.
  const std::vector<float> sec = scale_features(security, weights);
  const std::vector<float> wld = scale_features(wild, weights);

  util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const float* a = sec.data() + r * dims;
      for (std::size_t c = 0; c < n; ++c) {
        matrix.at(r, c) = l2_cell(a, wld.data() + c * dims, dims);
      }
    }
  });
  return matrix;
}

DistanceMatrix distance_matrix(const feature::FeatureMatrix& security,
                               const feature::FeatureMatrix& wild) {
  return distance_matrix(security, wild, maxabs_weights(security, wild));
}

}  // namespace patchdb::core
