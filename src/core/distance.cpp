#include "core/distance.h"

#include <cmath>
#include <stdexcept>

#include "util/thread_pool.h"

namespace patchdb::core {

std::vector<double> maxabs_weights(const feature::FeatureMatrix& security,
                                   const feature::FeatureMatrix& wild) {
  std::vector<double> max_abs(feature::kFeatureCount, 0.0);
  auto scan = [&max_abs](const feature::FeatureMatrix& m) {
    for (const feature::FeatureVector& row : m) {
      for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
        max_abs[j] = std::max(max_abs[j], std::fabs(row[j]));
      }
    }
  };
  scan(security);
  scan(wild);
  std::vector<double> weights(feature::kFeatureCount, 1.0);
  for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
    if (max_abs[j] > 0.0) weights[j] = 1.0 / max_abs[j];
  }
  return weights;
}

double weighted_distance(const feature::FeatureVector& a,
                         const feature::FeatureVector& b,
                         std::span<const double> weights) {
  double total = 0.0;
  for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
    const double d = (a[j] - b[j]) * weights[j];
    total += d * d;
  }
  return std::sqrt(total);
}

DistanceMatrix distance_matrix(const feature::FeatureMatrix& security,
                               const feature::FeatureMatrix& wild,
                               std::span<const double> weights) {
  if (weights.size() != feature::kFeatureCount) {
    throw std::invalid_argument("distance_matrix: bad weight vector");
  }
  const std::size_t m = security.rows();
  const std::size_t n = wild.rows();
  DistanceMatrix matrix(m, n);

  // Pre-scale both sides once so the inner loop is a plain L2.
  auto scale = [&weights](const feature::FeatureMatrix& in) {
    std::vector<std::array<float, feature::kFeatureCount>> out(in.rows());
    for (std::size_t i = 0; i < in.rows(); ++i) {
      for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
        out[i][j] = static_cast<float>(in[i][j] * weights[j]);
      }
    }
    return out;
  };
  const auto sec = scale(security);
  const auto wld = scale(wild);

  util::default_pool().parallel_for(m, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto& a = sec[r];
      for (std::size_t c = 0; c < n; ++c) {
        const auto& b = wld[c];
        float total = 0.0f;
        for (std::size_t j = 0; j < feature::kFeatureCount; ++j) {
          const float d = a[j] - b[j];
          total += d * d;
        }
        matrix.at(r, c) = std::sqrt(total);
      }
    }
  });
  return matrix;
}

DistanceMatrix distance_matrix(const feature::FeatureMatrix& security,
                               const feature::FeatureMatrix& wild) {
  return distance_matrix(security, wild, maxabs_weights(security, wild));
}

}  // namespace patchdb::core
