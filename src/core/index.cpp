#include "core/index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "core/link_kernel.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace patchdb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Absolute slack factor on pending bounds: the bound-side geometry is
/// computed in double, whose rounding error is ~1e-13 relative to the
/// operand magnitudes — 1e-9 leaves four orders of headroom while
/// staying negligible against any gap worth screening on.
constexpr double kBoundSlack = 1e-9;

std::size_t round_up_groups(std::size_t v) noexcept {
  return (v + kLinkGroupCols - 1) / kLinkGroupCols * kLinkGroupCols;
}

/// Double-precision distance between a float column and a double
/// centroid (the bound-side metric; the kernel-side metric is the float
/// l2_cell, related through index_pending_margin).
double col_centroid_distance(const float* b, const double* c,
                             std::size_t dims) noexcept {
  double total = 0.0;
  for (std::size_t j = 0; j < dims; ++j) {
    const double d = static_cast<double>(b[j]) - c[j];
    total += d * d;
  }
  return std::sqrt(total);
}

/// Pack `count` double centroids (row-major) into the dim-major float
/// layout the blocked kernel consumes. Returns the lane stride.
std::size_t pack_centroids(const std::vector<double>& centroids,
                           std::size_t count, std::size_t dims,
                           std::vector<float>& pack) {
  const std::size_t stride = round_up_groups(std::max<std::size_t>(count, 1));
  pack.assign(stride * dims, 0.0f);
  for (std::size_t c = 0; c < count; ++c) {
    for (std::size_t j = 0; j < dims; ++j) {
      pack[j * stride + c] = static_cast<float>(centroids[c * dims + j]);
    }
  }
  return stride;
}

/// Assign each column to its nearest packed centroid through the
/// blocked float kernel (strict `<` keeps the lowest id on ties, so the
/// assignment is deterministic for every worker count). Assignment
/// quality only moves speed: the pending bounds are computed from the
/// members a cluster actually received.
void assign_nearest(const float* cols, std::size_t count, std::size_t dims,
                    const std::vector<float>& pack, std::size_t stride,
                    std::size_t centroid_count, std::uint32_t* assign) {
  util::default_pool().parallel_for(
      count, [&](std::size_t begin, std::size_t end) {
        std::vector<float> lane(kLinkGroupCols);
        for (std::size_t i = begin; i < end; ++i) {
          const float* p = cols + i * dims;
          float best = std::numeric_limits<float>::infinity();
          std::uint32_t best_j = 0;
          for (std::size_t g = 0; g * kLinkGroupCols < centroid_count; ++g) {
            const std::size_t lo = g * kLinkGroupCols;
            const std::size_t gw =
                std::min(kLinkGroupCols, centroid_count - lo);
            sq_cell_block(p, pack.data() + lo, dims, kLinkGroupCols, stride,
                          lane.data());
            for (std::size_t l = 0; l < gw; ++l) {
              if (lane[l] < best) {
                best = lane[l];
                best_j = static_cast<std::uint32_t>(lo + l);
              }
            }
          }
          assign[i] = best_j;
        }
      });
}

/// Shared probing loop: partitions arrive as (lower_bound, id) pairs
/// sorted ascending; probe until nprobe partitions AND min(k, n)
/// columns are covered, then bound the rest by the first unprobed
/// partition's lower bound (the sort makes it the minimum).
struct Partitioned {
  std::vector<std::uint32_t> ordering;  // columns grouped by partition
  std::vector<std::uint32_t> starts;    // partition p at [starts[p], starts[p+1])

  void build_from_assignment(const std::vector<std::uint32_t>& assign,
                             std::size_t partitions) {
    const std::size_t n = assign.size();
    starts.assign(partitions + 1, 0);
    for (std::uint32_t p : assign) ++starts[p + 1];
    for (std::size_t p = 0; p < partitions; ++p) starts[p + 1] += starts[p];
    ordering.resize(n);
    std::vector<std::uint32_t> cursor(starts.begin(), starts.end() - 1);
    for (std::size_t c = 0; c < n; ++c) {
      ordering[cursor[assign[c]]++] = static_cast<std::uint32_t>(c);
    }
  }

  IndexShortlist probe(
      std::vector<std::pair<double, std::uint32_t>>& order, std::size_t k,
      std::size_t n, std::size_t nprobe, double margin,
      std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges) const {
    std::sort(order.begin(), order.end());
    IndexShortlist out;
    const std::size_t want_cols = std::min(k, n);
    std::size_t i = 0;
    for (; i < order.size(); ++i) {
      if (out.probes >= nprobe && out.cols >= want_cols) break;
      const std::uint32_t p = order[i].second;
      ranges.emplace_back(starts[p], starts[p + 1]);
      out.cols += starts[p + 1] - starts[p];
      ++out.probes;
    }
    out.pending_lb =
        i < order.size() ? order[i].first * (1.0 - margin) : kInf;
    return out;
  }
};

class ExactIndex final : public Index {
 public:
  IndexKind kind() const noexcept override { return IndexKind::kExact; }

  void build(const float*, std::size_t n, std::size_t) override {
    ordering_.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      ordering_[c] = static_cast<std::uint32_t>(c);
    }
  }

  std::span<const std::uint32_t> ordering() const noexcept override {
    return ordering_;
  }

  IndexShortlist shortlist(const float*, std::size_t,
                           std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                               ranges) const override {
    IndexShortlist out;
    if (!ordering_.empty()) {
      ranges.emplace_back(0, static_cast<std::uint32_t>(ordering_.size()));
      out.cols = ordering_.size();
      out.probes = 1;
    }
    return out;  // pending_lb stays +inf: nothing is pending
  }

 private:
  std::vector<std::uint32_t> ordering_;
};

/// k-means coarse quantizer. Training runs a short Lloyd loop over an
/// evenly-spaced subsample (deterministic init, blocked-kernel
/// assignment, double-precision means); every column is then assigned
/// once and each cluster records its exact double-precision radius, so
/// the triangle-inequality bound d(query, centroid) - radius holds for
/// every member regardless of how rough the training was.
class CoarseIndex final : public Index {
 public:
  explicit CoarseIndex(const IndexConfig& config) : config_(config) {}

  IndexKind kind() const noexcept override { return IndexKind::kCoarse; }

  void build(const float* cols, std::size_t n, std::size_t dims) override {
    dims_ = dims;
    n_ = n;
    parts_ = Partitioned{};
    centroids_.clear();
    radius_.clear();
    if (n == 0) return;

    std::size_t c_count = config_.clusters > 0
                              ? config_.clusters
                              : static_cast<std::size_t>(
                                    std::sqrt(static_cast<double>(n)));
    c_count = std::clamp<std::size_t>(c_count, 1, std::min<std::size_t>(n, 4096));

    // Evenly spaced init over the pool, then two Lloyd rounds on an
    // evenly spaced subsample — enough to separate the data's modes;
    // residual roughness is absorbed by the per-cluster radii.
    centroids_.assign(c_count * dims, 0.0);
    for (std::size_t j = 0; j < c_count; ++j) {
      const float* src = cols + (j * n / c_count) * dims;
      for (std::size_t t = 0; t < dims; ++t) {
        centroids_[j * dims + t] = static_cast<double>(src[t]);
      }
    }
    const std::size_t samples = std::min(n, c_count * 16);
    std::vector<float> sample(samples * dims);
    for (std::size_t i = 0; i < samples; ++i) {
      const float* src = cols + (i * n / samples) * dims;
      std::copy_n(src, dims, sample.data() + i * dims);
    }
    std::vector<float> pack;
    std::vector<std::uint32_t> assign(samples);
    std::vector<double> sums(c_count * dims);
    std::vector<std::uint32_t> counts(c_count);
    for (int iter = 0; iter < 2; ++iter) {
      const std::size_t stride = pack_centroids(centroids_, c_count, dims, pack);
      assign_nearest(sample.data(), samples, dims, pack, stride, c_count,
                     assign.data());
      std::fill(sums.begin(), sums.end(), 0.0);
      std::fill(counts.begin(), counts.end(), 0u);
      for (std::size_t i = 0; i < samples; ++i) {
        double* s = sums.data() + assign[i] * dims;
        const float* p = sample.data() + i * dims;
        for (std::size_t t = 0; t < dims; ++t) s[t] += static_cast<double>(p[t]);
        ++counts[assign[i]];
      }
      for (std::size_t j = 0; j < c_count; ++j) {
        if (counts[j] == 0) continue;  // empty: keep the old centroid
        const double inv = 1.0 / static_cast<double>(counts[j]);
        for (std::size_t t = 0; t < dims; ++t) {
          centroids_[j * dims + t] = sums[j * dims + t] * inv;
        }
      }
    }

    // One full assignment pass, then the exact member radii the pending
    // bound leans on.
    const std::size_t stride = pack_centroids(centroids_, c_count, dims, pack);
    std::vector<std::uint32_t> full(n);
    assign_nearest(cols, n, dims, pack, stride, c_count, full.data());
    parts_.build_from_assignment(full, c_count);
    radius_.assign(c_count, 0.0);
    util::default_pool().parallel_for(
        c_count, [&](std::size_t begin, std::size_t end) {
          for (std::size_t j = begin; j < end; ++j) {
            double r = 0.0;
            for (std::uint32_t i = parts_.starts[j]; i < parts_.starts[j + 1];
                 ++i) {
              r = std::max(r, col_centroid_distance(
                                  cols + parts_.ordering[i] * dims,
                                  centroids_.data() + j * dims, dims));
            }
            radius_[j] = r;
          }
        });
  }

  std::span<const std::uint32_t> ordering() const noexcept override {
    return parts_.ordering;
  }

  IndexShortlist shortlist(const float* query, std::size_t k,
                           std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                               ranges) const override {
    if (n_ == 0) return {};
    const std::size_t c_count = radius_.size();
    std::vector<std::pair<double, std::uint32_t>> order;
    order.reserve(c_count);
    for (std::size_t j = 0; j < c_count; ++j) {
      if (parts_.starts[j] == parts_.starts[j + 1]) continue;
      const double d =
          col_centroid_distance(query, centroids_.data() + j * dims_, dims_);
      // ||query - member|| >= d - radius for every member (triangle
      // inequality on the real distances; the slack absorbs the double
      // rounding in d and radius).
      const double slack = kBoundSlack * (d + radius_[j] + 1.0);
      order.emplace_back(std::max(0.0, d - radius_[j] - slack),
                         static_cast<std::uint32_t>(j));
    }
    return parts_.probe(order, k, n_, config_.nprobe,
                        index_pending_margin(dims_), ranges);
  }

 private:
  IndexConfig config_;
  std::size_t dims_ = 0;
  std::size_t n_ = 0;
  std::vector<double> centroids_;  // c_count x dims, row-major
  std::vector<double> radius_;     // max member<->centroid distance
  Partitioned parts_;
};

/// Random-projection bucketing: one unit direction, columns bucketed by
/// their 1-d projection. |p·a - p·b| <= ||a - b|| for a unit p, so the
/// gap from the query's projection to a bucket's [min, max] projection
/// interval lower-bounds the distance to every member.
class RprojIndex final : public Index {
 public:
  explicit RprojIndex(const IndexConfig& config) : config_(config) {}

  IndexKind kind() const noexcept override { return IndexKind::kRproj; }

  void build(const float* cols, std::size_t n, std::size_t dims) override {
    dims_ = dims;
    n_ = n;
    parts_ = Partitioned{};
    bucket_min_.clear();
    bucket_max_.clear();
    if (n == 0) return;

    dir_.assign(dims, 0.0);
    std::uint64_t state = config_.seed;
    double norm = 0.0;
    for (std::size_t j = 0; j < dims; ++j) {
      const std::uint64_t z = util::splitmix64(state);
      dir_[j] = static_cast<double>(z >> 11) * 0x1p-52 - 1.0;
      norm += dir_[j] * dir_[j];
    }
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      std::fill(dir_.begin(), dir_.end(), 0.0);
      dir_[0] = 1.0;
    } else {
      for (double& v : dir_) v /= norm;
    }

    std::vector<double> proj(n);
    util::default_pool().parallel_for(n, [&](std::size_t begin,
                                             std::size_t end) {
      for (std::size_t c = begin; c < end; ++c) {
        proj[c] = project(cols + c * dims).first;
      }
    });
    double lo = proj[0];
    double hi = proj[0];
    norm_scale_ = 0.0;
    for (std::size_t c = 0; c < n; ++c) {
      lo = std::min(lo, proj[c]);
      hi = std::max(hi, proj[c]);
      norm_scale_ =
          std::max(norm_scale_, col_norm(cols + c * dims));
    }

    std::size_t buckets = config_.buckets > 0 ? config_.buckets : n / 64;
    buckets = std::clamp<std::size_t>(buckets, 1, std::min<std::size_t>(n, 4096));
    const double width = (hi - lo) / static_cast<double>(buckets);
    std::vector<std::uint32_t> assign(n);
    for (std::size_t c = 0; c < n; ++c) {
      std::size_t b = width > 0.0
                          ? static_cast<std::size_t>((proj[c] - lo) / width)
                          : 0;
      assign[c] = static_cast<std::uint32_t>(std::min(b, buckets - 1));
    }
    parts_.build_from_assignment(assign, buckets);
    bucket_min_.assign(buckets, kInf);
    bucket_max_.assign(buckets, -kInf);
    for (std::size_t c = 0; c < n; ++c) {
      bucket_min_[assign[c]] = std::min(bucket_min_[assign[c]], proj[c]);
      bucket_max_[assign[c]] = std::max(bucket_max_[assign[c]], proj[c]);
    }
  }

  std::span<const std::uint32_t> ordering() const noexcept override {
    return parts_.ordering;
  }

  IndexShortlist shortlist(const float* query, std::size_t k,
                           std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                               ranges) const override {
    if (n_ == 0) return {};
    const auto [q, qnorm] = project(query);
    std::vector<std::pair<double, std::uint32_t>> order;
    order.reserve(bucket_min_.size());
    for (std::size_t b = 0; b < bucket_min_.size(); ++b) {
      if (parts_.starts[b] == parts_.starts[b + 1]) continue;
      const double gap =
          std::max({0.0, bucket_min_[b] - q, q - bucket_max_[b]});
      // Projection rounding is relative to the operand norms, not to
      // the gap, so the slack scales with both sides' magnitudes.
      const double slack =
          kBoundSlack * (std::abs(q) + qnorm + norm_scale_ + 1.0);
      order.emplace_back(std::max(0.0, gap - slack),
                         static_cast<std::uint32_t>(b));
    }
    return parts_.probe(order, k, n_, config_.nprobe,
                        index_pending_margin(dims_), ranges);
  }

 private:
  std::pair<double, double> project(const float* v) const noexcept {
    double dot = 0.0;
    double norm = 0.0;
    for (std::size_t j = 0; j < dims_; ++j) {
      const double x = static_cast<double>(v[j]);
      dot += dir_[j] * x;
      norm += x * x;
    }
    return {dot, std::sqrt(norm)};
  }

  double col_norm(const float* v) const noexcept {
    double norm = 0.0;
    for (std::size_t j = 0; j < dims_; ++j) {
      const double x = static_cast<double>(v[j]);
      norm += x * x;
    }
    return std::sqrt(norm);
  }

  IndexConfig config_;
  std::size_t dims_ = 0;
  std::size_t n_ = 0;
  std::vector<double> dir_;
  double norm_scale_ = 0.0;  // max column norm, for the bound slack
  std::vector<double> bucket_min_;  // actual member projection extents
  std::vector<double> bucket_max_;
  Partitioned parts_;
};

}  // namespace

std::string_view index_kind_name(IndexKind kind) noexcept {
  switch (kind) {
    case IndexKind::kExact: return "exact";
    case IndexKind::kCoarse: return "coarse";
    case IndexKind::kRproj: return "rproj";
  }
  return "unknown";
}

IndexKind parse_index_kind(std::string_view name) {
  if (name == "exact") return IndexKind::kExact;
  if (name == "coarse") return IndexKind::kCoarse;
  if (name == "rproj") return IndexKind::kRproj;
  throw std::invalid_argument("index: unknown kind \"" + std::string(name) +
                              "\" (want exact, coarse, or rproj)");
}

std::unique_ptr<Index> make_index(const IndexConfig& config) {
  if (config.kind != IndexKind::kExact && config.nprobe == 0) {
    throw std::invalid_argument(
        "index: nprobe must be >= 1 for the " +
        std::string(index_kind_name(config.kind)) + " backend");
  }
  switch (config.kind) {
    case IndexKind::kExact: return std::make_unique<ExactIndex>();
    case IndexKind::kCoarse: return std::make_unique<CoarseIndex>(config);
    case IndexKind::kRproj: return std::make_unique<RprojIndex>(config);
  }
  throw std::invalid_argument("index: unknown IndexKind");
}

}  // namespace patchdb::core
