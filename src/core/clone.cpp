#include "core/clone.h"

#include <algorithm>

#include "lang/abstract.h"
#include "util/hash.h"
#include "util/strings.h"

namespace patchdb::core {

namespace {

/// Lines that carry no clone signal: blanks, lone braces, and
/// preprocessor directives (every file shares its include boilerplate,
/// so windows touching it would match everywhere).
bool is_noise_line(std::string_view trimmed) {
  return trimmed.empty() || trimmed == "{" || trimmed == "}" ||
         trimmed.front() == '#';
}

std::vector<std::string> normalize(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  for (const std::string& line : lines) {
    const std::string_view t = util::trim(line);
    if (is_noise_line(t)) continue;
    out.emplace_back(t);
  }
  return out;
}

std::uint64_t window_hash(const std::vector<std::string>& normalized,
                          std::size_t begin, std::size_t count) {
  std::string joined;
  for (std::size_t i = begin; i < begin + count; ++i) {
    joined += normalized[i];
    joined += '\n';
  }
  return util::fnv1a64(lang::alpha_abstract_code(joined));
}

}  // namespace

bool CloneScanner::add_signature(const std::string& origin,
                                 const std::vector<std::string>& vulnerable_lines) {
  const std::vector<std::string> normalized = normalize(vulnerable_lines);
  if (normalized.size() < min_lines_) return false;
  const std::uint64_t hash = window_hash(normalized, 0, normalized.size());
  by_length_[normalized.size()][hash].push_back(Signature{origin});
  ++total_signatures_;
  return true;
}

std::size_t CloneScanner::add_patch(const diff::Patch& patch) {
  std::size_t added = 0;
  for (const diff::FileDiff& fd : patch.files) {
    for (const diff::Hunk& hunk : fd.hunks) {
      if (hunk.removed_count() == 0) continue;  // pure addition: no pre-image
      std::vector<std::string> pre;
      for (const diff::Line& line : hunk.lines) {
        if (line.kind != diff::LineKind::kAdded) pre.push_back(line.text);
      }
      // Trim the window to the removed code plus at most two context
      // lines per side: git's full 3-line context frequently reaches
      // into function prologues and other boilerplate shared by every
      // file, which would make the signature match everywhere.
      std::size_t first_removed = pre.size();
      std::size_t last_removed = 0;
      {
        std::size_t idx = 0;
        for (const diff::Line& line : hunk.lines) {
          if (line.kind == diff::LineKind::kAdded) continue;
          if (line.kind == diff::LineKind::kRemoved) {
            first_removed = std::min(first_removed, idx);
            last_removed = std::max(last_removed, idx);
          }
          ++idx;
        }
      }
      const std::size_t begin = first_removed > 2 ? first_removed - 2 : 0;
      const std::size_t end = std::min(pre.size(), last_removed + 3);
      const std::vector<std::string> window(
          pre.begin() + static_cast<std::ptrdiff_t>(begin),
          pre.begin() + static_cast<std::ptrdiff_t>(end));
      added += add_signature(patch.commit, window);
    }
  }
  return added;
}

std::vector<CloneMatch> CloneScanner::scan(
    const std::vector<std::string>& file_lines) const {
  // Track the original line number of every normalized line so matches
  // report real positions.
  std::vector<std::string> normalized;
  std::vector<std::size_t> origin_line;
  for (std::size_t i = 0; i < file_lines.size(); ++i) {
    const std::string_view t = util::trim(file_lines[i]);
    if (t.empty() || t == "{" || t == "}") continue;
    normalized.emplace_back(t);
    origin_line.push_back(i + 1);
  }

  std::vector<CloneMatch> matches;
  for (const auto& [length, buckets] : by_length_) {
    if (length > normalized.size()) continue;
    for (std::size_t begin = 0; begin + length <= normalized.size(); ++begin) {
      const std::uint64_t hash = window_hash(normalized, begin, length);
      const auto it = buckets.find(hash);
      if (it == buckets.end()) continue;
      for (const Signature& sig : it->second) {
        matches.push_back(CloneMatch{sig.origin, origin_line[begin], length});
      }
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const CloneMatch& a, const CloneMatch& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.origin < b.origin;
            });
  return matches;
}

}  // namespace patchdb::core
