// Near-duplicate patch detection for dataset cleaning. Backports,
// cherry-picks, and vendored copies put near-identical fixes into many
// repositories; a cleaned dataset (the paper's is hand-curated) should
// not count them twice. Two patches are near-duplicates when their
// token-abstracted hunk contents hash equal — identifier renames,
// whitespace, and file paths do not matter; any structural change does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "diff/patch.h"

namespace patchdb::core {

/// Order-insensitive fingerprint of a patch's abstracted code change.
std::uint64_t change_fingerprint(const diff::Patch& patch);

struct DedupeResult {
  /// Indices of the patches kept (first occurrence of each fingerprint,
  /// in input order).
  std::vector<std::size_t> kept;
  /// duplicate_of[i] == i for kept patches; otherwise the index of the
  /// earlier patch i duplicates.
  std::vector<std::size_t> duplicate_of;

  std::size_t duplicates() const noexcept {
    return duplicate_of.size() - kept.size();
  }
};

/// Group patches by fingerprint.
DedupeResult dedupe(std::span<const diff::Patch> patches);

}  // namespace patchdb::core
