// Rule-based patch-pattern categorizer: assigns a security patch to one
// of the 12 Table V code-change categories by inspecting its hunks. The
// paper did this step manually over 5K patches; the rules below encode
// the same decision procedure (checks first, then declaration/value
// changes, call changes, jumps, moves, and finally the size-based
// redesign catch-all), so the composition study (Table V, Fig. 6) can
// run over arbitrarily large sets.
#pragma once

#include "corpus/taxonomy.h"
#include "diff/patch.h"

namespace patchdb::core {

struct CategorizeOptions {
  /// Run the checker tie-break with the interprocedural engine
  /// (analysis/callgraph.h, analysis/summary.h) so cross-function fixes
  /// — a guard added inside a callee, a wrapper-free use-after-free —
  /// count as checker evidence. Off by default: the default categorize()
  /// stays bit-identical to the intraprocedural cascade.
  bool interproc = false;
};

/// Classify a patch's code change into a Table V category. When the
/// syntactic rule cascade is inconclusive (would fall through to
/// kOther), the CFG-based checkers break the tie: a patch whose AFTER
/// version resolves e.g. a missing-null-guard diagnostic is classified
/// as an added null check even if the guard's text eluded the line
/// rules.
corpus::PatchType categorize(const diff::Patch& patch);
corpus::PatchType categorize(const diff::Patch& patch,
                             const CategorizeOptions& options);

}  // namespace patchdb::core
