// Rule-based patch-pattern categorizer: assigns a security patch to one
// of the 12 Table V code-change categories by inspecting its hunks. The
// paper did this step manually over 5K patches; the rules below encode
// the same decision procedure (checks first, then declaration/value
// changes, call changes, jumps, moves, and finally the size-based
// redesign catch-all), so the composition study (Table V, Fig. 6) can
// run over arbitrarily large sets.
#pragma once

#include "corpus/taxonomy.h"
#include "diff/patch.h"

namespace patchdb::core {

/// Classify a patch's code change into a Table V category. When the
/// syntactic rule cascade is inconclusive (would fall through to
/// kOther), the CFG-based checkers break the tie: a patch whose AFTER
/// version resolves e.g. a missing-null-guard diagnostic is classified
/// as an added null check even if the guard's text eluded the line
/// rules.
corpus::PatchType categorize(const diff::Patch& patch);

}  // namespace patchdb::core
