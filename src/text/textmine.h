// Commit-message text mining — the identification approach the paper's
// introduction rules out ("such identification methods are error-prone
// due to the poor quality of the textual information: 61% of security
// patches for the Linux kernel do not mention security impacts").
// Implemented here as the comparison baseline: a keyword matcher (the
// classic industrial rule set) and a multinomial naive Bayes classifier
// over bag-of-words message features.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace patchdb::text {

/// Lower-cased alphanumeric word tokens of a message.
std::vector<std::string> words(std::string_view message);

/// The keyword rule: does the message mention security?
/// Matches the usual vocabulary: security, CVE, vulnerability, overflow,
/// exploit, use-after-free, ... (case-insensitive).
bool mentions_security(std::string_view message);

/// Multinomial naive Bayes over word counts with Laplace smoothing.
class TextNaiveBayes {
 public:
  /// min_count: words rarer than this across the corpus map to <unk>.
  explicit TextNaiveBayes(std::size_t min_count = 2) : min_count_(min_count) {}

  void fit(std::span<const std::string> messages, std::span<const int> labels);

  /// P(security | message).
  double predict_score(std::string_view message) const;
  int predict(std::string_view message) const {
    return predict_score(message) >= 0.5 ? 1 : 0;
  }

  std::size_t vocabulary_size() const noexcept { return log_pos_.size(); }

 private:
  std::size_t min_count_;
  std::unordered_map<std::string, std::size_t> word_ids_;
  std::vector<double> log_pos_;  // log P(word | security), index 0 = <unk>
  std::vector<double> log_neg_;
  double log_prior_pos_ = 0.0;
  double log_prior_neg_ = 0.0;
  bool fitted_ = false;
};

}  // namespace patchdb::text
