#include "text/textmine.h"

#include <array>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "util/strings.h"

namespace patchdb::text {

std::vector<std::string> words(std::string_view message) {
  std::vector<std::string> out;
  std::string current;
  for (char c : message) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      out.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) out.push_back(std::move(current));
  return out;
}

bool mentions_security(std::string_view message) {
  static constexpr std::array<std::string_view, 18> kKeywords = {
      "security", "cve",      "vulnerability", "vulnerable", "exploit",
      "overflow", "underflow", "use-after-free", "uaf",       "double-free",
      "out-of-bounds", "oob", "injection",     "dos",        "leak",
      "race",     "sanitize", "null pointer",
  };
  const std::string lower = util::to_lower(message);
  for (std::string_view keyword : kKeywords) {
    if (lower.find(keyword) != std::string::npos) return true;
  }
  return false;
}

void TextNaiveBayes::fit(std::span<const std::string> messages,
                         std::span<const int> labels) {
  if (messages.size() != labels.size()) {
    throw std::invalid_argument("TextNaiveBayes: size mismatch");
  }
  fitted_ = false;

  // Pass 1: count words to fix the vocabulary.
  std::unordered_map<std::string, std::size_t> counts;
  for (const std::string& message : messages) {
    for (std::string& w : words(message)) ++counts[std::move(w)];
  }
  word_ids_.clear();
  std::size_t next = 1;  // 0 = <unk>
  for (const auto& [word, count] : counts) {
    if (count >= min_count_) word_ids_.emplace(word, next++);
  }

  // Pass 2: per-class word counts with Laplace smoothing.
  std::vector<double> pos_counts(next, 1.0);
  std::vector<double> neg_counts(next, 1.0);
  double pos_total = static_cast<double>(next);
  double neg_total = static_cast<double>(next);
  std::size_t pos_docs = 0;
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const bool positive = labels[i] != 0;
    pos_docs += positive;
    for (const std::string& w : words(messages[i])) {
      const auto it = word_ids_.find(w);
      const std::size_t id = it == word_ids_.end() ? 0 : it->second;
      (positive ? pos_counts : neg_counts)[id] += 1.0;
      (positive ? pos_total : neg_total) += 1.0;
    }
  }

  log_pos_.resize(next);
  log_neg_.resize(next);
  for (std::size_t id = 0; id < next; ++id) {
    log_pos_[id] = std::log(pos_counts[id] / pos_total);
    log_neg_[id] = std::log(neg_counts[id] / neg_total);
  }
  // Words never seen in training carry no evidence. Without this, <unk>
  // systematically favors whichever class had fewer training tokens — a
  // classic multinomial-NB pathology that would let novel vocabulary
  // (exactly what silent fixes use) flip predictions for free.
  log_pos_[0] = log_neg_[0] = std::log(1.0 / std::max(pos_total, neg_total));
  const double n = static_cast<double>(messages.size());
  log_prior_pos_ = std::log((static_cast<double>(pos_docs) + 1.0) / (n + 2.0));
  log_prior_neg_ =
      std::log((n - static_cast<double>(pos_docs) + 1.0) / (n + 2.0));
  fitted_ = true;
}

double TextNaiveBayes::predict_score(std::string_view message) const {
  if (!fitted_) return 0.5;
  double log_pos = log_prior_pos_;
  double log_neg = log_prior_neg_;
  for (const std::string& w : words(message)) {
    const auto it = word_ids_.find(w);
    const std::size_t id = it == word_ids_.end() ? 0 : it->second;
    log_pos += log_pos_[id];
    log_neg += log_neg_[id];
  }
  const double m = std::max(log_pos, log_neg);
  const double p = std::exp(log_pos - m);
  const double q = std::exp(log_neg - m);
  return p / (p + q);
}

}  // namespace patchdb::text
