// GRU sequence classifier with hand-derived backpropagation — the
// from-scratch stand-in for the paper's RNN patch classifier
// (Tables IV and VI). Architecture: embedding -> single GRU layer ->
// mean pooling over time -> logistic head; binary cross-entropy loss,
// Adam optimizer, gradient clipping.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace patchdb::nn {

/// Token-id sequences with binary labels.
struct SequenceDataset {
  std::vector<std::vector<std::int32_t>> sequences;
  std::vector<int> labels;

  std::size_t size() const noexcept { return sequences.size(); }
};

struct GruOptions {
  std::size_t embed_dim = 16;
  std::size_t hidden_dim = 24;
  std::size_t max_len = 160;    // sequences are truncated to this
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  float learning_rate = 0.01f;
  float grad_clip = 5.0f;       // global-norm clipping per batch
  float l2 = 1e-5f;
};

class GruClassifier {
 public:
  explicit GruClassifier(GruOptions options = {}) : options_(options) {}

  /// Train from scratch. `vocab_size` must exceed every token id.
  void fit(const SequenceDataset& data, std::size_t vocab_size, std::uint64_t seed);

  /// P(security patch) for one sequence.
  double predict_score(std::span<const std::int32_t> sequence) const;
  int predict(std::span<const std::int32_t> sequence) const {
    return predict_score(sequence) >= 0.5 ? 1 : 0;
  }

  std::vector<int> predict_all(const SequenceDataset& data) const;

  /// Mean binary cross-entropy over a dataset (training diagnostics).
  double loss(const SequenceDataset& data) const;

  /// Numerical verification of the hand-derived backpropagation:
  /// initializes fresh random parameters, computes the analytic gradient
  /// of the BCE loss on one (sequence, label) example, then compares
  /// `samples` randomly chosen coordinates against central finite
  /// differences. Returns the maximum relative error observed (values
  /// around 1e-2 are expected in float; ~1 means a wrong gradient).
  double gradient_check(std::span<const std::int32_t> sequence, int label,
                        std::size_t vocab_size, std::size_t samples,
                        std::uint64_t seed);

  const GruOptions& options() const noexcept { return options_; }

 private:
  struct Params {
    // Embedding: [vocab][embed]
    std::vector<float> embed;
    // Gate weights: W* [hidden][embed], U* [hidden][hidden], b* [hidden]
    std::vector<float> wz, wr, wh;
    std::vector<float> uz, ur, uh;
    std::vector<float> bz, br, bh;
    // Output head
    std::vector<float> out_w;  // [hidden]
    float out_b = 0.0f;

    void resize(std::size_t vocab, std::size_t embed_dim, std::size_t hidden);
    std::size_t total() const noexcept;
    /// Visit every parameter array (same order for params and grads).
    template <typename F>
    void for_each(F&& f) {
      f(embed); f(wz); f(wr); f(wh); f(uz); f(ur); f(uh);
      f(bz); f(br); f(bh); f(out_w);
    }
  };

  /// Forward pass storing per-step activations for BPTT.
  struct Trace;

  double forward(std::span<const std::int32_t> sequence, Trace* trace) const;
  void backward(std::span<const std::int32_t> sequence, const Trace& trace,
                float dlogit, Params& grads) const;

  GruOptions options_;
  std::size_t vocab_size_ = 0;
  Params params_;
  bool fitted_ = false;
};

}  // namespace patchdb::nn
