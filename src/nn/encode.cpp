#include "nn/encode.h"

#include "lang/lexer.h"

namespace patchdb::nn {

std::vector<std::string> patch_tokens(const diff::Patch& patch,
                                      const EncodeOptions& options) {
  std::vector<std::string> out;
  for (const diff::FileDiff& fd : patch.files) {
    for (const diff::Hunk& hunk : fd.hunks) {
      out.emplace_back(kHunkMarker);
      for (const diff::Line& line : hunk.lines) {
        const char* marker = nullptr;
        switch (line.kind) {
          case diff::LineKind::kAdded: marker = kAddMarker; break;
          case diff::LineKind::kRemoved: marker = kDelMarker; break;
          case diff::LineKind::kContext:
            if (!options.include_context) continue;
            marker = kCtxMarker;
            break;
        }
        out.emplace_back(marker);
        for (std::string& token : lang::lex_texts(line.text)) {
          out.push_back(std::move(token));
          if (out.size() >= options.max_tokens) return out;
        }
      }
      if (out.size() >= options.max_tokens) return out;
    }
  }
  return out;
}

}  // namespace patchdb::nn
