// Token vocabulary for the RNN classifier (Section IV-C): "the source
// code of a given patch as a list of tokens including keywords,
// identifiers, operators, etc." Tokens below `min_count` map to <unk>.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace patchdb::nn {

class Vocabulary {
 public:
  static constexpr std::int32_t kPad = 0;
  static constexpr std::int32_t kUnk = 1;

  /// Build from token streams; tokens occurring fewer than `min_count`
  /// times are not given ids. `max_size` caps the vocabulary (most
  /// frequent kept), 0 = unlimited.
  static Vocabulary build(std::span<const std::vector<std::string>> documents,
                          std::size_t min_count = 2, std::size_t max_size = 0);

  std::int32_t id_of(std::string_view token) const;
  std::vector<std::int32_t> encode(std::span<const std::string> tokens) const;

  std::size_t size() const noexcept { return size_; }

 private:
  std::unordered_map<std::string, std::int32_t> ids_;
  std::size_t size_ = 2;  // pad + unk
};

}  // namespace patchdb::nn
