#include "nn/gru.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace patchdb::nn {

namespace {

inline float sigmoidf(float z) { return 1.0f / (1.0f + std::exp(-z)); }

/// y = W x, W row-major [rows][cols].
void matvec(const std::vector<float>& w, const float* x, std::size_t rows,
            std::size_t cols, float* y) {
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = w.data() + i * cols;
    float total = 0.0f;
    for (std::size_t j = 0; j < cols; ++j) total += row[j] * x[j];
    y[i] += total;
  }
}

/// out += W^T v, W row-major [rows][cols], v length rows, out length cols.
void matvec_t(const std::vector<float>& w, const float* v, std::size_t rows,
              std::size_t cols, float* out) {
  for (std::size_t i = 0; i < rows; ++i) {
    const float* row = w.data() + i * cols;
    const float vi = v[i];
    for (std::size_t j = 0; j < cols; ++j) out[j] += vi * row[j];
  }
}

/// W += v (x)^T outer product, W row-major [rows][cols].
void outer_acc(std::vector<float>& w, const float* v, const float* x,
               std::size_t rows, std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    float* row = w.data() + i * cols;
    const float vi = v[i];
    for (std::size_t j = 0; j < cols; ++j) row[j] += vi * x[j];
  }
}

}  // namespace

void GruClassifier::Params::resize(std::size_t vocab, std::size_t embed_dim,
                                   std::size_t hidden) {
  embed.assign(vocab * embed_dim, 0.0f);
  wz.assign(hidden * embed_dim, 0.0f);
  wr.assign(hidden * embed_dim, 0.0f);
  wh.assign(hidden * embed_dim, 0.0f);
  uz.assign(hidden * hidden, 0.0f);
  ur.assign(hidden * hidden, 0.0f);
  uh.assign(hidden * hidden, 0.0f);
  bz.assign(hidden, 0.0f);
  br.assign(hidden, 0.0f);
  bh.assign(hidden, 0.0f);
  out_w.assign(hidden, 0.0f);
  out_b = 0.0f;
}

std::size_t GruClassifier::Params::total() const noexcept {
  return embed.size() + wz.size() + wr.size() + wh.size() + uz.size() +
         ur.size() + uh.size() + bz.size() + br.size() + bh.size() +
         out_w.size() + 1;
}

struct GruClassifier::Trace {
  std::vector<std::int32_t> ids;     // truncated sequence actually used
  std::vector<float> z, r, hc, h;    // [T][hidden] each
  std::vector<float> hbar;           // [hidden]
};

double GruClassifier::forward(std::span<const std::int32_t> sequence,
                              Trace* trace) const {
  const std::size_t hidden = options_.hidden_dim;
  const std::size_t embed_dim = options_.embed_dim;
  const std::size_t len = std::min(sequence.size(), options_.max_len);

  std::vector<float> h(hidden, 0.0f);
  std::vector<float> hbar(hidden, 0.0f);
  std::vector<float> z(hidden), r(hidden), hc(hidden), rh(hidden);

  if (trace != nullptr) {
    trace->ids.assign(sequence.begin(),
                      sequence.begin() + static_cast<std::ptrdiff_t>(len));
    trace->z.resize(len * hidden);
    trace->r.resize(len * hidden);
    trace->hc.resize(len * hidden);
    trace->h.resize(len * hidden);
  }

  for (std::size_t t = 0; t < len; ++t) {
    const auto id = static_cast<std::size_t>(sequence[t]);
    const float* x = params_.embed.data() + id * embed_dim;

    std::copy(params_.bz.begin(), params_.bz.end(), z.begin());
    std::copy(params_.br.begin(), params_.br.end(), r.begin());
    matvec(params_.wz, x, hidden, embed_dim, z.data());
    matvec(params_.uz, h.data(), hidden, hidden, z.data());
    matvec(params_.wr, x, hidden, embed_dim, r.data());
    matvec(params_.ur, h.data(), hidden, hidden, r.data());
    for (std::size_t i = 0; i < hidden; ++i) {
      z[i] = sigmoidf(z[i]);
      r[i] = sigmoidf(r[i]);
      rh[i] = r[i] * h[i];
    }
    std::copy(params_.bh.begin(), params_.bh.end(), hc.begin());
    matvec(params_.wh, x, hidden, embed_dim, hc.data());
    matvec(params_.uh, rh.data(), hidden, hidden, hc.data());
    for (std::size_t i = 0; i < hidden; ++i) {
      hc[i] = std::tanh(hc[i]);
      h[i] = (1.0f - z[i]) * h[i] + z[i] * hc[i];
      hbar[i] += h[i];
    }
    if (trace != nullptr) {
      std::copy(z.begin(), z.end(), trace->z.begin() + static_cast<std::ptrdiff_t>(t * hidden));
      std::copy(r.begin(), r.end(), trace->r.begin() + static_cast<std::ptrdiff_t>(t * hidden));
      std::copy(hc.begin(), hc.end(), trace->hc.begin() + static_cast<std::ptrdiff_t>(t * hidden));
      std::copy(h.begin(), h.end(), trace->h.begin() + static_cast<std::ptrdiff_t>(t * hidden));
    }
  }

  if (len > 0) {
    for (float& v : hbar) v /= static_cast<float>(len);
  }
  float logit = params_.out_b;
  for (std::size_t i = 0; i < hidden; ++i) logit += params_.out_w[i] * hbar[i];
  if (trace != nullptr) trace->hbar = hbar;
  return static_cast<double>(sigmoidf(logit));
}

void GruClassifier::backward(std::span<const std::int32_t> /*sequence*/,
                             const Trace& trace, float dlogit,
                             Params& grads) const {
  const std::size_t hidden = options_.hidden_dim;
  const std::size_t embed_dim = options_.embed_dim;
  const std::size_t len = trace.ids.size();
  if (len == 0) {
    grads.out_b += dlogit;
    return;
  }

  // Output head.
  for (std::size_t i = 0; i < hidden; ++i) {
    grads.out_w[i] += dlogit * trace.hbar[i];
  }
  grads.out_b += dlogit;

  std::vector<float> dh_next(hidden, 0.0f);
  std::vector<float> dh(hidden), dz_pre(hidden), dr_pre(hidden), dpre_h(hidden);
  std::vector<float> drh(hidden), dh_prev(hidden), dx(embed_dim), rh(hidden);
  const float inv_len = 1.0f / static_cast<float>(len);

  for (std::size_t t = len; t-- > 0;) {
    const float* z = trace.z.data() + t * hidden;
    const float* r = trace.r.data() + t * hidden;
    const float* hc = trace.hc.data() + t * hidden;
    const float* h_prev =
        t == 0 ? nullptr : trace.h.data() + (t - 1) * hidden;

    for (std::size_t i = 0; i < hidden; ++i) {
      dh[i] = dlogit * params_.out_w[i] * inv_len + dh_next[i];
    }

    for (std::size_t i = 0; i < hidden; ++i) {
      const float hp = h_prev == nullptr ? 0.0f : h_prev[i];
      const float dhc = dh[i] * z[i];
      dpre_h[i] = dhc * (1.0f - hc[i] * hc[i]);
      dz_pre[i] = dh[i] * (hc[i] - hp) * z[i] * (1.0f - z[i]);
      rh[i] = r[i] * hp;
    }

    std::fill(drh.begin(), drh.end(), 0.0f);
    matvec_t(params_.uh, dpre_h.data(), hidden, hidden, drh.data());

    for (std::size_t i = 0; i < hidden; ++i) {
      const float hp = h_prev == nullptr ? 0.0f : h_prev[i];
      const float dr = drh[i] * hp;
      dr_pre[i] = dr * r[i] * (1.0f - r[i]);
      dh_prev[i] = dh[i] * (1.0f - z[i]) + drh[i] * r[i];
    }
    matvec_t(params_.uz, dz_pre.data(), hidden, hidden, dh_prev.data());
    matvec_t(params_.ur, dr_pre.data(), hidden, hidden, dh_prev.data());

    const auto id = static_cast<std::size_t>(trace.ids[t]);
    const float* x = params_.embed.data() + id * embed_dim;

    outer_acc(grads.wz, dz_pre.data(), x, hidden, embed_dim);
    outer_acc(grads.wr, dr_pre.data(), x, hidden, embed_dim);
    outer_acc(grads.wh, dpre_h.data(), x, hidden, embed_dim);
    if (h_prev != nullptr) {
      outer_acc(grads.uz, dz_pre.data(), h_prev, hidden, hidden);
      outer_acc(grads.ur, dr_pre.data(), h_prev, hidden, hidden);
    }
    outer_acc(grads.uh, dpre_h.data(), rh.data(), hidden, hidden);
    for (std::size_t i = 0; i < hidden; ++i) {
      grads.bz[i] += dz_pre[i];
      grads.br[i] += dr_pre[i];
      grads.bh[i] += dpre_h[i];
    }

    std::fill(dx.begin(), dx.end(), 0.0f);
    matvec_t(params_.wz, dz_pre.data(), hidden, embed_dim, dx.data());
    matvec_t(params_.wr, dr_pre.data(), hidden, embed_dim, dx.data());
    matvec_t(params_.wh, dpre_h.data(), hidden, embed_dim, dx.data());
    float* de = grads.embed.data() + id * embed_dim;
    for (std::size_t j = 0; j < embed_dim; ++j) de[j] += dx[j];

    dh_next = dh_prev;
  }
}

void GruClassifier::fit(const SequenceDataset& data, std::size_t vocab_size,
                        std::uint64_t seed) {
  if (data.sequences.size() != data.labels.size()) {
    throw std::invalid_argument("GruClassifier: sequences/labels mismatch");
  }
  for (const auto& seq : data.sequences) {
    for (std::int32_t id : seq) {
      if (id < 0 || static_cast<std::size_t>(id) >= vocab_size) {
        throw std::invalid_argument("GruClassifier: token id out of range");
      }
    }
  }

  vocab_size_ = vocab_size;
  util::Rng rng(seed);
  params_.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
  auto init = [&rng](std::vector<float>& w, double scale) {
    for (float& v : w) v = static_cast<float>(rng.uniform(-scale, scale));
  };
  params_.for_each([&](std::vector<float>& w) { init(w, 0.08); });
  // Biases start at zero.
  std::fill(params_.bz.begin(), params_.bz.end(), 0.0f);
  std::fill(params_.br.begin(), params_.br.end(), 0.0f);
  std::fill(params_.bh.begin(), params_.bh.end(), 0.0f);

  // Adam state mirrors the parameter layout.
  Params m;
  Params v;
  m.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
  v.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
  float m_b = 0.0f;
  float v_b = 0.0f;

  const float beta1 = 0.9f;
  const float beta2 = 0.999f;
  const float eps = 1e-8f;
  std::size_t step = 0;

  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  util::ThreadPool& pool = util::default_pool();
  std::mutex merge_mutex;

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t batch_start = 0; batch_start < order.size();
         batch_start += options_.batch_size) {
      const std::size_t batch_end =
          std::min(order.size(), batch_start + options_.batch_size);
      const std::size_t batch_n = batch_end - batch_start;

      Params grads;
      grads.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
      float grad_out_b = 0.0f;

      pool.parallel_for(batch_n, [&](std::size_t lo, std::size_t hi) {
        Params local;
        local.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
        Trace trace;
        for (std::size_t k = lo; k < hi; ++k) {
          const std::size_t i = order[batch_start + k];
          const double p = forward(data.sequences[i], &trace);
          const float y = data.labels[i] != 0 ? 1.0f : 0.0f;
          const float dlogit = static_cast<float>(p) - y;
          backward(data.sequences[i], trace, dlogit, local);
        }
        std::lock_guard lock(merge_mutex);
        auto merge = [](std::vector<float>& dst, const std::vector<float>& src) {
          for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
        };
        merge(grads.embed, local.embed);
        merge(grads.wz, local.wz);
        merge(grads.wr, local.wr);
        merge(grads.wh, local.wh);
        merge(grads.uz, local.uz);
        merge(grads.ur, local.ur);
        merge(grads.uh, local.uh);
        merge(grads.bz, local.bz);
        merge(grads.br, local.br);
        merge(grads.bh, local.bh);
        merge(grads.out_w, local.out_w);
        grad_out_b += local.out_b;
      });

      // Average over the batch, add L2, clip by global norm.
      const float inv_n = 1.0f / static_cast<float>(batch_n);
      double norm_sq = 0.0;
      grads.for_each([&](std::vector<float>& g) {
        for (float& value : g) {
          value *= inv_n;
          norm_sq += static_cast<double>(value) * value;
        }
      });
      grad_out_b *= inv_n;
      norm_sq += static_cast<double>(grad_out_b) * grad_out_b;
      const auto norm = static_cast<float>(std::sqrt(norm_sq));
      const float scale =
          norm > options_.grad_clip ? options_.grad_clip / norm : 1.0f;

      ++step;
      const float bias_fix1 = 1.0f - std::pow(beta1, static_cast<float>(step));
      const float bias_fix2 = 1.0f - std::pow(beta2, static_cast<float>(step));
      const float lr = options_.learning_rate;

      // Adam update, array by array (same traversal order in all three).
      std::vector<std::vector<float>*> p_arrays;
      std::vector<std::vector<float>*> g_arrays;
      std::vector<std::vector<float>*> m_arrays;
      std::vector<std::vector<float>*> v_arrays;
      params_.for_each([&](std::vector<float>& a) { p_arrays.push_back(&a); });
      grads.for_each([&](std::vector<float>& a) { g_arrays.push_back(&a); });
      m.for_each([&](std::vector<float>& a) { m_arrays.push_back(&a); });
      v.for_each([&](std::vector<float>& a) { v_arrays.push_back(&a); });

      for (std::size_t a = 0; a < p_arrays.size(); ++a) {
        std::vector<float>& pw = *p_arrays[a];
        std::vector<float>& gw = *g_arrays[a];
        std::vector<float>& mw = *m_arrays[a];
        std::vector<float>& vw = *v_arrays[a];
        for (std::size_t j = 0; j < pw.size(); ++j) {
          const float g = gw[j] * scale + options_.l2 * pw[j];
          mw[j] = beta1 * mw[j] + (1.0f - beta1) * g;
          vw[j] = beta2 * vw[j] + (1.0f - beta2) * g * g;
          const float m_hat = mw[j] / bias_fix1;
          const float v_hat = vw[j] / bias_fix2;
          pw[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
        }
      }
      {
        const float g = grad_out_b * scale;
        m_b = beta1 * m_b + (1.0f - beta1) * g;
        v_b = beta2 * v_b + (1.0f - beta2) * g * g;
        params_.out_b -= lr * (m_b / bias_fix1) / (std::sqrt(v_b / bias_fix2) + eps);
      }
    }
  }
  fitted_ = true;
}

double GruClassifier::predict_score(std::span<const std::int32_t> sequence) const {
  if (!fitted_) return 0.5;
  return forward(sequence, nullptr);
}

std::vector<int> GruClassifier::predict_all(const SequenceDataset& data) const {
  std::vector<int> out(data.size());
  util::default_pool().parallel_for(data.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = predict(data.sequences[i]);
  });
  return out;
}

double GruClassifier::gradient_check(std::span<const std::int32_t> sequence,
                                     int label, std::size_t vocab_size,
                                     std::size_t samples, std::uint64_t seed) {
  util::Rng rng(seed);
  vocab_size_ = vocab_size;
  params_.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
  params_.for_each([&rng](std::vector<float>& w) {
    for (float& v : w) v = static_cast<float>(rng.uniform(-0.3, 0.3));
  });
  params_.out_b = static_cast<float>(rng.uniform(-0.3, 0.3));
  fitted_ = true;

  const float y = label != 0 ? 1.0f : 0.0f;
  auto bce = [&]() {
    const double p = std::clamp(forward(sequence, nullptr), 1e-7, 1.0 - 1e-7);
    return -(static_cast<double>(y) * std::log(p) +
             (1.0 - static_cast<double>(y)) * std::log(1.0 - p));
  };

  // Analytic gradient.
  Trace trace;
  const double p = forward(sequence, &trace);
  Params grads;
  grads.resize(vocab_size, options_.embed_dim, options_.hidden_dim);
  backward(sequence, trace, static_cast<float>(p) - y, grads);

  // Collect (parameter array, gradient array) pairs in matching order.
  std::vector<std::vector<float>*> p_arrays;
  std::vector<std::vector<float>*> g_arrays;
  params_.for_each([&](std::vector<float>& a) { p_arrays.push_back(&a); });
  grads.for_each([&](std::vector<float>& a) { g_arrays.push_back(&a); });

  double max_rel_error = 0.0;
  const double eps = 1e-3;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t array = rng.index(p_arrays.size());
    if (p_arrays[array]->empty()) continue;
    const std::size_t coord = rng.index(p_arrays[array]->size());
    float& value = (*p_arrays[array])[coord];
    const float saved = value;
    value = static_cast<float>(saved + eps);
    const double loss_hi = bce();
    value = static_cast<float>(saved - eps);
    const double loss_lo = bce();
    value = saved;
    const double numeric = (loss_hi - loss_lo) / (2.0 * eps);
    const double analytic = static_cast<double>((*g_arrays[array])[coord]);
    const double denom = std::max({std::fabs(numeric), std::fabs(analytic), 5e-2});
    max_rel_error = std::max(max_rel_error, std::fabs(numeric - analytic) / denom);
  }
  // Also check the output bias.
  {
    const float saved = params_.out_b;
    params_.out_b = static_cast<float>(saved + eps);
    const double loss_hi = bce();
    params_.out_b = static_cast<float>(saved - eps);
    const double loss_lo = bce();
    params_.out_b = saved;
    const double numeric = (loss_hi - loss_lo) / (2.0 * eps);
    const double analytic = static_cast<double>(grads.out_b);
    const double denom = std::max({std::fabs(numeric), std::fabs(analytic), 5e-2});
    max_rel_error = std::max(max_rel_error, std::fabs(numeric - analytic) / denom);
  }
  return max_rel_error;
}

double GruClassifier::loss(const SequenceDataset& data) const {
  if (data.size() == 0) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p =
        std::clamp(predict_score(data.sequences[i]), 1e-7, 1.0 - 1e-7);
    const double y = data.labels[i] != 0 ? 1.0 : 0.0;
    total += -(y * std::log(p) + (1.0 - y) * std::log(1.0 - p));
  }
  return total / static_cast<double>(data.size());
}

}  // namespace patchdb::nn
