// Patch -> token stream encoding for the RNN. Each removed line's tokens
// are preceded by a <del> marker and each added line's by <add>, so the
// model sees the diff structure the same way the paper's RNN sees
// pre-patched and post-patched code side by side.
#pragma once

#include <string>
#include <vector>

#include "diff/patch.h"

namespace patchdb::nn {

inline constexpr const char* kAddMarker = "<add>";
inline constexpr const char* kDelMarker = "<del>";
inline constexpr const char* kCtxMarker = "<ctx>";
inline constexpr const char* kHunkMarker = "<hunk>";

struct EncodeOptions {
  bool include_context = false;  // context lines usually add noise
  std::size_t max_tokens = 512;  // hard cap before truncation
};

/// Flatten a patch into the RNN's token list.
std::vector<std::string> patch_tokens(const diff::Patch& patch,
                                      const EncodeOptions& options = {});

}  // namespace patchdb::nn
