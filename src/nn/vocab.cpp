#include "nn/vocab.h"

#include <algorithm>

namespace patchdb::nn {

Vocabulary Vocabulary::build(std::span<const std::vector<std::string>> documents,
                             std::size_t min_count, std::size_t max_size) {
  std::unordered_map<std::string, std::size_t> counts;
  for (const auto& doc : documents) {
    for (const std::string& token : doc) ++counts[token];
  }

  std::vector<std::pair<std::string, std::size_t>> frequent;
  frequent.reserve(counts.size());
  for (auto& [token, count] : counts) {
    if (count >= min_count) frequent.emplace_back(token, count);
  }
  // Sort by count desc, then lexicographically for determinism.
  std::sort(frequent.begin(), frequent.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (max_size > 0 && frequent.size() > max_size) frequent.resize(max_size);

  Vocabulary vocab;
  std::int32_t next = 2;
  for (auto& [token, count] : frequent) {
    vocab.ids_.emplace(token, next++);
  }
  vocab.size_ = static_cast<std::size_t>(next);
  return vocab;
}

std::int32_t Vocabulary::id_of(std::string_view token) const {
  const auto it = ids_.find(std::string(token));
  return it == ids_.end() ? kUnk : it->second;
}

std::vector<std::int32_t> Vocabulary::encode(std::span<const std::string> tokens) const {
  std::vector<std::int32_t> out;
  out.reserve(tokens.size());
  for (const std::string& token : tokens) out.push_back(id_of(token));
  return out;
}

}  // namespace patchdb::nn
