// CART decision tree (Gini impurity) — the stand-in for Weka's J48 —
// and a reduced-error-pruning variant (REPTree), both members of the
// ten-classifier uncertainty panel. The tree is also the base learner
// for the Random Forest.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ml/classifier.h"
#include "util/rng.h"

namespace patchdb::ml {

struct TreeOptions {
  std::size_t max_depth = 16;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Number of features examined per split; 0 = all (single tree),
  /// sqrt(dims) is set by the forest.
  std::size_t features_per_split = 0;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(TreeOptions options = {}) : options_(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "DecisionTree"; }

  /// Fit on a bootstrap expressed as row indices into `data` (used by
  /// the forest so rows are not copied per tree).
  void fit_indices(const Dataset& data, std::span<const std::size_t> indices,
                   std::uint64_t seed);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t depth() const noexcept;

 protected:
  struct Node {
    // Leaf when feature == kLeaf; then `score` holds P(positive).
    static constexpr std::int32_t kLeaf = -1;
    std::int32_t feature = kLeaf;
    double threshold = 0.0;
    double score = 0.5;
    std::int32_t left = -1;   // x[feature] <= threshold
    std::int32_t right = -1;  // x[feature] >  threshold
  };

  std::int32_t build(const Dataset& data, std::vector<std::size_t>& indices,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     util::Rng& rng);

  // Protected by design: REPTree's pruning pass rewrites the node array
  // in place after the base grower finishes.
  TreeOptions options_;        // NOLINT(misc-non-private-member-variables-in-classes)
  std::vector<Node> nodes_;    // NOLINT(misc-non-private-member-variables-in-classes)
};

/// Reduced Error Pruning tree: grows a full CART tree on 2/3 of the
/// training data, then greedily replaces subtrees with leaves whenever
/// that does not hurt accuracy on the held-out 1/3 pruning set.
class REPTree : public DecisionTree {
 public:
  explicit REPTree(TreeOptions options = {}) : DecisionTree(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  std::string name() const override { return "REPTree"; }
};

}  // namespace patchdb::ml
