#include "ml/normalize.h"

#include <cmath>
#include <stdexcept>

namespace patchdb::ml {

void MaxAbsScaler::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("MaxAbsScaler: empty fit set");
  const std::size_t dims = rows[0].size();
  std::vector<double> max_abs(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < dims; ++j) {
      max_abs[j] = std::max(max_abs[j], std::fabs(row[j]));
    }
  }
  inv_max_.assign(dims, 1.0);
  for (std::size_t j = 0; j < dims; ++j) {
    if (max_abs[j] > 0.0) inv_max_[j] = 1.0 / max_abs[j];
  }
}

std::vector<double> MaxAbsScaler::transform(std::span<const double> row) const {
  if (row.size() != inv_max_.size()) {
    throw std::invalid_argument("MaxAbsScaler: dimensionality mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) out[j] = row[j] * inv_max_[j];
  return out;
}

void MaxAbsScaler::transform_in_place(std::vector<std::vector<double>>& rows) const {
  for (auto& row : rows) {
    if (row.size() != inv_max_.size()) {
      throw std::invalid_argument("MaxAbsScaler: dimensionality mismatch");
    }
    for (std::size_t j = 0; j < row.size(); ++j) row[j] *= inv_max_[j];
  }
}

Dataset MaxAbsScaler::transform(const Dataset& data) const {
  Dataset out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(transform(data.row(i)), data.label(i));
  }
  return out;
}

void ZScoreScaler::fit(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) throw std::invalid_argument("ZScoreScaler: empty fit set");
  const std::size_t dims = rows[0].size();
  const double n = static_cast<double>(rows.size());
  mean_.assign(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < dims; ++j) mean_[j] += row[j];
  }
  for (double& m : mean_) m /= n;
  std::vector<double> var(dims, 0.0);
  for (const auto& row : rows) {
    for (std::size_t j = 0; j < dims; ++j) {
      const double d = row[j] - mean_[j];
      var[j] += d * d;
    }
  }
  inv_std_.assign(dims, 1.0);
  for (std::size_t j = 0; j < dims; ++j) {
    const double sd = std::sqrt(var[j] / n);
    if (sd > 0.0) inv_std_[j] = 1.0 / sd;
  }
}

std::vector<double> ZScoreScaler::transform(std::span<const double> row) const {
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("ZScoreScaler: dimensionality mismatch");
  }
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

Dataset ZScoreScaler::transform(const Dataset& data) const {
  Dataset out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    out.push_back(transform(data.row(i)), data.label(i));
  }
  return out;
}

}  // namespace patchdb::ml
