#include "ml/data.h"

#include "util/rng.h"

namespace patchdb::ml {

Dataset::Dataset(std::vector<std::vector<double>> rows, std::vector<int> labels)
    : rows_(std::move(rows)), labels_(std::move(labels)) {
  if (rows_.size() != labels_.size()) {
    throw std::invalid_argument("Dataset: rows/labels size mismatch");
  }
  for (const auto& r : rows_) {
    if (r.size() != rows_[0].size()) {
      throw std::invalid_argument("Dataset: ragged rows");
    }
  }
}

void Dataset::push_back(std::vector<double> row, int label) {
  if (!rows_.empty() && row.size() != rows_[0].size()) {
    throw std::invalid_argument("Dataset: row dimensionality mismatch");
  }
  rows_.push_back(std::move(row));
  labels_.push_back(label);
}

void Dataset::append(const Dataset& other) {
  for (std::size_t i = 0; i < other.size(); ++i) {
    push_back(other.rows_[i], other.labels_[i]);
  }
}

std::size_t Dataset::positives() const noexcept {
  std::size_t n = 0;
  for (int y : labels_) n += (y != 0);
  return n;
}

Dataset Dataset::select(std::span<const std::size_t> indices) const {
  Dataset out;
  for (std::size_t i : indices) out.push_back(rows_[i], labels_[i]);
  return out;
}

TrainTestSplit split(const Dataset& data, double train_fraction, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t n_train =
      static_cast<std::size_t>(train_fraction * static_cast<double>(order.size()));
  TrainTestSplit out;
  out.train = data.select(std::span(order).subspan(0, n_train));
  out.test = data.select(std::span(order).subspan(n_train));
  return out;
}

TrainTestSplit stratified_split(const Dataset& data, double train_fraction,
                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::size_t> pos;
  std::vector<std::size_t> neg;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) != 0 ? pos : neg).push_back(i);
  }
  rng.shuffle(pos);
  rng.shuffle(neg);

  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  auto take = [&](const std::vector<std::size_t>& group) {
    const std::size_t n_train =
        static_cast<std::size_t>(train_fraction * static_cast<double>(group.size()));
    train_idx.insert(train_idx.end(), group.begin(), group.begin() + static_cast<std::ptrdiff_t>(n_train));
    test_idx.insert(test_idx.end(), group.begin() + static_cast<std::ptrdiff_t>(n_train), group.end());
  };
  take(pos);
  take(neg);
  rng.shuffle(train_idx);
  rng.shuffle(test_idx);

  TrainTestSplit out;
  out.train = data.select(train_idx);
  out.test = data.select(test_idx);
  return out;
}

}  // namespace patchdb::ml
