// Binary-classification metrics. The paper reports precision and recall
// (Tables IV and VI); F1 and accuracy are provided for completeness.
#pragma once

#include <cstddef>
#include <span>

namespace patchdb::ml {

struct Confusion {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  double precision() const noexcept;
  double recall() const noexcept;
  double f1() const noexcept;
  double accuracy() const noexcept;
};

/// Tally predictions against ground truth (any nonzero label = positive).
Confusion confusion(std::span<const int> truth, std::span<const int> predicted);

}  // namespace patchdb::ml
