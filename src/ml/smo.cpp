#include "ml/smo.h"

#include <cmath>

#include "util/rng.h"

namespace patchdb::ml {

namespace {
double dot(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) total += a[j] * b[j];
  return total;
}
}  // namespace

void SmoSVM::fit(const Dataset& data, std::uint64_t seed) {
  weights_.assign(data.dims(), 0.0);
  bias_ = 0.0;
  const std::size_t n = data.size();
  if (n == 0) return;
  util::Rng rng(seed);

  std::vector<double> alpha(n, 0.0);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = data.label(i) != 0 ? 1.0 : -1.0;

  // Cache the diagonal of the kernel matrix; off-diagonal entries are
  // computed on demand (linear kernel keeps this cheap).
  auto kernel = [&](std::size_t i, std::size_t j) {
    return dot(data.row(i), data.row(j));
  };
  auto f_of = [&](std::size_t i) {
    // f(x_i) with the current weight vector (maintained incrementally).
    return dot(weights_, data.row(i)) + bias_;
  };

  std::size_t passes = 0;
  std::size_t iterations = 0;
  while (passes < options_.max_passes && iterations < options_.max_iterations) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n && iterations < options_.max_iterations; ++i) {
      ++iterations;
      const double e_i = f_of(i) - y[i];
      const bool violates = (y[i] * e_i < -options_.tolerance && alpha[i] < options_.c) ||
                            (y[i] * e_i > options_.tolerance && alpha[i] > 0.0);
      if (!violates) continue;

      std::size_t j = rng.index(n - 1);
      if (j >= i) ++j;  // j != i
      const double e_j = f_of(j) - y[j];

      const double alpha_i_old = alpha[i];
      const double alpha_j_old = alpha[j];
      double lo;
      double hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, alpha[j] - alpha[i]);
        hi = std::min(options_.c, options_.c + alpha[j] - alpha[i]);
      } else {
        lo = std::max(0.0, alpha[i] + alpha[j] - options_.c);
        hi = std::min(options_.c, alpha[i] + alpha[j]);
      }
      if (lo >= hi) continue;

      const double eta = 2.0 * kernel(i, j) - kernel(i, i) - kernel(j, j);
      if (eta >= 0.0) continue;

      double aj = alpha[j] - y[j] * (e_i - e_j) / eta;
      aj = std::min(hi, std::max(lo, aj));
      if (std::fabs(aj - alpha_j_old) < 1e-5) continue;
      const double ai = alpha[i] + y[i] * y[j] * (alpha_j_old - aj);

      // Incremental weight update keeps f_of() O(dims).
      const double di = y[i] * (ai - alpha_i_old);
      const double dj = y[j] * (aj - alpha_j_old);
      const auto xi = data.row(i);
      const auto xj = data.row(j);
      for (std::size_t d = 0; d < weights_.size(); ++d) {
        weights_[d] += di * xi[d] + dj * xj[d];
      }

      const double b1 = bias_ - e_i - di * kernel(i, i) - dj * kernel(i, j);
      const double b2 = bias_ - e_j - di * kernel(i, j) - dj * kernel(j, j);
      alpha[i] = ai;
      alpha[j] = aj;
      if (ai > 0.0 && ai < options_.c) {
        bias_ = b1;
      } else if (aj > 0.0 && aj < options_.c) {
        bias_ = b2;
      } else {
        bias_ = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = (changed == 0) ? passes + 1 : 0;
  }
}

double SmoSVM::predict_score(std::span<const double> x) const {
  if (weights_.empty()) return 0.5;
  const double margin = dot(weights_, x) + bias_;
  return 1.0 / (1.0 + std::exp(-2.0 * margin));
}

}  // namespace patchdb::ml
