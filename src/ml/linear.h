// Linear models for the uncertainty panel: logistic regression (SGD),
// linear SVM trained with Pegasos, a plain SGD hinge classifier, and the
// voted perceptron. All expect roughly scaled inputs (the pipeline feeds
// them max-abs normalized features).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace patchdb::ml {

struct LinearOptions {
  std::size_t epochs = 30;
  double learning_rate = 0.1;
  double l2 = 1e-4;
};

class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LinearOptions options = {}) : options_(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "LogisticRegression"; }

  std::span<const double> weights() const noexcept { return weights_; }
  double bias() const noexcept { return bias_; }

 private:
  LinearOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Linear SVM via the Pegasos primal sub-gradient solver.
class LinearSVM : public Classifier {
 public:
  explicit LinearSVM(LinearOptions options = {.epochs = 30, .learning_rate = 0.0, .l2 = 1e-3})
      : options_(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "LinearSVM"; }

  double margin(std::span<const double> x) const;

 private:
  LinearOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Plain SGD classifier with hinge loss and a fixed step schedule —
/// Weka's "SGD" panel member (distinct hyper-parameters from LinearSVM
/// give the ensemble a genuinely different decision boundary).
class SGDClassifier : public Classifier {
 public:
  explicit SGDClassifier(LinearOptions options = {.epochs = 20, .learning_rate = 0.05, .l2 = 0.0})
      : options_(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "SGD"; }

 private:
  LinearOptions options_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

/// Freund & Schapire's voted perceptron: keeps every intermediate
/// weight vector with its survival count and predicts by weighted vote.
class VotedPerceptron : public Classifier {
 public:
  explicit VotedPerceptron(std::size_t epochs = 10) : epochs_(epochs) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "VotedPerceptron"; }

 private:
  struct Snapshot {
    std::vector<double> weights;
    double bias = 0.0;
    double votes = 0.0;
  };

  std::size_t epochs_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace patchdb::ml
