// Bayesian panel members: Gaussian naive Bayes and a discretized-feature
// Bayes classifier. The latter stands in for Weka's BayesNet — with
// supervised equal-frequency discretization and per-feature conditional
// tables it captures the same "CPT over discretized evidence" behaviour
// (DESIGN.md records the substitution).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace patchdb::ml {

class GaussianNB : public Classifier {
 public:
  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "NaiveBayes"; }

 private:
  struct ClassStats {
    double prior = 0.5;
    std::vector<double> mean;
    std::vector<double> var;  // with variance smoothing applied
  };
  ClassStats pos_;
  ClassStats neg_;
  bool fitted_ = false;
};

class DiscretizedBayes : public Classifier {
 public:
  explicit DiscretizedBayes(std::size_t bins = 8) : bins_(bins) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "BayesNet"; }

 private:
  std::size_t bin_of(std::size_t feature, double value) const;

  std::size_t bins_;
  // cutpoints_[f] holds bins_-1 ascending thresholds for feature f.
  std::vector<std::vector<double>> cutpoints_;
  // log P(bin | class) per feature: [f][bin], plus log priors.
  std::vector<std::vector<double>> log_pos_;
  std::vector<std::vector<double>> log_neg_;
  double log_prior_pos_ = 0.0;
  double log_prior_neg_ = 0.0;
  bool fitted_ = false;
};

}  // namespace patchdb::ml
