// k-nearest-neighbors classifier. Not a panel member — it exists so the
// nearest-link tests can contrast the paper's claim (Section III-B.3)
// that nearest link differs from KNN: KNN may select the same candidate
// for many queries even at K=1, nearest link never reuses a candidate.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace patchdb::ml {

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 5) : k_(k) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "KNN"; }

  /// Indices of the k nearest stored rows to `x` (ascending distance).
  std::vector<std::size_t> neighbors(std::span<const double> x, std::size_t k) const;

 private:
  std::size_t k_;
  Dataset train_;
};

}  // namespace patchdb::ml
