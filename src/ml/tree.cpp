#include "ml/tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace patchdb::ml {

namespace {

/// Gini impurity of a (pos, total) split side.
double gini(double pos, double total) {
  if (total <= 0.0) return 0.0;
  const double p = pos / total;
  return 1.0 - p * p - (1.0 - p) * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const Dataset& data, std::uint64_t seed) {
  std::vector<std::size_t> all(data.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  fit_indices(data, all, seed);
}

void DecisionTree::fit_indices(const Dataset& data,
                               std::span<const std::size_t> indices,
                               std::uint64_t seed) {
  nodes_.clear();
  if (indices.empty()) {
    nodes_.push_back(Node{});  // degenerate: single 0.5 leaf
    return;
  }
  std::vector<std::size_t> work(indices.begin(), indices.end());
  util::Rng rng(seed);
  build(data, work, 0, work.size(), 0, rng);
}

std::int32_t DecisionTree::build(const Dataset& data,
                                 std::vector<std::size_t>& indices,
                                 std::size_t begin, std::size_t end,
                                 std::size_t depth, util::Rng& rng) {
  const std::size_t count = end - begin;
  double pos = 0.0;
  for (std::size_t i = begin; i < end; ++i) pos += data.label(indices[i]) != 0;

  const std::int32_t node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_id)].score = pos / static_cast<double>(count);

  const bool pure = (pos == 0.0) || (pos == static_cast<double>(count));
  if (pure || depth >= options_.max_depth || count < options_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (forest mode).
  const std::size_t dims = data.dims();
  std::vector<std::size_t> features;
  if (options_.features_per_split == 0 || options_.features_per_split >= dims) {
    features.resize(dims);
    for (std::size_t j = 0; j < dims; ++j) features[j] = j;
  } else {
    features = rng.sample_indices(dims, options_.features_per_split);
  }

  // Exhaustive threshold search per candidate feature: sort the slice by
  // the feature and scan boundary points.
  double best_gain = 1e-12;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  const double parent_impurity = gini(pos, static_cast<double>(count));

  std::vector<std::pair<double, int>> column(count);
  for (std::size_t feature : features) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t row = indices[begin + i];
      column[i] = {data.row(row)[feature], data.label(row) != 0 ? 1 : 0};
    }
    std::sort(column.begin(), column.end());
    if (column.front().first == column.back().first) continue;  // constant

    double left_pos = 0.0;
    for (std::size_t i = 0; i + 1 < count; ++i) {
      left_pos += column[i].second;
      if (column[i].first == column[i + 1].first) continue;  // not a boundary
      const double left_n = static_cast<double>(i + 1);
      const double right_n = static_cast<double>(count - i - 1);
      if (left_n < static_cast<double>(options_.min_samples_leaf) ||
          right_n < static_cast<double>(options_.min_samples_leaf)) {
        continue;
      }
      const double right_pos = pos - left_pos;
      const double weighted =
          (left_n * gini(left_pos, left_n) + right_n * gini(right_pos, right_n)) /
          static_cast<double>(count);
      const double gain = parent_impurity - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = 0.5 * (column[i].first + column[i + 1].first);
      }
    }
  }

  if (best_gain <= 1e-12) return node_id;  // no useful split found

  // Partition indices[begin, end) in place around the threshold.
  const auto mid_iter = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t row) {
        return data.row(row)[best_feature] <= best_threshold;
      });
  const std::size_t mid =
      static_cast<std::size_t>(mid_iter - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate partition

  nodes_[static_cast<std::size_t>(node_id)].feature =
      static_cast<std::int32_t>(best_feature);
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const std::int32_t left = build(data, indices, begin, mid, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const std::int32_t right = build(data, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict_score(std::span<const double> x) const {
  if (nodes_.empty()) return 0.5;
  std::size_t node = 0;
  while (nodes_[node].feature != Node::kLeaf) {
    const Node& n = nodes_[node];
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right);
  }
  return nodes_[node].score;
}

std::size_t DecisionTree::depth() const noexcept {
  // Iterative depth computation over the implicit tree.
  if (nodes_.empty()) return 0;
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 1}};
  std::size_t best = 0;
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const Node& n = nodes_[node];
    if (n.feature != Node::kLeaf) {
      stack.push_back({static_cast<std::size_t>(n.left), d + 1});
      stack.push_back({static_cast<std::size_t>(n.right), d + 1});
    }
  }
  return best;
}

void REPTree::fit(const Dataset& data, std::uint64_t seed) {
  // 2/3 grow set, 1/3 prune set.
  util::Rng rng(seed);
  std::vector<std::size_t> order(data.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t n_grow = (order.size() * 2) / 3;
  const std::span grow(order.data(), n_grow);
  const std::span prune(order.data() + n_grow, order.size() - n_grow);

  fit_indices(data, grow, rng());
  if (prune.empty() || nodes_.empty()) return;

  // For every internal node, count pruning-set errors of the subtree vs
  // errors if it were collapsed to a leaf with its stored score.
  // Route each pruning row to record, per node on its path, whether the
  // final subtree prediction and the node's leaf-collapse prediction
  // are correct.
  const std::size_t n = nodes_.size();
  std::vector<double> subtree_errors(n, 0.0);
  std::vector<double> leaf_errors(n, 0.0);

  for (std::size_t row : prune) {
    const auto x = data.row(row);
    const int y = data.label(row) != 0 ? 1 : 0;
    // Final prediction of the full tree for this row.
    std::size_t node = 0;
    std::vector<std::size_t> path;
    while (true) {
      path.push_back(node);
      const Node& nd = nodes_[node];
      if (nd.feature == Node::kLeaf) break;
      node = static_cast<std::size_t>(
          x[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                  : nd.right);
    }
    const int final_pred = nodes_[path.back()].score >= 0.5 ? 1 : 0;
    for (std::size_t p : path) {
      subtree_errors[p] += (final_pred != y);
      const int collapsed = nodes_[p].score >= 0.5 ? 1 : 0;
      leaf_errors[p] += (collapsed != y);
    }
  }

  // Prune bottom-up: nodes were appended in preorder, so a reverse scan
  // visits children before parents.
  for (std::size_t i = n; i-- > 0;) {
    Node& nd = nodes_[i];
    if (nd.feature == Node::kLeaf) continue;
    if (leaf_errors[i] <= subtree_errors[i]) {
      nd.feature = Node::kLeaf;
      nd.left = -1;
      nd.right = -1;
    }
  }
}

}  // namespace patchdb::ml
