// Random Forest: bagged CART trees with per-split feature subsampling.
// The paper uses it for pseudo labeling ("the Random Forest classifier
// that performs the best", Section IV-B) and as the statistical-feature
// classifier of Table VI.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tree.h"

namespace patchdb::ml {

struct ForestOptions {
  std::size_t trees = 64;
  TreeOptions tree;           // tree.features_per_split 0 = auto sqrt(dims)
  double bootstrap_fraction = 1.0;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(ForestOptions options = {}) : options_(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "RandomForest"; }

  std::size_t tree_count() const noexcept { return trees_.size(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

}  // namespace patchdb::ml
