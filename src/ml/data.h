// Dataset container and splitting utilities for the classical ML side
// of PatchDB (Tables III and VI use an 80/20 split; the uncertainty
// baseline trains ten classifiers on the same training set).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace patchdb::ml {

/// Binary-labeled feature rows. Label 1 = security patch, 0 = not.
class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::vector<double>> rows, std::vector<int> labels);

  std::size_t size() const noexcept { return rows_.size(); }
  std::size_t dims() const noexcept { return rows_.empty() ? 0 : rows_[0].size(); }
  bool empty() const noexcept { return rows_.empty(); }

  std::span<const double> row(std::size_t i) const noexcept { return rows_[i]; }
  int label(std::size_t i) const noexcept { return labels_[i]; }

  const std::vector<std::vector<double>>& rows() const noexcept { return rows_; }
  const std::vector<int>& labels() const noexcept { return labels_; }

  void push_back(std::vector<double> row, int label);

  /// Append every row of `other` (same dimensionality).
  void append(const Dataset& other);

  std::size_t positives() const noexcept;
  std::size_t negatives() const noexcept { return size() - positives(); }

  /// Subset by row indices.
  Dataset select(std::span<const std::size_t> indices) const;

 private:
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
};

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Random split with `train_fraction` of rows in train.
TrainTestSplit split(const Dataset& data, double train_fraction, std::uint64_t seed);

/// Random split preserving the positive/negative ratio on both sides.
TrainTestSplit stratified_split(const Dataset& data, double train_fraction,
                                std::uint64_t seed);

}  // namespace patchdb::ml
