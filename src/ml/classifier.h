// Common interface for the ten Weka-style classifiers the paper's
// uncertainty-based labeling baseline requires (Section IV-B), plus the
// Random Forest used for pseudo labeling and Table VI.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/data.h"

namespace patchdb::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on a binary dataset. `seed` drives any internal randomness.
  virtual void fit(const Dataset& data, std::uint64_t seed) = 0;

  /// Probability-like score in [0, 1]; >= 0.5 means "security patch".
  virtual double predict_score(std::span<const double> x) const = 0;

  virtual std::string name() const = 0;

  int predict(std::span<const double> x) const {
    return predict_score(x) >= 0.5 ? 1 : 0;
  }

  std::vector<int> predict_all(const Dataset& data) const {
    std::vector<int> out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) out[i] = predict(data.row(i));
    return out;
  }
};

/// The ten-classifier panel used by the uncertainty-based baseline:
/// Random Forest, linear SVM (Pegasos), logistic regression, SGD (hinge),
/// SMO, Gaussian naive Bayes, discretized Bayes (Bayesian-network
/// stand-in), decision tree (J48 stand-in), REPTree, voted perceptron.
std::vector<std::unique_ptr<Classifier>> make_weka_panel();

}  // namespace patchdb::ml
