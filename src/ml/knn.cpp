#include "ml/knn.h"

#include <algorithm>
#include <cmath>

namespace patchdb::ml {

void KnnClassifier::fit(const Dataset& data, std::uint64_t /*seed*/) {
  train_ = data;
}

std::vector<std::size_t> KnnClassifier::neighbors(std::span<const double> x,
                                                  std::size_t k) const {
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    const auto row = train_.row(i);
    double d2 = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      const double d = row[j] - x[j];
      d2 += d * d;
    }
    dist.emplace_back(d2, i);
  }
  k = std::min(k, dist.size());
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  return out;
}

double KnnClassifier::predict_score(std::span<const double> x) const {
  if (train_.empty()) return 0.5;
  const auto near = neighbors(x, k_);
  double pos = 0.0;
  for (std::size_t i : near) pos += train_.label(i) != 0;
  return pos / static_cast<double>(near.size());
}

}  // namespace patchdb::ml
