#include "ml/linear.h"

#include <cmath>

#include "util/rng.h"

namespace patchdb::ml {

namespace {

double dot(std::span<const double> w, std::span<const double> x) {
  double total = 0.0;
  for (std::size_t j = 0; j < w.size(); ++j) total += w[j] * x[j];
  return total;
}

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

std::vector<std::size_t> shuffled_order(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  return order;
}

}  // namespace

void LogisticRegression::fit(const Dataset& data, std::uint64_t seed) {
  weights_.assign(data.dims(), 0.0);
  bias_ = 0.0;
  if (data.empty()) return;
  util::Rng rng(seed);

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    const double lr =
        options_.learning_rate / (1.0 + 0.1 * static_cast<double>(epoch));
    for (std::size_t i : shuffled_order(data.size(), rng)) {
      const auto x = data.row(i);
      const double y = data.label(i) != 0 ? 1.0 : 0.0;
      const double p = sigmoid(dot(weights_, x) + bias_);
      const double g = p - y;
      for (std::size_t j = 0; j < weights_.size(); ++j) {
        weights_[j] -= lr * (g * x[j] + options_.l2 * weights_[j]);
      }
      bias_ -= lr * g;
    }
  }
}

double LogisticRegression::predict_score(std::span<const double> x) const {
  if (weights_.empty()) return 0.5;
  return sigmoid(dot(weights_, x) + bias_);
}

void LinearSVM::fit(const Dataset& data, std::uint64_t seed) {
  weights_.assign(data.dims(), 0.0);
  bias_ = 0.0;
  if (data.empty()) return;
  util::Rng rng(seed);
  const double lambda = options_.l2;

  std::size_t t = 1;
  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (std::size_t i : shuffled_order(data.size(), rng)) {
      const auto x = data.row(i);
      const double y = data.label(i) != 0 ? 1.0 : -1.0;
      const double eta = 1.0 / (lambda * static_cast<double>(t));
      const double margin = y * (dot(weights_, x) + bias_);
      for (double& w : weights_) w *= (1.0 - eta * lambda);
      if (margin < 1.0) {
        for (std::size_t j = 0; j < weights_.size(); ++j) {
          weights_[j] += eta * y * x[j];
        }
        bias_ += eta * y;
      }
      ++t;
    }
  }
}

double LinearSVM::margin(std::span<const double> x) const {
  return dot(weights_, x) + bias_;
}

double LinearSVM::predict_score(std::span<const double> x) const {
  if (weights_.empty()) return 0.5;
  return sigmoid(2.0 * margin(x));  // squash the margin into [0, 1]
}

void SGDClassifier::fit(const Dataset& data, std::uint64_t seed) {
  weights_.assign(data.dims(), 0.0);
  bias_ = 0.0;
  if (data.empty()) return;
  util::Rng rng(seed);

  for (std::size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    for (std::size_t i : shuffled_order(data.size(), rng)) {
      const auto x = data.row(i);
      const double y = data.label(i) != 0 ? 1.0 : -1.0;
      const double margin = y * (dot(weights_, x) + bias_);
      if (margin < 1.0) {
        for (std::size_t j = 0; j < weights_.size(); ++j) {
          weights_[j] += options_.learning_rate * y * x[j];
        }
        bias_ += options_.learning_rate * y;
      }
    }
  }
}

double SGDClassifier::predict_score(std::span<const double> x) const {
  if (weights_.empty()) return 0.5;
  return sigmoid(2.0 * (dot(weights_, x) + bias_));
}

void VotedPerceptron::fit(const Dataset& data, std::uint64_t seed) {
  snapshots_.clear();
  if (data.empty()) return;
  util::Rng rng(seed);

  Snapshot current;
  current.weights.assign(data.dims(), 0.0);
  current.votes = 1.0;

  for (std::size_t epoch = 0; epoch < epochs_; ++epoch) {
    for (std::size_t i : shuffled_order(data.size(), rng)) {
      const auto x = data.row(i);
      const double y = data.label(i) != 0 ? 1.0 : -1.0;
      const double pred = dot(current.weights, x) + current.bias;
      if (y * pred <= 0.0) {
        snapshots_.push_back(current);
        for (std::size_t j = 0; j < current.weights.size(); ++j) {
          current.weights[j] += y * x[j];
        }
        current.bias += y;
        current.votes = 1.0;
      } else {
        current.votes += 1.0;
      }
    }
  }
  snapshots_.push_back(current);
}

double VotedPerceptron::predict_score(std::span<const double> x) const {
  if (snapshots_.empty()) return 0.5;
  double vote = 0.0;
  double total = 0.0;
  for (const Snapshot& s : snapshots_) {
    const double sign = (dot(s.weights, x) + s.bias) >= 0.0 ? 1.0 : -1.0;
    vote += s.votes * sign;
    total += s.votes;
  }
  // Map the signed vote fraction [-1, 1] onto [0, 1].
  return 0.5 * (vote / total + 1.0);
}

}  // namespace patchdb::ml
