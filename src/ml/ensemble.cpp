#include "ml/ensemble.h"

#include "ml/bayes.h"
#include "ml/forest.h"
#include "ml/linear.h"
#include "ml/smo.h"
#include "ml/tree.h"
#include "util/rng.h"

namespace patchdb::ml {

ConsensusEnsemble::ConsensusEnsemble(std::vector<std::unique_ptr<Classifier>> members)
    : members_(std::move(members)) {}

void ConsensusEnsemble::fit(const Dataset& data, std::uint64_t seed) {
  util::Rng rng(seed);
  for (auto& member : members_) member->fit(data, rng());
}

std::size_t ConsensusEnsemble::agreement(std::span<const double> x) const {
  std::size_t votes = 0;
  for (const auto& member : members_) votes += member->predict(x) != 0;
  return votes;
}

std::vector<std::unique_ptr<Classifier>> make_weka_panel() {
  std::vector<std::unique_ptr<Classifier>> panel;
  panel.push_back(std::make_unique<RandomForest>());
  panel.push_back(std::make_unique<LinearSVM>());
  panel.push_back(std::make_unique<LogisticRegression>());
  panel.push_back(std::make_unique<SGDClassifier>());
  panel.push_back(std::make_unique<SmoSVM>());
  panel.push_back(std::make_unique<GaussianNB>());
  panel.push_back(std::make_unique<DiscretizedBayes>());
  panel.push_back(std::make_unique<DecisionTree>());
  panel.push_back(std::make_unique<REPTree>());
  panel.push_back(std::make_unique<VotedPerceptron>());
  return panel;
}

}  // namespace patchdb::ml
