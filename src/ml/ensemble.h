// Consensus ensemble: the uncertainty-based labeling baseline regards an
// unlabeled commit as a candidate only when ALL panel classifiers
// predict it positive (Section IV-B). The ensemble also exposes the
// agreement count so callers can relax the threshold for ablations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace patchdb::ml {

class ConsensusEnsemble {
 public:
  explicit ConsensusEnsemble(std::vector<std::unique_ptr<Classifier>> members);

  /// Fit every member (seeds are derived per member).
  void fit(const Dataset& data, std::uint64_t seed);

  /// Number of members voting "security patch".
  std::size_t agreement(std::span<const double> x) const;

  /// All members agree.
  bool unanimous(std::span<const double> x) const {
    return agreement(x) == members_.size();
  }

  std::size_t size() const noexcept { return members_.size(); }
  const Classifier& member(std::size_t i) const { return *members_[i]; }

 private:
  std::vector<std::unique_ptr<Classifier>> members_;
};

}  // namespace patchdb::ml
