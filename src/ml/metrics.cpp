#include "ml/metrics.h"

#include <stdexcept>

namespace patchdb::ml {

double Confusion::precision() const noexcept {
  const std::size_t denom = tp + fp;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::recall() const noexcept {
  const std::size_t denom = tp + fn;
  return denom == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(denom);
}

double Confusion::f1() const noexcept {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double Confusion::accuracy() const noexcept {
  const std::size_t total = tp + fp + tn + fn;
  return total == 0 ? 0.0
                    : static_cast<double>(tp + tn) / static_cast<double>(total);
}

Confusion confusion(std::span<const int> truth, std::span<const int> predicted) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("confusion: size mismatch");
  }
  Confusion c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool t = truth[i] != 0;
    const bool p = predicted[i] != 0;
    if (t && p) ++c.tp;
    else if (!t && p) ++c.fp;
    else if (!t && !p) ++c.tn;
    else ++c.fn;
  }
  return c;
}

}  // namespace patchdb::ml
