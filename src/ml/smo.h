// Simplified SMO (Platt's sequential minimal optimization) with a linear
// kernel — the panel's "SMO" member. Distinct from the Pegasos SVM: SMO
// solves the dual with pairwise alpha updates, giving a different (and
// differently-regularized) boundary, which is what the consensus
// ensemble needs from it.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.h"

namespace patchdb::ml {

struct SmoOptions {
  double c = 1.0;          // box constraint
  double tolerance = 1e-3;
  std::size_t max_passes = 5;
  std::size_t max_iterations = 20000;
};

class SmoSVM : public Classifier {
 public:
  explicit SmoSVM(SmoOptions options = {}) : options_(options) {}

  void fit(const Dataset& data, std::uint64_t seed) override;
  double predict_score(std::span<const double> x) const override;
  std::string name() const override { return "SMO"; }

 private:
  SmoOptions options_;
  std::vector<double> weights_;  // linear kernel collapses to a weight vector
  double bias_ = 0.0;
};

}  // namespace patchdb::ml
