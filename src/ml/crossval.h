// k-fold cross validation over a binary Dataset — a standard evaluation
// companion for the single 80/20 splits the paper reports, used by the
// tests and available to downstream users for more stable numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/classifier.h"
#include "ml/metrics.h"

namespace patchdb::ml {

struct CrossValResult {
  std::vector<Confusion> folds;

  double mean_precision() const noexcept;
  double mean_recall() const noexcept;
  double mean_f1() const noexcept;
  double mean_accuracy() const noexcept;
};

/// Stratified k-fold: each fold preserves the class ratio. The factory
/// builds a fresh classifier per fold.
CrossValResult cross_validate(
    const Dataset& data, std::size_t k,
    const std::function<std::unique_ptr<Classifier>()>& factory,
    std::uint64_t seed);

}  // namespace patchdb::ml
