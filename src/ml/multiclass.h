// One-vs-rest multi-class wrapper over the binary classifiers — the
// engine behind automatic patch-TYPE classification (the paper's
// companion task [33] and its Section V-A.2 use case: with a large
// dataset, fix patterns can be learned per category instead of
// hand-summarized).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ml/classifier.h"

namespace patchdb::ml {

/// Multi-class dataset: rows + integer class labels in [0, classes).
struct MultiDataset {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  int classes = 0;

  std::size_t size() const noexcept { return rows.size(); }
};

class OneVsRest {
 public:
  /// `factory` builds one binary classifier per class.
  explicit OneVsRest(std::function<std::unique_ptr<Classifier>()> factory)
      : factory_(std::move(factory)) {}

  void fit(const MultiDataset& data, std::uint64_t seed);

  /// argmax over the per-class scores.
  int predict(std::span<const double> x) const;

  /// Per-class scores (length = classes).
  std::vector<double> predict_scores(std::span<const double> x) const;

  int classes() const noexcept { return static_cast<int>(members_.size()); }

 private:
  std::function<std::unique_ptr<Classifier>()> factory_;
  std::vector<std::unique_ptr<Classifier>> members_;
};

/// Multi-class accuracy and per-class recall.
struct MultiMetrics {
  double accuracy = 0.0;
  std::vector<double> per_class_recall;
  std::vector<std::size_t> support;  // true count per class
};

MultiMetrics multi_metrics(std::span<const int> truth, std::span<const int> predicted,
                           int classes);

}  // namespace patchdb::ml
