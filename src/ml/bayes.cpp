#include "ml/bayes.h"

#include <algorithm>
#include <cmath>

namespace patchdb::ml {

namespace {
constexpr double kVarSmoothing = 1e-9;

double log_gaussian(double x, double mean, double var) {
  const double d = x - mean;
  return -0.5 * (std::log(2.0 * 3.141592653589793 * var) + d * d / var);
}
}  // namespace

void GaussianNB::fit(const Dataset& data, std::uint64_t /*seed*/) {
  fitted_ = false;
  if (data.empty()) return;
  const std::size_t dims = data.dims();

  auto compute = [&](int wanted, ClassStats& stats) {
    stats.mean.assign(dims, 0.0);
    stats.var.assign(dims, 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if ((data.label(i) != 0 ? 1 : 0) != wanted) continue;
      ++count;
      const auto x = data.row(i);
      for (std::size_t j = 0; j < dims; ++j) stats.mean[j] += x[j];
    }
    if (count == 0) {
      stats.prior = 1e-9;
      stats.var.assign(dims, 1.0);
      return;
    }
    for (double& m : stats.mean) m /= static_cast<double>(count);
    for (std::size_t i = 0; i < data.size(); ++i) {
      if ((data.label(i) != 0 ? 1 : 0) != wanted) continue;
      const auto x = data.row(i);
      for (std::size_t j = 0; j < dims; ++j) {
        const double d = x[j] - stats.mean[j];
        stats.var[j] += d * d;
      }
    }
    double max_var = 0.0;
    for (std::size_t j = 0; j < dims; ++j) {
      stats.var[j] /= static_cast<double>(count);
      max_var = std::max(max_var, stats.var[j]);
    }
    const double smoothing = std::max(kVarSmoothing, kVarSmoothing * max_var);
    for (double& v : stats.var) v = std::max(v + smoothing, smoothing);
    stats.prior = static_cast<double>(count) / static_cast<double>(data.size());
  };
  compute(1, pos_);
  compute(0, neg_);
  fitted_ = true;
}

double GaussianNB::predict_score(std::span<const double> x) const {
  if (!fitted_) return 0.5;
  double log_pos = std::log(std::max(pos_.prior, 1e-12));
  double log_neg = std::log(std::max(neg_.prior, 1e-12));
  for (std::size_t j = 0; j < x.size(); ++j) {
    log_pos += log_gaussian(x[j], pos_.mean[j], pos_.var[j]);
    log_neg += log_gaussian(x[j], neg_.mean[j], neg_.var[j]);
  }
  // Normalize in log space to avoid overflow.
  const double m = std::max(log_pos, log_neg);
  const double p = std::exp(log_pos - m);
  const double q = std::exp(log_neg - m);
  return p / (p + q);
}

void DiscretizedBayes::fit(const Dataset& data, std::uint64_t /*seed*/) {
  fitted_ = false;
  if (data.empty()) return;
  const std::size_t dims = data.dims();
  cutpoints_.assign(dims, {});
  log_pos_.assign(dims, std::vector<double>(bins_, 0.0));
  log_neg_.assign(dims, std::vector<double>(bins_, 0.0));

  const std::size_t n_pos = data.positives();
  const std::size_t n_neg = data.size() - n_pos;
  log_prior_pos_ = std::log(
      (static_cast<double>(n_pos) + 1.0) / (static_cast<double>(data.size()) + 2.0));
  log_prior_neg_ = std::log(
      (static_cast<double>(n_neg) + 1.0) / (static_cast<double>(data.size()) + 2.0));

  std::vector<double> column(data.size());
  for (std::size_t f = 0; f < dims; ++f) {
    for (std::size_t i = 0; i < data.size(); ++i) column[i] = data.row(i)[f];
    std::sort(column.begin(), column.end());
    // Equal-frequency cutpoints; duplicates collapse bins naturally.
    cutpoints_[f].reserve(bins_ - 1);
    for (std::size_t b = 1; b < bins_; ++b) {
      const std::size_t idx = (b * data.size()) / bins_;
      cutpoints_[f].push_back(column[std::min(idx, data.size() - 1)]);
    }

    std::vector<double> pos_counts(bins_, 1.0);  // Laplace smoothing
    std::vector<double> neg_counts(bins_, 1.0);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t b = bin_of(f, data.row(i)[f]);
      (data.label(i) != 0 ? pos_counts : neg_counts)[b] += 1.0;
    }
    const double pos_total = static_cast<double>(n_pos) + static_cast<double>(bins_);
    const double neg_total = static_cast<double>(n_neg) + static_cast<double>(bins_);
    for (std::size_t b = 0; b < bins_; ++b) {
      log_pos_[f][b] = std::log(pos_counts[b] / pos_total);
      log_neg_[f][b] = std::log(neg_counts[b] / neg_total);
    }
  }
  fitted_ = true;
}

std::size_t DiscretizedBayes::bin_of(std::size_t feature, double value) const {
  const std::vector<double>& cuts = cutpoints_[feature];
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), value);
  return static_cast<std::size_t>(it - cuts.begin());
}

double DiscretizedBayes::predict_score(std::span<const double> x) const {
  if (!fitted_) return 0.5;
  double log_pos = log_prior_pos_;
  double log_neg = log_prior_neg_;
  for (std::size_t f = 0; f < x.size(); ++f) {
    const std::size_t b = bin_of(f, x[f]);
    log_pos += log_pos_[f][b];
    log_neg += log_neg_[f][b];
  }
  const double m = std::max(log_pos, log_neg);
  const double p = std::exp(log_pos - m);
  const double q = std::exp(log_neg - m);
  return p / (p + q);
}

}  // namespace patchdb::ml
