#include "ml/crossval.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace patchdb::ml {

namespace {
double mean_of(const std::vector<Confusion>& folds, double (Confusion::*metric)() const) {
  if (folds.empty()) return 0.0;
  double total = 0.0;
  for (const Confusion& c : folds) total += (c.*metric)();
  return total / static_cast<double>(folds.size());
}
}  // namespace

double CrossValResult::mean_precision() const noexcept {
  return mean_of(folds, &Confusion::precision);
}
double CrossValResult::mean_recall() const noexcept {
  return mean_of(folds, &Confusion::recall);
}
double CrossValResult::mean_f1() const noexcept {
  return mean_of(folds, &Confusion::f1);
}
double CrossValResult::mean_accuracy() const noexcept {
  return mean_of(folds, &Confusion::accuracy);
}

CrossValResult cross_validate(
    const Dataset& data, std::size_t k,
    const std::function<std::unique_ptr<Classifier>()>& factory,
    std::uint64_t seed) {
  if (k < 2) throw std::invalid_argument("cross_validate: k must be >= 2");
  if (data.size() < k) throw std::invalid_argument("cross_validate: k > dataset");

  // Stratified fold assignment: spread each class round-robin over folds
  // after a class-wise shuffle.
  util::Rng rng(seed);
  std::vector<std::size_t> pos;
  std::vector<std::size_t> neg;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) != 0 ? pos : neg).push_back(i);
  }
  rng.shuffle(pos);
  rng.shuffle(neg);
  std::vector<std::size_t> fold_of(data.size(), 0);
  for (std::size_t i = 0; i < pos.size(); ++i) fold_of[pos[i]] = i % k;
  for (std::size_t i = 0; i < neg.size(); ++i) fold_of[neg[i]] = i % k;

  CrossValResult result;
  for (std::size_t fold = 0; fold < k; ++fold) {
    PATCHDB_TRACE_SPAN("crossval.fold");
    PATCHDB_COUNTER_ADD("crossval.folds", 1);
    std::vector<std::size_t> train_idx;
    std::vector<std::size_t> test_idx;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (fold_of[i] == fold ? test_idx : train_idx).push_back(i);
    }
    const Dataset train = data.select(train_idx);
    const Dataset test = data.select(test_idx);
    const std::unique_ptr<Classifier> clf = factory();
    clf->fit(train, rng());
    result.folds.push_back(confusion(test.labels(), clf->predict_all(test)));
  }
  return result;
}

}  // namespace patchdb::ml
