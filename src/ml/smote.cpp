#include "ml/smote.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace patchdb::ml {

Dataset smote(const Dataset& data, const SmoteOptions& options, std::uint64_t seed) {
  Dataset out = data;
  const std::size_t pos = data.positives();
  const std::size_t neg = data.size() - pos;
  if (pos == 0 || neg == 0 || data.size() < 2) return out;
  const int minority = pos <= neg ? 1 : 0;

  std::vector<std::size_t> minority_rows;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if ((data.label(i) != 0 ? 1 : 0) == minority) minority_rows.push_back(i);
  }
  if (minority_rows.size() < 2) return out;

  util::Rng rng(seed);
  const std::size_t per_row = static_cast<std::size_t>(std::ceil(options.multiplier));
  const double keep_prob = options.multiplier / static_cast<double>(per_row);

  // Precompute k nearest minority neighbors of each minority row.
  // k == 0 (no neighbors to interpolate toward) and a non-positive
  // multiplier (nothing to synthesize; keep_prob below would be NaN)
  // both degenerate to the input unchanged instead of crashing on
  // rng.index(0).
  const std::size_t k = std::min(options.k, minority_rows.size() - 1);
  if (k == 0 || options.multiplier <= 0.0) return out;
  for (std::size_t idx = 0; idx < minority_rows.size(); ++idx) {
    const std::size_t i = minority_rows[idx];
    const auto xi = data.row(i);
    std::vector<std::pair<double, std::size_t>> dist;
    dist.reserve(minority_rows.size() - 1);
    for (std::size_t other : minority_rows) {
      if (other == i) continue;
      const auto xo = data.row(other);
      double d2 = 0.0;
      for (std::size_t j = 0; j < xi.size(); ++j) {
        const double d = xi[j] - xo[j];
        d2 += d * d;
      }
      dist.emplace_back(d2, other);
    }
    std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                      dist.end());

    for (std::size_t rep = 0; rep < per_row; ++rep) {
      if (!rng.chance(keep_prob)) continue;
      const std::size_t neighbor = dist[rng.index(k)].second;
      const auto xn = data.row(neighbor);
      const double gap = rng.uniform();
      std::vector<double> synthetic(xi.size());
      for (std::size_t j = 0; j < xi.size(); ++j) {
        synthetic[j] = xi[j] + gap * (xn[j] - xi[j]);
      }
      out.push_back(std::move(synthetic), minority);
    }
  }
  return out;
}

}  // namespace patchdb::ml
