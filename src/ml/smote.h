// SMOTE (Chawla et al. 2002): feature-space minority oversampling. The
// paper tries it as the traditional alternative to source-level patch
// synthesis ("we also try some traditional oversampling techniques like
// SMOTE and do not observe obvious performance increase", Section IV-C);
// the Table IV ablation bench runs both.
#pragma once

#include <cstdint>

#include "ml/data.h"

namespace patchdb::ml {

struct SmoteOptions {
  std::size_t k = 5;          // neighbors considered per minority sample
  double multiplier = 1.0;    // synthetic minority rows per existing one
};

/// Return `data` plus synthetic minority-class rows interpolated between
/// each minority row and a random one of its k nearest minority
/// neighbors. The minority class is whichever label is rarer.
Dataset smote(const Dataset& data, const SmoteOptions& options, std::uint64_t seed);

}  // namespace patchdb::ml
