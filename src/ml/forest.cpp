#include "ml/forest.h"

#include <cmath>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace patchdb::ml {

void RandomForest::fit(const Dataset& data, std::uint64_t seed) {
  trees_.clear();
  if (data.empty()) return;

  TreeOptions tree_options = options_.tree;
  if (tree_options.features_per_split == 0) {
    tree_options.features_per_split = static_cast<std::size_t>(
        std::max(1.0, std::floor(std::sqrt(static_cast<double>(data.dims())))));
  }
  trees_.assign(options_.trees, DecisionTree(tree_options));

  // Pre-draw per-tree seeds so parallel training is deterministic.
  util::Rng rng(seed);
  std::vector<std::uint64_t> seeds(options_.trees);
  for (auto& s : seeds) s = rng();

  const std::size_t n = data.size();
  const auto sample_size = static_cast<std::size_t>(
      options_.bootstrap_fraction * static_cast<double>(n));

  util::default_pool().parallel_for(
      options_.trees, [&](std::size_t begin, std::size_t end) {
        for (std::size_t t = begin; t < end; ++t) {
          util::Rng tree_rng(seeds[t]);
          std::vector<std::size_t> bootstrap(sample_size);
          for (auto& idx : bootstrap) idx = tree_rng.index(n);
          trees_[t].fit_indices(data, bootstrap, tree_rng());
        }
      });
}

double RandomForest::predict_score(std::span<const double> x) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  for (const DecisionTree& tree : trees_) total += tree.predict_score(x);
  return total / static_cast<double>(trees_.size());
}

}  // namespace patchdb::ml
