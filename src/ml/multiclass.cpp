#include "ml/multiclass.h"

#include <stdexcept>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace patchdb::ml {

void OneVsRest::fit(const MultiDataset& data, std::uint64_t seed) {
  if (data.classes <= 0) throw std::invalid_argument("OneVsRest: classes <= 0");
  if (data.rows.size() != data.labels.size()) {
    throw std::invalid_argument("OneVsRest: rows/labels mismatch");
  }
  for (int label : data.labels) {
    if (label < 0 || label >= data.classes) {
      throw std::invalid_argument("OneVsRest: label out of range");
    }
  }

  members_.clear();
  members_.resize(static_cast<std::size_t>(data.classes));
  util::Rng rng(seed);
  std::vector<std::uint64_t> seeds(members_.size());
  for (auto& s : seeds) s = rng();

  util::default_pool().parallel_for(
      members_.size(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t c = begin; c < end; ++c) {
          Dataset binary;
          for (std::size_t i = 0; i < data.rows.size(); ++i) {
            binary.push_back(data.rows[i],
                             data.labels[i] == static_cast<int>(c) ? 1 : 0);
          }
          members_[c] = factory_();
          members_[c]->fit(binary, seeds[c]);
        }
      });
}

std::vector<double> OneVsRest::predict_scores(std::span<const double> x) const {
  std::vector<double> scores(members_.size(), 0.0);
  for (std::size_t c = 0; c < members_.size(); ++c) {
    scores[c] = members_[c]->predict_score(x);
  }
  return scores;
}

int OneVsRest::predict(std::span<const double> x) const {
  if (members_.empty()) return 0;
  const std::vector<double> scores = predict_scores(x);
  int best = 0;
  for (std::size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(c);
    }
  }
  return best;
}

MultiMetrics multi_metrics(std::span<const int> truth, std::span<const int> predicted,
                           int classes) {
  if (truth.size() != predicted.size()) {
    throw std::invalid_argument("multi_metrics: size mismatch");
  }
  MultiMetrics m;
  m.per_class_recall.assign(static_cast<std::size_t>(classes), 0.0);
  m.support.assign(static_cast<std::size_t>(classes), 0);
  std::vector<std::size_t> hits(static_cast<std::size_t>(classes), 0);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto t = static_cast<std::size_t>(truth[i]);
    ++m.support[t];
    if (truth[i] == predicted[i]) {
      ++correct;
      ++hits[t];
    }
  }
  if (!truth.empty()) {
    m.accuracy = static_cast<double>(correct) / static_cast<double>(truth.size());
  }
  for (std::size_t c = 0; c < m.support.size(); ++c) {
    if (m.support[c] > 0) {
      m.per_class_recall[c] =
          static_cast<double>(hits[c]) / static_cast<double>(m.support[c]);
    }
  }
  return m;
}

}  // namespace patchdb::ml
