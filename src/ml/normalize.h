// Feature scaling. MaxAbsScaler implements the paper's weighting
// a'_ij = a_ij / max|a_j| (Section III-B.2): each dimension lands in
// [-1, 1] and the *sign* of net-value features survives, which z-scoring
// would not guarantee.
#pragma once

#include <span>
#include <vector>

#include "ml/data.h"

namespace patchdb::ml {

class MaxAbsScaler {
 public:
  /// Learn per-dimension max|a_j| from rows. Dimensions that are
  /// identically zero get weight 1 (no-op) to avoid division by zero.
  void fit(const std::vector<std::vector<double>>& rows);
  void fit(const Dataset& data) { fit(data.rows()); }

  std::vector<double> transform(std::span<const double> row) const;
  void transform_in_place(std::vector<std::vector<double>>& rows) const;
  Dataset transform(const Dataset& data) const;

  std::span<const double> weights() const noexcept { return inv_max_; }
  bool fitted() const noexcept { return !inv_max_.empty(); }

 private:
  std::vector<double> inv_max_;  // 1 / max|a_j|
};

class ZScoreScaler {
 public:
  void fit(const std::vector<std::vector<double>>& rows);
  std::vector<double> transform(std::span<const double> row) const;
  Dataset transform(const Dataset& data) const;

 private:
  std::vector<double> mean_;
  std::vector<double> inv_std_;
};

}  // namespace patchdb::ml
