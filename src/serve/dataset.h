// ServedDataset: the immutable in-memory snapshot patchdbd serves.
// Loaded once at startup from a sealed v2 export (store::load_patchdb —
// which verifies the manifest trailer and every per-patch content
// checksum, so a truncated or tampered dataset is refused before the
// socket ever opens) and then shared read-only across every worker
// thread: queries take `const ServedDataset&` and the server never
// mutates it, so no lock guards the hot path.
//
// At load the snapshot precomputes what queries need:
//   - an id -> patch index over every component,
//   - the Table I feature matrix of the natural patches, the max-abs
//     weights learned over it, and the weight-scaled float rows the
//     nearest-link kernels operate on (core::scale_features), so
//     k-nearest answers are bit-identical to the offline dense and
//     streaming link paths,
//   - the Table V composition (ground-truth and categorizer counts).
//
// Synthetic patches are looked up and featurized like natural ones but
// are not part of the nearest-query corpus — mirroring features.csv,
// which only carries rows for natural patches.
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/repo.h"
#include "feature/features.h"
#include "serve/protocol.h"
#include "synth/synthesize.h"

namespace patchdb::serve {

/// One patch as served: metadata + the parsed diff.
struct ServedPatch {
  std::string id;
  WireComponent component = WireComponent::kNvd;
  corpus::GroundTruth truth;
  std::string repo;    // natural patches
  std::string origin;  // synthetic patches
  int variant = 0;
  bool modified_after = false;
  diff::Patch patch;
};

class ServedDataset {
 public:
  /// Load a sealed v2 export. Propagates store::load_patchdb's
  /// std::runtime_error on any integrity failure (missing manifest,
  /// checksum mismatch, malformed rows) — the daemon turns that into a
  /// refusal to start.
  static ServedDataset load(const std::filesystem::path& root);

  /// Build a snapshot from in-memory components (tests and the
  /// in-process bench path; same precomputation as load()).
  static ServedDataset from_components(
      std::vector<corpus::CommitRecord> nvd,
      std::vector<corpus::CommitRecord> wild,
      std::vector<corpus::CommitRecord> nonsecurity,
      std::vector<synth::SyntheticPatch> synthetic);

  ServedDataset() = default;
  // Move-only: by_id_ holds string_views into patches_' id strings
  // (stable across vector moves, not across element copies).
  ServedDataset(const ServedDataset&) = delete;
  ServedDataset& operator=(const ServedDataset&) = delete;
  ServedDataset(ServedDataset&&) = default;
  ServedDataset& operator=(ServedDataset&&) = default;

  std::size_t size() const noexcept { return patches_.size(); }
  /// Natural patches — the nearest-query corpus size.
  std::size_t natural_size() const noexcept { return natural_rows_; }

  /// Index of `id`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(std::string_view id) const noexcept;
  const ServedPatch& patch(std::size_t index) const { return patches_[index]; }

  // ----- query entry points (each maps to one protocol op) -----
  PingResponse ping() const;
  /// kNotFound error when the id is unknown; otherwise metadata plus
  /// the re-rendered unified diff (byte-identical to the exported
  /// .patch file — exports round-trip through diff::render_patch).
  Response lookup(const LookupRequest& request) const;
  Response features(const FeaturesRequest& request) const;
  Response nearest(const NearestRequest& request) const;
  Response stats(const StatsRequest& request) const;
  Response analyze(const AnalyzeRequest& request) const;
  Response list_ids(const ListIdsRequest& request) const;

  /// Dispatch any decoded request to the handler above.
  Response handle(const Request& request) const;

  /// The learned per-dimension max-abs weights (exposed so tests can
  /// reproduce served distances through the offline kernels).
  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  void index_and_precompute();

  std::vector<ServedPatch> patches_;
  std::unordered_map<std::string_view, std::size_t> by_id_;

  /// Natural patches occupy patches_[0 .. natural_rows_); their scaled
  /// feature rows (natural_rows_ x dims) back the nearest queries.
  std::size_t natural_rows_ = 0;
  std::size_t dims_ = 0;
  feature::FeatureMatrix natural_features_;
  std::vector<double> weights_;
  std::vector<float> scaled_;

  StatsResponse stats_;
};

}  // namespace patchdb::serve
