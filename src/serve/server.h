// patchdbd's serving core: a TCP acceptor thread plus a worker pool
// (util::ThreadPool in bounded-queue mode), serving the length-prefixed
// protocol of serve/protocol.h over an immutable ServedDataset.
//
// Threading model — one connection, one worker, blocking I/O:
//   - the acceptor thread accept()s and hands each connection to the
//     pool via try_submit; when every worker is busy and the bounded
//     queue is at its cap the connection is answered with a
//     kShuttingDown-style busy error and closed instead of queuing
//     without bound (backpressure, not memory growth);
//   - a worker serves its connection's requests strictly in order until
//     the client closes, an I/O error, a malformed frame, a read
//     timeout, or a server drain;
//   - reads poll in short slices so a blocked worker notices stop()
//     quickly; a partial frame that stops making progress for longer
//     than ServerOptions::read_timeout closes the connection — one bad
//     client cannot wedge a worker.
//
// Shutdown sequence (stop(), also the SIGINT/SIGTERM path in the
// daemon): mark draining -> close the listen socket (unblocks accept;
// no new connections) -> workers finish the request they are executing,
// write its response, and close their connections at the next frame
// boundary -> wait_idle on the pool. In-flight requests always complete;
// idle keep-alive connections are dropped.
//
// Observability: per-request spans (serve.<op>), latency histograms
// (serve.request_ms, serve.<op>_ms), request/error/timeout counters and
// an active-connection gauge, all through the process-global obs sinks —
// run the server under an obs::ObsSession to capture them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "serve/dataset.h"
#include "util/thread_pool.h"

namespace patchdb::serve {

struct ServerOptions {
  /// Address to bind; loopback by default (a dataset daemon exposed to
  /// the world should sit behind something that terminates TLS anyway).
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; read the bound port from Server::port().
  std::uint16_t port = 0;
  /// Worker threads == the concurrent-connection capacity (blocking
  /// I/O, one connection per worker). 0 = max(hardware_concurrency, 64)
  /// so a default daemon meets the 64-concurrent-connection bar even on
  /// small machines; workers blocked on idle sockets cost only memory.
  std::size_t threads = 0;
  /// Connections queued past the busy workers before the acceptor
  /// starts shedding with a busy error.
  std::size_t max_pending = 64;
  /// listen(2) backlog.
  int backlog = 128;
  /// A connection (or a partially received frame) that makes no
  /// progress for this long is closed.
  std::chrono::milliseconds read_timeout{5000};
  /// Per-frame size cap; a larger advertised length is a protocol
  /// error (the oversized body is never read, let alone allocated).
  std::size_t max_frame_bytes = kMaxFrameBytes;
};

class Server {
 public:
  /// The dataset must outlive the server; it is shared read-only
  /// across workers.
  Server(const ServedDataset& dataset, ServerOptions options);
  ~Server();  // stop() if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn acceptor and workers. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// The bound port (valid after start(); resolves port 0 requests).
  std::uint16_t port() const noexcept { return port_; }

  /// Graceful drain: stop accepting, finish in-flight requests, join
  /// everything. Idempotent; also safe to call from a signal-notified
  /// thread (not from a handler itself — it takes locks).
  void stop();

  bool running() const noexcept { return started_ && !stopped_; }

  /// Connections accepted since start (includes shed ones).
  std::uint64_t connections_accepted() const noexcept {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  /// Connections answered with a busy error because the pool was full.
  std::uint64_t connections_shed() const noexcept {
    return connections_shed_.load(std::memory_order_relaxed);
  }

 private:
  void acceptor_loop();
  void serve_connection(int fd);

  const ServedDataset& dataset_;
  ServerOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_shed_{0};
};

}  // namespace patchdb::serve
