#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace patchdb::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("serve client: " + what + ": " +
                           std::strerror(errno));
}

void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void recv_all(int fd, unsigned char* out, std::size_t want,
              std::chrono::milliseconds timeout) {
  std::size_t got = 0;
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (got < want) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) {
      throw std::runtime_error("serve client: response timed out");
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      fail_errno("poll");
    }
    if (ready == 0) continue;  // loop re-checks the deadline
    const ssize_t n = ::recv(fd, out + got, want - got, 0);
    if (n == 0) {
      throw std::runtime_error("serve client: connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    got += static_cast<std::size_t>(n);
  }
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), timeout_(other.timeout_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    timeout_ = other.timeout_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port,
                     std::chrono::milliseconds timeout) {
  close();
  timeout_ = timeout;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("serve client: bad host address " + host);
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string reason = std::strerror(errno);
    close();
    throw std::runtime_error("serve client: cannot connect to " + host + ":" +
                             std::to_string(port) + ": " + reason);
  }
}

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::call(const Request& request) {
  if (fd_ < 0) throw std::runtime_error("serve client: not connected");
  send_all(fd_, frame(encode_request(request)));

  unsigned char header[kFrameHeaderBytes];
  recv_all(fd_, header, sizeof(header), timeout_);
  const std::size_t body_len = parse_frame_header(header);
  std::string body(body_len, '\0');
  recv_all(fd_, reinterpret_cast<unsigned char*>(body.data()), body.size(),
           timeout_);
  return decode_response(request.op, body);
}

Response Client::ping() {
  Request request;
  request.op = Op::kPing;
  return call(request);
}

Response Client::lookup(const std::string& id) {
  Request request;
  request.op = Op::kLookup;
  request.lookup.id = id;
  return call(request);
}

Response Client::features(const std::string& id, WireFeatureSpace space) {
  Request request;
  request.op = Op::kFeatures;
  request.features.id = id;
  request.features.space = space;
  return call(request);
}

Response Client::nearest_by_id(const std::string& id, std::uint32_t k) {
  Request request;
  request.op = Op::kNearest;
  request.nearest.by_id = true;
  request.nearest.id = id;
  request.nearest.k = k;
  return call(request);
}

Response Client::nearest_by_vector(const std::vector<double>& vector,
                                   std::uint32_t k) {
  Request request;
  request.op = Op::kNearest;
  request.nearest.by_id = false;
  request.nearest.vector = vector;
  request.nearest.k = k;
  return call(request);
}

Response Client::stats() {
  Request request;
  request.op = Op::kStats;
  return call(request);
}

Response Client::analyze(const std::string& diff_text, bool interproc) {
  Request request;
  request.op = Op::kAnalyze;
  request.analyze.diff_text = diff_text;
  request.analyze.interproc = interproc;
  return call(request);
}

Response Client::list_ids(WireComponent component, std::uint32_t limit) {
  Request request;
  request.op = Op::kListIds;
  request.list_ids.component = component;
  request.list_ids.limit = limit;
  return call(request);
}

}  // namespace patchdb::serve
