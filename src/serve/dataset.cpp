#include "serve/dataset.h"

#include <stdexcept>
#include <utility>

#include "analysis/analyze.h"
#include "analysis/report.h"
#include "core/categorize.h"
#include "core/distance.h"
#include "core/query.h"
#include "diff/parse.h"
#include "diff/render.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/export.h"

namespace patchdb::serve {

namespace {

ServedPatch make_served(corpus::CommitRecord&& record, WireComponent component) {
  ServedPatch served;
  served.id = record.patch.commit;
  served.component = component;
  served.truth = record.truth;
  served.repo = std::move(record.repo);
  served.patch = std::move(record.patch);
  return served;
}

}  // namespace

ServedDataset ServedDataset::load(const std::filesystem::path& root) {
  PATCHDB_TRACE_SPAN("serve.dataset.load");
  store::LoadedPatchDb db = store::load_patchdb(root);
  return from_components(std::move(db.nvd_security), std::move(db.wild_security),
                         std::move(db.nonsecurity), std::move(db.synthetic));
}

ServedDataset ServedDataset::from_components(
    std::vector<corpus::CommitRecord> nvd,
    std::vector<corpus::CommitRecord> wild,
    std::vector<corpus::CommitRecord> nonsecurity,
    std::vector<synth::SyntheticPatch> synthetic) {
  ServedDataset data;
  data.patches_.reserve(nvd.size() + wild.size() + nonsecurity.size() +
                        synthetic.size());
  data.stats_.nvd = nvd.size();
  data.stats_.wild = wild.size();
  data.stats_.nonsecurity = nonsecurity.size();
  data.stats_.synthetic = synthetic.size();

  // Natural patches first, in export order (nvd, wild, nonsecurity):
  // their positions double as rows of the nearest-query corpus.
  for (corpus::CommitRecord& r : nvd) {
    data.patches_.push_back(make_served(std::move(r), WireComponent::kNvd));
  }
  for (corpus::CommitRecord& r : wild) {
    data.patches_.push_back(make_served(std::move(r), WireComponent::kWild));
  }
  for (corpus::CommitRecord& r : nonsecurity) {
    data.patches_.push_back(
        make_served(std::move(r), WireComponent::kNonsecurity));
  }
  data.natural_rows_ = data.patches_.size();

  for (synth::SyntheticPatch& s : synthetic) {
    ServedPatch served;
    served.id = s.patch.commit;
    served.component = WireComponent::kSynthetic;
    served.truth = s.truth;
    served.origin = std::move(s.origin_commit);
    served.variant = static_cast<int>(s.variant);
    served.modified_after = s.modified_after;
    served.patch = std::move(s.patch);
    data.patches_.push_back(std::move(served));
  }

  data.index_and_precompute();
  return data;
}

void ServedDataset::index_and_precompute() {
  PATCHDB_TRACE_SPAN("serve.dataset.precompute");
  by_id_.reserve(patches_.size());
  for (std::size_t i = 0; i < patches_.size(); ++i) {
    const auto [it, inserted] =
        by_id_.emplace(std::string_view(patches_[i].id), i);
    if (!inserted) {
      throw std::runtime_error("serve: duplicate patch id " + patches_[i].id);
    }
  }

  // The nearest-query corpus: Table I features of the natural patches,
  // scaled by the max-abs weights learned over that same set — the
  // Section III-B.2 normalization with the served corpus as the union.
  std::vector<diff::Patch> natural;
  natural.reserve(natural_rows_);
  for (std::size_t i = 0; i < natural_rows_; ++i) {
    natural.push_back(patches_[i].patch);
  }
  natural_features_ = feature::extract_all(natural);
  dims_ = natural_features_.cols();
  if (natural_rows_ > 0) {
    weights_ = core::maxabs_weights(natural_features_, natural_features_);
    scaled_ = core::scale_features(natural_features_, weights_);
  }

  // Table V composition over the labeled security patches, the same
  // scan `patchdb stats` runs offline.
  stats_.categories.assign(corpus::kSecurityTypeCount, CategoryCount{});
  for (std::size_t i = 0; i < corpus::kSecurityTypeCount; ++i) {
    stats_.categories[i].type = static_cast<std::int64_t>(i + 1);
  }
  for (std::size_t i = 0; i < natural_rows_; ++i) {
    const ServedPatch& served = patches_[i];
    if (!corpus::is_security_type(served.truth.type)) continue;
    ++stats_.security_total;
    ++stats_.categories[static_cast<std::size_t>(
                            static_cast<int>(served.truth.type)) -
                        1]
          .labeled;
    const corpus::PatchType predicted = core::categorize(served.patch);
    if (corpus::is_security_type(predicted)) {
      ++stats_.categories[static_cast<std::size_t>(
                              static_cast<int>(predicted)) -
                          1]
            .predicted;
    }
    if (predicted == served.truth.type) ++stats_.agreement;
  }
  PATCHDB_GAUGE_SET("serve.dataset.patches",
                    static_cast<double>(patches_.size()));
}

std::size_t ServedDataset::find(std::string_view id) const noexcept {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? npos : it->second;
}

PingResponse ServedDataset::ping() const {
  PingResponse response;
  response.patches = patches_.size();
  return response;
}

Response ServedDataset::lookup(const LookupRequest& request) const {
  const std::size_t index = find(request.id);
  if (index == npos) {
    return error_response(Status::kNotFound,
                          "unknown patch id " + request.id);
  }
  const ServedPatch& served = patches_[index];
  Response response;
  response.lookup.component = served.component;
  response.lookup.is_security = served.truth.is_security;
  response.lookup.type = static_cast<std::int64_t>(served.truth.type);
  response.lookup.repo = served.repo;
  response.lookup.origin = served.origin;
  response.lookup.patch_text = diff::render_patch(served.patch);
  return response;
}

Response ServedDataset::features(const FeaturesRequest& request) const {
  const std::size_t index = find(request.id);
  if (index == npos) {
    return error_response(Status::kNotFound,
                          "unknown patch id " + request.id);
  }
  Response response;
  // Syntactic vectors of natural patches come straight from the
  // precomputed matrix; the extended spaces (and synthetic patches)
  // extract on demand — the extractors are pure, so either path yields
  // the offline-identical vector.
  if (request.space == WireFeatureSpace::kSyntactic && index < natural_rows_) {
    const std::span<const double> row = natural_features_[index];
    response.features.vector.assign(row.begin(), row.end());
    return response;
  }
  const diff::Patch& patch = patches_[index].patch;
  switch (request.space) {
    case WireFeatureSpace::kSyntactic: {
      const feature::FeatureVector v = feature::extract(patch);
      response.features.vector.assign(v.begin(), v.end());
      break;
    }
    case WireFeatureSpace::kSemantic: {
      const feature::ExtendedFeatureVector v = feature::extract_extended(patch);
      response.features.vector.assign(v.begin(), v.end());
      break;
    }
    case WireFeatureSpace::kInterproc: {
      const feature::InterprocFeatureVector v =
          feature::extract_interproc(patch);
      response.features.vector.assign(v.begin(), v.end());
      break;
    }
  }
  return response;
}

Response ServedDataset::nearest(const NearestRequest& request) const {
  if (natural_rows_ == 0) {
    return error_response(Status::kBadRequest,
                          "dataset has no natural patches to search");
  }
  if (request.k == 0) {
    return error_response(Status::kBadRequest, "k must be positive");
  }
  std::vector<float> query_storage;
  std::span<const float> query;
  if (request.by_id) {
    const std::size_t index = find(request.id);
    if (index == npos) {
      return error_response(Status::kNotFound,
                            "unknown patch id " + request.id);
    }
    if (index < natural_rows_) {
      query = std::span<const float>(scaled_).subspan(index * dims_, dims_);
    } else {
      // Synthetic query patch: featurize on demand, scale identically.
      const feature::FeatureVector v =
          feature::extract(patches_[index].patch);
      query_storage = core::scale_query(std::vector<double>(v.begin(), v.end()),
                                        weights_);
      query = query_storage;
    }
  } else {
    if (request.vector.size() != dims_) {
      return error_response(
          Status::kBadRequest,
          "query vector has " + std::to_string(request.vector.size()) +
              " dimensions, dataset uses " + std::to_string(dims_));
    }
    query_storage = core::scale_query(request.vector, weights_);
    query = query_storage;
  }

  const std::vector<core::KnnHit> hits =
      core::knn_query(scaled_, dims_, query, request.k);
  Response response;
  response.nearest.hits.reserve(hits.size());
  for (const core::KnnHit& hit : hits) {
    response.nearest.hits.push_back(
        {patches_[hit.index].id, hit.distance});
  }
  return response;
}

Response ServedDataset::stats(const StatsRequest&) const {
  Response response;
  response.stats = stats_;
  return response;
}

Response ServedDataset::analyze(const AnalyzeRequest& request) const {
  diff::Patch patch;
  try {
    patch = diff::parse_patch(request.diff_text);
  } catch (const std::exception& e) {
    return error_response(Status::kBadRequest,
                          std::string("diff does not parse: ") + e.what());
  }
  if (patch.files.empty()) {
    return error_response(Status::kBadRequest,
                          "diff contains no file changes");
  }
  analysis::AnalyzeOptions analyze_options;
  analyze_options.interproc = request.interproc;
  const analysis::PatchAnalysis pa =
      analysis::analyze_patch(patch, analyze_options);
  core::CategorizeOptions categorize_options;
  categorize_options.interproc = request.interproc;
  Response response;
  response.analyze.category = static_cast<std::int64_t>(
      core::categorize(patch, categorize_options));
  response.analyze.resolved = pa.resolved.size();
  response.analyze.introduced = pa.introduced.size();
  response.analyze.report = analysis::render_report(pa);
  return response;
}

Response ServedDataset::list_ids(const ListIdsRequest& request) const {
  Response response;
  const std::size_t limit =
      request.limit == 0 ? patches_.size() : request.limit;
  for (const ServedPatch& served : patches_) {
    if (response.list_ids.ids.size() >= limit) break;
    if (request.component != WireComponent::kAll &&
        served.component != request.component) {
      continue;
    }
    response.list_ids.ids.push_back(served.id);
  }
  return response;
}

Response ServedDataset::handle(const Request& request) const {
  switch (request.op) {
    case Op::kPing: {
      Response response;
      response.ping = ping();
      return response;
    }
    case Op::kLookup: return lookup(request.lookup);
    case Op::kFeatures: return features(request.features);
    case Op::kNearest: return nearest(request.nearest);
    case Op::kStats: return stats(request.stats);
    case Op::kAnalyze: return analyze(request.analyze);
    case Op::kListIds: return list_ids(request.list_ids);
  }
  return error_response(Status::kBadRequest, "unknown request op");
}

}  // namespace patchdb::serve
